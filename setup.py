"""Thin setup.py kept for environments without the `wheel` package.

`pip install -e .` needs `wheel` to build a PEP 660 editable wheel; offline
boxes without it can run `python setup.py develop` instead, which installs
the same editable mapping of src/repro.
"""

from setuptools import setup

setup()
