"""E12 — Sharded partition-parallel execution.

Sweep the shard count (1/2/4/8) over a partitioned stock workload and
record end-to-end throughput (submit through the flush barrier).  The
merge stage guarantees identical results at every shard count, so the
sweep also double-checks equality of match/emission counts and the final
ranking against the plain single-engine run.

Interpreting the numbers: matching is pure Python, so shard *threads*
contend on the GIL — on a single-core host (or any CPython without
free-threading) the sweep records the overhead curve of the sharded
runtime rather than a speedup.  The architecture targets per-key
parallel speedup (≥ 1.5× at 4 shards on a multi-core free-threaded
host); what this experiment asserts unconditionally is that sharding
never changes results and that throughput stays within a sane factor of
the single-engine baseline.
"""

from common import run_cepr, run_cepr_sharded, stock_rank_query

SHARD_SWEEP = (1, 2, 4, 8)
QUERY = stock_rank_query(window=100, k=5)


def _reference(events, registry):
    return run_cepr(QUERY, events, registry)


def test_e12_sharding_sweep(stock_10k):
    """The harness row: throughput at each shard count, results pinned."""
    events, registry = stock_10k
    baseline = _reference(events, registry)
    rows = {}
    for shards in SHARD_SWEEP:
        result = run_cepr_sharded(QUERY, events, shards, registry)
        rows[shards] = result
        # Identical results at every shard count — the tentpole contract.
        assert result.events == baseline.events
        assert result.matches == baseline.matches
        assert result.emissions == baseline.emissions
        assert result.runs_created == baseline.runs_created
    final_rankings = {tuple(r.extra["final_ranking"]) for r in rows.values()}
    assert len(final_rankings) == 1  # same top-k regardless of shard count
    # Record the throughput curve where pytest -rP and the harness find it.
    print("\nE12 sharding sweep (stock, 10k events, partitioned top-5):")
    print(f"  single-engine: {baseline.events_per_second:10.0f} ev/s")
    for shards, result in rows.items():
        print(f"  shards={shards}:     {result.events_per_second:10.0f} ev/s")
    # No hard speedup floor: GIL-bound hosts cannot honour one.  Guard
    # against pathological regressions instead.
    assert rows[4].events_per_second > baseline.events_per_second / 10


def test_e12_1_shard(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_cepr_sharded(QUERY, events, 1, registry),
        rounds=3,
        iterations=1,
    )
    assert result.matches > 0


def test_e12_2_shards(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_cepr_sharded(QUERY, events, 2, registry),
        rounds=3,
        iterations=1,
    )
    assert result.matches > 0


def test_e12_4_shards(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_cepr_sharded(QUERY, events, 4, registry),
        rounds=3,
        iterations=1,
    )
    assert result.matches > 0


def test_e12_8_shards(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_cepr_sharded(QUERY, events, 8, registry),
        rounds=3,
        iterations=1,
    )
    assert result.matches > 0
