"""E11 — Derived-stream (YIELD) composition cost.

Hierarchical CEP buys modularity: level 2 queries match over level 1's
derived events instead of raw streams.  This measures what the indirection
costs against a single flat query expressing the same end-to-end pattern
directly over raw events.

Flat:      SEQ(Buy b1, Sell s1, Buy b2, Sell s2)  with profit predicates
Hierarchy: SEQ(Buy b, Sell s) YIELD Trade(...)  +  SEQ(Trade t1, Trade t2)
"""

import time

import pytest

from common import fresh_events
from repro import CEPREngine

FLAT = """
    NAME flat
    PATTERN SEQ(Buy b1, Sell s1, Buy b2, Sell s2)
    WHERE b1.symbol == s1.symbol AND s1.price > b1.price
          AND b2.symbol == b1.symbol AND s2.symbol == b2.symbol
          AND s2.price > b2.price
          AND s2.price - b2.price > s1.price - b1.price
    WITHIN 100 EVENTS
    PARTITION BY symbol
"""

LEVEL_1 = """
    NAME level1
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 100 EVENTS
    PARTITION BY symbol
    YIELD Trade(symbol = b.symbol, profit = s.price - b.price)
"""

LEVEL_2 = """
    NAME level2
    PATTERN SEQ(Trade t1, Trade t2)
    WHERE t1.symbol == t2.symbol AND t2.profit > t1.profit
    WITHIN 600 SECONDS
    PARTITION BY symbol
"""


def run_flat(events, registry):
    engine = CEPREngine(registry=registry)
    handle = engine.register_query(FLAT, collect_results=False)
    started = time.perf_counter()
    engine.run(fresh_events(events))
    return time.perf_counter() - started, handle.metrics.matches


def run_hierarchy(events, registry):
    engine = CEPREngine(registry=registry)
    engine.register_query(LEVEL_1, collect_results=False)
    level2 = engine.register_query(LEVEL_2, collect_results=False)
    started = time.perf_counter()
    engine.run(fresh_events(events))
    return time.perf_counter() - started, level2.metrics.matches


def test_e11_flat(benchmark, stock_10k):
    events, registry = stock_10k
    elapsed, matches = benchmark.pedantic(
        lambda: run_flat(events, registry), rounds=3, iterations=1
    )
    assert matches >= 0


def test_e11_hierarchy(benchmark, stock_10k):
    events, registry = stock_10k
    elapsed, matches = benchmark.pedantic(
        lambda: run_hierarchy(events, registry), rounds=3, iterations=1
    )
    assert matches > 0
