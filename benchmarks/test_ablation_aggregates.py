"""Ablation — incremental aggregate state vs. recompute-from-list.

DESIGN.md calls out incremental aggregates (O(1) per accepted Kleene
element) as a design choice; the alternative recomputes each aggregate
from the binding list on every evaluation (O(n), so O(n²) over a long
closure).  This ablation evaluates a running-aggregate iteration predicate
(``bs.value > avg(bs.value)``) with tracking on and off.
"""

import pytest

from common import fresh_events, generic_stream
from repro.engine.compiler import compile_automaton
from repro.engine.matcher import PatternMatcher
from repro.events.time import SequenceAssigner
from repro.language.parser import parse_query
from repro.language.semantics import analyze

QUERY = """
    PATTERN SEQ(A a, B bs+)
    WHERE bs.value > avg(bs.value) - 50
    WITHIN 200 EVENTS
"""


def run_matcher(events, track_aggregates: bool) -> int:
    analyzed = analyze(parse_query(QUERY))
    matcher = PatternMatcher(
        compile_automaton(analyzed), track_aggregates=track_aggregates
    )
    assigner = SequenceAssigner()
    total = 0
    for event in fresh_events(events):
        assigner.assign(event)
        total += len(matcher.process(event))
    total += len(matcher.flush())
    return total


@pytest.fixture(scope="module")
def agg_stream():
    return generic_stream(4_000, alphabet=2)


@pytest.mark.parametrize("tracked", [True, False], ids=["incremental", "recompute"])
def test_ablation_aggregate_tracking(benchmark, agg_stream, tracked):
    events, _registry = agg_stream
    matches = benchmark.pedantic(
        lambda: run_matcher(events, tracked), rounds=3, iterations=1
    )
    assert matches > 0


def test_ablation_results_identical(agg_stream):
    events, _registry = agg_stream
    assert run_matcher(events, True) == run_matcher(events, False)
