"""E17 — Process-parallel fleets and compiled hot paths.

Two measurements, one experiment:

1. **Process sweep.** The same partitioned stock workload through
   ``backend="process"`` at K ∈ {1, 2, 4} worker processes, against the
   single-engine baseline and the K=4 *threaded* fleet.  Worker
   processes own their interpreter (and GIL), so on a host with ≥ 4
   cores the K=4 process fleet must clear **2.5×** the threaded fleet's
   throughput.  On smaller hosts the sweep records the pipe-transport
   overhead curve instead — the same host-capability discipline E12
   uses — while the exactness assertions (identical matches, emissions,
   run counts, final ranking at every K) hold unconditionally.

2. **Compiled-edges ablation.** The single-core uplift of the fused
   predicate/transition/score-bound closures (``compiled=True``, the
   default everywhere) over per-predicate interpreter dispatch
   (``compiled=False``).  Output is asserted identical; the gate only
   requires compilation never be a pathological loss, the printed
   uplift is the measured number EXPERIMENTS.md records.
"""

import os

from common import run_cepr, run_cepr_sharded, stock_rank_query

PROCESS_SWEEP = (1, 2, 4)
QUERY = stock_rank_query(window=100, k=5)

#: Acceptance floor for K=4 processes over K=4 threads, multi-core hosts.
SPEEDUP_FLOOR = 2.5
#: Cores needed before the floor is physically meaningful.
MIN_CORES_FOR_FLOOR = 4


def _assert_identical(result, baseline):
    assert result.events == baseline.events
    assert result.matches == baseline.matches
    assert result.emissions == baseline.emissions
    assert result.runs_created == baseline.runs_created


def test_e17_process_sweep(stock_10k):
    """The harness row: throughput at each process count, results pinned."""
    events, registry = stock_10k
    baseline = run_cepr(QUERY, events, registry)
    threaded = run_cepr_sharded(QUERY, events, 4, registry, backend="sharded")
    _assert_identical(threaded, baseline)

    rows = {}
    for shards in PROCESS_SWEEP:
        result = run_cepr_sharded(
            QUERY, events, shards, registry, backend="process"
        )
        _assert_identical(result, baseline)
        rows[shards] = result
    # Same top-k regardless of substrate or process count.
    final_rankings = {tuple(r.extra["final_ranking"]) for r in rows.values()}
    final_rankings.add(tuple(threaded.extra["final_ranking"]))
    assert len(final_rankings) == 1

    speedup = rows[4].events_per_second / threaded.events_per_second
    print("\nE17 process fleet (stock, 10k events, partitioned top-5):")
    print(f"  single-engine:    {baseline.events_per_second:10.0f} ev/s")
    print(f"  threads=4:        {threaded.events_per_second:10.0f} ev/s")
    for shards, result in rows.items():
        print(f"  processes={shards}:      {result.events_per_second:10.0f} ev/s")
    print(
        f"  K=4 process/thread speedup: {speedup:.2f}x "
        f"(host has {os.cpu_count()} cores)"
    )
    if (os.cpu_count() or 1) >= MIN_CORES_FOR_FLOOR:
        # The acceptance gate: real cores -> real parallel speedup.
        assert speedup >= SPEEDUP_FLOOR, (
            f"K=4 process fleet reached only {speedup:.2f}x of the "
            f"threaded fleet (floor {SPEEDUP_FLOOR}x)"
        )
    else:
        # Single/dual-core host: processes time-slice one core and pay
        # pipe serialisation on top; just guard against pathology.
        assert rows[4].events_per_second > baseline.events_per_second / 20


def test_e17_compiled_edges_uplift(stock_10k):
    """Compiled closures vs interpreter dispatch, one engine, one core."""
    events, registry = stock_10k
    interpreted = run_cepr(QUERY, events, registry, compiled=False)
    compiled = run_cepr(QUERY, events, registry, compiled=True)
    _assert_identical(compiled, interpreted)

    uplift = compiled.events_per_second / interpreted.events_per_second
    print("\nE17 compiled-edges ablation (stock, 10k events):")
    print(f"  interpreted: {interpreted.events_per_second:10.0f} ev/s")
    print(f"  compiled:    {compiled.events_per_second:10.0f} ev/s")
    print(f"  single-core uplift: {uplift:.2f}x")
    # Identical output is asserted above; the perf gate only demands the
    # compiled path never loses measurably to the interpreter.
    assert uplift > 0.9


def test_e17_process_byte_identical_under_batching(stock_10k):
    """Frame batching is a transport knob, never a semantics knob."""
    events, registry = stock_10k
    small = run_cepr_sharded(
        QUERY, events, 2, registry, backend="process", batch_size=16
    )
    large = run_cepr_sharded(
        QUERY, events, 2, registry, backend="process", batch_size=1024
    )
    _assert_identical(small, large)
    assert small.extra["final_ranking"] == large.extra["final_ranking"]


def test_e17_4_processes(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_cepr_sharded(QUERY, events, 4, registry, backend="process"),
        rounds=3,
        iterations=1,
    )
    assert result.matches > 0


def test_e17_compiled_single_engine(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_cepr(QUERY, events, registry, compiled=True),
        rounds=3,
        iterations=1,
    )
    assert result.matches > 0
