"""Shared builders for the benchmark suite (E1–E10).

Each experiment benchmarks a *configuration function* built here, so the
pytest-benchmark targets and the table-printing harness
(``python benchmarks/harness.py``) measure exactly the same code paths.
All workloads are seeded: a given configuration always processes the same
event stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro import CEPREngine
from repro.baselines.match_then_rank import MatchThenRankQuery
from repro.baselines.unranked import UnrankedQuery
from repro.events.event import Event
from repro.events.schema import SchemaRegistry
from repro.workloads.generic import GenericWorkload
from repro.workloads.sensor import VitalsWorkload
from repro.workloads.stock import StockWorkload
from repro.workloads.traffic import TrafficWorkload


def fresh_events(events: list[Event]) -> list[Event]:
    """Deep-copy a stream so repeated runs never share seq numbers."""
    return [Event(e.event_type, e.timestamp, **e.payload) for e in events]


@dataclass
class RunResult:
    """What one measured engine run produced."""

    seconds: float
    events: int
    matches: int = 0
    emissions: int = 0
    runs_created: int = 0
    runs_pruned: int = 0
    peak_live_runs: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else 0.0


# ---------------------------------------------------------------------------
# stream builders (cached per parameter set by the callers)
# ---------------------------------------------------------------------------


def stock_stream(count: int, seed: int = 2016) -> tuple[list[Event], SchemaRegistry]:
    workload = StockWorkload(seed=seed)
    return list(workload.events(count)), workload.registry()


def generic_stream(
    count: int, alphabet: int = 4, seed: int = 7
) -> tuple[list[Event], SchemaRegistry]:
    workload = GenericWorkload(seed=seed, alphabet_size=alphabet)
    return list(workload.events(count)), workload.registry()


def vitals_stream(count: int, seed: int = 5) -> tuple[list[Event], SchemaRegistry]:
    workload = VitalsWorkload(seed=seed, anomaly_rate=0.02)
    return list(workload.events(count)), workload.registry()


def traffic_stream(count: int, seed: int = 3) -> tuple[list[Event], SchemaRegistry]:
    workload = TrafficWorkload(seed=seed, incident_rate=0.006, incident_length=150)
    return list(workload.events(count)), workload.registry()


# ---------------------------------------------------------------------------
# measured runners
# ---------------------------------------------------------------------------


def run_cepr_raw(
    query: str,
    events: list[Event],
    registry: SchemaRegistry | None = None,
    enable_pruning: bool = True,
) -> RunResult:
    """Run the integrated matcher→scorer→ranker chain without the engine
    facade (no per-event metrics), mirroring the baselines' raw loops so
    algorithm comparisons (E1/E2) are apples-to-apples."""
    from repro.events.time import SequenceAssigner
    from repro.language.parser import parse_query
    from repro.language.semantics import analyze
    from repro.runtime.query import RegisteredQuery

    stream = fresh_events(events)
    analyzed = analyze(parse_query(query), registry)
    registered = RegisteredQuery(
        "bench",
        analyzed,
        registry=registry,
        enable_pruning=enable_pruning,
        collect_results=False,
    )
    matcher, ranker = registered.matcher, registered.ranker
    assigner = SequenceAssigner()
    emissions = 0
    started = time.perf_counter()
    for event in stream:
        assigner.assign(event)
        matches = matcher.process(event)
        emissions += len(ranker.observe(event, matches))
    last = stream[-1] if stream else None
    final = matcher.flush()
    if last is not None:
        emissions += len(ranker.observe_final(final, last.seq, last.timestamp))
    elapsed = time.perf_counter() - started
    stats = matcher.stats
    return RunResult(
        seconds=elapsed,
        events=len(stream),
        matches=stats.matches_completed,
        emissions=emissions,
        runs_created=stats.runs_created,
        runs_pruned=stats.runs_pruned,
        peak_live_runs=stats.peak_live_runs,
    )


def run_cepr(
    query: str,
    events: list[Event],
    registry: SchemaRegistry | None = None,
    enable_pruning: bool = True,
    compiled: bool = True,
) -> RunResult:
    """Run one CEPR query over a copy of ``events`` and collect stats.

    ``compiled=False`` keeps the per-predicate interpreter dispatch in
    the matcher — the baseline of the E17 compiled-edges ablation.
    """
    stream = fresh_events(events)
    engine = CEPREngine(
        registry=registry, enable_pruning=enable_pruning, compiled=compiled
    )
    handle = engine.register_query(query, collect_results=False)
    started = time.perf_counter()
    engine.run(stream)
    elapsed = time.perf_counter() - started
    stats = handle.matcher.stats
    return RunResult(
        seconds=elapsed,
        events=len(stream),
        matches=handle.metrics.matches,
        emissions=handle.metrics.emissions,
        runs_created=stats.runs_created,
        runs_pruned=stats.runs_pruned,
        peak_live_runs=stats.peak_live_runs,
    )


def run_observability(
    query: str,
    events: list[Event],
    registry: SchemaRegistry | None = None,
    tracing: bool = False,
    enable_profiling: bool = True,
) -> RunResult:
    """Run the full engine facade under a given observability configuration.

    ``enable_profiling=False`` is the bare baseline (single whole-pipeline
    latency measurement); the default config adds per-stage timing; and
    ``tracing=True`` additionally records a span per pipeline step.
    """
    stream = fresh_events(events)
    engine = CEPREngine(
        registry=registry, tracing=tracing, enable_profiling=enable_profiling
    )
    handle = engine.register_query(query, collect_results=False)
    started = time.perf_counter()
    engine.run(stream)
    elapsed = time.perf_counter() - started
    return RunResult(
        seconds=elapsed,
        events=len(stream),
        matches=handle.metrics.matches,
        emissions=handle.metrics.emissions,
    )


def run_checkpointed(
    query: str,
    events: list[Event],
    registry: SchemaRegistry | None = None,
    checkpoint_every: int | None = None,
    checkpoint_dir=None,
) -> RunResult:
    """Run one query with (or without) periodic durable checkpoints.

    The event loop is identical in both configurations — one ``push`` per
    event plus a modulo test — so the measured difference is exactly what
    checkpointing costs: the engine snapshot, JSON encoding, and the
    fsync'd atomic write.
    """
    from repro.store.checkpoint import CheckpointStore, Position

    stream = fresh_events(events)
    engine = CEPREngine(registry=registry)
    handle = engine.register_query(query, collect_results=False)
    store = (
        CheckpointStore(checkpoint_dir)
        if checkpoint_every is not None
        else None
    )
    started = time.perf_counter()
    consumed = 0
    for event in stream:
        engine.push(event)
        consumed += 1
        if store is not None and consumed % checkpoint_every == 0:
            store.save(
                engine.snapshot(),
                Position(
                    events_consumed=consumed,
                    last_seq=consumed,
                    last_ts=event.timestamp,
                ),
            )
    engine.flush()
    elapsed = time.perf_counter() - started
    return RunResult(
        seconds=elapsed,
        events=len(stream),
        matches=handle.metrics.matches,
        emissions=handle.metrics.emissions,
        extra={"checkpoints": store.saves if store is not None else 0},
    )


def run_match_then_rank(
    query: str, events: list[Event], registry: SchemaRegistry | None = None
) -> RunResult:
    stream = fresh_events(events)
    baseline = MatchThenRankQuery(query, registry)
    started = time.perf_counter()
    baseline.run(stream)
    elapsed = time.perf_counter() - started
    stats = baseline.matcher.stats
    return RunResult(
        seconds=elapsed,
        events=len(stream),
        matches=stats.matches_completed,
        emissions=len(baseline.emissions),
        runs_created=stats.runs_created,
        peak_live_runs=stats.peak_live_runs,
        extra={"matches_buffered": baseline.matches_buffered},
    )


def run_unranked(
    query: str, events: list[Event], registry: SchemaRegistry | None = None
) -> RunResult:
    stream = fresh_events(events)
    baseline = UnrankedQuery(query, registry)
    started = time.perf_counter()
    baseline.run(stream)
    elapsed = time.perf_counter() - started
    stats = baseline.matcher.stats
    return RunResult(
        seconds=elapsed,
        events=len(stream),
        matches=stats.matches_completed,
        runs_created=stats.runs_created,
        peak_live_runs=stats.peak_live_runs,
    )


def run_cepr_sharded(
    query: str,
    events: list[Event],
    shards: int,
    registry: SchemaRegistry | None = None,
    enable_pruning: bool = True,
    batch_size: int = 256,
    backend: str = "sharded",
    compiled: bool = True,
) -> RunResult:
    """Run one query through the sharded runtime and collect fleet stats.

    Timing covers submit-through-flush (the merge barrier included), so
    the recorded throughput is end-to-end, not just enqueue speed.
    ``backend="process"`` runs the same fleet on worker processes (E17).
    """
    from repro.runtime.runner import RunnerConfig, create_runner

    stream = fresh_events(events)
    runner = create_runner(
        config=RunnerConfig(
            backend=backend,
            shards=shards,
            registry=registry,
            enable_pruning=enable_pruning,
            batch_size=batch_size,
            compiled=compiled,
        )
    )
    view = runner.register_query(query)
    runner.start()
    started = time.perf_counter()
    try:
        runner.submit_all(stream)
        runner.flush()
    finally:
        runner.stop()
    elapsed = time.perf_counter() - started
    stats = view.matcher.stats
    metrics = view.metrics
    return RunResult(
        seconds=elapsed,
        events=len(stream),
        matches=metrics.matches,
        emissions=metrics.emissions,
        runs_created=stats.runs_created,
        runs_pruned=stats.runs_pruned,
        peak_live_runs=stats.peak_live_runs,
        extra={
            "shards": shards,
            "final_ranking": [
                (m.last_seq, m.rank_values) for m in view.final_ranking()
            ],
        },
    )


def run_multi_query(
    queries: Iterable[str],
    events: list[Event],
    registry=None,
    broadcast: bool = False,
    shared: bool = True,
) -> RunResult:
    """Run N concurrent queries over one stream.

    ``broadcast=True`` disables type-based routing *and* cross-query
    sharing: every event is offered to every query (each still rejects
    irrelevant types itself).  This is the dispatch strategy a router-less
    engine would use, and the baseline the E8 experiment compares routing
    against.  ``shared=False`` keeps the router but turns the shared
    predicate index / prefix pool / quiescent gate off — the independent
    baseline of the shared-execution scaling curve.

    ``extra`` carries the engine's sharing counters and the per-event cost
    in microseconds, so the harness can print evaluations saved alongside
    throughput.
    """
    stream = fresh_events(events)
    engine = CEPREngine(
        registry=registry, shared_execution=shared and not broadcast
    )
    handles = [engine.register_query(q, collect_results=False) for q in queries]
    if broadcast:
        engine._router.route = lambda _event: handles  # type: ignore[method-assign]
    started = time.perf_counter()
    engine.run(stream)
    elapsed = time.perf_counter() - started
    return RunResult(
        seconds=elapsed,
        events=len(stream),
        matches=sum(h.metrics.matches for h in handles),
        emissions=sum(h.metrics.emissions for h in handles),
        runs_created=sum(h.matcher.stats.runs_created for h in handles),
        extra={
            "per_event_us": (elapsed / len(stream) * 1e6) if stream else 0.0,
            **engine.shared_stats(),
        },
    )


# ---------------------------------------------------------------------------
# canonical queries
# ---------------------------------------------------------------------------


def stock_rank_query(window: int = 100, k: int | None = 5) -> str:
    limit = f"LIMIT {k}" if k is not None else ""
    return f"""
        PATTERN SEQ(Buy b, Sell s)
        WHERE b.symbol == s.symbol AND s.price > b.price
        WITHIN {window} EVENTS
        USING SKIP_TILL_ANY
        PARTITION BY symbol
        RANK BY s.price - b.price DESC
        {limit}
        EMIT ON WINDOW CLOSE
    """


def generic_rank_query(
    window: int = 50,
    k: int | None = 5,
    strategy: str = "SKIP_TILL_ANY",
    length: int = 2,
) -> str:
    """SEQ over the first ``length`` letters, ranked by last-minus-first."""
    letters = [chr(ord("A") + i) for i in range(length)]
    variables = [letter.lower() for letter in letters]
    pattern = ", ".join(f"{t} {v}" for t, v in zip(letters, variables))
    limit = f"LIMIT {k}" if k is not None else ""
    return f"""
        PATTERN SEQ({pattern})
        WITHIN {window} EVENTS
        USING {strategy}
        RANK BY {variables[-1]}.value - {variables[0]}.value DESC
        {limit}
        EMIT ON WINDOW CLOSE
    """


def kleene_rank_query(window: int = 50, k: int | None = 5) -> str:
    return f"""
        PATTERN SEQ(HeartRate onset, HeartRate spikes+)
        WHERE onset.value > 100 AND spikes.value > 100
              AND spikes.value >= prev(spikes.value)
        WITHIN {window} EVENTS
        PARTITION BY patient
        RANK BY max(spikes.value) DESC, count(spikes) DESC
        {f"LIMIT {k}" if k else ""}
        EMIT ON WINDOW CLOSE
    """
