"""E7 — Emission-policy cost: window-close vs. periodic vs. eager.

All three rank the same matches; they differ in when snapshots are cut.
Expected shape: ON WINDOW CLOSE is cheapest (one ordered emission per
epoch, zero revisions); EVERY pays per period; EAGER pays a snapshot per
top-k change and emits the most revisions but has the lowest
time-to-first-answer (the harness reports those series).
"""

import pytest

from common import run_cepr

POLICIES = {
    "window_close": "EMIT ON WINDOW CLOSE",
    "periodic": "EMIT EVERY 100 EVENTS",
    "eager": "EMIT EAGER",
}


def query_for(policy: str) -> str:
    return f"""
        PATTERN SEQ(Buy b, Sell s)
        WHERE b.symbol == s.symbol AND s.price > b.price
        WITHIN 100 EVENTS
        USING SKIP_TILL_ANY
        PARTITION BY symbol
        RANK BY s.price - b.price DESC
        LIMIT 5
        {POLICIES[policy]}
    """


@pytest.mark.parametrize("policy", list(POLICIES))
def test_e7_emission_policy(benchmark, stock_10k, policy):
    events, registry = stock_10k
    query = query_for(policy)
    result = benchmark.pedantic(
        lambda: run_cepr(query, events, registry), rounds=3, iterations=1
    )
    assert result.emissions > 0
