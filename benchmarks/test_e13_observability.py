"""E13 — Observability overhead: what tracing and profiling cost on E1.

Three configurations of the same ranked stock query (the E1 workload):

* **bare** — ``enable_profiling=False``: one whole-pipeline latency
  measurement per event, no tracer (2 clock reads/event).
* **default** — profiling on, tracing off: per-stage wall time
  (4 clock reads/event) plus ``tracer is None`` guards on the hot paths.
* **traced** — ``tracing=True``: a span recorded per pipeline step.

The acceptance gate (also run as the CI benchmark smoke job): the default
configuration — everything observability adds when tracing is *disabled* —
costs at most 3% over bare.  Tracing enabled is expected to cost real
money and is reported, not gated.
"""

from common import run_observability, stock_rank_query

QUERY = stock_rank_query(window=100, k=5)

#: multiplicative budget for the disabled-observability configuration.
DISABLED_OVERHEAD_BUDGET = 1.03


def test_e13_bare_baseline(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_observability(
            QUERY, events, registry, enable_profiling=False
        ),
        rounds=3,
        iterations=1,
    )
    assert result.emissions > 0


def test_e13_default_observability(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_observability(QUERY, events, registry),
        rounds=3,
        iterations=1,
    )
    assert result.emissions > 0


def test_e13_tracing_enabled(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_observability(QUERY, events, registry, tracing=True),
        rounds=3,
        iterations=1,
    )
    assert result.emissions > 0


def test_e13_disabled_overhead_within_budget(stock_10k):
    """Default config (tracing off) stays within 3% of the bare pipeline.

    Interleaved min-of-N with retries: wall-clock noise on shared CI
    runners dwarfs a 3% signal for any single pair of runs, so each
    attempt takes the *minimum* of three interleaved runs per
    configuration (the least-disturbed execution) and the gate passes on
    the best attempt.
    """
    events, registry = stock_10k
    best_ratio = float("inf")
    for _attempt in range(4):
        bare_runs, default_runs = [], []
        for _round in range(3):
            bare_runs.append(
                run_observability(
                    QUERY, events, registry, enable_profiling=False
                ).seconds
            )
            default_runs.append(
                run_observability(QUERY, events, registry).seconds
            )
        best_ratio = min(best_ratio, min(default_runs) / min(bare_runs))
        if best_ratio <= DISABLED_OVERHEAD_BUDGET:
            break
    assert best_ratio <= DISABLED_OVERHEAD_BUDGET, (
        f"observability with tracing disabled costs "
        f"{(best_ratio - 1) * 100:.1f}% over the bare pipeline "
        f"(budget {(DISABLED_OVERHEAD_BUDGET - 1) * 100:.0f}%)"
    )
