"""E16 — Overload behavior: rank-aware load shedding at 10-100x capacity.

The overload model is a burst: the producer submits the whole stream as
fast as it can against a bounded ingest queue whose capacity is a small
fraction of the stream (``factor`` = events / queue capacity, swept at
10x and 100x).  The producer outruns the consumer by construction —
this *is* overload, with no wall-clock pacing to make CI flaky — so the
queue saturates, the pressure assessor trips ``overloaded``, and the
controller engages on real signals, not a forced flag.

Three configurations over the same stream:

* **off** — the baseline: every event takes the full match path; the
  bounded queue pushes the overload back onto the producer.
* **exact** — bound-certified elides only; output must stay
  byte-identical to *off* (asserted here, forced engagement so the
  differential does not depend on queue timing).
* **adaptive** — rank-weighted sampling ahead of the engine; the gate is
  *graceful degradation*: the engine does materially less work, some
  ranked output still flows, and the controller reports a recall
  estimate for what the approximation may have cost.
"""

import time

import pytest
from common import fresh_events, generic_stream

from repro import CEPREngine
from repro.runtime.concurrent import ThreadedEngineRunner
from repro.runtime.shedding import ShedController

QUERY = """
NAME spread
PATTERN SEQ(A a, B b)
WITHIN 25 EVENTS
USING SKIP_TILL_ANY
RANK BY b.value - a.value DESC
LIMIT 1
EMIT ON WINDOW CLOSE
"""

#: burst depth relative to the ingest queue: 10x and 100x "capacity".
OVERLOAD_FACTORS = (10, 100)

#: at 10x overload the adaptive policy must elide at least this fraction
#: of the stream from the match path once engaged.
MIN_WORK_REDUCTION = 0.10


def run_with_policy(
    events,
    registry,
    policy,
    factor=10,
    force=False,
    collect=False,
):
    """Drive one burst through a runner configured with ``policy``."""
    stream = fresh_events(events)
    queue_capacity = max(64, len(stream) // factor)
    engine = CEPREngine(registry=registry, enable_profiling=False)
    handle = engine.register_query(QUERY, collect_results=collect)
    controller = None
    if policy != "off":
        controller = ShedController(
            policy=policy, latency_target=0.05, force=force
        )
    runner = ThreadedEngineRunner(
        engine,
        max_queue=queue_capacity,
        shed_policy=policy,
        shed_controller=controller,
    )
    runner.start()
    started = time.perf_counter()
    try:
        for event in stream:
            runner.submit(event)
    finally:
        runner.stop()
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "events": len(stream),
        "events_per_second": len(stream) / elapsed if elapsed > 0 else 0.0,
        "routed": handle.metrics.events_routed,
        "emissions": handle.metrics.emissions,
        "p99_us": handle.metrics.latency.percentile(99) * 1e6,
        "controller": controller,
        "handle": handle,
    }


@pytest.fixture(scope="module")
def overload_stream():
    return generic_stream(20_000, alphabet=2, seed=5)


def test_e16_baseline_survives_burst(benchmark, overload_stream):
    events, registry = overload_stream
    result = benchmark.pedantic(
        lambda: run_with_policy(events, registry, "off"),
        rounds=3,
        iterations=1,
    )
    assert result["routed"] == len(events)
    assert result["emissions"] > 0


def test_e16_adaptive_overload(benchmark, overload_stream):
    events, registry = overload_stream
    result = benchmark.pedantic(
        lambda: run_with_policy(events, registry, "adaptive", factor=100),
        rounds=3,
        iterations=1,
    )
    assert result["emissions"] > 0


@pytest.mark.parametrize("factor", OVERLOAD_FACTORS)
def test_e16_adaptive_engages_and_degrades_gracefully(
    overload_stream, factor
):
    """At >= 10x capacity the controller engages on real pressure and
    sheds enough to matter, while ranked output keeps flowing."""
    events, registry = overload_stream
    result = run_with_policy(events, registry, "adaptive", factor=factor)
    controller = result["controller"]
    stats = controller.stats
    assert stats.engagements >= 1, "overload never engaged the controller"
    assert stats.shed_events_total > 0
    # the engine saw materially fewer events than were submitted...
    assert result["routed"] == len(events) - stats.shed_events_total
    assert stats.shed_events_total >= MIN_WORK_REDUCTION * len(events)
    # ...yet ranked output still flowed, with an honest recall estimate
    assert result["emissions"] > 0
    assert 0.0 <= controller.recall_estimate <= 1.0


def test_e16_exact_shedding_is_byte_identical(overload_stream):
    events, registry = overload_stream
    baseline = run_with_policy(
        events, registry, "off", collect=True
    )
    exact = run_with_policy(
        events, registry, "exact", force=True, collect=True
    )

    def fingerprint(handle):
        return [
            (
                e.kind.value,
                e.at_seq,
                e.epoch,
                e.revision,
                tuple((m.score, m.first_seq, m.last_seq) for m in e.ranking),
            )
            for e in handle.results()
        ]

    assert fingerprint(exact["handle"]) == fingerprint(baseline["handle"])
    controller = exact["controller"]
    assert controller.stats.shed_events_total > 0
    assert controller.stats.shed_sampled_total == 0
    assert controller.recall_estimate == 1.0
