"""E6 — Kleene closure with aggregate scoring (health workload).

The escalation query binds arbitrarily long heart-rate runs and ranks by
``max``/``count`` aggregates.  Measures the cost of incremental aggregate
maintenance plus per-prefix emission, against the same pattern without
ranking.
"""

from common import kleene_rank_query, run_cepr, run_unranked

UNRANKED_KLEENE = """
    PATTERN SEQ(HeartRate onset, HeartRate spikes+)
    WHERE onset.value > 100 AND spikes.value > 100
          AND spikes.value >= prev(spikes.value)
    WITHIN 50 EVENTS
    PARTITION BY patient
"""


def test_e6_kleene_ranked(benchmark, vitals_10k):
    events, registry = vitals_10k
    query = kleene_rank_query(window=50, k=5)
    result = benchmark.pedantic(
        lambda: run_cepr(query, events, registry), rounds=3, iterations=1
    )
    assert result.events == 10_000


def test_e6_kleene_unranked(benchmark, vitals_10k):
    events, registry = vitals_10k
    result = benchmark.pedantic(
        lambda: run_unranked(UNRANKED_KLEENE, events, registry),
        rounds=3,
        iterations=1,
    )
    assert result.events == 10_000
