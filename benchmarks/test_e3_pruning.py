"""E3 — Score-bound pruning effectiveness vs. k.

Tight schema domains (the generic workload declares exactly its value
range) let the pruner bound partial-run scores.  Expected shape: smaller k
prunes more runs; k=∞ (no LIMIT) disables pruning entirely; results are
identical either way (exactness is covered by the test suite).
"""

import pytest

from common import generic_rank_query, run_cepr

KS = [1, 10, 50]


@pytest.mark.parametrize("k", KS)
def test_e3_pruning_on(benchmark, generic_10k, k):
    events, registry = generic_10k
    query = generic_rank_query(window=50, k=k)
    result = benchmark.pedantic(
        lambda: run_cepr(query, events, registry, enable_pruning=True),
        rounds=3,
        iterations=1,
    )
    assert result.runs_pruned > 0


@pytest.mark.parametrize("k", [1])
def test_e3_pruning_off(benchmark, generic_10k, k):
    events, registry = generic_10k
    query = generic_rank_query(window=50, k=k)
    result = benchmark.pedantic(
        lambda: run_cepr(query, events, registry, enable_pruning=False),
        rounds=3,
        iterations=1,
    )
    assert result.runs_pruned == 0
