"""E14 — Checkpoint overhead: what crash-safe durability costs on E1.

Two configurations of the same ranked stock query over 10k events, fed
through an identical per-event loop (see ``run_checkpointed``):

* **no checkpoints** — the plain pipeline.
* **checkpoint every 1000 events** — 10 durable snapshots per run, each
  an engine snapshot + canonical JSON encode + fsync'd atomic rename.

The acceptance gate (also run as the CI benchmark smoke job): periodic
checkpointing at ``--checkpoint-every 1000`` costs at most 10% over the
unprotected run.  Denser intervals are reported by the harness but not
gated — checkpoint cost scales with frequency by design.
"""

import tempfile
from pathlib import Path

from common import run_checkpointed, stock_rank_query

QUERY = stock_rank_query(window=100, k=5)

#: multiplicative budget for checkpointing every 1000 events.
CHECKPOINT_OVERHEAD_BUDGET = 1.10
CHECKPOINT_EVERY = 1000


def test_e14_no_checkpoints(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_checkpointed(QUERY, events, registry),
        rounds=3,
        iterations=1,
    )
    assert result.emissions > 0
    assert result.extra["checkpoints"] == 0


def test_e14_checkpoint_every_1000(benchmark, stock_10k, tmp_path):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_checkpointed(
            QUERY,
            events,
            registry,
            checkpoint_every=CHECKPOINT_EVERY,
            checkpoint_dir=tmp_path / "ckpt",
        ),
        rounds=3,
        iterations=1,
    )
    assert result.emissions > 0
    assert result.extra["checkpoints"] == len(events) // CHECKPOINT_EVERY


def test_e14_checkpoint_overhead_within_budget(stock_10k):
    """Checkpointing every 1000 events stays within 10% of no checkpoints.

    Interleaved min-of-N with retries, exactly like the E13 gate: each
    attempt takes the minimum of three interleaved runs per configuration
    and the gate passes on the best attempt, so shared-runner noise can't
    fail the build spuriously.
    """
    events, registry = stock_10k
    best_ratio = float("inf")
    for _attempt in range(4):
        bare_runs, checkpointed_runs = [], []
        with tempfile.TemporaryDirectory() as tmp:
            for _round in range(3):
                bare_runs.append(
                    run_checkpointed(QUERY, events, registry).seconds
                )
                checkpointed_runs.append(
                    run_checkpointed(
                        QUERY,
                        events,
                        registry,
                        checkpoint_every=CHECKPOINT_EVERY,
                        checkpoint_dir=Path(tmp) / "ckpt",
                    ).seconds
                )
        best_ratio = min(best_ratio, min(checkpointed_runs) / min(bare_runs))
        if best_ratio <= CHECKPOINT_OVERHEAD_BUDGET:
            break
    assert best_ratio <= CHECKPOINT_OVERHEAD_BUDGET, (
        f"checkpointing every {CHECKPOINT_EVERY} events costs "
        f"{(best_ratio - 1) * 100:.1f}% over the unprotected run "
        f"(budget {(CHECKPOINT_OVERHEAD_BUDGET - 1) * 100:.0f}%)"
    )
