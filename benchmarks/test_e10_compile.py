"""E10 — Query compilation cost (parse → analyse → NFA) by clause complexity."""

import pytest

from repro.engine.compiler import compile_automaton
from repro.language.parser import parse_query
from repro.language.semantics import analyze

CORPUS = {
    "minimal": "PATTERN SEQ(A a)",
    "typical": """
        PATTERN SEQ(Buy b, Sell s)
        WHERE b.symbol == s.symbol AND s.price > b.price
        WITHIN 100 EVENTS
        PARTITION BY symbol
        RANK BY s.price - b.price DESC
        LIMIT 5
        EMIT ON WINDOW CLOSE
    """,
    "complex": """
        NAME everything
        PATTERN SEQ(A a, B bs+, NOT C c, D d, E es+)
        WHERE a.value > 1 AND bs.value > prev(bs.value)
              AND avg(bs.value) < d.value AND c.value > a.value
              AND es.value < d.value AND count(es) >= 1
              AND duration() < 500 AND abs(d.value - a.value) > 2
        WITHIN 200 EVENTS
        USING SKIP_TILL_ANY
        PARTITION BY group
        RANK BY max(es.value) DESC, count(bs) DESC, duration() ASC
        LIMIT 10
        EMIT EVERY 50 EVENTS
    """,
}


def compile_pipeline(text: str):
    return compile_automaton(analyze(parse_query(text)))


@pytest.mark.parametrize("size", list(CORPUS))
def test_e10_compile(benchmark, size):
    text = CORPUS[size]
    automaton = benchmark(compile_pipeline, text)
    assert automaton.stages


def test_e10_parse_only(benchmark):
    ast = benchmark(parse_query, CORPUS["complex"])
    assert ast.pattern
