"""E18 — Sanitizer cost: zero when disabled, measured when enabled.

CEPRSan's design claim is *zero-cost-when-disabled*: instrumentation is
attached only at engine construction, so an engine built with the
sanitizer off is structurally identical to one built before the
sanitizer existed — no flag checks, no wrappers, no tracked locks on the
hot path.  Two layers of evidence:

* **structural** — a disabled engine carries no sanitizer state at all
  (asserted attribute-by-attribute, which is deterministic and immune to
  timer noise);
* **timing** — the acceptance gate: a disabled-sanitizer run costs at
  most 2% over the seed pipeline, measured with the same interleaved
  min-of-N retry scheme E13 uses.  The enabled mode's cost is real and
  reported, not gated.
"""

import threading
import time

import pytest
from common import fresh_events, run_observability, stock_rank_query

from repro import CEPREngine
from repro.runtime.sharded import ShardedEngineRunner
from repro.sanitize import disable_sanitizer, enable_sanitizer
from repro.sanitize.core import refresh_from_env
from repro.sanitize.locks import TrackedLock

QUERY = stock_rank_query(window=100, k=5)

#: multiplicative budget for the disabled-sanitizer configuration.
DISABLED_OVERHEAD_BUDGET = 1.02


@pytest.fixture(autouse=True)
def _restore_sanitizer_switch():
    yield
    refresh_from_env()


def run_sanitized(events, registry):
    stream = fresh_events(events)
    engine = CEPREngine(registry=registry, sanitize=True)
    engine.sanitizer._mode = "log"
    handle = engine.register_query(QUERY, collect_results=False)
    started = time.perf_counter()
    engine.run(stream)
    elapsed = time.perf_counter() - started
    assert engine.sanitizer.total_trips == 0
    return elapsed, handle.metrics.emissions


class TestStructuralZeroCost:
    """The disabled configuration is bit-identical engine construction."""

    def test_disabled_engine_has_no_sanitizer_state(self):
        disable_sanitizer()
        engine = CEPREngine(sanitize=False)
        assert engine.sanitizer is None
        assert not hasattr(engine, "affinity")
        # Hot-path methods resolve on the class, not instance wrappers.
        for name in ("_dispatch", "advance_time", "flush", "snapshot",
                     "restore", "register_query", "unregister_query"):
            assert name not in vars(engine), name
        assert "assign" not in vars(engine._sequencer)

    def test_disabled_engine_identical_after_enable_cycle(self):
        """Construction after an enable/disable cycle stays clean."""
        enable_sanitizer()
        disable_sanitizer()
        engine = CEPREngine()
        assert engine.sanitizer is None
        assert "_dispatch" not in vars(engine)

    def test_disabled_sharded_runner_uses_plain_locks(self):
        disable_sanitizer()
        runner = ShardedEngineRunner(shards=2)
        assert not isinstance(runner._lock, TrackedLock)
        assert isinstance(runner._lock, type(threading.Lock()))
        for worker in runner._workers:
            assert worker.engine.sanitizer is None


def test_e18_sanitizer_disabled(benchmark, stock_10k):
    events, registry = stock_10k
    disable_sanitizer()
    result = benchmark.pedantic(
        lambda: run_observability(QUERY, events, registry),
        rounds=3,
        iterations=1,
    )
    assert result.emissions > 0


def test_e18_sanitizer_enabled(benchmark, stock_10k):
    """Enabled-mode cost: reported for the docs, not gated."""
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_sanitized(events, registry),
        rounds=3,
        iterations=1,
    )
    _elapsed, emissions = result
    assert emissions > 0


def test_e18_disabled_overhead_within_budget(stock_10k):
    """Disabled engines cost at most 2% extra after an enable cycle.

    The zero-cost claim has a structural half (asserted exactly above:
    a disabled engine carries no sanitizer state) and a residue half,
    gated here: *enabling the sanitizer somewhere in the process* —
    building and running a fully sanitized engine — must leave nothing
    behind (module state, default lock graph, logger wiring) that taxes
    disabled engines constructed afterwards.  Interleaved min-of-N with
    retries (E13's scheme): each attempt compares the minimum of three
    runs before the sanitized cycle against the minimum of three after,
    and the gate passes on the best attempt.
    """
    events, registry = stock_10k
    disable_sanitizer()
    for _warmup in range(2):  # settle allocator/caches before timing
        run_observability(QUERY, events, registry)
    before_runs, after_runs = [], []
    best_ratio = float("inf")
    for _attempt in range(6):
        disable_sanitizer()
        for _round in range(3):
            before_runs.append(
                run_observability(QUERY, events, registry).seconds
            )
        enable_sanitizer()
        run_sanitized(events, registry)
        disable_sanitizer()
        for _round in range(3):
            after_runs.append(
                run_observability(QUERY, events, registry).seconds
            )
        # Pool minima across attempts: both floors converge to the true
        # per-configuration cost as noise spikes wash out.
        best_ratio = min(best_ratio, min(after_runs) / min(before_runs))
        if best_ratio <= DISABLED_OVERHEAD_BUDGET:
            break
    assert best_ratio <= DISABLED_OVERHEAD_BUDGET, (
        f"disabled-sanitizer engines cost {(best_ratio - 1) * 100:.1f}% "
        f"more after a sanitized cycle ran in-process "
        f"(budget {(DISABLED_OVERHEAD_BUDGET - 1) * 100:.0f}%)"
    )
