"""Benchmark fixtures: pre-built event streams shared across experiments."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import generic_stream, stock_stream, traffic_stream, vitals_stream  # noqa: E402


@pytest.fixture(scope="session")
def stock_20k():
    return stock_stream(20_000)


@pytest.fixture(scope="session")
def stock_10k():
    return stock_stream(10_000)


@pytest.fixture(scope="session")
def generic_10k():
    return generic_stream(10_000)


@pytest.fixture(scope="session")
def vitals_10k():
    return vitals_stream(10_000)


@pytest.fixture(scope="session")
def traffic_10k():
    # trailing-negation pendings make this the heaviest workload; 6k events
    # keep the suite quick while still spanning several incidents.
    return traffic_stream(6_000)
