"""E19 — Telemetry cost: the PR-8 observability layer on the hot path.

The second-generation telemetry layer makes three claims about cost:

* **Cost accounting is free until read.** :class:`CostAccount` records
  are views over counters the engine already maintains — building them
  (the ``cepr top`` sampling path) touches no hot-path state.
* **A disarmed flight recorder is one ``None`` check.** Engines capture
  :func:`~repro.observability.flightrec.current` at construction; with
  no recorder installed the per-push tap is a single identity test.
* **An armed flight recorder is cheap enough to leave on.** One compact
  ``json.dumps`` per emission plus a periodic engine snapshot.

Two gates, both against the same bare pipeline (profiling off, recorder
unarmed), measured with E13's interleaved min-of-N retry scheme:

* **disabled** — telemetry *surfaced but disarmed*: cost accounts and a
  pressure sample polled every 1000 events, recorder not installed.
  Budget: 2%.
* **enabled** — the full layer armed: flight recorder installed, polled
  cost accounts and pressure, per-emission ring records.  Budget: 5%.
"""

import time

import pytest
from common import fresh_events, stock_rank_query

from repro import CEPREngine
from repro.observability.cost import rank_accounts
from repro.observability.flightrec import (
    install_flight_recorder,
    uninstall_flight_recorder,
)
from repro.observability.pressure import PressureAssessor, PressureSample

QUERY = stock_rank_query(window=100, k=5)

#: multiplicative budgets over the bare pipeline.
DISABLED_OVERHEAD_BUDGET = 1.02
ENABLED_OVERHEAD_BUDGET = 1.05

#: how often the polling configurations sample accounts and pressure
#: (the cadence a `cepr top --watch` against a live engine implies).
POLL_EVERY = 1000


@pytest.fixture(autouse=True)
def _disarm_recorder():
    uninstall_flight_recorder()
    yield
    uninstall_flight_recorder()


def run_bare(events, registry):
    """The baseline: profiling off, no recorder, nothing polled."""
    stream = fresh_events(events)
    engine = CEPREngine(registry=registry, enable_profiling=False)
    handle = engine.register_query(QUERY, collect_results=False)
    started = time.perf_counter()
    engine.run(stream)
    elapsed = time.perf_counter() - started
    assert handle.metrics.emissions > 0
    return elapsed


def run_polled(events, registry, armed=False, byte_budget=256 * 1024):
    """Telemetry surfaced: accounts + pressure polled; ring optionally armed."""
    stream = fresh_events(events)
    if armed:
        install_flight_recorder(byte_budget=byte_budget)
    try:
        engine = CEPREngine(registry=registry, enable_profiling=False)
        handle = engine.register_query(QUERY, collect_results=False)
        assessor = PressureAssessor()
        started = time.perf_counter()
        for index, event in enumerate(stream):
            engine.push(event)
            if index % POLL_EVERY == 0:
                rank_accounts(engine.cost_accounts().values())
                assessor.observe(PressureSample())
        engine.flush()
        elapsed = time.perf_counter() - started
    finally:
        if armed:
            uninstall_flight_recorder()
    assert handle.metrics.emissions > 0
    return elapsed


def test_e19_bare_baseline(benchmark, stock_10k):
    events, registry = stock_10k
    benchmark.pedantic(
        lambda: run_bare(events, registry), rounds=3, iterations=1
    )


def test_e19_telemetry_disabled(benchmark, stock_10k):
    events, registry = stock_10k
    benchmark.pedantic(
        lambda: run_polled(events, registry), rounds=3, iterations=1
    )


def test_e19_telemetry_enabled(benchmark, stock_10k):
    events, registry = stock_10k
    benchmark.pedantic(
        lambda: run_polled(events, registry, armed=True),
        rounds=3,
        iterations=1,
    )


def _gate(events, registry, budget, **config):
    """Interleaved min-of-N with retries (see E13 for the rationale)."""
    best_ratio = float("inf")
    for _attempt in range(4):
        bare_runs, telemetry_runs = [], []
        for _round in range(3):
            bare_runs.append(run_bare(events, registry))
            telemetry_runs.append(run_polled(events, registry, **config))
        best_ratio = min(best_ratio, min(telemetry_runs) / min(bare_runs))
        if best_ratio <= budget:
            break
    return best_ratio


def test_e19_disabled_overhead_within_budget(stock_10k):
    """Polled-but-disarmed telemetry stays within 2% of the bare pipeline."""
    events, registry = stock_10k
    ratio = _gate(events, registry, DISABLED_OVERHEAD_BUDGET)
    assert ratio <= DISABLED_OVERHEAD_BUDGET, (
        f"disarmed telemetry costs {(ratio - 1) * 100:.1f}% over the bare "
        f"pipeline (budget {(DISABLED_OVERHEAD_BUDGET - 1) * 100:.0f}%)"
    )


def test_e19_enabled_overhead_within_budget(stock_10k):
    """The armed flight recorder plus polling stays within 5%."""
    events, registry = stock_10k
    ratio = _gate(events, registry, ENABLED_OVERHEAD_BUDGET, armed=True)
    assert ratio <= ENABLED_OVERHEAD_BUDGET, (
        f"armed telemetry costs {(ratio - 1) * 100:.1f}% over the bare "
        f"pipeline (budget {(ENABLED_OVERHEAD_BUDGET - 1) * 100:.0f}%)"
    )
