"""Ablation — cost of the bounded-lateness reordering buffer.

The LatenessBuffer sits in front of every push when `max_lateness` is set;
this ablation measures its overhead on an already-ordered stream (pure
bookkeeping cost) so users know the price of turning it on defensively.
"""

import pytest

from common import fresh_events, stock_rank_query
from repro import CEPREngine


def run_engine(events, registry, max_lateness):
    engine = CEPREngine(registry=registry, max_lateness=max_lateness)
    engine.register_query(stock_rank_query(window=100, k=5), collect_results=False)
    engine.run(fresh_events(events))
    return engine


@pytest.mark.parametrize(
    "max_lateness", [None, 0.0, 5.0], ids=["off", "zero", "5s"]
)
def test_ablation_lateness_buffer(benchmark, stock_10k, max_lateness):
    events, registry = stock_10k
    engine = benchmark.pedantic(
        lambda: run_engine(events, registry, max_lateness), rounds=3, iterations=1
    )
    assert engine.events_pushed == 10_000
