"""E1 — Ranking overhead: CEPR ranked query vs. plain (unranked) CEP.

Same pattern, same stream; the only difference is the RANK BY / LIMIT /
tumbling-emission machinery.  Expected shape: ranking adds a small constant
factor (<2x) over unranked detection.
"""

from common import run_cepr_raw, run_unranked, stock_rank_query

UNRANKED_QUERY = """
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 100 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY symbol
"""


def test_e1_unranked_cep(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_unranked(UNRANKED_QUERY, events, registry),
        rounds=3,
        iterations=1,
    )
    assert result.matches > 0


def test_e1_cepr_ranked(benchmark, stock_10k):
    events, registry = stock_10k
    query = stock_rank_query(window=100, k=5)
    result = benchmark.pedantic(
        lambda: run_cepr_raw(query, events, registry), rounds=3, iterations=1
    )
    assert result.emissions > 0
