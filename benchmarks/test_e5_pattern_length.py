"""E5 — Pattern-length scaling: SEQ(2) … SEQ(5).

Longer sequences mean more live partial runs per match attempt.  Expected
shape: cost grows with pattern length, sharply under SKIP_TILL_ANY (the
run tree branches at every stage), mildly under SKIP_TILL_NEXT.
"""

import pytest

from common import generic_rank_query, generic_stream, run_cepr

LENGTHS = [2, 3, 4, 5]


@pytest.fixture(scope="module")
def wide_generic():
    # alphabet of 6 so even SEQ(5) has all its types
    return generic_stream(8_000, alphabet=6)


@pytest.mark.parametrize("length", LENGTHS)
def test_e5_length_skip_till_next(benchmark, wide_generic, length):
    events, registry = wide_generic
    query = generic_rank_query(
        window=60, k=5, strategy="SKIP_TILL_NEXT", length=length
    )
    result = benchmark.pedantic(
        lambda: run_cepr(query, events, registry), rounds=3, iterations=1
    )
    assert result.events == 8_000


@pytest.mark.parametrize("length", [2, 3, 4])
def test_e5_length_skip_till_any(benchmark, wide_generic, length):
    events, registry = wide_generic
    query = generic_rank_query(
        window=60, k=5, strategy="SKIP_TILL_ANY", length=length
    )
    result = benchmark.pedantic(
        lambda: run_cepr(query, events, registry), rounds=3, iterations=1
    )
    assert result.events == 8_000
