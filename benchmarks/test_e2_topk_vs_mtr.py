"""E2 — Integrated top-k vs. match-then-rank, sweeping window size.

Match count grows super-linearly with the window under SKIP_TILL_ANY; the
integrated ranker keeps a bounded heap per epoch and prunes partial runs
whose score bound is beaten, while match-then-rank materialises and sorts
everything.  Expected shape: integrated wins, and the gap widens with the
window.  Both sides run raw operator loops (no engine facade), so the
difference isolates the ranking algorithms.
"""

import pytest

from common import generic_rank_query, run_cepr_raw, run_match_then_rank

WINDOWS = [25, 100, 400]


@pytest.mark.parametrize("window", WINDOWS)
def test_e2_integrated(benchmark, generic_10k, window):
    events, registry = generic_10k
    query = generic_rank_query(window=window, k=5)
    result = benchmark.pedantic(
        lambda: run_cepr_raw(query, events, registry), rounds=3, iterations=1
    )
    assert result.emissions > 0


@pytest.mark.parametrize("window", WINDOWS)
def test_e2_match_then_rank(benchmark, generic_10k, window):
    events, registry = generic_10k
    query = generic_rank_query(window=window, k=5)
    result = benchmark.pedantic(
        lambda: run_match_then_rank(query, events, registry),
        rounds=3,
        iterations=1,
    )
    assert result.extra["matches_buffered"] >= result.matches
