"""E8 — Multi-query scale-out: routing, broadcast, and shared execution.

Part 1 (routing vs broadcast): N concurrent queries over disjoint type
pairs.  With the type-indexed router each event reaches exactly the
queries that can use it; with broadcast dispatch (the router bypassed)
every event is offered to all N queries, which reject irrelevant types
one by one.  Expected shape: routed throughput degrades only with the
fraction of the stream that is relevant, while broadcast throughput
degrades linearly in N on top of that.

Part 2 (shared vs independent execution): N queries instantiated from 4
templates over one stock stream — the serving-fleet shape where many
subscribers register variations of the same alert.  Independent
execution pays the full operator chain per (query, event) pair; shared
execution evaluates each distinct predicate once per event, shares NFA
prefix states across same-template queries, and skips quiescent queries
the event provably cannot affect.  The acceptance gate requires >= 3x
throughput at 64 queries (``test_e8_shared_speedup_gate``, run in CI's
benchmark-smoke job with rising sharing counters as a sanity floor).
"""

import pytest

from common import fresh_events, run_multi_query
from repro.workloads.generic import GenericWorkload
from repro.workloads.stock import StockWorkload


def disjoint_queries(n: int) -> list[str]:
    """Each query watches its own pair of letters (13 pairs available)."""
    queries = []
    for i in range(n):
        first = chr(ord("A") + (2 * i) % 26)
        second = chr(ord("A") + (2 * i + 1) % 26)
        queries.append(
            f"""
            PATTERN SEQ({first} a, {second} b)
            WITHIN 50 EVENTS
            RANK BY b.value - a.value DESC
            LIMIT 3
            EMIT ON WINDOW CLOSE
            """
        )
    return queries


def overlapping_queries(n: int) -> list[str]:
    """Every query watches the same two letters with a different threshold."""
    return [
        f"""
        PATTERN SEQ(A a, B b)
        WHERE b.value - a.value > {i % 50}
        WITHIN 50 EVENTS
        RANK BY b.value - a.value DESC
        LIMIT 3
        EMIT ON WINDOW CLOSE
        """
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def full_alphabet_stream():
    workload = GenericWorkload(seed=12, alphabet_size=26)
    return list(workload.events(10_000)), workload.registry()


@pytest.mark.parametrize("n", [1, 4, 13])
def test_e8_disjoint(benchmark, full_alphabet_stream, n):
    events, registry = full_alphabet_stream
    queries = disjoint_queries(n)
    result = benchmark.pedantic(
        lambda: run_multi_query(queries, fresh_events(events), registry),
        rounds=3,
        iterations=1,
    )
    assert result.events == 10_000


@pytest.mark.parametrize("n", [1, 4, 13])
def test_e8_broadcast(benchmark, full_alphabet_stream, n):
    events, registry = full_alphabet_stream
    queries = disjoint_queries(n)
    result = benchmark.pedantic(
        lambda: run_multi_query(
            queries, fresh_events(events), registry, broadcast=True
        ),
        rounds=3,
        iterations=1,
    )
    assert result.events == 10_000


# ---------------------------------------------------------------------------
# shared vs independent execution over 4 query templates
# ---------------------------------------------------------------------------

#: Stage-0 volume thresholds, one pool per template: selective enough
#: that most events leave most queries quiescent, drawn from 4 values so
#: same-template queries collapse onto shared gate entries.
_THRESHOLDS = (975, 985, 990, 995)


def template_queries(n: int) -> list[str]:
    """``n`` queries cycling over 4 stock-alert templates.

    Instance ``i`` of a template varies only its threshold (4-value pool)
    and LIMIT, so the family exercises every sharing layer: identical
    stage-0 chains intern into one prefix state, thresholds dedupe in the
    predicate index, and the selective gates make the quiescent-skip
    path the common case — the realistic serving-fleet profile.
    """
    templates = [
        # profit pairs, gated on unusually large Buy orders
        lambda k, limit: f"""
            PATTERN SEQ(Buy b, Sell s)
            WHERE b.volume > {k} AND b.symbol == s.symbol AND s.price > b.price
            WITHIN 20 EVENTS
            PARTITION BY symbol
            RANK BY s.price - b.price DESC
            LIMIT {limit}
            EMIT ON WINDOW CLOSE
            """,
        # sell-off then rebound
        lambda k, limit: f"""
            PATTERN SEQ(Sell a, Buy c)
            WHERE a.volume > {k} AND a.symbol == c.symbol AND c.price < a.price
            WITHIN 20 EVENTS
            PARTITION BY symbol
            RANK BY a.price - c.price DESC
            LIMIT {limit}
            EMIT ON WINDOW CLOSE
            """,
        # double large buys
        lambda k, limit: f"""
            PATTERN SEQ(Buy b, Buy c)
            WHERE b.volume > {k} AND c.volume > {k} AND b.symbol == c.symbol
            WITHIN 20 EVENTS
            PARTITION BY symbol
            RANK BY c.price DESC
            LIMIT {limit}
            EMIT ON WINDOW CLOSE
            """,
        # large sell followed by an even larger sell
        lambda k, limit: f"""
            PATTERN SEQ(Sell a, Sell d)
            WHERE a.volume > {k} AND d.volume > a.volume AND a.symbol == d.symbol
            WITHIN 20 EVENTS
            PARTITION BY symbol
            RANK BY d.volume DESC
            LIMIT {limit}
            EMIT ON WINDOW CLOSE
            """,
    ]
    queries = []
    for i in range(n):
        template = templates[i % len(templates)]
        threshold = _THRESHOLDS[(i // len(templates)) % len(_THRESHOLDS)]
        queries.append(template(threshold, 1 + i % 3))
    return queries


@pytest.fixture(scope="module")
def stock_serving_stream():
    workload = StockWorkload(seed=2016)
    return list(workload.events(10_000)), workload.registry()


@pytest.mark.parametrize("n", [1, 8, 64])
@pytest.mark.parametrize("shared", [True, False], ids=["shared", "independent"])
def test_e8_template_scaling(benchmark, stock_serving_stream, n, shared):
    """The scaling curve: per-event cost vs query count, both modes."""
    events, registry = stock_serving_stream
    queries = template_queries(n)
    result = benchmark.pedantic(
        lambda: run_multi_query(
            queries, fresh_events(events), registry, shared=shared
        ),
        rounds=3,
        iterations=1,
    )
    assert result.events == 10_000
    benchmark.extra_info["per_event_us"] = result.extra["per_event_us"]
    if shared:
        benchmark.extra_info["predicate_evals_saved"] = result.extra[
            "predicate_evals_saved"
        ]
        benchmark.extra_info["events_gated"] = result.extra["events_gated"]


def test_e8_shared_speedup_gate(stock_serving_stream):
    """Acceptance gate: >= 3x at 64 queries over 4 templates.

    Best-of-three per mode to shake scheduler noise; also asserts the
    sharing counters actually moved (the speedup must come from sharing,
    not from measurement luck) and that both modes did the same work.
    """
    events, registry = stock_serving_stream
    queries = template_queries(64)

    def best(shared):
        runs = [
            run_multi_query(queries, fresh_events(events), registry, shared=shared)
            for _ in range(3)
        ]
        return min(runs, key=lambda r: r.seconds)

    shared_run = best(True)
    independent_run = best(False)
    assert shared_run.matches == independent_run.matches
    assert shared_run.emissions == independent_run.emissions

    counters = shared_run.extra
    assert counters["distinct_predicates"] > 0
    assert counters["predicate_evals_saved"] > 0
    assert counters["prefix_states_shared"] > 0
    assert counters["events_gated"] > 0

    speedup = independent_run.seconds / shared_run.seconds
    assert speedup >= 3.0, (
        f"shared execution speedup {speedup:.2f}x below the 3x gate "
        f"(shared {shared_run.seconds:.3f}s vs independent "
        f"{independent_run.seconds:.3f}s; counters {counters})"
    )


@pytest.mark.parametrize("n", [1, 4, 13])
def test_e8_overlapping(benchmark, full_alphabet_stream, n):
    events, registry = full_alphabet_stream
    queries = overlapping_queries(n)
    result = benchmark.pedantic(
        lambda: run_multi_query(queries, fresh_events(events), registry),
        rounds=3,
        iterations=1,
    )
    assert result.events == 10_000
