"""E8 — Multi-query scale-out: type routing vs. broadcast dispatch.

N concurrent queries over disjoint type pairs.  With the type-indexed
router each event reaches exactly the queries that can use it; with
broadcast dispatch (the router bypassed) every event is offered to all N
queries, which reject irrelevant types one by one.  Expected shape: routed
throughput degrades only with the fraction of the stream that is relevant,
while broadcast throughput degrades linearly in N on top of that.
"""

import pytest

from common import fresh_events, run_multi_query
from repro.workloads.generic import GenericWorkload


def disjoint_queries(n: int) -> list[str]:
    """Each query watches its own pair of letters (13 pairs available)."""
    queries = []
    for i in range(n):
        first = chr(ord("A") + (2 * i) % 26)
        second = chr(ord("A") + (2 * i + 1) % 26)
        queries.append(
            f"""
            PATTERN SEQ({first} a, {second} b)
            WITHIN 50 EVENTS
            RANK BY b.value - a.value DESC
            LIMIT 3
            EMIT ON WINDOW CLOSE
            """
        )
    return queries


def overlapping_queries(n: int) -> list[str]:
    """Every query watches the same two letters with a different threshold."""
    return [
        f"""
        PATTERN SEQ(A a, B b)
        WHERE b.value - a.value > {i % 50}
        WITHIN 50 EVENTS
        RANK BY b.value - a.value DESC
        LIMIT 3
        EMIT ON WINDOW CLOSE
        """
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def full_alphabet_stream():
    workload = GenericWorkload(seed=12, alphabet_size=26)
    return list(workload.events(10_000)), workload.registry()


@pytest.mark.parametrize("n", [1, 4, 13])
def test_e8_disjoint(benchmark, full_alphabet_stream, n):
    events, registry = full_alphabet_stream
    queries = disjoint_queries(n)
    result = benchmark.pedantic(
        lambda: run_multi_query(queries, fresh_events(events), registry),
        rounds=3,
        iterations=1,
    )
    assert result.events == 10_000


@pytest.mark.parametrize("n", [1, 4, 13])
def test_e8_broadcast(benchmark, full_alphabet_stream, n):
    events, registry = full_alphabet_stream
    queries = disjoint_queries(n)
    result = benchmark.pedantic(
        lambda: run_multi_query(
            queries, fresh_events(events), registry, broadcast=True
        ),
        rounds=3,
        iterations=1,
    )
    assert result.events == 10_000


@pytest.mark.parametrize("n", [1, 4, 13])
def test_e8_overlapping(benchmark, full_alphabet_stream, n):
    events, registry = full_alphabet_stream
    queries = overlapping_queries(n)
    result = benchmark.pedantic(
        lambda: run_multi_query(queries, fresh_events(events), registry),
        rounds=3,
        iterations=1,
    )
    assert result.events == 10_000
