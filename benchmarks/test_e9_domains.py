"""E9 — End-to-end demo scenarios (finance / health / transportation).

One realistic query per demo domain, each over its generated workload —
the closest thing to the demo paper's live scenarios, measured as
sustained events/second.
"""

from common import kleene_rank_query, run_cepr, stock_rank_query

TRAFFIC_QUERY = """
    PATTERN SEQ(SpeedReport free, SpeedReport slowdown+, NOT Clear cleared)
    WHERE free.speed > 70 AND slowdown.speed < 50
          AND slowdown.speed <= prev(slowdown.speed)
    WITHIN 30 SECONDS
    PARTITION BY segment
    RANK BY free.speed - last(slowdown.speed) DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""


def test_e9_finance(benchmark, stock_10k):
    events, registry = stock_10k
    query = stock_rank_query(window=100, k=5)
    result = benchmark.pedantic(
        lambda: run_cepr(query, events, registry), rounds=3, iterations=1
    )
    assert result.matches > 0


def test_e9_health(benchmark, vitals_10k):
    events, registry = vitals_10k
    query = kleene_rank_query(window=60, k=5)
    result = benchmark.pedantic(
        lambda: run_cepr(query, events, registry), rounds=3, iterations=1
    )
    assert result.events == 10_000


def test_e9_transportation(benchmark, traffic_10k):
    events, registry = traffic_10k
    result = benchmark.pedantic(
        lambda: run_cepr(TRAFFIC_QUERY, events, registry), rounds=3, iterations=1
    )
    assert result.events == len(events)
