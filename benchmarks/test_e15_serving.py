"""E15 — Serving overhead: what the TCP frame protocol costs over E1.

Two paths push the same 10k-event ranked stock workload through the same
engine configuration:

* **embedded** — ``CEPREngine.push_batch`` in-process, batches of 512.
* **remote** — a real ``cepr serve`` stack (asyncio TCP server + threaded
  runner) driven through :class:`~repro.serve.client.CEPRClient` with the
  same batch size, ending with a ``sync`` barrier so every event has been
  processed before the clock stops.

The remote path pays for JSON frame encoding, loopback TCP round trips,
and the ingest-queue handoff, so it is *expected* to be slower; the gate
only bounds the multiple.  The acceptance budget (run in CI's
benchmark-smoke job) is **10x**: a loopback client pushing 512-event
batches must stay within an order of magnitude of the embedded engine.
In practice the measured multiple is far lower; the slack absorbs shared
CI runners, not design regressions.  Like the E13/E14 gates, the check is
interleaved min-of-N with retries so scheduler noise cannot fail a build
spuriously.
"""

import threading
import time

from common import RunResult, fresh_events, stock_rank_query

from repro.runtime.engine import CEPREngine
from repro.serve.client import CEPRClient
from repro.serve.server import CEPRServer

QUERY = stock_rank_query(window=100, k=5)

#: multiplicative budget for the remote path over the embedded path.
SERVING_OVERHEAD_BUDGET = 10.0
BATCH = 512


def run_embedded(query: str, events, registry=None) -> RunResult:
    """Ground truth: the same batched loop, no network in the way."""
    stream = fresh_events(events)
    engine = CEPREngine(registry=registry)
    handle = engine.register_query(query, collect_results=False)
    started = time.perf_counter()
    for i in range(0, len(stream), BATCH):
        engine.push_batch(stream[i : i + BATCH])
    engine.flush()
    elapsed = time.perf_counter() - started
    return RunResult(
        seconds=elapsed,
        events=len(stream),
        matches=handle.metrics.matches,
        emissions=handle.metrics.emissions,
    )


def run_remote(query: str, events, registry=None) -> RunResult:
    """The same stream through a real TCP server on loopback.

    Server startup/teardown happen outside the timed region; the clock
    covers push_batch frames plus the final ``sync`` barrier, i.e. the
    steady-state serving cost a long-lived deployment actually pays.
    """
    import asyncio

    stream = fresh_events(events)
    server = CEPRServer(queries={"bench": query}, port=0)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: asyncio.run(
            server.serve(on_ready=lambda _: ready.set())
        ),
        daemon=True,
    )
    thread.start()
    assert ready.wait(timeout=10.0), "server did not start"
    try:
        with CEPRClient(port=server.bound_port, timeout=60.0) as client:
            started = time.perf_counter()
            for i in range(0, len(stream), BATCH):
                client.push_batch(stream[i : i + BATCH])
            ingested = client.sync()
            elapsed = time.perf_counter() - started
            stats = client.stats()
    finally:
        server.request_drain_threadsafe()
        thread.join(timeout=15.0)
        assert not thread.is_alive(), "server did not drain in time"
    assert ingested == len(stream)
    metrics = {
        sample["name"]: sample
        for sample in stats["metrics"]["metrics"]
    }
    emissions = int(
        metrics.get("serve_emissions_fanned_out_total", {}).get("value", 0)
    )
    return RunResult(
        seconds=elapsed,
        events=len(stream),
        emissions=emissions,
        extra={"ingested": ingested},
    )


def test_e15_embedded_baseline(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_embedded(QUERY, events, registry),
        rounds=3,
        iterations=1,
    )
    assert result.matches > 0


def test_e15_remote_roundtrip(benchmark, stock_10k):
    events, registry = stock_10k
    result = benchmark.pedantic(
        lambda: run_remote(QUERY, events, registry),
        rounds=3,
        iterations=1,
    )
    assert result.extra["ingested"] == len(events)


def test_e15_serving_overhead_within_budget(stock_10k):
    """Loopback serving stays within 10x of the embedded engine.

    Interleaved min-of-N with retries, exactly like the E13/E14 gates:
    each attempt takes the minimum of three interleaved runs per path and
    the gate passes on the best attempt.
    """
    events, registry = stock_10k
    best_ratio = float("inf")
    for _attempt in range(4):
        embedded_runs, remote_runs = [], []
        for _round in range(3):
            embedded_runs.append(run_embedded(QUERY, events, registry).seconds)
            remote_runs.append(run_remote(QUERY, events, registry).seconds)
        best_ratio = min(best_ratio, min(remote_runs) / min(embedded_runs))
        if best_ratio <= SERVING_OVERHEAD_BUDGET:
            break
    assert best_ratio <= SERVING_OVERHEAD_BUDGET, (
        f"remote serving costs {best_ratio:.1f}x the embedded engine "
        f"(budget {SERVING_OVERHEAD_BUDGET:.0f}x)"
    )
