"""Experiment harness: regenerates every experiment table (E1–E10).

Run all experiments::

    python benchmarks/harness.py

or a subset::

    python benchmarks/harness.py E2 E3

Each experiment prints the rows/series EXPERIMENTS.md records.  Absolute
numbers are Python-on-this-laptop scale; the *shapes* (who wins, how the
gap moves with the swept parameter) are what the reproduction claims.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import (  # noqa: E402
    fresh_events,
    generic_rank_query,
    generic_stream,
    kleene_rank_query,
    run_cepr,
    run_cepr_raw,
    run_match_then_rank,
    run_multi_query,
    run_unranked,
    stock_rank_query,
    stock_stream,
    traffic_stream,
    vitals_stream,
)
from test_e7_emission import query_for as e7_query_for  # noqa: E402
from test_e8_multiquery import disjoint_queries, overlapping_queries  # noqa: E402
from test_e9_domains import TRAFFIC_QUERY  # noqa: E402
from test_e10_compile import CORPUS, compile_pipeline  # noqa: E402

from repro import CEPREngine  # noqa: E402


def header(experiment_id: str, title: str) -> None:
    print(f"\n=== {experiment_id}: {title} " + "=" * max(0, 50 - len(title)))


def row(*cells) -> None:
    print("  " + "  ".join(f"{c:>14}" if not isinstance(c, str) else f"{c:>14}" for c in cells))


def fmt(value: float, digits: int = 1) -> str:
    return f"{value:,.{digits}f}"


def e1() -> None:
    header("E1", "ranking overhead vs. unranked CEP (stock, 10k events)")
    events, registry = stock_stream(10_000)
    unranked_query = """
        PATTERN SEQ(Buy b, Sell s)
        WHERE b.symbol == s.symbol AND s.price > b.price
        WITHIN 100 EVENTS
        USING SKIP_TILL_ANY
        PARTITION BY symbol
    """
    row("system", "events/s", "matches", "emissions")
    unranked = run_unranked(unranked_query, events, registry)
    row("unranked CEP", fmt(unranked.events_per_second, 0), unranked.matches, "-")
    for k in (1, 5, 25):
        ranked = run_cepr_raw(stock_rank_query(window=100, k=k), events, registry)
        row(
            f"CEPR k={k}",
            fmt(ranked.events_per_second, 0),
            ranked.matches,
            ranked.emissions,
        )
    ranked = run_cepr_raw(stock_rank_query(window=100, k=5), events, registry)
    print(
        f"  overhead at k=5: {unranked.events_per_second / ranked.events_per_second:.2f}x"
        " (expected < 2x)"
    )


def e2() -> None:
    header("E2", "integrated top-k vs. match-then-rank (generic, 10k events)")
    events, registry = generic_stream(10_000)
    row("window", "CEPR ms", "MTR ms", "speedup", "MTR buffered")
    for window in (25, 50, 100, 200, 400):
        query = generic_rank_query(window=window, k=5)
        integrated = run_cepr_raw(query, events, registry)
        baseline = run_match_then_rank(query, events, registry)
        row(
            window,
            fmt(integrated.seconds * 1000),
            fmt(baseline.seconds * 1000),
            f"{baseline.seconds / integrated.seconds:.2f}x",
            baseline.extra["matches_buffered"],
        )


def e3() -> None:
    header("E3", "pruning effectiveness vs. k (generic, 10k events)")
    events, registry = generic_stream(10_000)
    row("k", "time ms", "runs kept", "runs pruned", "peak live")
    for k in (1, 5, 10, 50, None):
        query = generic_rank_query(window=50, k=k)
        result = run_cepr_raw(query, events, registry, enable_pruning=True)
        row(
            k if k is not None else "inf",
            fmt(result.seconds * 1000),
            result.runs_created - result.runs_pruned,
            result.runs_pruned,
            result.peak_live_runs,
        )
    off = run_cepr_raw(
        generic_rank_query(window=50, k=1), events, registry, enable_pruning=False
    )
    row("k=1, no prune", fmt(off.seconds * 1000), off.runs_created, 0, off.peak_live_runs)


def e4() -> None:
    header("E4", "selection-strategy cost (generic SEQ(3), 10k events)")
    events, registry = generic_stream(10_000)
    row("strategy", "time ms", "runs", "matches")
    for strategy in ("STRICT", "SKIP_TILL_NEXT", "SKIP_TILL_ANY"):
        query = generic_rank_query(window=40, k=5, strategy=strategy, length=3)
        result = run_cepr_raw(query, events, registry)
        row(strategy, fmt(result.seconds * 1000), result.runs_created, result.matches)
    print("  selectivity sweep (SKIP_TILL_ANY, SEQ(2), 5k events):")
    row("alphabet", "time ms", "matches")
    for alphabet in (2, 4, 8, 16):
        events_a, registry_a = generic_stream(5_000, alphabet=alphabet)
        query = generic_rank_query(window=40, k=5, strategy="SKIP_TILL_ANY", length=2)
        result = run_cepr_raw(query, events_a, registry_a)
        row(alphabet, fmt(result.seconds * 1000), result.matches)


def e5() -> None:
    header("E5", "pattern-length scaling (generic, 8k events)")
    events, registry = generic_stream(8_000, alphabet=6)
    row("length", "NEXT ms", "ANY ms")
    for length in (2, 3, 4, 5):
        next_result = run_cepr_raw(
            generic_rank_query(window=60, k=5, strategy="SKIP_TILL_NEXT", length=length),
            events,
            registry,
        )
        any_result = run_cepr_raw(
            generic_rank_query(window=60, k=5, strategy="SKIP_TILL_ANY", length=length),
            events,
            registry,
        )
        row(length, fmt(next_result.seconds * 1000), fmt(any_result.seconds * 1000))


def e6() -> None:
    header("E6", "Kleene + aggregate scoring (vitals, 10k events)")
    events, registry = vitals_stream(10_000)
    unranked_query = """
        PATTERN SEQ(HeartRate onset, HeartRate spikes+)
        WHERE onset.value > 100 AND spikes.value > 100
              AND spikes.value >= prev(spikes.value)
        WITHIN 50 EVENTS
        PARTITION BY patient
    """
    row("system", "time ms", "matches")
    unranked = run_unranked(unranked_query, events, registry)
    row("unranked", fmt(unranked.seconds * 1000), unranked.matches)
    for window in (25, 50, 100):
        ranked = run_cepr_raw(kleene_rank_query(window=window, k=5), events, registry)
        row(f"ranked w={window}", fmt(ranked.seconds * 1000), ranked.matches)


def e7() -> None:
    header("E7", "emission policies (stock, 10k events)")
    events, registry = stock_stream(10_000)
    row("policy", "time ms", "emissions", "first@seq")
    for policy in ("window_close", "periodic", "eager"):
        stream = fresh_events(events)
        engine = CEPREngine(registry=registry)
        handle = engine.register_query(e7_query_for(policy))
        first_emission_seq = None
        started = time.perf_counter()
        for event in stream:
            if engine.push(event) and first_emission_seq is None:
                first_emission_seq = event.seq
        engine.flush()
        elapsed = time.perf_counter() - started
        row(
            policy,
            fmt(elapsed * 1000),
            handle.metrics.emissions,
            first_emission_seq if first_emission_seq is not None else "flush",
        )


def e8() -> None:
    header("E8", "multi-query scale-out (generic 26-type, 10k events)")
    from repro.workloads.generic import GenericWorkload

    workload = GenericWorkload(seed=12, alphabet_size=26)
    events = list(workload.events(10_000))
    registry = workload.registry()
    row("N queries", "routed ev/s", "broadcast ev/s", "overlap ev/s")
    for n in (1, 2, 4, 8, 13):
        routed = run_multi_query(disjoint_queries(n), events, registry)
        broadcast = run_multi_query(
            disjoint_queries(n), events, registry, broadcast=True
        )
        overlapping = run_multi_query(overlapping_queries(n), events, registry)
        row(
            n,
            fmt(routed.events_per_second, 0),
            fmt(broadcast.events_per_second, 0),
            fmt(overlapping.events_per_second, 0),
        )


def e9() -> None:
    header("E9", "end-to-end demo domains")
    row("domain", "events", "ev/s", "matches", "emissions")
    events, registry = stock_stream(10_000)
    finance = run_cepr(stock_rank_query(window=100, k=5), events, registry)
    row("finance", finance.events, fmt(finance.events_per_second, 0), finance.matches, finance.emissions)
    events, registry = vitals_stream(10_000)
    health = run_cepr(kleene_rank_query(window=60, k=5), events, registry)
    row("health", health.events, fmt(health.events_per_second, 0), health.matches, health.emissions)
    events, registry = traffic_stream(6_000)
    transport = run_cepr(TRAFFIC_QUERY, events, registry)
    row("transport", transport.events, fmt(transport.events_per_second, 0), transport.matches, transport.emissions)


def e11() -> None:
    header("E11", "YIELD composition vs. flat query (stock, 10k events)")
    from test_e11_hierarchy import run_flat, run_hierarchy

    events, registry = stock_stream(10_000)
    row("formulation", "time ms", "matches")
    flat_time, flat_matches = run_flat(events, registry)
    row("flat SEQ(4)", fmt(flat_time * 1000), flat_matches)
    hier_time, hier_matches = run_hierarchy(events, registry)
    row("hierarchy", fmt(hier_time * 1000), hier_matches)
    print(f"  composition overhead: {hier_time / flat_time:.2f}x")


def e10() -> None:
    header("E10", "query compilation cost")
    row("query", "compiles/s", "us/compile")
    for size, text in CORPUS.items():
        count = 0
        started = time.perf_counter()
        while time.perf_counter() - started < 0.5:
            compile_pipeline(text)
            count += 1
        elapsed = time.perf_counter() - started
        row(size, fmt(count / elapsed, 0), fmt(elapsed / count * 1e6))


def e12() -> None:
    header("E12", "sharded partition-parallel execution (stock, 10k events)")
    from test_e12_sharding import QUERY, SHARD_SWEEP

    from common import run_cepr_sharded

    events, registry = stock_stream(10_000)
    baseline = run_cepr(QUERY, events, registry)
    row("configuration", "events/s", "matches", "emissions")
    row("single engine", fmt(baseline.events_per_second, 0), baseline.matches, baseline.emissions)
    for shards in SHARD_SWEEP:
        result = run_cepr_sharded(QUERY, events, shards, registry)
        assert result.matches == baseline.matches  # merge-stage contract
        row(
            f"shards={shards}",
            fmt(result.events_per_second, 0),
            result.matches,
            result.emissions,
        )
    print(
        "  results identical at every shard count; speedup needs a"
        " multi-core free-threaded host (threads share the GIL here)"
    )


def e16() -> None:
    header("E16", "overload: rank-aware load shedding (generic, 20k burst)")
    from test_e16_overload import OVERLOAD_FACTORS, run_with_policy

    events, registry = generic_stream(20_000, alphabet=2, seed=5)
    row("configuration", "events/s", "routed", "sheds", "recall", "emissions")
    base = run_with_policy(events, registry, "off")
    row(
        "off",
        fmt(base["events_per_second"], 0),
        base["routed"],
        0,
        "1.00",
        base["emissions"],
    )
    exact = run_with_policy(events, registry, "exact", force=True)
    stats = exact["controller"].stats
    row(
        "exact (forced)",
        fmt(exact["events_per_second"], 0),
        exact["routed"],
        stats.shed_events_total,
        f"{exact['controller'].recall_estimate:.2f}",
        exact["emissions"],
    )
    for factor in OVERLOAD_FACTORS:
        result = run_with_policy(events, registry, "adaptive", factor=factor)
        controller = result["controller"]
        row(
            f"adaptive {factor}x",
            fmt(result["events_per_second"], 0),
            result["routed"],
            controller.stats.shed_events_total,
            f"{controller.recall_estimate:.2f}",
            result["emissions"],
        )
    print(
        "  exact sheds are certificate-backed (output byte-identical);"
        " adaptive recall is the measured lower bound"
    )


def e17() -> None:
    header("E17", "process fleets + compiled hot paths (stock, 10k events)")
    from test_e17_process import PROCESS_SWEEP, QUERY

    from common import run_cepr_sharded

    events, registry = stock_stream(10_000)
    interpreted = run_cepr(QUERY, events, registry, compiled=False)
    baseline = run_cepr(QUERY, events, registry)
    threaded = run_cepr_sharded(QUERY, events, 4, registry)
    row("configuration", "events/s", "matches", "emissions")
    row(
        "interpreted",
        fmt(interpreted.events_per_second, 0),
        interpreted.matches,
        interpreted.emissions,
    )
    row(
        "single engine",
        fmt(baseline.events_per_second, 0),
        baseline.matches,
        baseline.emissions,
    )
    row(
        "threads=4",
        fmt(threaded.events_per_second, 0),
        threaded.matches,
        threaded.emissions,
    )
    for shards in PROCESS_SWEEP:
        result = run_cepr_sharded(
            QUERY, events, shards, registry, backend="process"
        )
        assert result.matches == baseline.matches  # merge-stage contract
        row(
            f"processes={shards}",
            fmt(result.events_per_second, 0),
            result.matches,
            result.emissions,
        )
    print(
        "  results identical on every substrate; the K=4 process fleet"
        " needs >= 4 cores to clear its 2.5x acceptance floor"
    )


EXPERIMENTS = {
    "E1": e1, "E2": e2, "E3": e3, "E4": e4, "E5": e5,
    "E6": e6, "E7": e7, "E8": e8, "E9": e9, "E10": e10, "E11": e11,
    "E12": e12, "E16": e16, "E17": e17,
}


def main(argv: list[str]) -> None:
    wanted = [a.upper() for a in argv] or list(EXPERIMENTS)
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiments {unknown}; choose from {list(EXPERIMENTS)}")
    for experiment_id in wanted:
        EXPERIMENTS[experiment_id]()
    print()


if __name__ == "__main__":
    main(sys.argv[1:])
