"""E4 — Event-selection strategy cost.

SKIP_TILL_ANY clones a run for every relevant event, SKIP_TILL_NEXT keeps
one deterministic branch per take/proceed split, STRICT kills on any gap.
Expected shape: ANY ≫ NEXT > STRICT in runs and time, and the gap widens
as per-type selectivity rises (smaller alphabet → more relevant events).
"""

import pytest

from common import generic_rank_query, generic_stream, run_cepr

STRATEGIES = ["STRICT", "SKIP_TILL_NEXT", "SKIP_TILL_ANY"]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_e4_strategy(benchmark, generic_10k, strategy):
    events, registry = generic_10k
    query = generic_rank_query(window=40, k=5, strategy=strategy, length=3)
    result = benchmark.pedantic(
        lambda: run_cepr(query, events, registry), rounds=3, iterations=1
    )
    assert result.runs_created > 0


@pytest.mark.parametrize("alphabet", [2, 8])
def test_e4_selectivity_sweep_any(benchmark, alphabet):
    events, registry = generic_stream(5_000, alphabet=alphabet)
    query = generic_rank_query(window=40, k=5, strategy="SKIP_TILL_ANY", length=2)
    result = benchmark.pedantic(
        lambda: run_cepr(query, events, registry), rounds=3, iterations=1
    )
    assert result.events == 5_000
