"""Flight-recorder postmortem demo — black-box artifacts from a live server.

Boots ``cepr serve --flightrec`` as a subprocess (the armed black box),
streams a workload through the TCP client, then exercises both artifact
paths an operator relies on:

1. an **on-demand** dump — ``cepr flightrec dump --pid <server>`` sends
   SIGUSR2 and waits for the artifact to land in the checkpoint dir;
2. a **kill mid-run** — SIGTERM during active pushing: the drain path
   flushes one last artifact before the process exits.

Both artifacts must parse (:func:`repro.observability.flightrec.load_artifact`
validates the schema) and must contain the lead-up history — the
register marks and emission entries recorded before the signal arrived.

This script is the CI ``flightrec-smoke`` gate.  Run with::

    python examples/flightrec_postmortem.py
"""

import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.cli import main as cepr_main
from repro.observability.flightrec import list_artifacts, load_artifact
from repro.serve import CEPRClient
from repro.workloads.stock import StockWorkload

QUERY = """
    NAME profits
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 100 EVENTS
    USING SKIP_TILL_ANY
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""


def start_server(checkpoint_dir: Path) -> tuple[subprocess.Popen, int]:
    """Launch an armed ``cepr serve`` on a free port; returns (process, port)."""
    query_file = checkpoint_dir / "profits.ceprql"
    query_file.write_text(QUERY)
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(query_file),
            "--port", "0",
            "--flightrec",
            "--checkpoint-dir", str(checkpoint_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError("server exited before becoming ready")
        matched = re.search(r"listening on [\d.]+:(\d+)", line)
        if matched:
            return process, int(matched.group(1))


def main() -> None:
    checkpoint_dir = Path(tempfile.mkdtemp(prefix="cepr-flightrec-"))
    server, port = start_server(checkpoint_dir)
    print(f"armed server ready on port {port} (pid {server.pid})")

    with CEPRClient(port=port) as client:
        client.subscribe("profits", kinds=["window_close"])
        events = list(StockWorkload(seed=7).events(2_000))
        client.push_batch(events)
        client.sync()

        # 1. on-demand dump through the operator CLI (SIGUSR2 under the hood)
        code = cepr_main(
            ["flightrec", "dump", "--pid", str(server.pid),
             "--dir", str(checkpoint_dir), "--wait", "10"]
        )
        assert code == 0, "flightrec dump did not produce an artifact"
        on_demand = list_artifacts(checkpoint_dir)
        assert on_demand, "no artifact after SIGUSR2"
        doc = load_artifact(on_demand[-1])
        print(
            f"on-demand artifact: reason={doc['reason']} "
            f"entries={len(doc['entries'])}"
        )
        assert doc["reason"] == "sigusr2"
        kinds = {entry["kind"] for entry in doc["entries"]}
        assert "register" in kinds, f"lead-up history missing: {kinds}"

        # 2. kill mid-run: keep pushing, then SIGTERM while events are live
        client.push_batch(events)
        server.send_signal(signal.SIGTERM)
        client.drain(timeout=15.0)

    server.wait(timeout=15)
    print(f"server exited with code {server.returncode}")
    assert server.returncode == 0

    artifacts = [path for path in list_artifacts(checkpoint_dir)
                 if path not in on_demand]
    assert artifacts, "SIGTERM mid-run left no postmortem artifact"
    doc = load_artifact(artifacts[-1])
    print(
        f"postmortem artifact: reason={doc['reason']} "
        f"recorded={doc['recorded']} entries={len(doc['entries'])}"
    )
    assert doc["reason"] == "drain"
    assert doc["entries"], "postmortem artifact carries no history"
    print("flight-recorder postmortem OK")


if __name__ == "__main__":
    main()
