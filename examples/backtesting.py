"""Back-testing: record a stream once, iterate on query formulations.

Records a stock stream into an event log while a live query runs, then
replays slices of the recorded history against *candidate* queries to see
which formulation would have surfaced better answers — the offline half of
a CEP deployment workflow.

Run with::

    python examples/backtesting.py [num_events]
"""

import sys
import tempfile
from pathlib import Path

from repro import CEPREngine
from repro.store import Backtester, EventLog, RecordingTap
from repro.workloads.stock import StockWorkload

LIVE_QUERY = """
    NAME live
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 150 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""

CANDIDATES = {
    "any_profit": LIVE_QUERY.replace("NAME live", "NAME any_profit"),
    "one_percent": LIVE_QUERY.replace(
        "s.price > b.price", "s.price > b.price * 1.01"
    ).replace("NAME live", "NAME one_percent"),
    "five_percent": LIVE_QUERY.replace(
        "s.price > b.price", "s.price > b.price * 1.05"
    ).replace("NAME live", "NAME five_percent"),
}


def main(num_events: int = 20_000) -> None:
    workload = StockWorkload(seed=1234)
    registry = workload.registry()

    with tempfile.TemporaryDirectory() as tmp:
        log_path = Path(tmp) / "stream.log"

        # Phase 1: live processing, recorded as it happens.
        engine = CEPREngine(registry=registry)
        live = engine.register_query(LIVE_QUERY)
        with EventLog(log_path) as log:
            tap = RecordingTap(engine, log)
            tap.run(workload.events(num_events))
        print(
            f"live run: {num_events} events processed and recorded, "
            f"{live.metrics.matches} matches"
        )

        # Phase 2: replay history against candidate formulations.
        log = EventLog(log_path)
        lo, hi = log.time_range
        backtester = Backtester(log, registry)
        print(f"\nbacktesting {len(CANDIDATES)} candidates over t=[{lo:.0f}, {hi:.0f}]:")
        results = backtester.compare(CANDIDATES)
        for name, result in sorted(
            results.items(), key=lambda kv: -kv[1].matches
        ):
            best = result.final_ranking[0].rank_values[0] if result.final_ranking else 0
            print(
                f"  {name:>12}: {result.matches:6d} matches over "
                f"{result.events_replayed} events; last-window best "
                f"profit {best:+.2f}"
            )

        # Phase 3: a focused slice — just the second half.
        mid = (lo + hi) / 2
        sliced = backtester.run(
            CANDIDATES["one_percent"], start_ts=mid, name="second_half"
        )
        print(
            f"\nsecond half only (t >= {mid:.0f}): "
            f"{sliced.events_replayed} events, {sliced.matches} matches"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)
