"""CEPR quickstart: register a ranked pattern query and push events.

Run with::

    python examples/quickstart.py

The query finds Buy→Sell pairs on the same symbol that made a profit,
ranks them by profit (best first), and emits the top 3 of each window.
"""

from repro import CEPREngine, Event

QUERY = """
    NAME best_trades
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 10 EVENTS
    USING SKIP_TILL_ANY
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""

EVENTS = [
    Event("Buy", 1.0, symbol="ACME", price=10.0),
    Event("Buy", 2.0, symbol="HOOLI", price=42.0),
    Event("Sell", 3.0, symbol="ACME", price=13.5),
    Event("Buy", 4.0, symbol="ACME", price=12.0),
    Event("Sell", 5.0, symbol="HOOLI", price=41.0),  # a loss: filtered out
    Event("Sell", 6.0, symbol="ACME", price=19.0),
]


def main() -> None:
    engine = CEPREngine()
    query = engine.register_query(QUERY)

    engine.run(EVENTS)

    print("Ranked Buy→Sell matches (best first):")
    for emission in query.results():
        print(f"  window epoch {emission.epoch}:")
        for position, match in enumerate(emission.ranking, start=1):
            buy, sell = match["b"], match["s"]
            profit = match.rank_values[0]
            print(
                f"    #{position} {buy['symbol']}: buy {buy['price']:.2f} "
                f"→ sell {sell['price']:.2f}  (profit {profit:+.2f})"
            )

    stats = engine.stats_by_query()["best_trades"]
    print(
        f"\nprocessed {engine.events_pushed} events, "
        f"{stats['matches']:.0f} matches, {stats['emissions']:.0f} emissions"
    )


if __name__ == "__main__":
    main()
