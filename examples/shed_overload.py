"""Overload demo — a served engine shedding load under a burst.

Boots ``cepr serve --shed-policy adaptive --latency-target 0.05`` as a
subprocess, registers a deliberately heavy query (wide SKIP_TILL_ANY
window), then pushes a stock burst far faster than the engine can match
it.  The server's pressure assessor trips ``overloaded``, the shedding
controller engages, and rank-weighted sampling starts dropping the
events least likely to crack the top-k — protected events (bound into
live partial matches) always get through.  Afterwards the STATS frame
shows the controller's ledger: how much was shed, how much of it was
provably safe, and the measured recall estimate for the rest.

Run with::

    python examples/shed_overload.py
"""

import re
import signal
import subprocess
import sys

from repro.serve import CEPRClient
from repro.workloads.stock import StockWorkload

QUERY = """
    NAME heavy_profits
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 200 EVENTS
    USING SKIP_TILL_ANY
    RANK BY s.price - b.price DESC
    LIMIT 5
    EMIT ON WINDOW CLOSE
"""

BURST = 30_000


def start_server() -> tuple[subprocess.Popen, int]:
    """Launch an adaptive-shedding ``cepr serve`` on a free port."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--shed-policy",
            "adaptive",
            "--latency-target",
            "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError("server exited before becoming ready")
        matched = re.search(r"listening on [\d.]+:(\d+)", line)
        if matched:
            return process, int(matched.group(1))


def main() -> None:
    server, port = start_server()
    print(f"server ready on port {port} (shed policy: adaptive)")
    try:
        with CEPRClient(port=port) as client:
            name = client.register(QUERY)
            print(f"registered {name!r}")

            events = list(StockWorkload(seed=7).events(BURST))
            accepted = client.push_batch(events)
            client.sync()
            print(f"pushed a {accepted}-event burst")

            shedding = client.stats()["shedding"]
            assert shedding is not None, "server lost its shed controller"
            stats = shedding["stats"]
            state = "engaged" if shedding["engaged"] else "standby"
            print(
                f"controller: policy={shedding['policy']} state={state} "
                f"drop_rate={shedding['drop_rate']:.2f} "
                f"engagements={stats['engagements']}"
            )
            print(
                f"ledger: offered={stats['offered']} "
                f"shed={stats['shed_events_total']} "
                f"(safe={stats['shed_safe_total']}, "
                f"sampled={stats['shed_sampled_total']}) "
                f"protected={stats['protected_total']}"
            )
            print(
                f"recall estimate: {stats['recall_estimate']:.3f} "
                "(1.0 = nothing that could rank was lost)"
            )
            if stats["engagements"] == 0:
                print(
                    "note: this host kept up with the burst — the "
                    "controller stayed in standby and shed nothing"
                )

            server.send_signal(signal.SIGTERM)
            client.drain(timeout=10.0)
    finally:
        server.wait(timeout=15)
    print(f"server exited with code {server.returncode}")
    if server.returncode != 0:
        raise SystemExit(server.returncode)
    print("shed overload demo OK")


if __name__ == "__main__":
    main()
