"""Stock-trading scenario: ranked trade opportunities over generated order flow.

This mirrors the ICDE demo's finance scenario: a synthetic order stream
(random-walk prices across six symbols) feeds two concurrent queries —

* ``best_trades`` — Buy→Sell pairs per symbol ranked by profit; because the
  workload declares price domains, CEPR's score-bound pruning kicks in and
  the script reports how many partial runs it discarded.
* ``momentum`` — runs of strictly increasing Sell prices per symbol, ranked
  by total climb, showing Kleene closure + iteration predicates + ranking.

Run with::

    python examples/stock_trading.py [num_events]
"""

import sys

from repro import CEPREngine
from repro.workloads.stock import StockWorkload

BEST_TRADES = """
    NAME best_trades
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 200 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 5
    EMIT ON WINDOW CLOSE
"""

MOMENTUM = """
    NAME momentum
    PATTERN SEQ(Sell first, Sell rest+)
    WHERE rest.symbol == first.symbol AND rest.price > prev(rest.price)
          AND rest.price > first.price
    WITHIN 200 EVENTS
    PARTITION BY symbol
    RANK BY last(rest.price) - first.price DESC, count(rest) DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""


def main(num_events: int = 20_000) -> None:
    workload = StockWorkload(seed=2016)
    engine = CEPREngine(registry=workload.registry())
    trades = engine.register_query(BEST_TRADES)
    momentum = engine.register_query(MOMENTUM)

    engine.run(workload.events(num_events))

    print(f"=== best trades (last window) over {num_events} events ===")
    for position, match in enumerate(trades.final_ranking(), start=1):
        buy, sell = match["b"], match["s"]
        print(
            f"  #{position} {buy['symbol']:>8}  "
            f"buy {buy['price']:7.2f} → sell {sell['price']:7.2f}  "
            f"profit {match.rank_values[0]:+7.2f}"
        )

    print("\n=== strongest momentum runs (last window) ===")
    for position, match in enumerate(momentum.final_ranking(), start=1):
        climb, length = match.rank_values
        symbol = match["first"]["symbol"]
        print(
            f"  #{position} {symbol:>8}  climbed {climb:+7.2f} "
            f"over {int(length) + 1} sells"
        )

    print("\n=== engine statistics ===")
    for name, stats in engine.stats_by_query().items():
        print(
            f"  {name:>12}: events={stats['events_routed']:.0f} "
            f"matches={stats['matches']:.0f} "
            f"runs={stats['runs_created']:.0f} "
            f"pruned={stats['runs_pruned']:.0f} "
            f"p99={stats['latency_p99_us']:.0f}us"
        )
    print(f"  throughput: {engine.metrics.throughput:,.0f} events/s")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)
