"""Health-care scenario: rank patient deterioration episodes by severity.

A panel of patients streams vital signs; a small fraction develop episodes
(tachycardia with fever ramp).  The query detects escalating heart-rate
sequences per patient and ranks them so the *most severe* episode is always
first — the clinical point of ranked CEP: with dozens of concurrent alerts,
the care team sees the worst case first, not the first-detected one.

Run with::

    python examples/health_monitoring.py [num_events]
"""

import sys

from repro import CEPREngine
from repro.workloads.sensor import VitalsWorkload

ESCALATION = """
    NAME escalation
    PATTERN SEQ(HeartRate onset, HeartRate spikes+)
    WHERE onset.value > 100
          AND spikes.value > 100
          AND spikes.value >= prev(spikes.value)
    WITHIN 60 SECONDS
    PARTITION BY patient
    RANK BY max(spikes.value) DESC, count(spikes) DESC
    LIMIT 5
    EMIT ON WINDOW CLOSE
"""

HYPOXIA = """
    NAME hypoxia
    PATTERN SEQ(OxygenSat low, NOT OxygenSat recovery, HeartRate hr)
    WHERE low.value < 90
          AND recovery.patient == low.patient AND recovery.value >= 94
          AND hr.patient == low.patient AND hr.value > 110
    WITHIN 60 SECONDS
    PARTITION BY patient
    RANK BY low.value ASC
    LIMIT 5
    EMIT ON WINDOW CLOSE
"""


def main(num_events: int = 30_000) -> None:
    workload = VitalsWorkload(seed=7, patients=12, anomaly_rate=0.02)
    engine = CEPREngine(registry=workload.registry())
    escalation = engine.register_query(ESCALATION)
    hypoxia = engine.register_query(HYPOXIA)

    engine.run(workload.events(num_events))

    print(f"=== most severe tachycardia episodes ({num_events} readings) ===")
    emissions = [e for e in escalation.results() if e.ranking]
    for emission in emissions[-3:]:
        window_start = emission.epoch * 60 if emission.epoch is not None else 0
        print(f"  window starting t={window_start}s:")
        for position, match in enumerate(emission.ranking, start=1):
            peak, length = match.rank_values
            patient = match.partition_key[0]
            print(
                f"    #{position} patient {patient:>2}: peak {peak:5.1f} bpm, "
                f"{int(length) + 1} escalating readings"
            )

    print("\n=== unrecovered hypoxia followed by tachycardia ===")
    alerts = [m for e in hypoxia.results() for m in e.ranking]
    if not alerts:
        print("  (none in this run)")
    for match in alerts[:5]:
        print(
            f"  patient {match.partition_key[0]:>2}: "
            f"SpO2 dipped to {match['low']['value']:.1f}% with no recovery "
            f"before HR {match['hr']['value']:.0f}"
        )

    print(
        f"\nprocessed {engine.events_pushed} readings at "
        f"{engine.metrics.throughput:,.0f} events/s"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30_000)
