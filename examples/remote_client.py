"""Remote serving demo — drive a ``cepr serve`` process over TCP.

Starts a CEPR server as a subprocess (the same way an operator would,
via ``python -m repro serve``), then uses the blocking SDK
(:class:`repro.serve.CEPRClient`) to do everything a remote consumer
can:

1. register a query dynamically,
2. subscribe to its ranked emissions (filtered to window closes),
3. push a generated stock stream in batches,
4. ``sync`` for read-your-writes and print the top-ranked matches,
5. fetch server metrics, and
6. terminate the server with SIGTERM and collect its final flush.

Run with::

    python examples/remote_client.py
"""

import re
import signal
import subprocess
import sys

from repro.serve import CEPRClient
from repro.workloads.stock import StockWorkload

QUERY = """
    NAME remote_profits
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 100 EVENTS
    USING SKIP_TILL_ANY
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""


def start_server() -> tuple[subprocess.Popen, int]:
    """Launch ``cepr serve`` on a free port; returns (process, port)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert process.stdout is not None
    while True:
        line = process.stdout.readline()
        if not line:
            raise RuntimeError("server exited before becoming ready")
        matched = re.search(r"listening on [\d.]+:(\d+)", line)
        if matched:
            return process, int(matched.group(1))


def main() -> None:
    server, port = start_server()
    print(f"server ready on port {port}")
    try:
        with CEPRClient(port=port) as client:
            name = client.register(QUERY)
            client.subscribe(name, kinds=["window_close"])
            print(f"registered and subscribed to {name!r}")

            events = list(StockWorkload(seed=7).events(2_000))
            accepted = client.push_batch(events)
            ingested = client.sync()  # barrier: server processed everything
            print(f"pushed {accepted} events (server total: {ingested})")

            for frame in client.pop_emissions():
                emission = frame["emission"]
                top = emission["ranking"][0] if emission["ranking"] else None
                print(
                    f"  window close at t={emission['at_ts']:g}: "
                    f"{len(emission['ranking'])} ranked matches"
                    + (f", best rank values {top['rank_values']}" if top else "")
                )

            metrics = client.stats()["metrics"]
            pushed = next(
                sample["value"]
                for sample in metrics["metrics"]
                if sample["name"] == "serve_events_ingested_total"
            )
            print(f"server metrics: {pushed:g} events ingested")

            # Graceful shutdown: SIGTERM drains — the final flush arrives
            # as emission frames before the server's closing `bye`.
            server.send_signal(signal.SIGTERM)
            final = client.drain(timeout=10.0)
            print(f"drain delivered {len(final)} final emission frame(s)")
    finally:
        server.wait(timeout=15)
    print(f"server exited with code {server.returncode}")


if __name__ == "__main__":
    main()
