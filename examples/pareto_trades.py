"""Skyline extension: Pareto-optimal trades (profit vs. holding time).

Lexicographic ``RANK BY`` must pick one criterion to dominate; when two
criteria genuinely trade off — maximise profit, minimise how long the
position was held — the answers a trader wants are the *Pareto front*:
trades not beaten on both axes by any other trade.  This example runs the
standard ranked query, then lifts its matches into the skyline extension
(:mod:`repro.ranking.skyline`).

Run with::

    python examples/pareto_trades.py [num_events]
"""

import sys

from repro import CEPREngine
from repro.ranking.skyline import pareto_front
from repro.workloads.stock import StockWorkload

QUERY = """
    NAME trades
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 300 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY symbol
    RANK BY s.price - b.price DESC, duration() ASC
    EMIT ON WINDOW CLOSE
"""


def main(num_events: int = 10_000) -> None:
    workload = StockWorkload(seed=42)
    engine = CEPREngine(registry=workload.registry())
    trades = engine.register_query(QUERY)
    engine.run(workload.events(num_events))

    emissions = [e for e in trades.results() if e.ranking]
    if not emissions:
        print("no trades found")
        return
    window = emissions[-1]
    matches = window.ranking

    print(f"last window: {len(matches)} profitable trades")
    print("\nlexicographic top 5 (profit first, duration only breaks ties):")
    for position, match in enumerate(matches[:5], start=1):
        profit, held = match.rank_values
        print(f"  #{position} profit {profit:+7.2f}  held {held:6.2f}s")

    front = pareto_front(matches, trades.analyzed.rank_keys)
    print(f"\nPareto front (profit DESC x duration ASC): {len(front)} trades")
    for match in sorted(front, key=lambda m: -m.rank_values[0]):
        profit, held = match.rank_values
        symbol = match["b"]["symbol"]
        print(f"  {symbol:>8}  profit {profit:+7.2f}  held {held:6.2f}s")
    print(
        "\nEvery front trade is unbeaten: no other trade has both more "
        "profit and a shorter hold."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10_000)
