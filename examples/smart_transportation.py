"""Transportation scenario: rank congestion onsets by how sharp they are.

Road segments stream vehicle speed reports; injected incidents drag speeds
down until a ``Clear`` event.  The query detects free-flow → slowdown
transitions per segment — with the negation guaranteeing the slowdown was
*not* already cleared — and ranks them by speed collapse, so traffic
operators handle the worst developing jam first.

Run with::

    python examples/smart_transportation.py [num_events]
"""

import sys

from repro import CEPREngine
from repro.workloads.traffic import TrafficWorkload

CONGESTION = """
    NAME congestion_onset
    PATTERN SEQ(SpeedReport free, SpeedReport slowdown+, NOT Clear cleared)
    WHERE free.speed > 70
          AND slowdown.speed < 50
          AND slowdown.speed <= prev(slowdown.speed)
    WITHIN 30 SECONDS
    PARTITION BY segment
    RANK BY free.speed - last(slowdown.speed) DESC, count(slowdown) DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""


def main(num_events: int = 40_000) -> None:
    workload = TrafficWorkload(
        seed=3, segments=12, incident_rate=0.006, incident_length=150
    )
    engine = CEPREngine(registry=workload.registry())
    onsets = engine.register_query(CONGESTION)

    engine.run(workload.events(num_events))

    print(f"=== sharpest congestion onsets over {num_events} reports ===")
    emissions = [e for e in onsets.results() if e.ranking]
    if not emissions:
        print("  (no congestion in this run — try more events)")
        return
    for emission in emissions[-4:]:
        window_start = emission.epoch * 30 if emission.epoch is not None else 0
        print(f"  window starting t={window_start}s:")
        for position, match in enumerate(emission.ranking, start=1):
            drop, readings = match.rank_values
            segment = match.partition_key[0]
            last_speed = match["slowdown"][-1]["speed"]
            print(
                f"    #{position} segment {segment:>2}: speed collapsed "
                f"{drop:5.1f} km/h over {int(readings)} reports "
                f"(now {last_speed:.0f} km/h, no all-clear)"
            )

    stats = engine.stats_by_query()["congestion_onset"]
    print(
        f"\n{stats['matches']:.0f} onsets detected; pendings guarded by the "
        f"trailing negation: created={onsets.matcher.stats.pending_created} "
        f"killed_by_clear={onsets.matcher.stats.pending_killed}"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40_000)
