"""Hierarchical CEP with YIELD: queries over the results of queries.

Level 1 detects profitable Buy→Sell round-trips and *derives* a ``Trade``
event per match.  Level 2 never sees raw orders at all — it matches
directly on the derived ``Trade`` stream, finding symbols whose trade
profits escalate, and ranks those streaks.  Composite events composing
into higher-level patterns is what makes CEP scale conceptually: each
layer speaks the vocabulary of the one below.

Run with::

    python examples/hierarchical_cep.py [num_events]
"""

import sys

from repro import CEPREngine
from repro.workloads.stock import StockWorkload

LEVEL_1 = """
    NAME round_trips
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 100 EVENTS
    PARTITION BY symbol
    YIELD Trade(symbol = b.symbol, profit = s.price - b.price, held = duration())
"""

LEVEL_2 = """
    NAME escalating_streaks
    PATTERN SEQ(Trade first, Trade rest+)
    WHERE rest.symbol == first.symbol AND rest.profit > prev(rest.profit)
          AND rest.profit > first.profit
    WITHIN 600 SECONDS
    PARTITION BY symbol
    RANK BY last(rest.profit) DESC, count(rest) DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""


def main(num_events: int = 20_000) -> None:
    workload = StockWorkload(seed=77)
    engine = CEPREngine(registry=workload.registry())
    level1 = engine.register_query(LEVEL_1)
    level2 = engine.register_query(LEVEL_2)

    engine.run(workload.events(num_events))

    print(
        f"level 1: {level1.metrics.matches} round-trips detected over "
        f"{num_events} raw events → {engine.derived_events} Trade events derived"
    )

    emissions = [e for e in level2.results() if e.ranking]
    print(f"level 2: escalating-profit streaks (over derived Trades only):")
    for emission in emissions[-2:]:
        print(f"  window epoch {emission.epoch}:")
        for position, match in enumerate(emission.ranking, start=1):
            peak, length = match.rank_values
            symbol = match.partition_key[0]
            print(
                f"    #{position} {symbol:>8}: profits escalated over "
                f"{int(length) + 1} trades, peaking at {peak:+.2f}"
            )

    print("\nlevel-1 plan (note the YIELD line):")
    for line in level1.explain().splitlines():
        if "yield" in line or "stages" in line:
            print(" " + line)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)
