"""One program, four execution backends, identical ranked output.

The unified Runner API makes backend choice a configuration value: the
same query and stream run on the caller's thread (``embedded``), behind
a bounded queue (``threaded``), across partition-parallel worker threads
(``sharded``), or across worker *processes* fed over pipe frames
(``process``) — and the CEPR exactness contract guarantees the merged
emissions are identical, byte for byte, on every backend.

Run with::

    python examples/process_shards.py [num_events]
"""

import json
import sys
import time

from repro.runtime import RunnerConfig, create_runner, emission_to_json
from repro.runtime.sinks import CollectorSink
from repro.workloads.stock import StockWorkload

QUERY = """
    NAME best_trades
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 200 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 5
    EMIT ON WINDOW CLOSE
"""


def run_backend(backend: str, num_events: int, shards: int) -> tuple[list, float]:
    """Run the query on one backend; return (serialized emissions, seconds)."""
    workload = StockWorkload(seed=2016)
    runner = create_runner(
        QUERY,
        RunnerConfig(
            backend=backend, shards=shards, registry=workload.registry()
        ),
    )
    sink = CollectorSink()
    runner.subscribe("best_trades", sink)
    started = time.perf_counter()
    with runner:
        runner.submit_all(workload.events(num_events))
        runner.flush()
    elapsed = time.perf_counter() - started
    lines = [
        json.dumps(emission_to_json(e), sort_keys=True)
        for e in sink.emissions
    ]
    runner.close()
    return lines, elapsed


def main(num_events: int = 20_000) -> None:
    shards = 2
    reference: list | None = None
    print(f"running {num_events} events on every backend (shards={shards}):")
    for backend in ("embedded", "threaded", "sharded", "process"):
        lines, elapsed = run_backend(backend, num_events, shards)
        if reference is None:
            reference = lines
            verdict = "reference"
        else:
            verdict = "identical" if lines == reference else "DIVERGED"
        rate = num_events / elapsed if elapsed > 0 else 0.0
        print(
            f"  {backend:>9}: {len(lines)} emissions in {elapsed:6.2f}s "
            f"({rate:>9,.0f} events/s) — {verdict}"
        )
        if verdict == "DIVERGED":
            raise SystemExit(f"{backend} output diverged from embedded")
    print("all backends byte-identical OK")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)
