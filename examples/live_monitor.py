"""Live monitoring demo — the paper's real-time interface, in a terminal.

Replays a stock stream against the wall clock (sped up) while a background
thread refreshes the CEPR monitor, which tails each query's current ranked
answers and engine metrics — the terminal equivalent of the demo GUI.

Run with::

    python examples/live_monitor.py [seconds_to_run]
"""

import sys
import threading
import time

from repro import CEPREngine, Monitor
from repro.events.sources import ReplaySource
from repro.workloads.stock import StockWorkload

QUERY = """
    NAME live_profits
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 100 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 5
    EMIT EVERY 50 EVENTS
"""


def main(run_seconds: float = 5.0) -> None:
    workload = StockWorkload(seed=99, rate=200.0)
    engine = CEPREngine(registry=workload.registry())
    engine.register_query(QUERY)
    monitor = Monitor(engine, top_n=5)

    stop = threading.Event()

    def ingest() -> None:
        # Replay at 50x so a few seconds of wall clock covers minutes of
        # stream time.
        replay = ReplaySource(workload.events(1_000_000), speedup=50.0)
        for event in replay:
            if stop.is_set():
                return
            engine.push(event)

    feeder = threading.Thread(target=ingest, daemon=True)
    feeder.start()

    deadline = time.monotonic() + run_seconds
    try:
        while time.monotonic() < deadline:
            print(monitor.render())
            time.sleep(0.5)
    finally:
        stop.set()
        feeder.join(timeout=2.0)

    print("\nfinal snapshot:")
    print(monitor.render())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 5.0)
