"""Unit tests for incremental aggregate state."""

from repro.engine.aggregates import (
    AggregateState,
    needed_aggregates,
    tracked_attrs_by_var,
)
from repro.events.event import Event
from repro.language.parser import parse_query
from repro.language.ast_nodes import split_conjuncts


class TestAggregateState:
    def make_state(self, *values):
        state = AggregateState.for_attrs(["x"])
        for i, value in enumerate(values):
            state = state.accept(Event("B", i, x=value))
        return state

    def test_empty_state_serves_nothing(self):
        state = AggregateState.for_attrs(["x"])
        assert state.lookup("count", None) is None
        assert state.lookup("avg", "x") is None

    def test_count(self):
        assert self.make_state(1, 2, 3).lookup("count", None) == 3
        assert self.make_state(1).lookup("len", None) == 1

    def test_sum_avg(self):
        state = self.make_state(1.0, 2.0, 3.0)
        assert state.lookup("sum", "x") == 6.0
        assert state.lookup("avg", "x") == 2.0

    def test_min_max(self):
        state = self.make_state(5.0, 1.0, 3.0)
        assert state.lookup("min", "x") == 1.0
        assert state.lookup("max", "x") == 5.0

    def test_first_last(self):
        state = self.make_state(5.0, 1.0, 3.0)
        assert state.lookup("first", "x") == 5.0
        assert state.lookup("last", "x") == 3.0

    def test_untracked_attr_serves_none(self):
        assert self.make_state(1.0).lookup("sum", "y") is None

    def test_immutability(self):
        base = self.make_state(1.0)
        extended = base.accept(Event("B", 9, x=100.0))
        assert base.lookup("max", "x") == 1.0
        assert extended.lookup("max", "x") == 100.0

    def test_missing_attr_on_event_skipped(self):
        state = AggregateState.for_attrs(["x"])
        state = state.accept(Event("B", 0))  # no x
        assert state.count == 1
        assert state.lookup("sum", "x") == 0.0

    def test_non_numeric_values_tracked_for_first_last_only(self):
        state = AggregateState.for_attrs(["x"])
        state = state.accept(Event("B", 0, x="hello"))
        assert state.lookup("first", "x") == "hello"
        assert state.lookup("min", "x") is None


class TestNeededAggregates:
    def exprs_of(self, text):
        query = parse_query(text)
        exprs = split_conjuncts(query.where)
        exprs.extend(k.expr for k in query.rank_by)
        return exprs

    def test_collects_all_aggregates(self):
        exprs = self.exprs_of(
            "PATTERN SEQ(A as+) WITHIN 5 EVENTS "
            "WHERE avg(as.x) > 1 AND count(as) > 2 RANK BY max(as.y) DESC"
        )
        assert needed_aggregates(exprs) == {
            ("as", "avg", "x"),
            ("as", "count", None),
            ("as", "max", "y"),
        }

    def test_tracked_attrs_grouping(self):
        needed = {("as", "avg", "x"), ("as", "max", "y"), ("as", "count", None)}
        grouped = tracked_attrs_by_var(needed)
        assert grouped == {"as": frozenset({"x", "y"})}

    def test_no_aggregates(self):
        assert needed_aggregates(self.exprs_of("PATTERN SEQ(A a) WHERE a.x > 1")) == frozenset()
