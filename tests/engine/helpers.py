"""Helpers for driving a PatternMatcher directly in engine tests."""

from __future__ import annotations

from typing import Iterable

from repro.engine.compiler import compile_automaton
from repro.engine.match import Match
from repro.engine.matcher import PatternMatcher
from repro.events.event import Event
from repro.events.time import SequenceAssigner
from repro.language.parser import parse_query
from repro.language.semantics import analyze


def make_matcher(query_text: str, tumbling: bool = False, prune_hook=None) -> PatternMatcher:
    analyzed = analyze(parse_query(query_text))
    automaton = compile_automaton(analyzed)
    return PatternMatcher(automaton, prune_hook=prune_hook, tumbling=tumbling)


def feed(
    matcher: PatternMatcher, events: Iterable[Event], flush: bool = True
) -> list[Match]:
    assigner = SequenceAssigner()
    matches: list[Match] = []
    for event in events:
        assigner.assign(event)
        matches.extend(matcher.process(event))
    if flush:
        matches.extend(matcher.flush())
    return matches


def run_pattern(query_text: str, events: Iterable[Event], **kwargs) -> list[Match]:
    return feed(make_matcher(query_text, **kwargs), events)


def bound_attr(match: Match, var: str, attr: str):
    binding = match.bindings[var]
    if isinstance(binding, Event):
        return binding[attr]
    return [event[attr] for event in binding]


def pair_set(matches: Iterable[Match], var_attrs: list[tuple[str, str]]) -> set:
    """Set of tuples of bound attribute values, for order-free comparison."""
    out = set()
    for match in matches:
        row = []
        for var, attr in var_attrs:
            value = bound_attr(match, var, attr)
            row.append(tuple(value) if isinstance(value, list) else value)
        out.add(tuple(row))
    return out
