"""Matcher edge cases: feature interactions and boundary behaviour."""

from repro.events.event import Event

from tests.engine.helpers import feed, make_matcher, pair_set, run_pattern


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestMultipleNegations:
    QUERY = "PATTERN SEQ(A a, NOT X x, B b, NOT Y y, C c)"

    def test_clean_stream_matches(self):
        matches = run_pattern(self.QUERY, [E("A", 1), E("B", 2), E("C", 3)])
        assert len(matches) == 1

    def test_first_guard_violated(self):
        matches = run_pattern(
            self.QUERY, [E("A", 1), E("X", 2), E("B", 3), E("C", 4)]
        )
        assert matches == []

    def test_second_guard_violated(self):
        matches = run_pattern(
            self.QUERY, [E("A", 1), E("B", 2), E("Y", 3), E("C", 4)]
        )
        assert matches == []

    def test_negated_events_outside_their_guards_are_fine(self):
        matches = run_pattern(
            self.QUERY,
            [E("Y", 1), E("A", 2), E("B", 3), E("X", 4), E("C", 5)],
        )
        # Y before everything; X between B and C (its guard is A..B)
        assert len(matches) == 1

    def test_negation_predicate_on_closed_kleene_aggregate(self):
        matches = run_pattern(
            "PATTERN SEQ(B bs+, NOT X x, C c) WHERE x.v > avg(bs.v)",
            [E("B", 1, v=10.0), E("B", 2, v=20.0), E("X", 3, v=5.0), E("C", 4)],
        )
        # x.v=5 <= avg(15): guard not violated
        assert len(matches) >= 1
        killed = run_pattern(
            "PATTERN SEQ(B bs+, NOT X x, C c) WHERE x.v > avg(bs.v)",
            [E("B", 1, v=10.0), E("B", 2, v=20.0), E("X", 3, v=50.0), E("C", 4)],
        )
        # the closure {b1,b2} is killed; {b2} alone (avg 20) also killed.
        assert pair_set(killed, [("bs", "v")]) == set()


class TestSameTypeEverywhere:
    def test_self_join_pattern(self):
        matches = run_pattern(
            "PATTERN SEQ(T first, T second) WHERE second.x > first.x "
            "USING SKIP_TILL_ANY",
            [E("T", 1, x=3), E("T", 2, x=1), E("T", 3, x=5)],
        )
        assert pair_set(matches, [("first", "x"), ("second", "x")]) == {
            (3, 5),
            (1, 5),
        }

    def test_negation_of_positive_type(self):
        # NOT T between two T's: any T between kills — only adjacent pairs.
        matches = run_pattern(
            "PATTERN SEQ(T first, NOT T gap, T second) USING SKIP_TILL_ANY",
            [E("T", 1, x=1), E("T", 2, x=2), E("T", 3, x=3)],
        )
        assert pair_set(matches, [("first", "x"), ("second", "x")]) == {
            (1, 2),
            (2, 3),
        }


class TestWindowInteractions:
    def test_pending_and_window_race(self):
        # pending confirmed exactly when the window passes, before a late C
        matcher = make_matcher(
            "PATTERN SEQ(A a, B b, NOT C c) WITHIN 2 EVENTS"
        )
        matches = feed(
            matcher,
            [E("A", 1), E("B", 2), E("Z", 3), E("C", 4)],
            flush=True,
        )
        # A@0, B@1 complete; window [0,2); C at seq 3 arrives after expiry
        assert len(matches) == 1

    def test_kleene_window_truncates_closure(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+) WITHIN 3 EVENTS",
            [E("A", 1), E("B", 2), E("B", 3), E("B", 4)],
        )
        # prefixes within 3 events of A only: {b1}, {b1 b2}
        sizes = sorted(len(m.bindings["bs"]) for m in matches)
        assert sizes == [1, 2]

    def test_partitioned_windows_are_independent(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WITHIN 3 EVENTS PARTITION BY k",
            [
                E("A", 1, k=1),
                E("A", 2, k=2),
                E("Z", 3),
                E("B", 4, k=1),  # seq 3: k=1 run (first 0) expired (3-0 >= 3)
                E("B", 5, k=2),  # seq 4: k=2 run (first 1) expired too
            ],
        )
        assert matches == []

    def test_zero_duration_match(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WITHIN 5 SECONDS",
            [E("A", 1.0), E("B", 1.0)],
        )
        assert len(matches) == 1
        assert matches[0].duration == 0.0


class TestStrictKleeneInteraction:
    def test_strict_mid_kleene_break(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+, C c) USING STRICT",
            [
                E("A", 1, x=1),
                E("B", 2, x=2),
                E("A", 3, x=3),
                E("B", 4, x=4),
                E("C", 5, x=5),
            ],
        )
        # run(A1) cannot consume A3 and dies; run(A3)+B4+C5 is contiguous.
        assert pair_set(matches, [("bs", "x")]) == {((4,),)}

    def test_strict_trailing_kleene_prefixes(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+) USING STRICT",
            [E("A", 1), E("B", 2), E("B", 3), E("C", 4), E("B", 5)],
        )
        sizes = sorted(len(m.bindings["bs"]) for m in matches)
        # STRICT contiguity is relative to the event types the query
        # observes (A, B); the C event never reaches the matcher, so the
        # closure keeps extending: prefixes of length 1, 2, 3.
        assert sizes == [1, 2, 3]

    def test_strict_contiguity_broken_by_relevant_type(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+) USING STRICT",
            [E("A", 1), E("B", 2), E("B", 3), E("A", 4), E("B", 5)],
        )
        sizes = sorted(len(m.bindings["bs"]) for m in matches)
        # A@4 is relevant: it kills the first closure and starts a new run.
        assert sizes == [1, 1, 2]


class TestIterRunsAndCounters:
    def test_iter_runs_exposes_live_state(self):
        matcher = make_matcher("PATTERN SEQ(A a, B b)")
        feed(matcher, [E("A", 1), E("A", 2)], flush=False)
        runs = list(matcher.iter_runs())
        assert len(runs) == 2
        assert all(run.stage == 1 for run in runs)

    def test_unknown_partition_key_types(self):
        # partition values can be any hashable payload value
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) PARTITION BY k",
            [E("A", 1, k=(1, 2)), E("B", 2, k=(1, 2))],
        )
        assert len(matches) == 1
