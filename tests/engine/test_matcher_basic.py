"""Core matcher behaviour: sequencing, predicates, windows."""

from repro.events.event import Event

from tests.engine.helpers import make_matcher, feed, pair_set, run_pattern


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestSimpleSequences:
    def test_two_step_match(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b)",
            [E("A", 1, x=1), E("B", 2, x=2)],
        )
        assert pair_set(matches, [("a", "x"), ("b", "x")]) == {(1, 2)}

    def test_order_matters(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b)",
            [E("B", 1, x=1), E("A", 2, x=2)],
        )
        assert matches == []

    def test_single_element_pattern(self):
        matches = run_pattern("PATTERN SEQ(A a)", [E("A", 1, x=1), E("A", 2, x=2)])
        assert len(matches) == 2

    def test_irrelevant_types_ignored(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b)",
            [E("A", 1, x=1), E("Z", 2), E("B", 3, x=2)],
        )
        assert len(matches) == 1

    def test_three_step_sequence(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b, C c)",
            [E("A", 1, x=1), E("B", 2, x=2), E("C", 3, x=3)],
        )
        assert pair_set(matches, [("a", "x"), ("b", "x"), ("c", "x")]) == {(1, 2, 3)}

    def test_multiple_starts_share_later_events(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b)",
            [E("A", 1, x=1), E("A", 2, x=2), E("B", 3, x=9)],
        )
        assert pair_set(matches, [("a", "x"), ("b", "x")]) == {(1, 9), (2, 9)}

    def test_same_type_for_two_stages(self):
        matches = run_pattern(
            "PATTERN SEQ(A first, A second)",
            [E("A", 1, x=1), E("A", 2, x=2), E("A", 3, x=3)],
        )
        # skip-till-next: each run consumes the next A; new runs start at each A.
        assert pair_set(matches, [("first", "x"), ("second", "x")]) == {
            (1, 2),
            (2, 3),
        }

    def test_detection_indexes_are_monotone(self):
        matches = run_pattern(
            "PATTERN SEQ(A a)",
            [E("A", 1), E("A", 2), E("A", 3)],
        )
        assert [m.detection_index for m in matches] == [0, 1, 2]


class TestPredicates:
    def test_bind_predicate_on_first_var(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WHERE a.x > 10",
            [E("A", 1, x=5), E("A", 2, x=15), E("B", 3, x=0)],
        )
        assert pair_set(matches, [("a", "x")]) == {(15,)}

    def test_cross_variable_predicate(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WHERE b.x > a.x",
            [E("A", 1, x=10), E("B", 2, x=5), E("B", 3, x=20)],
        )
        assert pair_set(matches, [("b", "x")]) == {(20,)}

    def test_failing_predicate_does_not_consume_under_skip_till_next(self):
        # (A, B2) must be found even though B1 arrives first but fails.
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WHERE b.x > a.x",
            [E("A", 1, x=10), E("B", 2, x=1), E("B", 3, x=11)],
        )
        assert pair_set(matches, [("a", "x"), ("b", "x")]) == {(10, 11)}

    def test_equality_join(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WHERE a.k == b.k",
            [E("A", 1, k="x"), E("B", 2, k="y"), E("B", 3, k="x")],
        )
        assert len(matches) == 1

    def test_completion_predicate_duration(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WHERE duration() <= 1",
            [E("A", 1.0), E("B", 1.5), E("A", 5.0), E("B", 9.0)],
        )
        assert len(matches) == 1
        assert matches[0].duration == 0.5

    def test_constant_false_predicate(self):
        matches = run_pattern(
            "PATTERN SEQ(A a) WHERE 1 > 2",
            [E("A", 1)],
        )
        assert matches == []


class TestCountWindows:
    def test_match_within_window(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WITHIN 3 EVENTS",
            [E("A", 1), E("Z", 2), E("B", 3)],
        )
        # Z is not relevant so it doesn't reach the matcher; seq gap 0→2 < 3.
        assert len(matches) == 1

    def test_run_expires_outside_count_window(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WITHIN 2 EVENTS",
            [E("A", 1), E("C", 2), E("C", 3), E("B", 4)],
        )
        # All events are sequenced; C events don't reach the matcher but the
        # global seq of B (3) - seq of A (0) = 3 >= 2 → expired.
        assert matches == []

    def test_window_boundary_inclusive_semantics(self):
        # span 2: last.seq - first.seq must be < 2
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WITHIN 2 EVENTS",
            [E("A", 1), E("B", 2)],
        )
        assert len(matches) == 1

    def test_expired_runs_counted(self):
        matcher = make_matcher("PATTERN SEQ(A a, B b) WITHIN 2 EVENTS")
        feed(matcher, [E("A", 1), E("A", 2), E("A", 3)])
        assert matcher.stats.runs_expired >= 1


class TestTimeWindows:
    def test_match_within_time_window(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WITHIN 5 SECONDS",
            [E("A", 1.0), E("B", 5.5)],
        )
        assert len(matches) == 1

    def test_run_expires_outside_time_window(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WITHIN 5 SECONDS",
            [E("A", 1.0), E("B", 6.5)],
        )
        assert matches == []

    def test_time_boundary_inclusive(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WITHIN 5 SECONDS",
            [E("A", 1.0), E("B", 6.0)],
        )
        assert len(matches) == 1


class TestStats:
    def test_counters(self):
        matcher = make_matcher("PATTERN SEQ(A a, B b)")
        feed(matcher, [E("A", 1), E("B", 2), E("Z", 3)])
        stats = matcher.stats
        assert stats.events_processed == 2  # Z is irrelevant
        assert stats.runs_created == 1
        assert stats.matches_completed == 1

    def test_peak_live_runs(self):
        matcher = make_matcher("PATTERN SEQ(A a, B b)")
        feed(matcher, [E("A", 1), E("A", 2), E("A", 3)])
        assert matcher.stats.peak_live_runs == 3

    def test_flush_clears_state(self):
        matcher = make_matcher("PATTERN SEQ(A a, B b)")
        feed(matcher, [E("A", 1)], flush=True)
        assert matcher.live_run_count == 0
