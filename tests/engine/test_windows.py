"""Unit tests for epoch tracking and tumbling evaluation."""

from repro.engine.windows import EpochTracker
from repro.events.event import Event
from repro.language.ast_nodes import WindowKind, WindowSpec

from tests.engine.helpers import feed, make_matcher, pair_set


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestEpochTracker:
    def test_count_epochs(self):
        tracker = EpochTracker(WindowSpec(WindowKind.COUNT, 10))
        event = Event("A", 0.0)
        for seq, expected in [(0, 0), (9, 0), (10, 1), (25, 2)]:
            event.seq = seq
            assert tracker.epoch_of(event) == expected

    def test_time_epochs(self):
        tracker = EpochTracker(WindowSpec(WindowKind.TIME, 5.0))
        assert tracker.epoch_of(Event("A", 0.0)) == 0
        assert tracker.epoch_of(Event("A", 4.999)) == 0
        assert tracker.epoch_of(Event("A", 5.0)) == 1
        assert tracker.epoch_of(Event("A", 12.5)) == 2

    def test_epoch_of_point(self):
        tracker = EpochTracker(WindowSpec(WindowKind.COUNT, 4))
        assert tracker.epoch_of_point(7, 0.0) == 1

    def test_epoch_bounds(self):
        tracker = EpochTracker(WindowSpec(WindowKind.TIME, 5.0))
        assert tracker.epoch_bounds(2) == (10.0, 15.0)


class TestTumblingMatcher:
    def test_runs_killed_at_epoch_boundary(self):
        matcher = make_matcher(
            "PATTERN SEQ(A a, B b) WITHIN 3 EVENTS", tumbling=True
        )
        # A at seq 0 (epoch 0); B at seq 3 (epoch 1) → run must not survive.
        matches = feed(matcher, [E("A", 1), E("Z", 2), E("Z", 3), E("B", 4)])
        assert matches == []
        assert matcher.stats.runs_expired == 1

    def test_match_within_one_epoch(self):
        matcher = make_matcher(
            "PATTERN SEQ(A a, B b) WITHIN 3 EVENTS", tumbling=True
        )
        matches = feed(matcher, [E("A", 1), E("B", 2)])
        assert len(matches) == 1

    def test_new_run_starts_in_new_epoch(self):
        matcher = make_matcher(
            "PATTERN SEQ(A a, B b) WITHIN 2 EVENTS", tumbling=True
        )
        matches = feed(
            matcher, [E("A", 1, p=1), E("Z", 2), E("A", 3, p=2), E("B", 4, p=3)]
        )
        # epoch 1 covers seqs 2-3: A(seq 2) with B(seq 3) matches.
        assert pair_set(matches, [("a", "p")]) == {(2,)}

    def test_tumbling_requires_window(self):
        import pytest

        with pytest.raises(ValueError, match="requires a WITHIN"):
            make_matcher("PATTERN SEQ(A a)", tumbling=True)

    def test_time_epoch_boundary(self):
        matcher = make_matcher(
            "PATTERN SEQ(A a, B b) WITHIN 5 SECONDS", tumbling=True
        )
        # A at t=4 (epoch 0), B at t=6 (epoch 1): killed at the boundary
        # even though the sliding span (2s) would have allowed it.
        matches = feed(matcher, [E("A", 4.0), E("B", 6.0)])
        assert matches == []
