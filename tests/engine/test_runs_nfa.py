"""Unit tests for Run mechanics and the compiled automaton structure."""

import pytest

from repro.engine.compiler import compile_automaton
from repro.engine.runs import new_run
from repro.events.event import Event
from repro.events.schema import Domain
from repro.language.parser import parse_query
from repro.language.semantics import analyze


def automaton_for(text):
    return compile_automaton(analyze(parse_query(text)))


def seq_event(event_type, seq, ts=None, **attrs):
    event = Event(event_type, ts if ts is not None else float(seq), **attrs)
    event.seq = seq
    return event


class TestAutomatonStructure:
    def test_stage_chain(self):
        automaton = automaton_for("PATTERN SEQ(A a, B bs+, C c)")
        assert [s.event_type for s in automaton.stages] == ["A", "B", "C"]
        assert [s.is_kleene for s in automaton.stages] == [False, True, False]
        assert automaton.accepting_index == 3
        assert automaton.kleene_vars == {"bs"}

    def test_var_types(self):
        automaton = automaton_for("PATTERN SEQ(Buy b, Sell s)")
        assert automaton.var_types == {"b": "Buy", "s": "Sell"}

    def test_needed_aggregates_collected(self):
        automaton = automaton_for(
            "PATTERN SEQ(A as+) WITHIN 5 EVENTS "
            "WHERE avg(as.x) > 1 RANK BY count(as) DESC"
        )
        assert ("as", "avg", "x") in automaton.needed_aggregates
        assert ("as", "count", None) in automaton.needed_aggregates

    def test_trailing_negation_flag(self):
        with_trailing = automaton_for("PATTERN SEQ(A a, NOT C c) WITHIN 5 EVENTS")
        assert with_trailing.has_trailing_negation
        internal = automaton_for("PATTERN SEQ(A a, NOT C c, B b)")
        assert not internal.has_trailing_negation

    def test_stage_for_type(self):
        automaton = automaton_for("PATTERN SEQ(A x, B y, A z)")
        assert len(automaton.stage_for_type("A")) == 2
        assert automaton.first_stage().variable.name == "x"

    def test_kleene_never_gets_bind_predicates(self):
        automaton = automaton_for("PATTERN SEQ(A a, B bs+) WHERE bs.x > 1")
        kleene_stage = automaton.stages[1]
        assert not kleene_stage.bind_predicates
        assert len(kleene_stage.incremental_predicates) == 1


class TestRunLifecycle:
    def make_run(self, text="PATTERN SEQ(A a, B bs+, C c) WITHIN 10 EVENTS"):
        automaton = automaton_for(text)
        return automaton, new_run(automaton, seq_event("A", 0, x=1.0), (), {})

    def test_new_singleton_run(self):
        _automaton, run = self.make_run()
        assert run.stage == 1
        assert not run.kleene_open
        assert run.first_seq == run.last_seq == 0

    def test_new_kleene_run_opens(self):
        automaton = automaton_for("PATTERN SEQ(B bs+)")
        run = new_run(automaton, seq_event("B", 3, x=1.0), (), {})
        assert run.stage == 0 and run.kleene_open
        assert len(run.bindings["bs"]) == 1

    def test_extend_kleene_is_persistent(self):
        automaton, run = self.make_run()
        stage = automaton.stages[1]
        first = run.extend_kleene(stage, seq_event("B", 1, x=2.0))
        second = first.extend_kleene(stage, seq_event("B", 2, x=3.0))
        assert len(first.bindings["bs"]) == 1
        assert len(second.bindings["bs"]) == 2
        assert second.last_seq == 2

    def test_close_kleene_advances_stage(self):
        automaton, run = self.make_run()
        opened = run.extend_kleene(automaton.stages[1], seq_event("B", 1))
        closed = opened.close_kleene()
        assert closed.stage == 2 and not closed.kleene_open

    def test_bind_singleton(self):
        automaton, run = self.make_run("PATTERN SEQ(A a, B b)")
        bound = run.bind_singleton(automaton.stages[1], seq_event("B", 4))
        assert bound.is_complete
        assert bound.last_seq == 4

    def test_window_bounds(self):
        _automaton, run = self.make_run()
        assert run.window_end_seq() == 9  # first_seq 0 + span 10 - 1
        assert run.window_end_ts() is None
        assert not run.window_excludes(seq_event("B", 9))
        assert run.window_excludes(seq_event("B", 10))

    def test_time_window_bounds(self):
        automaton = automaton_for("PATTERN SEQ(A a, B b) WITHIN 5 SECONDS")
        run = new_run(automaton, seq_event("A", 0, ts=2.0), (), {})
        assert run.window_end_seq() is None
        assert run.window_end_ts() == 7.0

    def test_to_match_snapshot(self):
        automaton, run = self.make_run("PATTERN SEQ(A a, B b)")
        bound = run.bind_singleton(automaton.stages[1], seq_event("B", 4, ts=4.5))
        match = bound.to_match(7, "myquery")
        assert match.detection_index == 7
        assert match.query_name == "myquery"
        assert match.first_ts == 0.0 and match.last_ts == 4.5

    def test_trips_cleared_by_extension(self):
        automaton = automaton_for(
            "PATTERN SEQ(A a, B bs+, NOT C c, D d)"
        )
        run = new_run(automaton, seq_event("A", 0), (), {})
        opened = run.extend_kleene(automaton.stages[1], seq_event("B", 1))
        tripped = opened.tripped(0)
        assert tripped.blocked_by_trip(2)
        cleared = tripped.extend_kleene(automaton.stages[1], seq_event("B", 3))
        assert not cleared.blocked_by_trip(2)

    def test_context_serves_aggregates(self):
        automaton = automaton_for(
            "PATTERN SEQ(B bs+) WITHIN 5 EVENTS WHERE avg(bs.x) > 0"
        )
        tracked = {"bs": frozenset({"x"})}
        run = new_run(automaton, seq_event("B", 0, x=4.0), (), tracked)
        run = run.extend_kleene(automaton.stages[0], seq_event("B", 1, x=6.0))
        ctx = run.context()
        assert ctx.agg_lookup("bs", "avg", "x") == 5.0


class TestPartialView:
    def test_open_and_bound_variables(self):
        automaton = automaton_for(
            "PATTERN SEQ(A a, B bs+, C c) WITHIN 10 EVENTS"
        )
        run = new_run(automaton, seq_event("A", 0), (), {})
        run = run.extend_kleene(automaton.stages[1], seq_event("B", 1))
        view = run.partial_view(lambda _t, _a: Domain(0, 1), latest_timestamp=1.0)
        assert view.open_vars == {"bs", "c"}
        assert view.max_kleene_count == 10
        assert view.max_duration is None
        assert view.latest_timestamp == 1.0

    def test_closed_kleene_not_open(self):
        automaton = automaton_for("PATTERN SEQ(A a, B bs+, C c) WITHIN 10 EVENTS")
        run = new_run(automaton, seq_event("A", 0), (), {})
        run = run.extend_kleene(automaton.stages[1], seq_event("B", 1))
        run = run.close_kleene()
        view = run.partial_view(lambda _t, _a: None, latest_timestamp=None)
        assert view.open_vars == {"c"}

    def test_time_window_sets_max_duration(self):
        automaton = automaton_for("PATTERN SEQ(A a, B b) WITHIN 30 SECONDS")
        run = new_run(automaton, seq_event("A", 0, ts=5.0), (), {})
        view = run.partial_view(lambda _t, _a: None, latest_timestamp=5.0)
        assert view.max_duration == 30.0
        assert view.max_kleene_count is None
