"""Event-selection strategy semantics: STRICT vs SKIP_TILL_NEXT vs SKIP_TILL_ANY."""

from repro.events.event import Event

from tests.engine.helpers import pair_set, run_pattern


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


STREAM = [
    E("A", 1, x=1),
    E("B", 2, x=10),
    E("B", 3, x=20),
]


class TestSkipTillAny:
    def test_enumerates_all_combinations(self):
        matches = run_pattern("PATTERN SEQ(A a, B b) USING SKIP_TILL_ANY", STREAM)
        assert pair_set(matches, [("b", "x")]) == {(10,), (20,)}

    def test_combinations_across_starts(self):
        stream = [E("A", 1, x=1), E("A", 2, x=2), E("B", 3, x=10), E("B", 4, x=20)]
        matches = run_pattern("PATTERN SEQ(A a, B b) USING SKIP_TILL_ANY", stream)
        assert pair_set(matches, [("a", "x"), ("b", "x")]) == {
            (1, 10),
            (1, 20),
            (2, 10),
            (2, 20),
        }

    def test_kleene_subsets(self):
        stream = [E("A", 1, x=0), E("B", 2, x=1), E("B", 3, x=2)]
        matches = run_pattern("PATTERN SEQ(A a, B bs+) USING SKIP_TILL_ANY", stream)
        assert pair_set(matches, [("bs", "x")]) == {((1,),), ((2,),), ((1, 2),)}


class TestSkipTillNext:
    def test_deterministic_consumption(self):
        matches = run_pattern("PATTERN SEQ(A a, B b) USING SKIP_TILL_NEXT", STREAM)
        # The run from A consumes the first matching B only.
        assert pair_set(matches, [("b", "x")]) == {(10,)}

    def test_skips_irrelevant_and_failing_events(self):
        stream = [E("A", 1, x=5), E("B", 2, x=1), E("B", 3, x=9)]
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WHERE b.x > a.x USING SKIP_TILL_NEXT", stream
        )
        assert pair_set(matches, [("b", "x")]) == {(9,)}

    def test_kleene_takes_all_contiguous_matches(self):
        stream = [E("A", 1, x=0), E("B", 2, x=1), E("B", 3, x=2), E("C", 4, x=9)]
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+, C c) USING SKIP_TILL_NEXT", stream
        )
        # Skip-till-next consumes every matching B, so only the maximal
        # closure reaches C ({b1} alone would require skipping b2).
        assert pair_set(matches, [("bs", "x")]) == {((1, 2),)}

    def test_kleene_take_proceed_branch_on_same_event(self):
        # The second B could extend bs or (as a B-typed next stage) bind b2.
        stream = [E("A", 1, x=0), E("B", 2, x=1), E("B", 3, x=2)]
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+, B b2) USING SKIP_TILL_NEXT", stream
        )
        assert pair_set(matches, [("bs", "x"), ("b2", "x")]) == {((1,), 2)}


class TestStrict:
    def test_contiguous_match_found(self):
        matches = run_pattern("PATTERN SEQ(A a, B b) USING STRICT", STREAM)
        assert pair_set(matches, [("b", "x")]) == {(10,)}

    def test_gap_kills_run(self):
        stream = [E("A", 1, x=1), E("A", 2, x=2), E("B", 3, x=10)]
        matches = run_pattern("PATTERN SEQ(A a, B b) USING STRICT", stream)
        # run(A1) is killed by A2 (not consumable); run(A2)+B3 is contiguous.
        assert pair_set(matches, [("a", "x")]) == {(2,)}

    def test_predicate_failure_kills_run(self):
        stream = [E("A", 1, x=5), E("B", 2, x=1), E("B", 3, x=9)]
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) WHERE b.x > a.x USING STRICT", stream
        )
        assert matches == []

    def test_strict_kleene_contiguity(self):
        stream = [
            E("A", 1, x=0),
            E("B", 2, x=1),
            E("B", 3, x=2),
            E("C", 4, x=9),
        ]
        matches = run_pattern("PATTERN SEQ(A a, B bs+, C c) USING STRICT", stream)
        assert pair_set(matches, [("bs", "x")]) == {((1, 2),)}

    def test_strict_counts_kills(self):
        from tests.engine.helpers import make_matcher, feed

        matcher = make_matcher("PATTERN SEQ(A a, B b) USING STRICT")
        feed(matcher, [E("A", 1), E("A", 2)])
        assert matcher.stats.runs_killed_strict == 1


class TestStrategyContainment:
    """STRICT ⊆ SKIP_TILL_NEXT ⊆ SKIP_TILL_ANY on the same stream."""

    def signatures(self, strategy, stream):
        matches = run_pattern(
            f"PATTERN SEQ(A a, B b, C c) WHERE c.x > a.x USING {strategy}", stream
        )
        return pair_set(matches, [("a", "x"), ("b", "x"), ("c", "x")])

    def test_containment_chain(self):
        stream = [
            E("A", 1, x=1),
            E("B", 2, x=2),
            E("A", 3, x=3),
            E("C", 4, x=4),
            E("B", 5, x=5),
            E("C", 6, x=6),
        ]
        strict = self.signatures("STRICT", stream)
        skip_next = self.signatures("SKIP_TILL_NEXT", stream)
        skip_any = self.signatures("SKIP_TILL_ANY", stream)
        assert strict <= skip_next <= skip_any
        assert len(skip_any) > len(skip_next) or skip_next == skip_any
