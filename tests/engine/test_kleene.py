"""Kleene-plus semantics: prefixes, iteration predicates, aggregates."""

from repro.events.event import Event

from tests.engine.helpers import pair_set, run_pattern


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestTrailingKleene:
    def test_every_prefix_is_a_match(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+)",
            [E("A", 1, x=0), E("B", 2, x=1), E("B", 3, x=2), E("B", 4, x=3)],
        )
        assert pair_set(matches, [("bs", "x")]) == {
            ((1,),),
            ((1, 2),),
            ((1, 2, 3),),
        }

    def test_single_kleene_stage_pattern(self):
        matches = run_pattern(
            "PATTERN SEQ(B bs+)",
            [E("B", 1, x=1), E("B", 2, x=2)],
        )
        # every B starts its own run too, so the suffix run {b2} matches
        assert pair_set(matches, [("bs", "x")]) == {((1,),), ((1, 2),), ((2,),)}

    def test_kleene_requires_at_least_one(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+, C c)",
            [E("A", 1), E("C", 2)],
        )
        assert matches == []


class TestIterationPredicates:
    def test_prev_increasing_chain(self):
        matches = run_pattern(
            "PATTERN SEQ(B bs+) WHERE bs.x > prev(bs.x)",
            [E("B", 1, x=1), E("B", 2, x=3), E("B", 3, x=2), E("B", 4, x=5)],
        )
        # Chains restart when monotonicity breaks; each prefix emits.
        sigs = pair_set(matches, [("bs", "x")])
        assert ((1, 3),) in sigs
        assert ((1, 3, 2),) not in sigs

    def test_per_element_threshold(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+, C c) WHERE bs.x > 10",
            [E("A", 1), E("B", 2, x=5), E("B", 3, x=15), E("C", 4)],
        )
        assert pair_set(matches, [("bs", "x")]) == {((15,),)}

    def test_per_element_reference_to_earlier_var(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+, C c) WHERE bs.x > a.x",
            [E("A", 1, x=10), E("B", 2, x=5), E("B", 3, x=20), E("C", 4, x=0)],
        )
        assert pair_set(matches, [("bs", "x")]) == {((20,),)}

    def test_running_aggregate_in_iteration(self):
        # each element must exceed the running max of previous ones
        matches = run_pattern(
            "PATTERN SEQ(B bs+, C c) WHERE bs.x > max(bs.x)",
            [E("B", 1, x=1), E("B", 2, x=2), E("B", 3, x=1), E("C", 4)],
        )
        sigs = pair_set(matches, [("bs", "x")])
        # under skip-till-next, b3 (x=1) fails max-so-far and is skipped
        assert ((1, 2),) in sigs


class TestKleeneAggregates:
    def test_completion_aggregate_filters_prefixes(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+) WHERE count(bs) >= 2",
            [E("A", 1), E("B", 2, x=1), E("B", 3, x=2), E("B", 4, x=3)],
        )
        assert pair_set(matches, [("bs", "x")]) == {((1, 2),), ((1, 2, 3),)}

    def test_aggregate_after_kleene_closes(self):
        matches = run_pattern(
            "PATTERN SEQ(B bs+, C c) WHERE avg(bs.x) < c.x",
            [E("B", 1, x=10), E("B", 2, x=20), E("C", 3, x=16)],
        )
        # avg(10,20)=15 < 16 passes
        assert pair_set(matches, [("bs", "x")]) == {((10, 20),)}

    def test_sum_aggregate(self):
        matches = run_pattern(
            "PATTERN SEQ(B bs+) WHERE sum(bs.x) >= 6",
            [E("B", 1, x=1), E("B", 2, x=2), E("B", 3, x=3)],
        )
        assert pair_set(matches, [("bs", "x")]) == {((1, 2, 3),)}

    def test_first_last(self):
        matches = run_pattern(
            "PATTERN SEQ(B bs+) WHERE last(bs.x) - first(bs.x) >= 2",
            [E("B", 1, x=1), E("B", 2, x=2), E("B", 3, x=4)],
        )
        # the run starting at b2 also qualifies: 4 - 2 >= 2
        assert pair_set(matches, [("bs", "x")]) == {((1, 2, 4),), ((2, 4),)}


class TestMidPatternKleene:
    def test_kleene_between_singletons(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+, C c)",
            [E("A", 1, x=0), E("B", 2, x=1), E("B", 3, x=2), E("C", 4, x=9)],
        )
        assert pair_set(matches, [("bs", "x"), ("c", "x")]) == {((1, 2), 9)}

    def test_two_kleene_stages(self):
        matches = run_pattern(
            "PATTERN SEQ(A as+, B bs+) USING SKIP_TILL_ANY",
            [E("A", 1, x=1), E("A", 2, x=2), E("B", 3, x=3)],
        )
        sigs = pair_set(matches, [("as", "x"), ("bs", "x")])
        assert ((1,), (3,)) in sigs
        assert ((1, 2), (3,)) in sigs
        assert ((2,), (3,)) in sigs

    def test_kleene_window_expiry_mid_binding(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+, C c) WITHIN 3 EVENTS",
            [E("A", 1), E("B", 2), E("B", 3), E("B", 4), E("C", 5)],
        )
        assert matches == []
