"""PARTITION BY semantics."""

from repro.events.event import Event

from tests.engine.helpers import feed, make_matcher, pair_set, run_pattern


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestPartitioning:
    def test_events_only_join_within_partition(self):
        matches = run_pattern(
            "PATTERN SEQ(Buy b, Sell s) PARTITION BY sym",
            [
                E("Buy", 1, sym="A", p=1),
                E("Buy", 2, sym="B", p=2),
                E("Sell", 3, sym="A", p=3),
                E("Sell", 4, sym="B", p=4),
            ],
        )
        assert pair_set(matches, [("b", "p"), ("s", "p")]) == {(1, 3), (2, 4)}

    def test_multi_attribute_partition(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) PARTITION BY sym, region",
            [
                E("A", 1, sym="X", region="eu", p=1),
                E("B", 2, sym="X", region="us", p=2),
                E("B", 3, sym="X", region="eu", p=3),
            ],
        )
        assert pair_set(matches, [("b", "p")]) == {(3,)}

    def test_missing_partition_attribute_skips_event(self):
        matcher = make_matcher("PATTERN SEQ(A a, B b) PARTITION BY sym")
        matches = feed(matcher, [E("A", 1, sym="X"), E("B", 2)])
        assert matches == []
        assert matcher.stats.events_skipped_no_key == 1

    def test_strict_contiguity_is_per_partition(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) PARTITION BY sym USING STRICT",
            [
                E("A", 1, sym="X", p=1),
                E("A", 2, sym="Y", p=2),  # different partition: no break
                E("B", 3, sym="X", p=3),
            ],
        )
        assert pair_set(matches, [("a", "p"), ("b", "p")]) == {(1, 3)}

    def test_partition_key_recorded_on_match(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) PARTITION BY sym",
            [E("A", 1, sym="X"), E("B", 2, sym="X")],
        )
        assert matches[0].partition_key == ("X",)

    def test_unpartitioned_uses_global_key(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B b)", [E("A", 1), E("B", 2)]
        )
        assert matches[0].partition_key == ()

    def test_negation_scoped_to_partition(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, NOT C c, B b) PARTITION BY sym",
            [
                E("A", 1, sym="X"),
                E("C", 2, sym="Y"),  # other partition: harmless
                E("B", 3, sym="X"),
            ],
        )
        assert len(matches) == 1
