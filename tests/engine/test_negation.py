"""Negation semantics: internal guards, Kleene trips, trailing pendings."""

from repro.events.event import Event

from tests.engine.helpers import feed, make_matcher, pair_set, run_pattern


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestInternalNegation:
    def test_negated_event_kills_run(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, NOT C c, B b)",
            [E("A", 1), E("C", 2), E("B", 3)],
        )
        assert matches == []

    def test_no_negated_event_allows_match(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, NOT C c, B b)",
            [E("A", 1), E("B", 2)],
        )
        assert len(matches) == 1

    def test_negated_event_before_guard_opens_is_harmless(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, NOT C c, B b)",
            [E("C", 1), E("A", 2), E("B", 3)],
        )
        assert len(matches) == 1

    def test_negated_event_after_guard_closes_is_harmless(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, NOT C c, B b)",
            [E("A", 1), E("B", 2), E("C", 3)],
        )
        assert len(matches) == 1

    def test_negation_predicate_filters_kills(self):
        query = "PATTERN SEQ(A a, NOT C c, B b) WHERE c.x > a.x"
        # C with x below a.x does not violate the guard
        survives = run_pattern(query, [E("A", 1, x=10), E("C", 2, x=5), E("B", 3, x=0)])
        assert len(survives) == 1
        killed = run_pattern(query, [E("A", 1, x=10), E("C", 2, x=15), E("B", 3, x=0)])
        assert killed == []

    def test_kill_counted_in_stats(self):
        matcher = make_matcher("PATTERN SEQ(A a, NOT C c, B b)")
        feed(matcher, [E("A", 1), E("C", 2), E("B", 3)])
        assert matcher.stats.runs_killed_negation == 1

    def test_negation_between_later_stages(self):
        query = "PATTERN SEQ(A a, B b, NOT C c, D d)"
        assert run_pattern(query, [E("A", 1), E("C", 2), E("B", 3), E("D", 4)])
        assert not run_pattern(query, [E("A", 1), E("B", 2), E("C", 3), E("D", 4)])


class TestNegationAfterKleene:
    QUERY = "PATTERN SEQ(A a, B bs+, NOT C c, D d)"

    def test_c_between_last_b_and_d_kills(self):
        matches = run_pattern(
            self.QUERY, [E("A", 1), E("B", 2, x=1), E("C", 3), E("D", 4)]
        )
        assert matches == []

    def test_c_cleared_by_later_kleene_element(self):
        # C arrives mid-closure; a later B restarts the guard, so the
        # combination ending at that B is clean.
        matches = run_pattern(
            self.QUERY,
            [E("A", 1), E("B", 2, x=1), E("C", 3), E("B", 4, x=2), E("D", 5)],
        )
        assert pair_set(matches, [("bs", "x")]) == {((1, 2),)}

    def test_trip_counted(self):
        matcher = make_matcher(self.QUERY)
        feed(matcher, [E("A", 1), E("B", 2, x=1), E("C", 3)])
        assert matcher.stats.runs_tripped == 1

    def test_trip_under_skip_till_any_kills_only_stale_branches(self):
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+, NOT C c, D d) USING SKIP_TILL_ANY",
            [E("A", 1), E("B", 2, x=1), E("C", 3), E("B", 4, x=2), E("D", 5)],
        )
        sigs = pair_set(matches, [("bs", "x")])
        # closures ending at b1 are poisoned by C; those ending at b2 are fine
        assert ((1,),) not in sigs
        assert ((1, 2),) in sigs
        assert ((2,),) in sigs


class TestTrailingNegation:
    QUERY = "PATTERN SEQ(A a, B b, NOT C c) WITHIN 3 EVENTS"

    def test_confirmed_at_window_expiry(self):
        matches = run_pattern(
            self.QUERY,
            [E("A", 1), E("B", 2), E("D", 3), E("D", 4), E("D", 5)],
        )
        # D events are irrelevant; flush confirms the pending match.
        assert len(matches) == 1

    def test_killed_by_negated_event_in_window(self):
        matches = run_pattern(
            self.QUERY,
            [E("A", 1), E("B", 2), E("C", 3)],
        )
        assert matches == []

    def test_negated_event_after_window_is_harmless(self):
        # C arrives at seq 3; window span 3 from seq 0 → pending expired first.
        matches = run_pattern(
            "PATTERN SEQ(A a, B b, NOT C c) WITHIN 3 EVENTS",
            [E("A", 1), E("B", 2), E("Z", 3), E("C", 4)],
        )
        # Z is irrelevant (not sequenced into the matcher but sequenced
        # globally), C at global seq 3 is outside [0, 3).
        assert len(matches) == 1

    def test_flush_confirms_pending(self):
        matcher = make_matcher(self.QUERY)
        matches = feed(matcher, [E("A", 1), E("B", 2)], flush=True)
        assert len(matches) == 1
        assert matcher.stats.pending_created == 1
        assert matcher.stats.pending_confirmed == 1

    def test_pending_killed_stat(self):
        matcher = make_matcher(self.QUERY)
        feed(matcher, [E("A", 1), E("B", 2), E("C", 3)])
        assert matcher.stats.pending_killed == 1

    def test_trailing_negation_predicate(self):
        query = "PATTERN SEQ(A a, B b, NOT C c) WHERE c.x > b.x WITHIN 5 EVENTS"
        survived = run_pattern(
            query, [E("A", 1, x=0), E("B", 2, x=10), E("C", 3, x=5)]
        )
        assert len(survived) == 1
        killed = run_pattern(
            query, [E("A", 1, x=0), E("B", 2, x=10), E("C", 3, x=50)]
        )
        assert killed == []

    def test_results_delayed_until_confirmation(self):
        matcher = make_matcher(self.QUERY)
        assigner_events = [E("A", 1), E("B", 2)]
        immediate = feed(matcher, assigner_events, flush=False)
        assert immediate == []  # still pending
        assert matcher.pending_count == 1
