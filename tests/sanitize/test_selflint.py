"""The CEPR6xx codebase self-lint (``cepr lint --self``)."""

import textwrap

from repro.language.analysis.diagnostics import Severity
from repro.sanitize.selflint import lint_file, run_selflint


def lint_source(tmp_path, source, deterministic=True, relpath="repro/mod.py"):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(source))
    return lint_file(path, relpath, deterministic)


def codes(diagnostics):
    return [diagnostic.code for diagnostic in diagnostics]


class TestWallClockRule:
    def test_time_time_in_deterministic_path(self, tmp_path):
        found = lint_source(tmp_path, """
            import time

            def score():
                return time.time()
        """)
        assert codes(found) == ["CEPR601"]
        assert found[0].severity is Severity.ERROR
        assert found[0].span == "repro/mod.py:5:12"
        assert "time.time" in found[0].message

    def test_datetime_now_and_random(self, tmp_path):
        found = lint_source(tmp_path, """
            import datetime
            import random

            def jitter():
                stamp = datetime.datetime.now()
                return random.random(), stamp
        """)
        assert codes(found) == ["CEPR601", "CEPR601"]

    def test_perf_counter_flagged(self, tmp_path):
        found = lint_source(tmp_path, """
            import time

            def timing():
                return time.perf_counter()
        """)
        assert codes(found) == ["CEPR601"]

    def test_non_deterministic_package_is_exempt(self, tmp_path):
        found = lint_source(tmp_path, """
            import time

            def timing():
                return time.perf_counter()
        """, deterministic=False)
        assert found == []

    def test_pragma_suppresses(self, tmp_path):
        found = lint_source(tmp_path, """
            import time

            def timing():
                return time.time()  # san: allow-wallclock
        """)
        assert found == []


class TestAsyncBlockingRule:
    def test_time_sleep_in_async_def(self, tmp_path):
        found = lint_source(tmp_path, """
            import time

            async def handler():
                time.sleep(1.0)
        """, deterministic=False)
        assert codes(found) == ["CEPR602"]

    def test_open_and_subprocess_in_async_def(self, tmp_path):
        found = lint_source(tmp_path, """
            import subprocess

            async def handler():
                with open("f") as fh:
                    fh.read()
                subprocess.run(["true"])
        """, deterministic=False)
        assert codes(found) == ["CEPR602", "CEPR602"]

    def test_sync_helper_nested_in_async_is_exempt(self, tmp_path):
        found = lint_source(tmp_path, """
            import time

            async def handler():
                def helper():
                    time.sleep(1.0)
                return helper
        """, deterministic=False)
        assert found == []

    def test_blocking_call_in_sync_def_is_fine(self, tmp_path):
        found = lint_source(tmp_path, """
            import time

            def worker():
                time.sleep(0.1)
        """, deterministic=False)
        assert found == []

    def test_pragma_suppresses(self, tmp_path):
        found = lint_source(tmp_path, """
            import time

            async def handler():
                time.sleep(1.0)  # san: allow-blocking
        """, deterministic=False)
        assert found == []


class TestRawLockRule:
    def test_threading_lock_flagged_everywhere(self, tmp_path):
        source = """
            import threading

            lock = threading.Lock()
        """
        assert codes(lint_source(tmp_path, source)) == ["CEPR603"]
        assert codes(lint_source(tmp_path, source, deterministic=False)) == [
            "CEPR603"
        ]

    def test_rlock_and_condition_flagged(self, tmp_path):
        found = lint_source(tmp_path, """
            import threading

            a = threading.RLock()
            b = threading.Condition()
        """, deterministic=False)
        assert codes(found) == ["CEPR603", "CEPR603"]

    def test_tracked_lock_is_fine(self, tmp_path):
        found = lint_source(tmp_path, """
            from repro.sanitize.locks import tracked_lock

            lock = tracked_lock("mymodule.state")
        """, deterministic=False)
        assert found == []

    def test_pragma_suppresses(self, tmp_path):
        found = lint_source(tmp_path, """
            import threading

            lock = threading.Lock()  # san: allow-raw-lock (wrapper internals)
        """, deterministic=False)
        assert found == []


class TestTreeLint:
    def test_live_tree_is_clean(self):
        """The shipped source passes its own lint — the CI gate."""
        assert run_selflint() == []
