"""Lock-order race detection and contention accounting."""

import threading

import pytest

from repro.observability.registry import MetricsRegistry
from repro.sanitize import (
    LockOrderGraph,
    Sanitizer,
    SanitizerError,
    TrackedLock,
    default_lock_sanitizer,
    disable_sanitizer,
    enable_sanitizer,
    register_lock_metrics,
    tracked_lock,
)


def fresh_pair():
    """A private graph + log-mode sanitizer, isolated from the defaults."""
    return LockOrderGraph(), Sanitizer(scope="test-locks", mode="log")


def make(name, graph, san):
    return TrackedLock(name, graph=graph, sanitizer=san)


class TestFactory:
    def test_disabled_returns_plain_lock(self):
        disable_sanitizer()
        lock = tracked_lock("factory.off")
        assert not isinstance(lock, TrackedLock)
        assert isinstance(lock, type(threading.Lock()))

    def test_enabled_returns_tracked_lock(self):
        enable_sanitizer()
        lock = tracked_lock("factory.on")
        assert isinstance(lock, TrackedLock)
        assert lock.name == "factory.on"

    def test_explicit_sanitizer_forces_tracking(self):
        disable_sanitizer()
        _, san = fresh_pair()
        lock = tracked_lock("factory.forced", sanitizer=san)
        assert isinstance(lock, TrackedLock)

    def test_default_sanitizer_is_shared(self):
        assert default_lock_sanitizer() is default_lock_sanitizer()


class TestLockSemantics:
    def test_context_manager_and_locked(self):
        graph, san = fresh_pair()
        lock = make("sem.a", graph, san)
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()
        assert lock.acquisitions == 1
        assert lock.contended == 0

    def test_nonblocking_acquire_failure_is_not_an_acquisition(self):
        graph, san = fresh_pair()
        lock = make("sem.b", graph, san)
        lock.acquire()
        assert lock.acquire(blocking=False) is False
        assert lock.acquisitions == 1
        lock.release()
        assert lock.acquire(blocking=False) is True
        lock.release()
        assert lock.acquisitions == 2

    def test_out_of_order_release_is_legal(self):
        graph, san = fresh_pair()
        a, b = make("sem.c", graph, san), make("sem.d", graph, san)
        a.acquire()
        b.acquire()
        a.release()  # release in non-nested order
        b.release()
        with a:
            pass  # held stack stayed coherent
        assert san.total_trips == 0

    def test_contended_acquire_records_wait(self):
        graph, san = fresh_pair()
        lock = make("sem.e", graph, san)
        holding = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                holding.set()
                release.wait()

        worker = threading.Thread(target=holder)
        worker.start()
        holding.wait()
        threading.Timer(0.05, release.set).start()
        assert lock.acquire() is True  # blocks until the holder lets go
        lock.release()
        worker.join()
        assert lock.acquisitions == 2
        assert lock.contended == 1
        # Every acquisition lands in the wait distribution (zeros included).
        assert lock.wait_times.count == 2


class TestLockOrderGraph:
    def test_inversion_across_two_threads_trips(self):
        graph, san = fresh_pair()
        a, b = make("ord.a", graph, san), make("ord.b", graph, san)

        def forward():
            with a:
                with b:
                    pass

        t = threading.Thread(target=forward)
        t.start()
        t.join()
        with b:
            with a:  # inverted order: closes the a->b->a cycle
                pass
        assert san.trips["lock-order-cycle"] == 1

    def test_cycle_reported_once_per_signature(self):
        graph, san = fresh_pair()
        a, b = make("dedup.a", graph, san), make("dedup.b", graph, san)
        with a:
            with b:
                pass
        for _ in range(3):
            with b:
                with a:
                    pass
        assert san.trips["lock-order-cycle"] == 1

    def test_three_lock_cycle(self):
        graph, san = fresh_pair()
        a = make("tri.a", graph, san)
        b = make("tri.b", graph, san)
        c = make("tri.c", graph, san)
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass
        assert san.trips["lock-order-cycle"] == 1

    def test_consistent_order_never_trips(self):
        graph, san = fresh_pair()
        a, b, c = (make(f"ok.{i}", graph, san) for i in "abc")
        for _ in range(5):
            with a:
                with b:
                    with c:
                        pass
        assert san.total_trips == 0
        edges = graph.edges()
        assert edges["ok.a"] >= {"ok.b"}
        assert edges["ok.b"] >= {"ok.c"}

    def test_raise_mode_surfaces_the_cycle(self):
        graph = LockOrderGraph()
        san = Sanitizer(scope="test-locks", mode="raise")
        a, b = make("raise.a", graph, san), make("raise.b", graph, san)
        with a:
            with b:
                pass
        with pytest.raises(SanitizerError, match="lock-order cycle"):
            with b:
                with a:
                    pass


class TestLockMetrics:
    def test_plain_lock_is_a_noop(self):
        registry = MetricsRegistry()
        register_lock_metrics(registry, threading.Lock())
        assert registry.collect() == []

    def test_tracked_lock_registers_counters_and_histogram(self):
        graph, san = fresh_pair()
        lock = make("metrics.lock", graph, san)
        with lock:
            pass
        registry = MetricsRegistry()
        register_lock_metrics(registry, lock, shard="0")
        samples = {
            sample.name: sample for sample in registry.collect()
        }
        assert samples["lock_acquisitions_total"].value == 1
        assert samples["lock_acquisitions_total"].labels == {
            "lock": "metrics.lock", "shard": "0",
        }
        assert samples["lock_contended_total"].value == 0
        assert samples["lock_wait_seconds"].count == 1
