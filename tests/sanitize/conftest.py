"""Sanitize-suite fixtures: never leak a flipped global switch."""

import pytest

from repro.sanitize.core import refresh_from_env


@pytest.fixture(autouse=True)
def _restore_sanitizer_switch():
    """Tests flip the module switch; restore it to the environment after.

    Under a plain run this re-disables the sanitizer; under the CI
    sanitize-smoke job (``CEPR_SANITIZE=1``) it re-enables it, so the rest
    of the suite keeps the mode it was launched with either way.
    """
    yield
    refresh_from_env()
