"""Detection power: every sanitizer check catches its seeded defect.

Each test injects one representative bug of the class the check guards
against — an unsound interval evaluator, a broken top-k insert, a
refcount leak, a lock-order inversion, a cross-thread mutation, a lossy
restore, a rewound sequencer, a stale activity cache, a blocked event
loop — and asserts the corresponding trip fires.  Together with the
clean-run zero-trip assertions (and the whole suite running under
``CEPR_SANITIZE=1`` in CI), this is the evidence the sanitizer detects
real defects without false positives.
"""

import asyncio
import threading
import time

import pytest

from repro import CEPREngine, Event
from repro.engine.matcher import PatternMatcher
from repro.language.intervals import Interval, IntervalEvaluator
from repro.ranking.topk import EpochTopK
from repro.runtime.router import SharedExecutionIndex
from repro.sanitize import Sanitizer, SanitizerError
from repro.sanitize.aio import LoopStallWatchdog
from repro.workloads.stock import StockWorkload

RANKED = """
    PATTERN SEQ(A a)
    WITHIN 5 EVENTS
    RANK BY a.x DESC
    LIMIT 2
    EMIT ON WINDOW CLOSE
"""

PAIR = """
    PATTERN SEQ(A a, B b)
    WHERE a.x > 0
    WITHIN 10 EVENTS
    RANK BY b.x DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""

PRUNED = """
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 40 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""


def log_engine(**kwargs):
    """A sanitized engine whose trips count instead of raising."""
    engine = CEPREngine(sanitize=True, **kwargs)
    engine.sanitizer._mode = "log"
    return engine


def stream(n, start=1):
    return [Event("A", float(ts), x=ts) for ts in range(start, start + n)]


class TestScoreBound:
    def test_unsound_interval_evaluator_trips(self, monkeypatch):
        # Seeded defect: the evaluator claims every numeric expression is
        # exactly 0 — the justification score-bound pruning trusts is now
        # unsound, and emitted scores escape their interval.
        monkeypatch.setattr(
            IntervalEvaluator, "bound", lambda self, expr: Interval(0.0, 0.0)
        )
        workload = StockWorkload(seed=11)
        engine = log_engine(registry=workload.registry())
        engine.register_query(PRUNED)
        engine.run(workload.events(400))
        engine.flush()
        assert engine.sanitizer.trips["score-bound"] > 0

    def test_sound_evaluator_is_quiet(self):
        workload = StockWorkload(seed=11)
        engine = log_engine(registry=workload.registry())
        engine.register_query(PRUNED)
        engine.run(workload.events(400))
        engine.flush()
        assert engine.sanitizer.total_trips == 0


class TestRankingOrder:
    def test_broken_topk_insert_trips(self, monkeypatch):
        # Seeded defect: insert appends in arrival order and never evicts,
        # so emitted rankings are unsorted and overflow LIMIT.
        def broken_insert(self, match):
            self._keys.append(match.sort_key())
            self._matches.append(match)
            return True

        monkeypatch.setattr(EpochTopK, "insert", broken_insert)
        engine = log_engine()
        engine.register_query(RANKED)
        engine.run(stream(12))
        engine.flush()
        assert engine.sanitizer.trips["ranking-order"] > 0


class TestSharedIndexCoherence:
    def test_refcount_leak_after_unregister_trips(self, monkeypatch):
        # Seeded defect: UNREGISTER forgets to release index entries.
        monkeypatch.setattr(
            SharedExecutionIndex, "remove_query", lambda self, query: None
        )
        engine = log_engine()
        engine.register_query(PAIR, name="q1")
        engine.register_query(PAIR, name="q2")
        engine.unregister_query("q1")
        assert engine.sanitizer.trips["shared-index-coherence"] > 0

    def test_clean_churn_is_quiet(self):
        engine = log_engine()
        for round_ in range(3):
            engine.register_query(PAIR, name=f"q{round_}")
        for round_ in range(3):
            engine.unregister_query(f"q{round_}")
        assert engine.sanitizer.total_trips == 0
        assert engine.shared.is_empty()


class TestCrossThreadMutation:
    def test_unsynchronized_second_thread_trips(self):
        engine = log_engine()
        engine.push(Event("A", 1.0, x=1))  # main thread claims the engine

        def intrude():
            engine.push(Event("A", 2.0, x=2))

        worker = threading.Thread(target=intrude)
        worker.start()
        worker.join()
        assert engine.sanitizer.trips["cross-thread-mutation"] == 1

    def test_raise_mode_surfaces_in_the_intruding_thread(self):
        engine = CEPREngine(sanitize=True)  # default raise mode
        engine.push(Event("A", 1.0, x=1))
        caught = []

        def intrude():
            try:
                engine.push(Event("A", 2.0, x=2))
            except SanitizerError as exc:
                caught.append(exc)

        worker = threading.Thread(target=intrude)
        worker.start()
        worker.join()
        assert len(caught) == 1
        assert "cross-thread-mutation" in str(caught[0])


class TestSnapshotRoundTrip:
    def test_lossy_restore_trips(self, monkeypatch):
        # Seeded defect: the sequencer codec loses the assignment position.
        from repro.events.time import SequenceAssigner

        def lossy_restore(self, state):
            self._next_seq = 0
            self._last_timestamp = None

        engine = log_engine()
        engine.register_query(RANKED)
        engine.run(stream(4))
        monkeypatch.setattr(SequenceAssigner, "restore", lossy_restore)
        engine.snapshot()
        assert engine.sanitizer.trips["snapshot-roundtrip"] == 1

    def test_faithful_codec_is_quiet(self):
        engine = log_engine()
        engine.register_query(RANKED)
        engine.run(stream(4))
        engine.snapshot()
        assert engine.sanitizer.total_trips == 0


class TestSeqMonotonicity:
    def test_rewound_sequencer_trips(self):
        engine = log_engine()
        for event in stream(3):
            engine.push(event)
        engine._sequencer._next_seq = 0  # seeded defect: position rewinds
        engine.push(Event("A", 4.0, x=4))
        assert engine.sanitizer.trips["seq-monotonicity"] == 1


class TestMatcherActivityCache:
    def test_stale_cache_trips(self, monkeypatch):
        # Seeded defect: the O(1) activity caches are never refreshed, so
        # the quiescent-skip gate would elide live work.
        monkeypatch.setattr(PatternMatcher, "_refresh_activity", lambda self: 0)
        engine = log_engine()
        engine.register_query(PAIR)
        engine.push(Event("A", 1.0, x=1))  # starts a live run; cache says 0
        assert engine.sanitizer.trips["matcher-activity-cache"] > 0


class TestRunInvariants:
    def test_dangling_binding_trips(self):
        engine = log_engine()
        handle = engine.register_query(PAIR)
        engine.push(Event("A", 1.0, x=1))
        run = next(iter(handle.matcher.iter_runs()))
        run.bindings["zz_unknown"] = run.bindings["a"]  # seeded corruption
        engine.push(Event("A", 2.0, x=2))
        assert engine.sanitizer.trips["dangling-binding"] > 0

    def test_inverted_run_span_trips(self):
        engine = log_engine()
        handle = engine.register_query(PAIR)
        engine.push(Event("A", 1.0, x=1))
        run = next(iter(handle.matcher.iter_runs()))
        object.__setattr__(run, "first_seq", run.last_seq + 5)
        engine.push(Event("A", 2.0, x=2))
        assert engine.sanitizer.trips["run-monotonicity"] > 0


class TestEventLoopBlocked:
    def test_blocking_call_on_the_loop_trips(self):
        san = Sanitizer(scope="serve-test", mode="log")

        async def scenario():
            watchdog = LoopStallWatchdog(san, threshold=0.15, tick=0.02).start()
            try:
                await asyncio.sleep(0.05)
                time.sleep(0.5)  # the defect: blocks the loop thread
                await asyncio.sleep(0.1)
            finally:
                watchdog.stop()
            return watchdog

        watchdog = asyncio.run(scenario())
        assert san.trips["event-loop-blocked"] >= 1
        assert watchdog.stalls >= 1
        assert watchdog.worst_gap > 0.15

    def test_healthy_loop_is_quiet(self):
        san = Sanitizer(scope="serve-test", mode="log")

        async def scenario():
            watchdog = LoopStallWatchdog(san, threshold=0.25, tick=0.02).start()
            try:
                for _ in range(10):
                    await asyncio.sleep(0.02)
            finally:
                watchdog.stop()

        asyncio.run(scenario())
        assert san.total_trips == 0
