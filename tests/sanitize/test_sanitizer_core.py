"""CEPRSan core: the switch, reporting modes, and thread affinity."""

import threading

import pytest

from repro import CEPREngine, Event
from repro.sanitize import (
    Sanitizer,
    SanitizerError,
    ThreadAffinity,
    disable_sanitizer,
    enable_sanitizer,
    release_affinity,
    sanitizer_enabled,
    sanitizer_mode,
)
from repro.sanitize.core import ENV_VAR, refresh_from_env

EVERY = """
    PATTERN SEQ(A a)
    WITHIN 10 EVENTS
    RANK BY a.x DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""


class TestSwitch:
    def test_enable_disable_round_trip(self):
        disable_sanitizer()
        assert not sanitizer_enabled()
        assert sanitizer_mode() is None
        enable_sanitizer()
        assert sanitizer_enabled()
        assert sanitizer_mode() == "raise"
        enable_sanitizer(mode="log")
        assert sanitizer_mode() == "log"
        disable_sanitizer()
        assert not sanitizer_enabled()

    def test_enable_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="'raise' or 'log'"):
            enable_sanitizer(mode="warn")

    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("", None),
            ("0", None),
            ("off", None),
            ("false", None),
            ("no", None),
            ("1", "raise"),
            ("true", "raise"),
            ("raise", "raise"),
            ("log", "log"),
            ("LOG", "log"),
        ],
    )
    def test_refresh_from_env(self, monkeypatch, raw, expected):
        monkeypatch.setenv(ENV_VAR, raw)
        refresh_from_env()
        assert sanitizer_mode() == expected

    def test_refresh_with_unset_env_disables(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        refresh_from_env()
        assert not sanitizer_enabled()


class TestSanitizerReporting:
    def test_raise_mode_raises_and_counts(self):
        disable_sanitizer()
        san = Sanitizer(scope="test", mode="raise")
        with pytest.raises(SanitizerError, match=r"\[some-check\] boom"):
            san.trip("some-check", "boom", detail=1)
        assert san.trips["some-check"] == 1
        assert san.total_trips == 1

    def test_log_mode_counts_without_raising(self):
        san = Sanitizer(scope="test", mode="log")
        san.trip("a-check", "first")
        san.trip("a-check", "second")
        san.trip("b-check", "third")
        assert san.trips == {"a-check": 2, "b-check": 1}
        assert san.total_trips == 3

    def test_sanitizer_error_is_an_assertion_error(self):
        assert issubclass(SanitizerError, AssertionError)

    def test_unpinned_mode_follows_global_switch(self):
        san = Sanitizer(scope="test")
        enable_sanitizer(mode="log")
        assert san.mode == "log"
        enable_sanitizer(mode="raise")
        assert san.mode == "raise"
        disable_sanitizer()
        # An engine built while enabled may outlive a disable; trips
        # must still fail loudly rather than silently pass.
        assert san.mode == "raise"


class TestThreadAffinity:
    def test_owner_thread_is_free_to_mutate(self):
        san = Sanitizer(scope="test", mode="log")
        affinity = ThreadAffinity(san, "widget")
        affinity.check("push")
        affinity.check("push")
        affinity.check("flush")
        assert san.total_trips == 0

    def test_second_live_thread_trips(self):
        san = Sanitizer(scope="test", mode="log")
        affinity = ThreadAffinity(san, "widget")
        affinity.check("push")  # main thread claims ownership

        worker = threading.Thread(target=lambda: affinity.check("push"))
        worker.start()
        worker.join()
        assert san.trips["cross-thread-mutation"] == 1

    def test_release_allows_handoff(self):
        san = Sanitizer(scope="test", mode="log")
        affinity = ThreadAffinity(san, "widget")
        affinity.check("push")
        affinity.release()

        worker = threading.Thread(target=lambda: affinity.check("push"))
        worker.start()
        worker.join()
        assert san.total_trips == 0

    def test_dead_owner_is_reclaimable(self):
        san = Sanitizer(scope="test", mode="log")
        affinity = ThreadAffinity(san, "widget")
        worker = threading.Thread(target=lambda: affinity.check("push"))
        worker.start()
        worker.join()
        # The owning thread exited: the next mutator inherits ownership.
        affinity.check("push")
        assert san.total_trips == 0

    def test_release_affinity_helper_tolerates_plain_objects(self):
        release_affinity(object())  # no 'affinity' attribute: no-op
        engine = CEPREngine(sanitize=True)
        assert engine.affinity is not None
        engine.push(Event("A", 1.0, x=1))
        release_affinity(engine)
        worker = threading.Thread(target=lambda: engine.push(Event("A", 2.0, x=2)))
        worker.start()
        worker.join()
        assert engine.sanitizer.total_trips == 0


class TestEngineWiring:
    def test_disabled_engine_is_structurally_untouched(self):
        engine = CEPREngine(sanitize=False)
        assert engine.sanitizer is None
        assert not hasattr(engine, "affinity")
        # No instance-attribute wrappers shadow the class hot-path methods.
        for name in ("_dispatch", "advance_time", "flush", "snapshot",
                     "register_query", "unregister_query", "restore"):
            assert name not in vars(engine)

    def test_explicit_param_overrides_global_switch(self):
        enable_sanitizer()
        assert CEPREngine(sanitize=False).sanitizer is None
        disable_sanitizer()
        assert CEPREngine(sanitize=True).sanitizer is not None

    def test_default_follows_global_switch(self):
        disable_sanitizer()
        assert CEPREngine().sanitizer is None
        enable_sanitizer()
        assert CEPREngine().sanitizer is not None

    def test_clean_run_has_zero_trips(self):
        engine = CEPREngine(sanitize=True)
        engine.register_query(EVERY)
        engine.run(Event("A", float(ts), x=ts) for ts in range(1, 30))
        state = engine.snapshot()  # exercises the round-trip self-check
        assert state
        assert engine.sanitizer.total_trips == 0

    def test_metrics_expose_trip_counter(self):
        engine = CEPREngine(sanitize=True)
        engine.push(Event("A", 1.0, x=1))
        samples = {
            (sample.name, tuple(sorted(sample.labels.items()))): sample.value
            for sample in engine.metrics_registry().collect()
        }
        assert samples[("sanitizer_trips_total", ())] == 0

    def test_disabled_metrics_omit_trip_counter(self):
        engine = CEPREngine(sanitize=False)
        names = {sample.name for sample in engine.metrics_registry().collect()}
        assert "sanitizer_trips_total" not in names
