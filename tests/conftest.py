"""Shared test helpers."""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Iterable, Sequence

import hypothesis
import pytest

from repro import CEPREngine, Event
from repro.engine.match import Match
from repro.events.schema import SchemaRegistry
from repro.runtime.query import RegisteredQuery

# The process runner spawns fresh interpreters over pipes itself, but
# anything in the suite that reaches for multiprocessing must never
# fork a live pytest process: forked children inherit the parent's
# locks and threads (consumer threads, asyncio loops) mid-state, which
# deadlocks nondeterministically.  Pin the start method globally.
if multiprocessing.get_start_method(allow_none=True) != "spawn":
    multiprocessing.set_start_method("spawn", force=True)

# CI runs the property suites under a pinned profile: no wall-clock
# deadline (shared runners stall unpredictably) and fully printed
# reproduction blobs.  Select with HYPOTHESIS_PROFILE=ci; local runs keep
# the default profile and fresh randomization, which is the coverage we
# want from developer machines (see docs/SANITIZER.md).
hypothesis.settings.register_profile(
    "ci", deadline=None, print_blob=True, derandomize=False
)
hypothesis.settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "default")
)


def pytest_collection_modifyitems(config, items):
    """Pin every hypothesis test to HYPOTHESIS_SEED when it is set.

    ``@seed`` composes above ``@given``, so rewrapping the collected test
    object reproduces CI's exact example sequence locally:
    ``HYPOTHESIS_SEED=0 pytest tests/property``.
    """
    raw = os.environ.get("HYPOTHESIS_SEED")
    if not raw:
        return
    seed = int(raw)
    for item in items:
        fn = getattr(item, "obj", None)
        if fn is None or not getattr(fn, "is_hypothesis_test", False):
            continue
        # @seed stamps the wrapped test and returns it, so mutating the
        # underlying function in place covers both plain functions and
        # test methods (item.obj is a bound method for class-based tests).
        hypothesis.seed(seed)(getattr(fn, "__func__", fn))


def ev(event_type: str, ts: float, **attrs: Any) -> Event:
    """Terse event constructor used throughout the tests."""
    return Event(event_type, ts, **attrs)


def seq_events(*specs: tuple[str, dict[str, Any]]) -> list[Event]:
    """Build events with auto-incrementing timestamps 1.0, 2.0, ..."""
    return [
        Event(event_type, float(index + 1), **attrs)
        for index, (event_type, attrs) in enumerate(specs)
    ]


def run_query(
    query_text: str,
    events: Iterable[Event],
    registry: SchemaRegistry | None = None,
    **engine_kwargs: Any,
) -> RegisteredQuery:
    """Register one query, run a stream through it, flush, return handle."""
    engine = CEPREngine(registry=registry, **engine_kwargs)
    handle = engine.register_query(query_text)
    engine.run(events)
    return handle


def binding_values(match: Match, var: str, attr: str) -> Any:
    """Attribute value(s) of one binding: scalar or list for Kleene."""
    binding = match.bindings[var]
    if isinstance(binding, Event):
        return binding[attr]
    return [event[attr] for event in binding]


def match_signature(match: Match) -> tuple[tuple[str, tuple[int, ...]], ...]:
    """Order-independent identity of a match: var -> bound event seqs."""
    out = []
    for var, binding in sorted(match.bindings.items()):
        if isinstance(binding, Event):
            out.append((var, (binding.seq,)))
        else:
            out.append((var, tuple(event.seq for event in binding)))
    return tuple(out)


def signatures(matches: Sequence[Match]) -> set:
    return {match_signature(m) for m in matches}


@pytest.fixture
def engine() -> CEPREngine:
    return CEPREngine()
