"""Robustness features: lenient evaluation errors and bounded lateness."""

import pytest

from repro import CEPREngine, Event
from repro.events.time import LatenessBuffer
from repro.language.errors import EvaluationError


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestLenientErrors:
    QUERY = "PATTERN SEQ(A a, B b) WHERE b.x > a.x"

    def test_strict_mode_raises_on_missing_attribute(self):
        engine = CEPREngine()
        engine.register_query(self.QUERY)
        engine.push(E("A", 1, x=1))
        with pytest.raises(EvaluationError, match="no attribute"):
            engine.push(E("B", 2))  # x missing

    def test_lenient_mode_counts_and_continues(self):
        engine = CEPREngine(lenient_errors=True)
        handle = engine.register_query(self.QUERY)
        engine.push(E("A", 1, x=1))
        engine.push(E("B", 2))          # dirty: counted, predicate fails
        engine.push(E("B", 3, x=5))     # clean: matches
        engine.flush()
        assert handle.matcher.stats.evaluation_errors == 1
        assert len(handle.matches()) == 1

    def test_lenient_mode_type_mismatch(self):
        engine = CEPREngine(lenient_errors=True)
        handle = engine.register_query(self.QUERY)
        engine.push(E("A", 1, x=1))
        engine.push(E("B", 2, x="not a number"))
        engine.flush()
        assert handle.matcher.stats.evaluation_errors == 1
        assert handle.matches() == []

    def test_lenient_scoring_drops_match(self):
        engine = CEPREngine(lenient_errors=True)
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 10 EVENTS RANK BY a.score DESC "
            "EMIT ON WINDOW CLOSE"
        )
        engine.push(E("A", 1))            # no `score` attribute
        engine.push(E("A", 2, score=3.0))
        engine.flush()
        assert handle.ranker.scoring_errors == 1
        [emission] = handle.results()
        assert len(emission.ranking) == 1

    def test_strict_scoring_raises(self):
        engine = CEPREngine()
        engine.register_query(
            "PATTERN SEQ(A a) WITHIN 10 EVENTS RANK BY a.score DESC "
            "EMIT ON WINDOW CLOSE"
        )
        with pytest.raises(EvaluationError):
            engine.push(E("A", 1))
            engine.push(E("A", 2))  # epoch stays open; scoring at insert
            engine.flush()


class TestLatenessBuffer:
    def test_reorders_within_bound(self):
        buffer = LatenessBuffer(2.0)
        released = []
        for ts in (1.0, 3.0, 2.0, 6.0, 5.0, 9.0):
            released.extend(e.timestamp for e in buffer.push(Event("A", ts)))
        released.extend(e.timestamp for e in buffer.flush())
        assert released == [1.0, 2.0, 3.0, 5.0, 6.0, 9.0]

    def test_watermark(self):
        buffer = LatenessBuffer(5.0)
        buffer.push(Event("A", 10.0))
        assert buffer.watermark == 5.0

    def test_contract_violations_dropped(self):
        buffer = LatenessBuffer(1.0)
        buffer.push(Event("A", 1.0))
        buffer.push(Event("A", 10.0))  # releases t=1
        assert buffer.late_drops == 0
        released = buffer.push(Event("A", 0.5))  # older than last released
        assert released == []
        assert buffer.late_drops == 1

    def test_zero_lateness_is_passthrough_for_ordered_streams(self):
        buffer = LatenessBuffer(0.0)
        out = buffer.push(Event("A", 1.0))
        assert [e.timestamp for e in out] == [1.0]

    def test_negative_lateness_rejected(self):
        with pytest.raises(ValueError):
            LatenessBuffer(-1.0)

    def test_equal_timestamps_keep_arrival_order(self):
        buffer = LatenessBuffer(0.0)
        first = Event("A", 1.0, n=1)
        second = Event("A", 1.0, n=2)
        out = buffer.push(first) + buffer.push(second) + buffer.flush()
        assert [e["n"] for e in out] == [1, 2]


class TestEngineWithLateness:
    def test_out_of_order_pair_still_matches(self):
        # B arrives before A in wall order but after in stream time.
        engine = CEPREngine(max_lateness=5.0)
        handle = engine.register_query("PATTERN SEQ(A a, B b)")
        engine.push(E("B", 2.0))
        engine.push(E("A", 1.0))
        engine.flush()
        assert len(handle.matches()) == 1

    def test_without_buffer_the_same_stream_misses(self):
        engine = CEPREngine()
        handle = engine.register_query("PATTERN SEQ(A a, B b)")
        engine.push(E("B", 2.0))
        engine.push(E("A", 1.0))
        engine.flush()
        assert handle.matches() == []

    def test_emissions_follow_watermark(self):
        engine = CEPREngine(max_lateness=1.0)
        handle = engine.register_query("PATTERN SEQ(A a)")
        assert engine.push(E("A", 1.0)) == []     # buffered
        emissions = engine.push(E("A", 5.0))      # watermark 4.0 releases t=1
        assert len(emissions) == 1
        engine.flush()
        assert len(handle.matches()) == 2

    def test_sequencer_sees_ordered_timestamps(self):
        engine = CEPREngine(max_lateness=10.0, strict_time=True)
        engine.register_query("PATTERN SEQ(A a)")
        engine.push(E("A", 3.0))
        engine.push(E("A", 1.0))
        engine.push(E("A", 2.0))
        engine.flush()  # strict sequencer would raise if disorder leaked

    def test_late_drop_counted_on_engine(self):
        engine = CEPREngine(max_lateness=1.0)
        engine.register_query("PATTERN SEQ(A a)")
        engine.push(E("A", 1.0))
        engine.push(E("A", 10.0))   # releases t=1
        engine.push(E("A", 12.0))   # releases t=10
        engine.push(E("A", 2.0))    # older than last release: must drop
        assert engine.lateness_buffer.late_drops == 1
