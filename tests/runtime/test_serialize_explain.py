"""Tests for JSON serialisation, the JSONL sink, and query explain."""

import io
import json

from repro import CEPREngine, Event
from repro.runtime.serialize import emission_to_json, emission_to_line, match_to_json
from repro.runtime.sinks import JSONLSink


def run_trades(sink=None):
    engine = CEPREngine()
    handle = engine.register_query(
        """
        NAME trades
        PATTERN SEQ(Buy b, Sell ss+)
        WHERE b.symbol == ss.symbol
        WITHIN 20 EVENTS
        RANK BY count(ss) DESC
        LIMIT 2
        EMIT ON WINDOW CLOSE
        """
    )
    if sink is not None:
        handle.subscribe(sink)
    engine.run(
        [
            Event("Buy", 1.0, symbol="X"),
            Event("Sell", 2.0, symbol="X", price=1.0),
            Event("Sell", 3.0, symbol="X", price=2.0),
        ]
    )
    return handle


class TestSerialize:
    def test_match_to_json_includes_kleene_bindings(self):
        handle = run_trades()
        match = handle.final_ranking()[0]
        record = match_to_json(match)
        assert record["query"] == "trades"
        assert record["rank_values"] == [2]
        assert isinstance(record["bindings"]["ss"], list)
        assert len(record["bindings"]["ss"]) == 2
        assert record["bindings"]["b"]["type"] == "Buy"

    def test_emission_to_json_schema(self):
        handle = run_trades()
        record = emission_to_json(handle.results()[0])
        assert record["kind"] == "window_close"
        assert record["epoch"] == 0
        assert len(record["ranking"]) == 2

    def test_emission_to_line_round_trips_through_json(self):
        handle = run_trades()
        line = emission_to_line(handle.results()[0])
        assert json.loads(line)["kind"] == "window_close"


class TestJSONLSink:
    def test_writes_to_handle(self):
        buffer = io.StringIO()
        sink = JSONLSink(buffer)
        run_trades(sink)
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert sink.emissions_written == 1
        assert json.loads(lines[0])["ranking"]

    def test_writes_to_path(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with JSONLSink(path) as sink:
            run_trades(sink)
        record = json.loads(path.read_text().strip())
        assert record["kind"] == "window_close"

    def test_lazy_open_means_no_file_without_emissions(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with JSONLSink(path):
            pass
        assert not path.exists()


class TestExplain:
    def make_handle(self, query):
        return CEPREngine().register_query(query)

    def test_mentions_every_plan_component(self):
        handle = self.make_handle(
            """
            PATTERN SEQ(A a, B bs+, NOT C c, D d)
            WHERE a.x > 1 AND bs.x > prev(bs.x) AND c.x > a.x AND duration() < 50
            WITHIN 100 EVENTS
            USING SKIP_TILL_ANY
            PARTITION BY grp
            RANK BY avg(bs.x) DESC, a.x ASC
            LIMIT 4
            EMIT ON WINDOW CLOSE
            """
        )
        text = handle.explain()
        assert "strategy: SKIP_TILL_ANY" in text
        assert "window:   100 events" in text
        assert "partition by: grp" in text
        assert "[0] A a (singleton)" in text
        assert "[1] B bs (kleene+)" in text
        assert "per element: bs.x > prev(bs.x)" in text
        assert "on bind: a.x > 1" in text
        assert "negation: NOT C c" in text
        assert "kills when: c.x > a.x" in text
        # duration() anchors at the last singleton stage (semantics.py)
        assert "on bind: duration() < 50" in text
        assert "rank by: avg(bs.x) DESC, a.x ASC" in text
        assert "limit: top 4" in text
        assert "score-bound pruning: active" in text

    def test_unranked_plan(self):
        handle = self.make_handle("PATTERN SEQ(A a)")
        text = handle.explain()
        assert "n/a (unranked query)" in text
        assert "each match on detection" in text
        assert "none (runs never expire)" in text

    def test_pruning_ineligible_for_sliding_emission(self):
        handle = self.make_handle(
            "PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.x LIMIT 1 EMIT EAGER"
        )
        assert "ineligible" in handle.explain()

    def test_pruning_disabled_by_engine(self):
        engine = CEPREngine(enable_pruning=False)
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.x LIMIT 1 "
            "EMIT ON WINDOW CLOSE"
        )
        assert "disabled by engine configuration" in handle.explain()

    def test_time_window_and_periodic_emit(self):
        handle = self.make_handle(
            "PATTERN SEQ(A a) WITHIN 90 SECONDS RANK BY a.x EMIT EVERY 10 SECONDS"
        )
        text = handle.explain()
        assert "window:   90 seconds" in text
        assert "snapshot every 10 seconds" in text

    def test_trailing_negation_described(self):
        handle = self.make_handle(
            "PATTERN SEQ(A a, NOT C c) WITHIN 10 EVENTS"
        )
        assert "until window expiry (match pends)" in handle.explain()
