"""Process-fleet differential and fault-injection tests.

:class:`~repro.runtime.process.ProcessShardedRunner` swaps the sharded
runner's execution substrate (threads → worker processes over pipe
frames) while keeping the dispatch/merge layer.  The contract is the
same exactness bar the thread fleet meets: merged output byte-identical
to a single embedded engine — including after a worker process is
SIGKILLed mid-stream and the fleet is restored from a checkpoint.
"""

import json
import os
import signal
import time

import pytest

from repro.runtime import RunnerConfig, create_runner, emission_to_json
from repro.runtime.sinks import CollectorSink
from repro.workloads.stock import StockWorkload

TUMBLING = """
    NAME best_trades
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 100 EVENTS
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 5
    EMIT ON WINDOW CLOSE
"""

PASSTHROUGH = """
    NAME passthrough
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price * 1.01
    WITHIN 50 EVENTS
    PARTITION BY symbol
"""

SOLO = """
    NAME solo_global
    PATTERN SEQ(Buy a, Buy b)
    WHERE b.price > a.price
    WITHIN 20 EVENTS
    RANK BY b.price - a.price DESC
    LIMIT 4
    EMIT ON WINDOW CLOSE
"""


def make_events(count=1_000, seed=2016):
    return list(StockWorkload(seed=seed).events(count))


def lines(emissions):
    return [json.dumps(emission_to_json(e), sort_keys=True) for e in emissions]


def run_backend(backend, query, events, shards=2):
    runner = create_runner(query, RunnerConfig(backend=backend, shards=shards))
    sink = CollectorSink()
    runner.subscribe(runner.queries()[0].name, sink)
    with runner:
        runner.submit_all(events)
        runner.flush()
    runner.close()
    return lines(sink.emissions)


class TestProcessDifferential:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_tumbling_byte_identical(self, shards):
        events = make_events()
        assert run_backend("process", TUMBLING, events, shards) == run_backend(
            "embedded", TUMBLING, events
        )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_passthrough_byte_identical(self, shards):
        events = make_events()
        expected = run_backend("embedded", PASSTHROUGH, events)
        assert expected, "workload must emit for the test to bite"
        assert run_backend("process", PASSTHROUGH, events, shards) == expected

    def test_heartbeats_byte_identical(self):
        query = TUMBLING.replace("WITHIN 100 EVENTS", "WITHIN 5 SECONDS")
        events = make_events(800, seed=7)

        def drive(runner, sink_name):
            sink = CollectorSink()
            runner.subscribe(sink_name, sink)
            with runner:
                for index, event in enumerate(events):
                    runner.submit(event)
                    if index % 150 == 149 and index + 1 < len(events):
                        watermark = min(
                            event.timestamp + 2.5,
                            events[index + 1].timestamp,
                        )
                        runner.advance_time(watermark)
                runner.flush()
            return lines(sink.emissions)

        embedded = drive(create_runner(query), "best_trades")
        fleet = drive(
            create_runner(query, backend="process", shards=2), "best_trades"
        )
        assert fleet == embedded


class TestPlacement:
    def test_unpartitioned_query_runs_solo_in_one_process(self):
        runner = create_runner(SOLO, backend="process", shards=4)
        view = runner.queries()[0]
        runner.start()
        try:
            assert view.mode == "solo"
            assert runner.effective_shards == 1
            assert len([p for p in runner.worker_pids() if p]) == 1
        finally:
            runner.stop()

    def test_partitioned_query_gets_one_process_per_shard(self):
        runner = create_runner(TUMBLING, backend="process", shards=3)
        runner.start()
        try:
            pids = runner.worker_pids()
            assert len(pids) == 3
            assert len(set(pids)) == 3, "each shard owns its own process"
            assert os.getpid() not in pids
            for pid in pids:
                os.kill(pid, 0)  # raises if the process is gone
        finally:
            runner.stop()

    def test_stop_reaps_every_worker_process(self):
        runner = create_runner(TUMBLING, backend="process", shards=2)
        runner.start()
        pids = runner.worker_pids()
        runner.submit_all(make_events(200))
        runner.stop()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                # ESRCH may lag the wait() by a scheduler tick.
                for _ in range(50):
                    os.kill(pid, 0)
                    time.sleep(0.02)


class TestCrashRecovery:
    def test_sigkill_restore_resumes_byte_identical(self):
        """Kill a worker mid-stream; restore must resume exactly.

        The flow mirrors operational recovery: checkpoint, crash, a
        latched failure on the next barrier, ``restore`` (which respawns
        the dead worker and discards events queued past the cut), then
        replay from the checkpoint.  The combined output must equal an
        uninterrupted single-engine run, byte for byte.
        """
        events = make_events(1_200)
        cut = 600
        reference = run_backend("embedded", TUMBLING, events)

        runner = create_runner(TUMBLING, backend="process", shards=2)
        sink = CollectorSink()
        runner.subscribe("best_trades", sink)
        runner.start()
        try:
            runner.submit_all(events[:cut])
            runner.sync()
            state = runner.snapshot()
            prefix = lines(sink.emissions)

            victim = runner.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            with pytest.raises(RuntimeError, match="shard thread failed"):
                runner.submit_all(events[cut : cut + 200])
                runner.sync()

            runner.restore(state)
            respawned = runner.worker_pids()
            assert victim not in respawned
            assert all(pid for pid in respawned)

            runner.submit_all(events[cut:])
            runner.flush()
        finally:
            runner.stop()
        assert prefix + lines(sink.emissions)[len(prefix) :] == reference

    def test_restore_into_fresh_fleet_after_kill_teardown(self):
        """The checkpoint also recovers across full runner generations."""
        events = make_events(1_000)
        cut = 500
        reference = run_backend("embedded", TUMBLING, events)

        first = create_runner(TUMBLING, backend="process", shards=2)
        sink = CollectorSink()
        first.subscribe("best_trades", sink)
        first.start()
        first.submit_all(events[:cut])
        first.sync()
        state = first.snapshot()
        prefix = lines(sink.emissions)
        first.kill()

        second = create_runner(TUMBLING, backend="process", shards=2)
        resumed = CollectorSink()
        second.subscribe("best_trades", resumed)
        second.start()
        try:
            second.restore(state)
            second.submit_all(events[cut:])
            second.flush()
        finally:
            second.stop()
        assert prefix + lines(resumed.emissions) == reference


class TestBarrierMirrors:
    def test_stats_and_metrics_mirror_the_single_engine(self):
        events = make_events()
        embedded = create_runner(TUMBLING)
        with embedded:
            embedded.submit_all(events)
            embedded.flush()
        single = embedded.stats_by_query()["best_trades"]

        fleet = create_runner(TUMBLING, backend="process", shards=4)
        with fleet:
            fleet.submit_all(events)
            fleet.flush()
            row = fleet.stats_by_query()["best_trades"]
            names = {s.name for s in fleet.metrics_registry().collect()}
        for key in ("events_routed", "matches", "emissions", "runs_created"):
            assert row[key] == single[key], key
        assert row["shards"] == 4
        assert "events_pushed_total" in names
