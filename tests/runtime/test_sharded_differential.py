"""Differential correctness tests for the sharded runtime.

The exactness contract (see ``repro/runtime/sharded.py``): for every
supported query class, the merged output of :class:`ShardedEngineRunner`
is **identical** to a single :class:`CEPREngine` fed the same stream —
same emissions, in the same order, at the same stream points, with the
same rankings.  These tests drive seeded random workloads through both
and compare fingerprints at 1, 2, and 4 shards.

Fingerprints exclude ``detection_index`` and ``revision``: the merge
stage re-stamps both in the deterministic merge order (documented), so
their *order* is asserted implicitly via emission/ranking order instead
of their raw values.
"""

import pytest

from repro import CEPREngine, Event
from repro.runtime.sharded import ShardedEngineRunner, stable_shard
from repro.workloads.generic import GenericWorkload
from repro.workloads.stock import StockWorkload

SHARD_COUNTS = [1, 2, 4]


def match_fp(match):
    """Identity of a match minus re-stamped bookkeeping."""
    bindings = tuple(
        (
            var,
            (binding.seq,)
            if isinstance(binding, Event)
            else tuple(e.seq for e in binding),
        )
        for var, binding in match.bindings.items()
    )
    return (
        bindings,
        match.first_seq,
        match.last_seq,
        match.partition_key,
        match.score,
        match.rank_values,
    )


def emission_fp(emission):
    return (
        emission.kind.value,
        emission.at_seq,
        round(emission.at_ts, 9),
        emission.epoch,
        tuple(match_fp(m) for m in emission.ranking),
    )


def fingerprint(handle):
    return [emission_fp(e) for e in handle.results()]


def drive(submit, advance, flush, events, heartbeat_every=None, lead=2.5):
    """Feed ``events`` with optional interleaved heartbeats, then flush.

    Heartbeat timestamps advance up to ``lead`` seconds past the current
    event but never past the *next* event's timestamp — a watermark
    overtaking the stream would make later events contradict it (see the
    exactness contract in ``repro/runtime/sharded.py``).
    """
    events = list(events)
    for index, event in enumerate(events):
        submit(event)
        if heartbeat_every and index % heartbeat_every == heartbeat_every - 1:
            watermark = event.timestamp + lead
            if index + 1 < len(events):
                watermark = min(watermark, events[index + 1].timestamp)
            advance(watermark)
    flush()


def run_single(queries, make_events, heartbeat_every=None, **engine_kwargs):
    engine = CEPREngine(**engine_kwargs)
    handles = [engine.register_query(q) for q in queries]
    drive(engine.push, engine.advance_time, engine.flush, make_events(), heartbeat_every)
    return engine, handles


def run_sharded(queries, make_events, shards, heartbeat_every=None, **runner_kwargs):
    runner = ShardedEngineRunner(shards=shards, **runner_kwargs)
    views = [runner.register_query(q) for q in queries]
    runner.start()
    drive(runner.submit, runner.advance_time, runner.flush, make_events(), heartbeat_every)
    runner.stop()
    return runner, views


def assert_identical(queries, make_events, shards, heartbeat_every=None, **kwargs):
    _, handles = run_single(queries, make_events, heartbeat_every, **kwargs)
    _, views = run_sharded(queries, make_events, shards, heartbeat_every, **kwargs)
    for handle, view in zip(handles, views):
        assert fingerprint(view) == fingerprint(handle), view.name
        assert [match_fp(m) for m in view.final_ranking()] == [
            match_fp(m) for m in handle.final_ranking()
        ], view.name
    return views


COUNT_TUMBLING = """
NAME count_tumbling
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol AND s.price > b.price
WITHIN 100 EVENTS
PARTITION BY symbol
RANK BY s.price - b.price DESC
LIMIT 5
EMIT ON WINDOW CLOSE
"""

TIME_TUMBLING = """
NAME time_tumbling
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol AND s.price > b.price
WITHIN 5 SECONDS
PARTITION BY symbol
RANK BY s.price - b.price DESC
LIMIT 3
EMIT ON WINDOW CLOSE
"""

PASSTHROUGH = """
NAME passthrough
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol AND s.price > b.price * 1.01
WITHIN 50 EVENTS
PARTITION BY symbol
"""

SOLO_GLOBAL = """
NAME solo_global
PATTERN SEQ(Buy a, Buy b)
WHERE b.price > a.price
WITHIN 20 EVENTS
RANK BY b.price - a.price DESC
LIMIT 4
EMIT ON WINDOW CLOSE
"""

SOLO_SLIDING = """
NAME solo_sliding
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol
WITHIN 30 EVENTS
PARTITION BY symbol
RANK BY s.price DESC
LIMIT 3
EMIT EVERY 25 EVENTS
"""


class TestStockWorkload:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [3, 17])
    def test_count_tumbling_identical(self, shards, seed):
        make = lambda: StockWorkload(seed=seed).events(1500)
        views = assert_identical([COUNT_TUMBLING], make, shards)
        if shards > 1:
            assert views[0].mode == "sharded-tumbling"

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [5, 23])
    def test_time_tumbling_with_heartbeats_identical(self, shards, seed):
        make = lambda: StockWorkload(seed=seed, rate=10.0).events(1200)
        assert_identical([TIME_TUMBLING], make, shards, heartbeat_every=150)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sparse_stream_heartbeats_close_epochs(self, shards):
        """Gaps longer than the heartbeat lead: epochs close at ticks."""
        make = lambda: StockWorkload(seed=9, rate=0.5).events(400)
        assert_identical([TIME_TUMBLING], make, shards, heartbeat_every=3)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [2, 29])
    def test_passthrough_identical(self, shards, seed):
        make = lambda: StockWorkload(seed=seed).events(1500)
        views = assert_identical([PASSTHROUGH], make, shards)
        if shards > 1:
            assert views[0].mode == "sharded-passthrough"

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_mixed_deployment_identical(self, shards):
        """Sharded, pass-through, and solo queries coexist in one runner."""
        queries = [COUNT_TUMBLING, TIME_TUMBLING, PASSTHROUGH, SOLO_GLOBAL, SOLO_SLIDING]
        make = lambda: StockWorkload(seed=41, rate=10.0).events(1200)
        views = assert_identical(queries, make, shards, heartbeat_every=200)
        by_name = {v.name: v for v in views}
        assert by_name["solo_global"].mode == "solo"
        assert by_name["solo_sliding"].mode == "solo"

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_with_schema_registry_and_pruning(self, shards):
        registry = StockWorkload(seed=13).registry()
        make = lambda: StockWorkload(seed=13).events(1000)
        assert_identical(
            [COUNT_TUMBLING], make, shards, registry=registry, enable_pruning=True
        )


class TestGenericWorkload:
    QUERY = """
    NAME generic_groups
    PATTERN SEQ(A a, B b, C c)
    WHERE a.group == b.group AND b.group == c.group AND c.value > a.value
    WITHIN 200 EVENTS
    PARTITION BY group
    RANK BY c.value - a.value DESC
    LIMIT 4
    EMIT ON WINDOW CLOSE
    """

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [1, 8, 21])
    def test_many_groups_identical(self, shards, seed):
        make = lambda: GenericWorkload(
            seed=seed, alphabet_size=3, groups=16
        ).events(2000)
        assert_identical([self.QUERY], make, shards)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_kleene_and_skip_strategy_identical(self, shards):
        query = """
        PATTERN SEQ(A a, B bs+, C c)
        WHERE a.group == c.group AND c.value > a.value
        WITHIN 60 EVENTS
        USING SKIP_TILL_ANY
        PARTITION BY group
        RANK BY c.value - a.value DESC
        LIMIT 3
        EMIT ON WINDOW CLOSE
        """
        make = lambda: GenericWorkload(seed=6, alphabet_size=3, groups=8).events(900)
        assert_identical([query], make, shards)


class TestPlacement:
    def test_unpartitioned_query_falls_back_to_one_shard(self):
        runner = ShardedEngineRunner(shards=4)
        view = runner.register_query(SOLO_GLOBAL)
        runner.start()
        assert view.mode == "solo"
        assert view.shards == 1
        assert runner.effective_shards == 1  # no partitioned fleet exists
        runner.stop()

    def test_yield_pins_all_queries_to_solo(self):
        runner = ShardedEngineRunner(shards=4)
        yielding = runner.register_query(
            "PATTERN SEQ(Buy b, Sell s) WHERE b.symbol == s.symbol "
            "PARTITION BY symbol YIELD Pair(symbol=b.symbol)"
        )
        other = runner.register_query(COUNT_TUMBLING)
        runner.start()
        assert yielding.mode == "solo"
        assert other.mode == "solo"
        runner.stop()

    def test_trailing_negation_pinned_to_solo(self):
        """Trailing-negation pendings confirm at ticks in an order only a
        single engine reproduces, so the query must not be sharded — but
        its solo output still matches the reference engine exactly."""
        query = """
        NAME no_rebound
        PATTERN SEQ(Buy b, Sell s, NOT Buy r)
        WHERE b.symbol == s.symbol AND s.price > b.price
        WITHIN 100 EVENTS
        PARTITION BY symbol
        RANK BY s.price - b.price DESC
        LIMIT 5
        EMIT ON WINDOW CLOSE
        """
        make = lambda: StockWorkload(seed=37).events(800)
        views = assert_identical([query], make, shards=4, heartbeat_every=100)
        assert views[0].mode == "solo"

    def test_internal_negation_still_sharded(self):
        query = """
        PATTERN SEQ(Buy b, NOT Tick t, Sell s)
        WHERE b.symbol == s.symbol
        WITHIN 100 EVENTS
        PARTITION BY symbol
        RANK BY s.price DESC
        LIMIT 5
        EMIT ON WINDOW CLOSE
        """
        make = lambda: StockWorkload(seed=43, tick_fraction=0.2).events(1200)
        views = assert_identical([query], make, shards=4)
        assert views[0].mode == "sharded-tumbling"

    def test_partitioned_tumbling_gets_full_fleet(self):
        runner = ShardedEngineRunner(shards=4)
        view = runner.register_query(COUNT_TUMBLING)
        runner.start()
        assert view.mode == "sharded-tumbling"
        assert view.shards == 4
        assert runner.effective_shards == 4
        runner.stop()

    def test_stable_shard_is_deterministic_and_in_range(self):
        keys = [("ACME",), ("GLOBO", 7), (3.5,), ((None,),)]
        for key in keys:
            first = stable_shard(key, 4)
            assert 0 <= first < 4
            assert all(stable_shard(key, 4) == first for _ in range(10))


class TestFleetIntrospection:
    def test_stats_and_metrics_aggregate_across_shards(self):
        make = lambda: StockWorkload(seed=19).events(1000)
        engine, handles = run_single([COUNT_TUMBLING], make)
        runner, views = run_sharded([COUNT_TUMBLING], make, shards=4)

        single_row = engine.stats_by_query()["count_tumbling"]
        fleet_row = runner.stats_by_query()["count_tumbling"]
        # Every event routes to exactly one shard, so routed/match/emission
        # counters must agree with the single engine exactly.
        assert fleet_row["events_routed"] == single_row["events_routed"]
        assert fleet_row["matches"] == single_row["matches"]
        assert fleet_row["emissions"] == single_row["emissions"]
        assert fleet_row["runs_created"] == single_row["runs_created"]
        assert fleet_row["partition_skips"] == single_row["partition_skips"]
        assert fleet_row["shards"] == 4
        assert runner.events_pushed == engine.events_pushed

        fleet_metrics = views[0].metrics
        assert fleet_metrics.events_routed == handles[0].metrics.events_routed

    def test_on_emission_sees_merged_stream_in_order(self):
        received = []
        make = lambda: StockWorkload(seed=31).events(800)
        runner = ShardedEngineRunner(shards=4, on_emission=received.append)
        view = runner.register_query(COUNT_TUMBLING)
        runner.start()
        drive(runner.submit, runner.advance_time, runner.flush, make())
        runner.stop()
        assert [emission_fp(e) for e in received] == fingerprint(view)
        assert [e.at_seq for e in received] == sorted(e.at_seq for e in received)
