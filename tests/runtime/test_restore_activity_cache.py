"""Restore must refresh the matcher's activity caches.

A restored engine with live partial runs but stale (zero) activity
caches would report itself quiescent, and the stage-0 quiescent-skip
gate would elide the very events that should extend those runs — a
silent wrong-answer after recovery.  ``restore_matcher`` now recomputes
the caches; these tests pin the behavior from both directions.
"""

from repro import CEPREngine, Event

PAIR = """
    NAME pair
    PATTERN SEQ(A a, B b)
    WHERE a.x > 0
    WITHIN 10 EVENTS
"""


def test_restored_engine_continues_live_runs():
    source = CEPREngine()
    source.register_query(PAIR)
    source.push(Event("A", 1.0, x=5))  # opens a partial run
    state = source.snapshot()

    target = CEPREngine()
    handle = target.register_query(PAIR)
    target.restore(state)
    assert not handle.matcher.quiescent  # caches see the live run
    target.push(Event("B", 2.0, x=7))  # only matches if not elided
    target.flush()

    matches = [m for emission in handle.results() for m in emission.ranking]
    assert len(matches) == 1
    assert matches[0].bindings["a"]["x"] == 5
    assert matches[0].bindings["b"]["x"] == 7


def test_restored_engine_matches_uninterrupted_run():
    events = [
        Event("A", 1.0, x=3),
        Event("A", 2.0, x=4),
        Event("B", 3.0, x=9),
        Event("B", 4.0, x=1),
    ]

    uninterrupted = CEPREngine()
    straight = uninterrupted.register_query(PAIR)
    uninterrupted.run(events)

    source = CEPREngine()
    source.register_query(PAIR)
    source.push(events[0])
    source.push(events[1])
    target = CEPREngine()
    resumed = target.register_query(PAIR)
    target.restore(source.snapshot())
    target.push(events[2])
    target.push(events[3])
    target.flush()

    def fingerprints(handle):
        return [
            (
                emission.kind,
                tuple(
                    (m.first_seq, m.last_seq, m.rank_values)
                    for m in emission.ranking
                ),
            )
            for emission in handle.results()
        ]

    assert fingerprints(resumed) == fingerprints(straight)
