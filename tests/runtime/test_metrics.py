"""Unit tests for metrics primitives."""

from repro.runtime.metrics import EngineMetrics, LatencyRecorder, QueryMetrics


class TestLatencyRecorder:
    def test_basic_stats(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.record(value)
        assert recorder.count == 3
        assert recorder.mean == 2.0
        assert recorder.maximum == 3.0

    def test_percentiles_interpolate(self):
        # 100 samples 1..100: position q/100 * 99 interpolates between
        # adjacent order statistics (the numpy.percentile default).
        recorder = LatencyRecorder()
        for i in range(1, 101):
            recorder.record(float(i))
        assert recorder.percentile(50) == 50.5
        assert recorder.percentile(99) == 99.01
        assert recorder.percentile(100) == 100.0
        assert recorder.percentile(0) == 1.0

    def test_percentile_small_sample_tail(self):
        # Nearest-rank p99 of 10 samples would sit on the 9th largest;
        # interpolation lands between the two largest.
        recorder = LatencyRecorder()
        for i in range(1, 11):
            recorder.record(float(i))
        assert recorder.percentile(99) == 9.91
        assert recorder.percentile(50) == 5.5

    def test_percentile_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record(7.0)
        assert recorder.percentile(1) == 7.0
        assert recorder.percentile(99) == 7.0

    def test_empty_percentile(self):
        assert LatencyRecorder().percentile(99) == 0.0
        assert LatencyRecorder().mean == 0.0

    def test_reservoir_caps_memory(self):
        recorder = LatencyRecorder(capacity=10)
        for i in range(1000):
            recorder.record(float(i))
        assert recorder.count == 1000
        assert len(recorder._samples) == 10

    def test_reservoir_is_deterministic(self):
        def fill():
            recorder = LatencyRecorder(capacity=5, seed=42)
            for i in range(100):
                recorder.record(float(i))
            return recorder._samples

        assert fill() == fill()

    def test_record_zero_counts_without_touching_total(self):
        recorder = LatencyRecorder()
        recorder.record(4.0)
        recorder.record_zero()
        assert recorder.count == 2
        assert recorder.total == 4.0
        assert recorder.maximum == 4.0
        assert recorder.mean == 2.0
        assert sorted(recorder._samples) == [0.0, 4.0]

    def test_record_zero_displaces_at_reservoir_rate(self):
        # Regression: record_zero used to bump `count` without entering
        # the algorithm-R replacement path, so once the reservoir was
        # full a skip-heavy stream left it frozen on the early non-zero
        # latencies and every percentile read high.  With the fix, a
        # stream that is 90% zeros converges the reservoir toward ~90%
        # zeros, so the median reflects the skips.
        recorder = LatencyRecorder(capacity=100, seed=7)
        for i in range(2000):
            if i % 10 == 0:
                recorder.record(1.0)
            else:
                recorder.record_zero()
        zeros = sum(1 for s in recorder._samples if s == 0.0)
        # statistically ~90 of 100; a frozen reservoir would hold ~10
        assert zeros > 70
        assert recorder.percentile(50) == 0.0
        # exact aggregates are unaffected by sampling
        assert recorder.count == 2000
        assert recorder.total == 200.0

    def test_absorb_merges_counts_and_pools_samples(self):
        left = LatencyRecorder(capacity=8)
        right = LatencyRecorder(capacity=8)
        for v in (1.0, 2.0):
            left.record(v)
        for v in (3.0, 4.0, 5.0):
            right.record(v)
        left.absorb(right)
        assert left.count == 5
        assert left.total == 15.0
        assert left.maximum == 5.0
        # under capacity the pooled reservoir keeps every sample
        assert sorted(left._samples) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_absorb_overflow_weight_bias_characterization(self):
        # Known limitation (documented, not fixed here): when the pooled
        # sample sets overflow capacity, absorb subsamples the pool
        # uniformly, which weights each *reservoir* equally rather than
        # each *observation* — a shard with 10x the events contributes
        # the same number of reservoir slots as an idle one, so its
        # distribution is underrepresented in the merged percentiles.
        # This test pins the behavior so a future proper fix (weighted
        # subsampling by count) shows up as a deliberate change.
        busy = LatencyRecorder(capacity=50, seed=1)
        idle = LatencyRecorder(capacity=50, seed=2)
        for _ in range(5000):
            busy.record(10.0)  # busy shard: all slow
        for _ in range(50):
            idle.record(1.0)  # idle shard: few fast samples
        merged = LatencyRecorder(capacity=50, seed=3)
        merged.absorb(busy)
        merged.absorb(idle)
        # exact aggregates are observation-weighted...
        assert merged.count == 5050
        assert merged.mean > 9.0
        # ...but the reservoir pools 50+50 slots uniformly, so ~half the
        # merged samples come from the shard holding <1% of observations
        fast = sum(1 for s in merged._samples if s == 1.0)
        assert 10 <= fast <= 40  # far above the ~0.5 an unbiased merge keeps


class TestQueryMetrics:
    def test_snapshot_keys(self):
        metrics = QueryMetrics()
        metrics.events_routed = 3
        metrics.latency.record(0.001)
        snapshot = metrics.snapshot()
        assert snapshot["events_routed"] == 3
        assert snapshot["latency_mean_us"] > 0
        assert "latency_p99_us" in snapshot


class TestEngineMetrics:
    def test_throughput_with_fake_clock(self):
        times = iter([0.0, 1.0, 2.0])
        metrics = EngineMetrics(clock=lambda: next(times))
        metrics.on_push()
        metrics.on_push()
        metrics.on_push()
        assert metrics.elapsed == 2.0
        assert metrics.throughput == 1.5

    def test_idle_engine(self):
        metrics = EngineMetrics()
        assert metrics.throughput == 0.0
        assert metrics.elapsed == 0.0
        assert metrics.recent_throughput == 0.0

    def test_recent_throughput_tracks_trailing_window(self):
        # One event per second for 100s: the lifetime rate and the
        # windowed rate agree on a steady stream.
        now = [0.0]
        metrics = EngineMetrics(clock=lambda: now[0], window_seconds=10.0)
        for second in range(100):
            now[0] = float(second)
            metrics.on_push()
        # Trailing 10s hold seconds 90..99 -> 10 events over the window.
        assert metrics.recent_throughput == 1.0
        assert metrics.throughput == 100 / 99

    def test_recent_throughput_sees_bursts_lifetime_misses(self):
        # 50 events in the first 5s, then nothing until t=1000, then a
        # 100-event burst: the window reports the burst rate while the
        # lifetime average is diluted to near zero.
        now = [0.0]
        metrics = EngineMetrics(clock=lambda: now[0], window_seconds=10.0)
        for i in range(50):
            now[0] = i * 0.1
            metrics.on_push()
        for i in range(100):
            now[0] = 1000.0 + i * 0.01
            metrics.on_push()
        assert metrics.recent_throughput == 10.0  # 100 events / 10s window
        assert metrics.throughput < 0.2

    def test_recent_throughput_decays_when_idle(self):
        now = [0.0]
        metrics = EngineMetrics(clock=lambda: now[0], window_seconds=10.0)
        for i in range(10):
            metrics.on_push()
        assert metrics.recent_throughput > 0.0
        now[0] = 60.0  # stream went quiet; the burst ages out
        assert metrics.recent_throughput == 0.0

    def test_recent_throughput_short_history_uses_elapsed_span(self):
        # 2 events 1s apart with a 10s window: rate over the observed
        # 1s span, not diluted across the (mostly empty) full window.
        now = [0.0]
        metrics = EngineMetrics(clock=lambda: now[0], window_seconds=10.0)
        metrics.on_push()
        now[0] = 1.0
        metrics.on_push()
        assert metrics.recent_throughput == 2.0

    def test_window_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            EngineMetrics(window_seconds=0.0)
