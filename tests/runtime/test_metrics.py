"""Unit tests for metrics primitives."""

from repro.runtime.metrics import EngineMetrics, LatencyRecorder, QueryMetrics


class TestLatencyRecorder:
    def test_basic_stats(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.record(value)
        assert recorder.count == 3
        assert recorder.mean == 2.0
        assert recorder.maximum == 3.0

    def test_percentiles(self):
        recorder = LatencyRecorder()
        for i in range(1, 101):
            recorder.record(float(i))
        assert recorder.percentile(50) in (50.0, 51.0)
        assert recorder.percentile(99) >= 98.0
        assert recorder.percentile(100) == 100.0

    def test_empty_percentile(self):
        assert LatencyRecorder().percentile(99) == 0.0
        assert LatencyRecorder().mean == 0.0

    def test_reservoir_caps_memory(self):
        recorder = LatencyRecorder(capacity=10)
        for i in range(1000):
            recorder.record(float(i))
        assert recorder.count == 1000
        assert len(recorder._samples) == 10

    def test_reservoir_is_deterministic(self):
        def fill():
            recorder = LatencyRecorder(capacity=5, seed=42)
            for i in range(100):
                recorder.record(float(i))
            return recorder._samples

        assert fill() == fill()


class TestQueryMetrics:
    def test_snapshot_keys(self):
        metrics = QueryMetrics()
        metrics.events_routed = 3
        metrics.latency.record(0.001)
        snapshot = metrics.snapshot()
        assert snapshot["events_routed"] == 3
        assert snapshot["latency_mean_us"] > 0
        assert "latency_p99_us" in snapshot


class TestEngineMetrics:
    def test_throughput_with_fake_clock(self):
        times = iter([0.0, 1.0, 2.0])
        metrics = EngineMetrics(clock=lambda: next(times))
        metrics.on_push()
        metrics.on_push()
        metrics.on_push()
        assert metrics.elapsed == 2.0
        assert metrics.throughput == 1.5

    def test_idle_engine(self):
        metrics = EngineMetrics()
        assert metrics.throughput == 0.0
        assert metrics.elapsed == 0.0
