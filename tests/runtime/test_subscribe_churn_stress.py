"""Stress: SUBSCRIBE fan-out under REGISTER/UNREGISTER churn, sanitizer on.

Producer threads push events through a :class:`ThreadedEngineRunner`
while the main thread churns dynamic queries and subscriptions through
the pause-protected control surface.  The engine runs with the sanitizer
in raise mode, so any invariant violation (a shared-index refcount leak,
a cross-thread mutation, a broken ranking) kills the consumer thread and
fails the test through ``runner.failure`` — the pass criterion is zero
trips, correct fan-out counts, and no stale subscriber state left behind.
"""

import threading

from repro import CEPREngine, Event
from repro.runtime.concurrent import ThreadedEngineRunner

BASE = """
    NAME base
    PATTERN SEQ(A a)
    WHERE a.x > 0
    WITHIN 10 EVENTS
    RANK BY a.x DESC
    LIMIT 3
    EMIT EAGER
"""

CHURN = """
    PATTERN SEQ(A a, B b)
    WHERE a.x > 0
    WITHIN 10 EVENTS
    RANK BY b.x DESC
    LIMIT 2
    EMIT ON WINDOW CLOSE
"""

PRODUCERS = 2
EVENTS_PER_PRODUCER = 300
CHURN_ROUNDS = 25


def test_subscribe_fanout_survives_registration_churn():
    engine = CEPREngine(sanitize=True)
    runner = ThreadedEngineRunner(engine, max_queue=512, batch_size=32)
    engine.register_query(BASE)

    fanout = [[], [], []]
    subscriptions = [
        engine.subscribe("base", fanout[i].append) for i in range(3)
    ]

    def produce(worker_index):
        base_ts = worker_index * 100_000.0
        for i in range(EVENTS_PER_PRODUCER):
            event_type = "A" if i % 2 == 0 else "B"
            runner.submit(Event(event_type, base_ts + i, x=i % 7 + 1))

    with runner:
        producers = [
            threading.Thread(target=produce, args=(i,))
            for i in range(PRODUCERS)
        ]
        for producer in producers:
            producer.start()

        # Churn: overlapping register/subscribe/unregister cycles racing
        # the producers.  Each round keeps the previous round's query
        # alive so shared-index entries are co-owned when released.
        churn_counts = {}
        live = []
        for round_ in range(CHURN_ROUNDS):
            name = f"churn_{round_}"
            runner.register_query(CHURN, name=name)
            subscription = runner.subscribe(name, lambda emission: None)
            live.append((name, subscription))
            if len(live) > 2:
                gone_name, gone_sub = live.pop(0)
                runner.unregister_query(gone_name)
                churn_counts[gone_name] = gone_sub.emissions_accepted
        for name, subscription in live:
            runner.unregister_query(name)
            churn_counts[name] = subscription.emissions_accepted

        for producer in producers:
            producer.join()
        runner.sync()

        # Unregistered queries must not receive further deliveries.
        for name, subscription in live:
            assert subscription.emissions_accepted == churn_counts[name]

    assert runner.failure is None
    assert runner.events_processed == PRODUCERS * EVENTS_PER_PRODUCER
    assert engine.sanitizer.total_trips == 0

    # Fan-out: every base subscriber saw the identical emission sequence.
    assert len(fanout[0]) > 0
    assert [e.at_seq for e in fanout[0]] == [e.at_seq for e in fanout[1]]
    assert [e.at_seq for e in fanout[1]] == [e.at_seq for e in fanout[2]]
    for subscription, delivered in zip(subscriptions, fanout):
        assert subscription.emissions_accepted == len(delivered)

    # No stale shared-index state: after the base query goes, the
    # refcounted predicate/prefix index must be empty.
    engine.unregister_query("base")
    assert engine.shared.is_empty()
    assert engine.sanitizer.total_trips == 0


def test_churn_under_cancelled_subscriptions_leaves_no_stale_sinks():
    engine = CEPREngine(sanitize=True)
    runner = ThreadedEngineRunner(engine, batch_size=8)
    handle = engine.register_query(BASE)
    keep, drop = [], []
    kept = engine.subscribe("base", keep.append)
    cancelled = engine.subscribe("base", drop.append)

    with runner:
        for i in range(40):
            runner.submit(Event("A", float(i), x=i % 5 + 1))
        runner.sync()
        dropped_at = cancelled.emissions_accepted
        cancelled.cancel()
        for i in range(40, 80):
            runner.submit(Event("A", float(i), x=i % 5 + 1))
        runner.sync()

    assert runner.failure is None
    assert engine.sanitizer.total_trips == 0
    assert cancelled.emissions_accepted == dropped_at
    assert kept.emissions_accepted > dropped_at
    # The cancelled subscription is detached from the query's sink list.
    assert cancelled not in handle.sinks
    assert kept in handle.sinks
