"""Load-shedding tests: controller state machine, probe ladder, and the
exactness differential.

The exact policy's contract is the strongest claim in the subsystem:
with ``--shed-policy exact`` the emitted stream is **byte-identical** to
the unshedded run — sheds only happen under a safety certificate
(structural inertness or score-bound headroom against the current k-th
retained score).  The differential tests here enforce it with strict
fingerprints (including ``detection_index`` and ``revision``) across
seeded workloads, and the seeded-defect test proves CEPRSan's
``certified-shed`` invariant catches a probe that falsely certifies.
"""

import pytest

from repro import CEPREngine, Event
from repro.observability.pressure import PressureAssessor, PressureSample
from repro.runtime.concurrent import ThreadedEngineRunner
from repro.runtime.query import (
    SHED_PROTECTED,
    SHED_SAFE,
    SHED_UNCERTIFIED,
    RegisteredQuery,
)
from repro.runtime.sharded import ShardedEngineRunner
from repro.runtime.shedding import (
    MAX_DROP_RATE,
    ShedController,
    ShedStats,
    controller_to_dict,
    merge_shed_stats,
)
from repro.workloads.clickstream import ClickstreamWorkload
from repro.workloads.generic import GenericWorkload
from repro.workloads.stock import StockWorkload

GENERIC_QUERY = """
    NAME spread
    PATTERN SEQ(A a, B b)
    WITHIN 25 EVENTS
    USING SKIP_TILL_ANY
    RANK BY b.value - a.value DESC
    LIMIT 1
    EMIT ON WINDOW CLOSE
"""

STOCK_QUERY = """
    NAME rally
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 40 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 4
    EMIT ON WINDOW CLOSE
"""

FUNNEL_QUERY = """
    NAME funnel
    PATTERN SEQ(AddToCart c, Purchase p)
    WHERE c.user == p.user
    WITHIN 60 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY user
    RANK BY p.value DESC
    LIMIT 1
    EMIT ON WINDOW CLOSE
"""


def strict_match_fp(match):
    bindings = tuple(
        (
            var,
            (binding.seq,)
            if isinstance(binding, Event)
            else tuple(e.seq for e in binding),
        )
        for var, binding in match.bindings.items()
    )
    return (
        bindings,
        match.first_seq,
        match.last_seq,
        match.partition_key,
        match.score,
        match.rank_values,
        match.detection_index,
    )


def strict_emission_fp(emission):
    return (
        emission.kind.value,
        emission.at_seq,
        round(emission.at_ts, 9),
        emission.epoch,
        emission.revision,
        tuple(strict_match_fp(m) for m in emission.ranking),
    )


def strict_fingerprint(handle):
    return [strict_emission_fp(e) for e in handle.results()]


def loose_match_fp(match):
    """Sharded comparisons re-stamp detection_index/revision (documented)."""
    fp = strict_match_fp(match)
    return fp[:-1]


def loose_fingerprint(handle):
    return [
        (
            e.kind.value,
            e.at_seq,
            round(e.at_ts, 9),
            e.epoch,
            tuple(loose_match_fp(m) for m in e.ranking),
        )
        for e in handle.results()
    ]


def forced_exact():
    return ShedController(policy="exact", force=True)


def run_engine(query, events, registry=None, controller=None):
    engine = CEPREngine(registry=registry)
    handle = engine.register_query(query)
    if controller is not None:
        engine.shed_controller = controller
    for event in events:
        engine.push(event)
    engine.flush()
    return engine, handle


class TestShedStats:
    def test_absorb_sums_fieldwise(self):
        a = ShedStats(offered=3, shed_events_total=2, uncertified_offered=1)
        b = ShedStats(offered=5, shed_events_total=1, uncertified_shed=1)
        a.absorb(b)
        assert a.offered == 8
        assert a.shed_events_total == 3
        assert a.uncertified_offered == 1
        assert a.uncertified_shed == 1

    def test_recall_estimate(self):
        assert ShedStats().recall_estimate == 1.0
        stats = ShedStats(uncertified_offered=10, uncertified_shed=3)
        assert stats.recall_estimate == pytest.approx(0.7)

    def test_merge_and_to_dict(self):
        merged = merge_shed_stats(
            [ShedStats(offered=1), ShedStats(offered=2, certified_total=2)]
        )
        doc = merged.to_dict()
        assert doc["offered"] == 3
        assert doc["certified_total"] == 2
        assert doc["recall_estimate"] == 1.0


class TestControllerStateMachine:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="policy"):
            ShedController(policy="sometimes")
        with pytest.raises(ValueError, match="latency_target"):
            ShedController(policy="exact", latency_target=0.0)

    def test_off_policy_is_inert(self):
        controller = ShedController(policy="off")
        controller.control(PressureSample(ingest_lag_seconds=100.0), 100.0)
        assert not controller.engaged
        assert not controller.exact_active
        assert not controller.adaptive_active
        assert controller.admit(Event("A", 1.0), []) is True

    def test_force_engages_without_pressure(self):
        controller = forced_exact()
        assert controller.engaged
        assert controller.exact_active
        controller.control(PressureSample(), 0.0)
        assert controller.engaged  # force holds through recovery ticks

    def test_engages_on_overload_and_disengages_on_recovery(self):
        assessor = PressureAssessor(smoothing=1.0)
        controller = ShedController(policy="exact", assessor=assessor)
        assert not controller.engaged
        controller.control(0.9)
        assert controller.engaged
        assert controller.stats.engagements == 1
        # hysteresis: mid-band pressure keeps it engaged
        controller.control(0.6)
        assert controller.engaged
        controller.control(0.1)
        assert not controller.engaged

    def test_lag_above_target_engages_even_when_pressure_is_low(self):
        controller = ShedController(policy="exact", latency_target=0.5)
        controller.control(PressureSample(), lag_seconds=2.0)
        assert controller.engaged
        controller.control(PressureSample(), lag_seconds=0.1)
        assert not controller.engaged

    def test_adaptive_rate_aimd(self):
        assessor = PressureAssessor(smoothing=1.0)
        controller = ShedController(policy="adaptive", assessor=assessor)
        for _ in range(40):
            controller.control(0.9)
        assert controller.drop_rate == pytest.approx(MAX_DROP_RATE)
        # recovery halves the rate, then disengages once it decays away
        controller.control(0.0)
        assert controller.engaged
        assert controller.drop_rate == pytest.approx(MAX_DROP_RATE / 2)
        for _ in range(20):
            controller.control(0.0)
        assert controller.drop_rate == 0.0
        assert not controller.engaged

    def test_to_dict_and_describe(self):
        controller = forced_exact()
        doc = controller.to_dict()
        assert doc["policy"] == "exact"
        assert doc["engaged"] is True
        assert doc["stats"]["shed_events_total"] == 0
        assert "pressure" in doc
        assert controller.describe().startswith("shed[exact]=engaged")

    def test_controller_to_dict_merges_worker_stats(self):
        controller = forced_exact()
        controller.stats.shed_events_total = 2
        worker = ShedStats(shed_events_total=3, offered=3)
        doc = controller_to_dict(controller, [worker])
        assert doc["stats"]["shed_events_total"] == 5
        assert controller_to_dict(ShedController(policy="off")) is None
        assert controller_to_dict(None) is None


class TestShedProbeLadder:
    def setup_method(self):
        self.workload = GenericWorkload(seed=5, alphabet_size=2)
        self.engine = CEPREngine(registry=self.workload.registry())
        self.handle = self.engine.register_query(GENERIC_QUERY)

    def test_irrelevant_type_is_safe(self):
        classification, headroom = self.handle.shed_probe(
            Event("Zz", 1.0, value=1.0, group=0)
        )
        assert classification is SHED_SAFE
        assert headroom is None

    def test_non_initial_type_is_safe_when_no_state(self):
        # B can only extend an existing run; with none live it is inert
        classification, _ = self.handle.shed_probe(
            Event("B", 1.0, value=1.0, group=0)
        )
        assert classification is SHED_SAFE

    def test_live_partial_run_protects_consumable_event(self):
        self.engine.push(Event("A", 1.0, value=1.0, group=0))
        classification, _ = self.handle.shed_probe(
            Event("B", 2.0, value=50.0, group=0)
        )
        assert classification is SHED_PROTECTED

    def test_stage0_without_pruner_is_uncertified(self):
        engine = CEPREngine(enable_pruning=False)
        handle = engine.register_query(GENERIC_QUERY)
        classification, headroom = handle.shed_probe(
            Event("A", 1.0, value=1.0, group=0)
        )
        assert classification is SHED_UNCERTIFIED
        assert headroom is None

    def test_stage0_bound_certification_with_domains(self):
        # Establish a k-th retained score near the max spread, then probe
        # a high-value A: its best completion bound (100 - value) cannot
        # crack the retained top-1, so the probe certifies it safe.  The
        # probes pass seq_hint because the events were never sequenced —
        # exactly what the runner's pre-ingest sampling path does.
        self.engine.push(Event("A", 1.0, value=0.0, group=0))
        self.engine.push(Event("B", 2.0, value=50.0, group=0))  # kth = 50
        at = self.engine.metrics.events_pushed
        # ceiling of A(99) is 100 - 99 = 1 < 50: provably hopeless
        classification, headroom = self.handle.shed_probe(
            Event("A", 3.0, value=99.0, group=0), seq_hint=at
        )
        assert classification is SHED_SAFE
        assert headroom is not None and headroom > 0
        # ceiling of A(10) is 90 > 50: could dethrone the champion
        classification, headroom = self.handle.shed_probe(
            Event("A", 3.5, value=10.0, group=0), seq_hint=at
        )
        assert classification is SHED_UNCERTIFIED
        assert headroom is not None


class TestExactDifferential:
    # expect_sheds is workload-dependent: the clickstream funnel keeps a
    # live AddToCart run per user almost continuously (Purchases are
    # protected, AddToCarts uncertified — value domain up to 500 can
    # always crack a top-1), and without a registry no bound certifies —
    # those streams legitimately shed nothing, which is itself the
    # safety property at work.
    CASES = [
        pytest.param(
            GenericWorkload,
            {"seed": 5, "alphabet_size": 2},
            GENERIC_QUERY,
            2000,
            True,
            True,
            id="generic-k1",
        ),
        pytest.param(
            StockWorkload,
            {"seed": 11},
            STOCK_QUERY,
            1500,
            True,
            False,
            id="stock-k4",
        ),
        pytest.param(
            ClickstreamWorkload,
            {"seed": 3, "users": 12},
            FUNNEL_QUERY,
            1500,
            True,
            False,
            id="clickstream-k1",
        ),
        pytest.param(
            GenericWorkload,
            {"seed": 9, "alphabet_size": 3},
            GENERIC_QUERY,
            1200,
            False,
            False,
            id="generic-no-registry",
        ),
    ]

    @pytest.mark.parametrize(
        "workload_cls, kwargs, query, count, with_registry, expect_sheds",
        CASES,
    )
    def test_forced_exact_shedding_is_byte_identical(
        self, workload_cls, kwargs, query, count, with_registry, expect_sheds
    ):
        def events():
            return list(workload_cls(**kwargs).events(count))

        registry = (
            workload_cls(**kwargs).registry() if with_registry else None
        )
        _, baseline = run_engine(query, events(), registry=registry)
        controller = forced_exact()
        _, shedded = run_engine(
            query, events(), registry=registry, controller=controller
        )
        assert strict_fingerprint(shedded) == strict_fingerprint(baseline)
        assert [strict_match_fp(m) for m in shedded.final_ranking()] == [
            strict_match_fp(m) for m in baseline.final_ranking()
        ]
        # the controller did engage and at least looked at every event
        assert controller.stats.offered > 0
        if expect_sheds:
            assert controller.stats.shed_events_total > 0
        # exact mode never samples, so recall stays exactly 1.0
        assert controller.stats.shed_sampled_total == 0
        assert controller.recall_estimate == 1.0

    def test_bound_certified_sheds_fire_with_domains(self):
        # Tight schema domains are the precondition for score-bound
        # certificates (same as pruning): the generic workload's declared
        # value range makes many stage-0 events provably hopeless.
        workload = GenericWorkload(seed=5, alphabet_size=2)
        controller = forced_exact()
        run_engine(
            GENERIC_QUERY,
            workload.events(2000),
            registry=workload.registry(),
            controller=controller,
        )
        assert controller.stats.certified_total > 0

    def test_standby_controller_sheds_nothing(self):
        # Without overload (and without force) exact mode never elides.
        workload = GenericWorkload(seed=5, alphabet_size=2)
        controller = ShedController(policy="exact")
        _, handle = run_engine(
            GENERIC_QUERY,
            workload.events(500),
            registry=workload.registry(),
            controller=controller,
        )
        assert controller.stats.shed_events_total == 0
        assert handle.metrics.events_routed == 500


class TestAdaptiveAdmission:
    class FakeQuery:
        def __init__(self, classification, headroom=None, explode=False):
            self.classification = classification
            self.headroom = headroom
            self.explode = explode

        def shed_probe(self, event, seq_hint=None):
            if self.explode:
                raise RuntimeError("racing consumer")
            return self.classification, self.headroom

    def engaged_adaptive(self, rate=0.5, seed=2016):
        controller = ShedController(
            policy="adaptive", force=True, seed=seed
        )
        controller.drop_rate = rate
        return controller

    def test_protected_events_are_never_dropped(self):
        controller = self.engaged_adaptive(rate=0.95)
        probe = [self.FakeQuery(SHED_PROTECTED)]
        for i in range(200):
            assert controller.admit(Event("A", float(i)), probe) is True
        assert controller.stats.shed_events_total == 0
        assert controller.stats.protected_total == 200

    def test_safe_events_shed_preferentially(self):
        controller = self.engaged_adaptive(rate=0.25)
        safe = [self.FakeQuery(SHED_SAFE)]
        kept = sum(
            controller.admit(Event("A", float(i)), safe) for i in range(1000)
        )
        # boosted to min(1, 4 * 0.25) = 1.0: everything safe sheds
        assert kept == 0
        assert controller.stats.shed_safe_total == 1000
        assert controller.recall_estimate == 1.0  # safe sheds cost nothing

    def test_risky_uncertified_events_shed_reluctantly(self):
        plain = self.engaged_adaptive(rate=0.8, seed=1)
        risky = self.engaged_adaptive(rate=0.8, seed=1)
        plain_probe = [self.FakeQuery(SHED_UNCERTIFIED, headroom=None)]
        risky_probe = [self.FakeQuery(SHED_UNCERTIFIED, headroom=-5.0)]
        plain_drops = sum(
            not plain.admit(Event("A", float(i)), plain_probe)
            for i in range(1000)
        )
        risky_drops = sum(
            not risky.admit(Event("A", float(i)), risky_probe)
            for i in range(1000)
        )
        # risky events sample at rate * 0.25
        assert risky_drops < plain_drops / 2
        assert 0.0 < risky.recall_estimate < 1.0
        assert plain.recall_estimate == pytest.approx(
            1.0 - plain_drops / 1000
        )

    def test_probe_failure_demotes_to_uncertified(self):
        controller = self.engaged_adaptive(rate=1.0)
        # rate 1.0 would always shed a safe event; the exploding probe
        # must demote to uncertified, never promote to safe
        controller.admit(
            Event("A", 1.0), [self.FakeQuery(SHED_SAFE, explode=True)]
        )
        assert controller.stats.uncertified_offered == 1
        assert controller.stats.shed_safe_total == 0

    def test_decisions_are_deterministic_for_fixed_sequence(self):
        def run():
            controller = self.engaged_adaptive(rate=0.5, seed=7)
            probe = [self.FakeQuery(SHED_UNCERTIFIED)]
            return [
                controller.admit(Event("A", float(i)), probe)
                for i in range(100)
            ]

        assert run() == run()


class TestRunnerIntegration:
    def test_threaded_runner_off_policy_has_no_controller_overhead(self):
        engine = CEPREngine()
        runner = ThreadedEngineRunner(engine)
        assert engine.shed_controller is None
        assert runner.shed_stats_dict() is None
        prom = runner.metrics_registry().to_prometheus()
        assert "shed_events_total" not in prom

    def test_threaded_runner_adaptive_sheds_under_force(self):
        workload = GenericWorkload(seed=5, alphabet_size=2)
        controller = ShedController(policy="adaptive", force=True)
        controller.drop_rate = 0.9
        engine = CEPREngine(registry=workload.registry())
        handle = engine.register_query(GENERIC_QUERY)
        runner = ThreadedEngineRunner(
            engine, shed_policy="adaptive", shed_controller=controller
        )
        runner.start()
        try:
            for event in workload.events(1000):
                runner.submit(event)
        finally:
            runner.stop()  # drains the queue and flushes the engine
        assert controller.stats.shed_events_total > 0
        # dropped events never reached the engine
        assert handle.metrics.events_routed < 1000
        assert (
            handle.metrics.events_routed
            == 1000 - controller.stats.shed_events_total
        )
        doc = runner.shed_stats_dict()
        assert doc["policy"] == "adaptive"
        assert doc["stats"]["shed_events_total"] > 0
        prom = runner.metrics_registry().to_prometheus()
        assert "shed_events_total" in prom
        assert "shed_recall_estimate" in prom

    @pytest.mark.parametrize("shards", [1, 2])
    def test_sharded_exact_forced_is_identical_to_single_engine(
        self, shards
    ):
        workload_kwargs = {"seed": 5, "alphabet_size": 2}

        def events():
            return list(GenericWorkload(**workload_kwargs).events(1200))

        registry = GenericWorkload(**workload_kwargs).registry()
        _, baseline = run_engine(GENERIC_QUERY, events(), registry=registry)

        runner = ShardedEngineRunner(
            shards=shards,
            registry=registry,
            shed_policy="exact",
            shed_controller=forced_exact(),
        )
        view = runner.register_query(GENERIC_QUERY)
        runner.start()
        try:
            for event in events():
                runner.submit(event)
            runner.flush()
        finally:
            runner.stop()

        assert loose_fingerprint(view) == loose_fingerprint(baseline)
        stats = runner.shed_stats()
        assert stats.shed_events_total > 0
        assert stats.shed_sampled_total == 0
        doc = runner.shed_stats_dict()
        assert doc["stats"]["shed_events_total"] == stats.shed_events_total

    def test_sharded_adaptive_drops_before_the_shards(self):
        workload = GenericWorkload(seed=5, alphabet_size=2)
        controller = ShedController(policy="adaptive", force=True)
        controller.drop_rate = 0.9
        runner = ShardedEngineRunner(
            shards=2,
            registry=workload.registry(),
            shed_policy="adaptive",
            shed_controller=controller,
        )
        view = runner.register_query(GENERIC_QUERY)
        runner.start()
        try:
            for event in workload.events(1000):
                runner.submit(event)
            runner.flush()
        finally:
            runner.stop()
        assert controller.stats.shed_events_total > 0
        routed = sum(h.metrics.events_routed for h in view.handles)
        assert routed == 1000 - controller.stats.shed_events_total
        prom = runner.metrics_registry().to_prometheus()
        assert "shed_events_total" in prom


class TestSanitizerCatchesFalseCertificate:
    def test_false_certificate_trips_certified_shed(self, monkeypatch):
        # Seeded defect: the probe certifies every event as safe.  The
        # CEPRSan certified-shed check re-derives safety independently
        # before each elide and must trip on the first unsafe one.
        monkeypatch.setattr(
            RegisteredQuery,
            "shed_probe",
            lambda self, event, seq_hint=None: (SHED_SAFE, 1.0),
        )
        workload = GenericWorkload(seed=5, alphabet_size=2)
        engine = CEPREngine(registry=workload.registry(), sanitize=True)
        engine.sanitizer._mode = "log"
        handle = engine.register_query(GENERIC_QUERY)
        controller = forced_exact()
        controller.invariant_checker = engine._invariants
        engine.shed_controller = controller
        for event in workload.events(300):
            engine.push(event)
        engine.flush()
        assert engine.sanitizer.trips["certified-shed"] > 0

    def test_clean_exact_run_never_trips(self):
        workload = GenericWorkload(seed=5, alphabet_size=2)
        engine = CEPREngine(registry=workload.registry(), sanitize=True)
        engine.sanitizer._mode = "log"
        engine.register_query(GENERIC_QUERY)
        controller = forced_exact()
        controller.invariant_checker = engine._invariants
        engine.shed_controller = controller
        for event in workload.events(1000):
            engine.push(event)
        engine.flush()
        assert engine.sanitizer.trips["certified-shed"] == 0
        assert controller.stats.certified_total > 0
