"""Differential equivalence tests for shared multi-query execution.

The exactness contract (see ``repro/runtime/router.py`` and
docs/SHARED_EXECUTION.md): an engine with ``shared_execution=True`` (the
default) produces **byte-identical, identically-ordered** per-query
emissions to both

* one engine per query with sharing disabled (N fully independent
  single-query runs), and
* one multi-query engine with ``shared_execution=False``

for the same stream — including detection indices, revision counters,
and emission stream points.  These tests drive seeded stock, vitals, and
clickstream workloads through query-variant families built to exercise
every sharing layer (common pattern heads, alpha-renamed bindings,
permuted conjuncts, flipped comparisons), plus registration churn and
checkpoint/restore mid-stream.

Unlike the sharded differential suite, nothing here re-stamps
bookkeeping, so fingerprints include ``detection_index`` and
``revision`` and the serialized wire lines are compared verbatim.
"""

import pytest

from repro import CEPREngine
from repro.events.event import Event
from repro.runtime.serialize import emission_to_line
from repro.workloads.clickstream import ClickstreamWorkload
from repro.workloads.sensor import VitalsWorkload
from repro.workloads.stock import StockWorkload


def match_fp(match):
    bindings = tuple(
        (
            var,
            (binding.seq,)
            if isinstance(binding, Event)
            else tuple(e.seq for e in binding),
        )
        for var, binding in match.bindings.items()
    )
    return (
        bindings,
        match.first_seq,
        match.last_seq,
        match.partition_key,
        match.score,
        match.rank_values,
        match.detection_index,
    )


def emission_fp(emission):
    return (
        emission.kind.value,
        emission.at_seq,
        emission.at_ts,
        emission.epoch,
        emission.revision,
        tuple(match_fp(m) for m in emission.ranking),
    )


def fingerprint(handle):
    return [emission_fp(e) for e in handle.results()]


def wire_lines(handle):
    """The emissions exactly as the serving layer would frame them."""
    return [emission_to_line(e) for e in handle.results()]


def drive(engine, events, heartbeat_every=None, lead=2.5):
    events = list(events)
    for index, event in enumerate(events):
        engine.push(event)
        if heartbeat_every and index % heartbeat_every == heartbeat_every - 1:
            watermark = event.timestamp + lead
            if index + 1 < len(events):
                watermark = min(watermark, events[index + 1].timestamp)
            engine.advance_time(watermark)
    engine.flush()


def run_together(queries, make_events, shared, heartbeat_every=None, **kwargs):
    """All queries in one engine, sharing on or off."""
    engine = CEPREngine(shared_execution=shared, **kwargs)
    handles = [engine.register_query(q) for q in queries]
    drive(engine, make_events(), heartbeat_every)
    return engine, handles


def run_isolated(queries, make_events, heartbeat_every=None, **kwargs):
    """One fully independent engine per query (the strongest baseline)."""
    handles = []
    for query in queries:
        engine = CEPREngine(shared_execution=False, **kwargs)
        handles.append(engine.register_query(query))
        drive(engine, make_events(), heartbeat_every)
    return handles


def assert_equivalent(queries, make_events, heartbeat_every=None, **kwargs):
    engine, shared_handles = run_together(
        queries, make_events, True, heartbeat_every, **kwargs
    )
    _, together_handles = run_together(
        queries, make_events, False, heartbeat_every, **kwargs
    )
    isolated_handles = run_isolated(queries, make_events, heartbeat_every, **kwargs)
    for shared_h, together_h, isolated_h in zip(
        shared_handles, together_handles, isolated_handles
    ):
        name = shared_h.name
        assert fingerprint(shared_h) == fingerprint(together_h), name
        assert fingerprint(shared_h) == fingerprint(isolated_h), name
        assert wire_lines(shared_h) == wire_lines(isolated_h), name
        assert [match_fp(m) for m in shared_h.final_ranking()] == [
            match_fp(m) for m in isolated_h.final_ranking()
        ], name
        # Sharing must not change what each query *saw* either.
        assert (
            shared_h.metrics.events_routed == together_h.metrics.events_routed
        ), name
        assert (
            shared_h.matcher.stats.evaluation_errors
            == together_h.matcher.stats.evaluation_errors
        ), name
    return engine, shared_handles


# Five variants over one pattern head: shared prefix (identical names),
# alpha-renamed bindings, permuted conjuncts, flipped comparisons, and
# every emission policy the ranker supports.
STOCK_VARIANTS = [
    """
    NAME surge_top5
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price AND b.price > 10
    WITHIN 100 EVENTS
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 5
    EMIT ON WINDOW CLOSE
    """,
    """
    NAME surge_top3
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.price > 10 AND b.symbol == s.symbol AND s.price > b.price
    WITHIN 100 EVENTS
    PARTITION BY symbol
    RANK BY s.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
    """,
    """
    NAME surge_renamed
    PATTERN SEQ(Buy x, Sell y)
    WHERE x.symbol == y.symbol AND y.price > x.price AND 10 < x.price
    WITHIN 100 EVENTS
    PARTITION BY symbol
    RANK BY y.price - x.price DESC
    LIMIT 5
    EMIT ON WINDOW CLOSE
    """,
    """
    NAME surge_eager
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price AND b.price > 10
    WITHIN 60 EVENTS
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT EAGER
    """,
    """
    NAME surge_every
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price AND b.price > 10
    WITHIN 60 EVENTS
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT EVERY 40 EVENTS
    """,
]

VITALS_VARIANTS = [
    """
    NAME fever_ramp
    PATTERN SEQ(HeartRate h, Temperature ts+)
    WHERE h.value > 90 AND ts.value > prev(ts.value)
    WITHIN 12 SECONDS
    PARTITION BY patient
    RANK BY max(ts.value) DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
    """,
    """
    NAME fever_ramp_len
    PATTERN SEQ(HeartRate h, Temperature ts+)
    WHERE 90 < h.value AND ts.value > prev(ts.value)
    WITHIN 12 SECONDS
    PARTITION BY patient
    RANK BY count(ts) DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
    """,
    """
    NAME tachycardia
    PATTERN SEQ(HeartRate a, HeartRate b)
    WHERE a.value > 90 AND b.value > a.value
    WITHIN 8 SECONDS
    PARTITION BY patient
    RANK BY b.value DESC
    LIMIT 5
    EMIT ON WINDOW CLOSE
    """,
]

CLICKSTREAM_VARIANTS = [
    """
    NAME abandoned_carts
    PATTERN SEQ(AddToCart c, NOT Purchase p)
    WHERE c.value > 100
    WITHIN 4 SECONDS
    PARTITION BY user
    RANK BY c.value DESC
    LIMIT 5
    EMIT ON WINDOW CLOSE
    """,
    """
    NAME big_carts
    PATTERN SEQ(AddToCart c, Purchase p)
    WHERE c.value > 100 AND p.value >= c.value
    WITHIN 6 SECONDS
    PARTITION BY user
    RANK BY p.value DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
    """,
    """
    NAME browse_to_buy
    PATTERN SEQ(PageView v, AddToCart c, Purchase p)
    WHERE 100 < c.value
    WITHIN 6 SECONDS
    PARTITION BY user
    RANK BY c.value DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
    """,
]


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 44])
    def test_stock_variant_family(self, seed):
        make = lambda: StockWorkload(seed=seed).events(1500)
        engine, _ = assert_equivalent(STOCK_VARIANTS, make)
        counters = engine.shared_stats()
        # The family was built to share: the flipped/renamed/permuted
        # variants must collapse onto common index entries and actually
        # save evaluations at runtime.
        assert counters["predicate_evals_saved"] > 0
        assert counters["prefix_states_shared"] > 0

    @pytest.mark.parametrize("seed", [5, 23])
    def test_stock_with_heartbeats(self, seed):
        make = lambda: StockWorkload(seed=seed, rate=10.0).events(1000)
        assert_equivalent(STOCK_VARIANTS, make, heartbeat_every=150)

    @pytest.mark.parametrize("seed", [1, 9])
    def test_vitals_kleene_family(self, seed):
        make = lambda: VitalsWorkload(
            seed=seed, patients=6, anomaly_rate=0.05
        ).events(1200)
        assert_equivalent(VITALS_VARIANTS, make)

    @pytest.mark.parametrize("seed", [2, 12])
    def test_clickstream_negation_family(self, seed):
        make = lambda: ClickstreamWorkload(seed=seed, users=12).events(1500)
        assert_equivalent(CLICKSTREAM_VARIANTS, make, heartbeat_every=200)

    def test_lenient_errors_accounting_matches(self):
        """Dirty data: per-query error counters survive memoized outcomes."""

        def make():
            events = list(StockWorkload(seed=7).events(600))
            # Strip `price` from a deterministic subset so the shared
            # predicates raise for some events under the lenient policy.
            for event in events:
                if event.timestamp % 1.0 < 0.08 and "price" in event.payload:
                    del event.payload["price"]
            return events

        assert_equivalent(STOCK_VARIANTS, make, lenient_errors=True)

    def test_schema_registry_and_pruning(self):
        registry = StockWorkload(seed=13).registry()
        make = lambda: StockWorkload(seed=13).events(1000)
        assert_equivalent(
            STOCK_VARIANTS, make, registry=registry, enable_pruning=True
        )


class TestRegistrationChurn:
    """UNREGISTER/REGISTER mid-stream: survivors stay byte-identical."""

    CHURN_POINTS = (400, 800)

    def _drive_with_churn(self, shared):
        engine = CEPREngine(shared_execution=shared)
        handles = {}
        for query in STOCK_VARIANTS:
            handle = engine.register_query(query)
            handles[handle.name] = handle
        events = list(StockWorkload(seed=29).events(1200))
        for index, event in enumerate(events):
            if index == self.CHURN_POINTS[0]:
                engine.unregister_query("surge_top3")
                engine.unregister_query("surge_renamed")
            if index == self.CHURN_POINTS[1]:
                # Fresh registration: same text, clean state, new entries.
                handle = engine.register_query(
                    STOCK_VARIANTS[1], name="surge_top3_v2"
                )
                handles[handle.name] = handle
            engine.push(event)
        engine.flush()
        return engine, handles

    def test_survivors_and_rejoiners_identical(self):
        _, shared_handles = self._drive_with_churn(True)
        _, indep_handles = self._drive_with_churn(False)
        assert shared_handles.keys() == indep_handles.keys()
        for name, shared_h in shared_handles.items():
            assert fingerprint(shared_h) == fingerprint(indep_handles[name]), name
            assert wire_lines(shared_h) == wire_lines(indep_handles[name]), name

    def test_unregister_releases_only_its_entries(self):
        engine, _ = self._drive_with_churn(True)
        shared = engine.shared
        assert shared is not None
        # Four queries still registered; their entries must remain claimed.
        assert shared.distinct_predicates > 0
        for name in ("surge_top3", "surge_renamed"):
            for fp, entry in list(shared._predicates.items()):
                assert name not in entry.owners, (name, fp)
            for key, entry in list(shared._prefixes.items()):
                assert name not in entry.owners, (name, key)


class TestCheckpointRestore:
    """The shared index is derived state: snapshots are interchangeable
    between shared and independent engines, and a restored shared engine
    continues byte-identically."""

    MIDPOINT = 700

    def _make_engine(self, shared):
        engine = CEPREngine(shared_execution=shared)
        handles = [engine.register_query(q) for q in STOCK_VARIANTS]
        return engine, handles

    def test_restore_continues_identically(self):
        events = list(StockWorkload(seed=51).events(1400))
        head, tail = events[: self.MIDPOINT], events[self.MIDPOINT :]

        # Reference: one uninterrupted independent run.
        ref_engine, reference = self._make_engine(False)
        for event in events:
            ref_engine.push(event)
        ref_engine.flush()

        # Shared run to the midpoint, then snapshot.
        source, source_handles = self._make_engine(True)
        for event in head:
            source.push(event)
        state = source.snapshot()
        head_fps = {h.name: fingerprint(h) for h in source_handles}

        # Restore the snapshot into a fresh *shared* and a fresh
        # *independent* engine; both finish the stream.
        finishers = []
        for shared in (True, False):
            engine, handles = self._make_engine(shared)
            engine.restore(state)
            for event in tail:
                engine.push(event)
            engine.flush()
            finishers.append(handles)

        for ref in reference:
            head_fp = head_fps[ref.name]
            assert head_fp == fingerprint(ref)[: len(head_fp)], ref.name
            for handles in finishers:
                resumed = next(h for h in handles if h.name == ref.name)
                assert (
                    head_fp + fingerprint(resumed) == fingerprint(ref)
                ), ref.name


class TestChurnRegression:
    """100 registered-then-unregistered queries leave nothing behind:
    no index entries, no stale per-query metric series."""

    def _variant(self, index):
        return f"""
        NAME churn_{index}
        PATTERN SEQ(Buy b, Sell s)
        WHERE b.symbol == s.symbol AND b.price > {index % 10}
        WITHIN 50 EVENTS
        PARTITION BY symbol
        RANK BY s.price DESC
        LIMIT 2
        EMIT ON WINDOW CLOSE
        """

    def test_full_churn_leaves_empty_index_and_registry(self):
        engine = CEPREngine()
        names = []
        for index in range(100):
            handle = engine.register_query(self._variant(index))
            names.append(handle.name)
        assert engine.shared is not None
        assert engine.shared.distinct_predicates > 0
        # 100 queries, 10 distinct `b.price > k` predicates: dedupe works.
        assert engine.shared.distinct_predicates <= 10

        # Interleave some traffic so the index is hot, then churn.
        for event in StockWorkload(seed=3).events(200):
            engine.push(event)
        registry = engine.metrics_registry()
        assert any(
            sample.labels.get("query") == "churn_99"
            for sample in registry.collect()
        )

        for name in names:
            engine.unregister_query(name)

        assert engine.shared.is_empty()
        stale = [
            sample
            for sample in engine.metrics_registry().collect()
            if sample.labels.get("query", "").startswith("churn_")
        ]
        assert stale == []

    def test_interleaved_churn_never_leaks(self):
        """Register/unregister interleaved with traffic, repeatedly."""
        engine = CEPREngine()
        events = iter(StockWorkload(seed=8).events(100_000))
        for round_index in range(10):
            handles = [
                engine.register_query(
                    self._variant(round_index * 10 + i),
                )
                for i in range(10)
            ]
            for _ in range(50):
                engine.push(next(events))
            for handle in handles:
                engine.unregister_query(handle.name)
            assert engine.shared is not None and engine.shared.is_empty(), (
                round_index
            )
