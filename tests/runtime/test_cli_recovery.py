"""CLI checkpoint/resume tests (``cepr run --checkpoint-dir --resume``).

Crash simulation: the event file gets an undecodable line spliced in at
a checkpoint boundary, so the first ``run`` dies mid-stream exactly the
way a torn input or process kill would (no flush, no final emissions).
The resumed run must then complete the output file *byte-identically* to
a never-interrupted run.
"""

import io
import json

import pytest

from repro.cli import main
from repro.ranking.emission import Emission, EmissionKind
from repro.runtime.sinks import JSONLSink

QUERY = """
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol AND s.price > b.price
WITHIN 100 EVENTS
PARTITION BY symbol
RANK BY s.price - b.price DESC
LIMIT 5
EMIT ON WINDOW CLOSE
"""


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "spread.ceprql"
    path.write_text(QUERY)
    return path


@pytest.fixture
def streams(tmp_path):
    """(full, crashed) event files: crashed dies at event 301."""
    full = tmp_path / "full.jsonl"
    code, _ = run_cli(
        "demo", "stock", "--events", "1000", "--seed", "7", "--out", str(full)
    )
    assert code == 0
    crashed = tmp_path / "crashed.jsonl"
    lines = full.read_text().splitlines(keepends=True)[:300]
    crashed.write_text("".join(lines) + "this is not an event\n")
    return full, crashed


class TestJSONLSinkModes:
    def emission(self):
        return Emission(
            kind=EmissionKind.WINDOW_CLOSE, ranking=[], at_seq=1, at_ts=1.0, epoch=0
        )

    def test_write_mode_truncates(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text("stale line\n")
        with JSONLSink(path) as sink:
            sink.accept(self.emission())
        assert "stale" not in path.read_text()
        assert len(path.read_text().splitlines()) == 1

    def test_append_mode_preserves_existing_output(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with JSONLSink(path) as sink:
            sink.accept(self.emission())
        before = path.read_text()
        with JSONLSink(path, mode="a") as sink:
            sink.accept(self.emission())
        after = path.read_text()
        assert after.startswith(before)
        assert len(after.splitlines()) == 2

    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            JSONLSink(tmp_path / "out.jsonl", mode="r")


@pytest.mark.parametrize("shards", [1, 4])
class TestCrashAndResume:
    def test_resume_completes_byte_identically(
        self, query_file, streams, tmp_path, shards
    ):
        full, crashed = streams
        reference = tmp_path / "ref.jsonl"
        code, _ = run_cli(
            "run", str(query_file), "--events", str(full),
            "--shards", str(shards), "--out", str(reference),
        )
        assert code == 0

        out = tmp_path / "out.jsonl"
        ckpt = tmp_path / "ckpt"
        code, output = run_cli(
            "run", str(query_file), "--events", str(crashed),
            "--shards", str(shards), "--out", str(out),
            "--checkpoint-dir", str(ckpt), "--checkpoint-every", "50",
        )
        assert code == 1 and "error:" in output  # the simulated crash
        assert list(ckpt.glob("checkpoint-*.json"))  # checkpoints survived
        # truly partial (the sink opens lazily, so it may not even exist)
        partial = out.read_bytes() if out.exists() else b""
        assert partial != reference.read_bytes()

        code, _ = run_cli(
            "run", str(query_file), "--events", str(full),
            "--shards", str(shards), "--out", str(out),
            "--checkpoint-dir", str(ckpt), "--checkpoint-every", "50",
            "--resume",
        )
        assert code == 0
        assert out.read_bytes() == reference.read_bytes()

    def test_resume_without_checkpoint_starts_fresh(
        self, query_file, streams, tmp_path, shards
    ):
        full, _ = streams
        out = tmp_path / "out.jsonl"
        code, _ = run_cli(
            "run", str(query_file), "--events", str(full),
            "--shards", str(shards), "--out", str(out),
            "--checkpoint-dir", str(tmp_path / "empty-ckpt"), "--resume",
        )
        assert code == 0
        reference = tmp_path / "ref.jsonl"
        run_cli("run", str(query_file), "--events", str(full), "--out", str(reference))
        assert out.read_bytes() == reference.read_bytes()


class TestFlagValidation:
    def test_resume_requires_checkpoint_dir(self, query_file, streams):
        full, _ = streams
        code, output = run_cli(
            "run", str(query_file), "--events", str(full), "--resume"
        )
        assert code == 1
        assert "--resume requires --checkpoint-dir" in output

    def test_checkpoint_every_validated(self, query_file, streams, tmp_path):
        full, _ = streams
        code, output = run_cli(
            "run", str(query_file), "--events", str(full),
            "--checkpoint-dir", str(tmp_path / "c"), "--checkpoint-every", "0",
        )
        assert code == 1
        assert "--checkpoint-every" in output

    def test_stats_reports_checkpoints(self, query_file, streams, tmp_path):
        full, _ = streams
        code, output = run_cli(
            "run", str(query_file), "--events", str(full),
            "--out", str(tmp_path / "o.jsonl"),
            "--checkpoint-dir", str(tmp_path / "c"), "--checkpoint-every", "200",
            "--stats",
        )
        assert code == 0
        assert "checkpoints: saves=5" in output


class TestOutFileIsStrictJSONL:
    def test_every_line_parses(self, query_file, streams, tmp_path):
        full, _ = streams
        out = tmp_path / "o.jsonl"
        code, _ = run_cli(
            "run", str(query_file), "--events", str(full), "--out", str(out)
        )
        assert code == 0
        lines = out.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)


class TestNaNPayloadThroughSink:
    def test_nan_round_trips_through_jsonl(self, tmp_path):
        # a NaN sensor reading must survive engine -> sink -> parse
        from repro.runtime.serialize import emission_from_line

        events = tmp_path / "events.jsonl"
        rows = [
            {"type": "Buy", "timestamp": 1.0, "symbol": "X", "price": 10.0},
            {"type": "Sell", "timestamp": 2.0, "symbol": "X", "price": 15.0},
        ]
        events.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
        query = tmp_path / "q.ceprql"
        query.write_text(QUERY)
        out = tmp_path / "o.jsonl"
        code, _ = run_cli(
            "run", str(query), "--events", str(events), "--out", str(out)
        )
        assert code == 0
        for line in out.read_text().splitlines():
            parsed = emission_from_line(line)
            assert parsed["ranking"]


# sanity check behind the streams fixture: demo output is deterministic,
# so "replay the same events file" is a faithful crash model
def test_demo_is_deterministic(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    run_cli("demo", "stock", "--events", "50", "--seed", "7", "--out", str(a))
    run_cli("demo", "stock", "--events", "50", "--seed", "7", "--out", str(b))
    assert a.read_bytes() == b.read_bytes()
