"""Tests for the threaded engine runner."""

import threading

import pytest

from repro import CEPREngine, Event
from repro.runtime.concurrent import ThreadedEngineRunner
from repro.workloads.generic import GenericWorkload


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestLifecycle:
    def test_submit_process_stop(self):
        engine = CEPREngine()
        handle = engine.register_query("PATTERN SEQ(A a, B b)")
        with ThreadedEngineRunner(engine) as runner:
            runner.submit(E("A", 1))
            runner.submit(E("B", 2))
        assert runner.events_processed == 2
        assert len(handle.matches()) == 1

    def test_emission_callback_invoked_on_consumer(self):
        received = []
        engine = CEPREngine()
        engine.register_query("PATTERN SEQ(A a)")
        with ThreadedEngineRunner(engine, on_emission=received.append) as runner:
            runner.submit(E("A", 1))
            runner.submit(E("A", 2))
        assert len(received) == 2

    def test_flush_emissions_delivered_at_stop(self):
        received = []
        engine = CEPREngine()
        engine.register_query(
            "PATTERN SEQ(A a) WITHIN 100 EVENTS RANK BY a.x DESC "
            "EMIT ON WINDOW CLOSE"
        )
        with ThreadedEngineRunner(engine, on_emission=received.append) as runner:
            runner.submit(E("A", 1, x=1))
        assert len(received) == 1  # the epoch closed at flush

    def test_double_start_rejected(self):
        runner = ThreadedEngineRunner(CEPREngine())
        runner.start()
        with pytest.raises(RuntimeError, match="already started"):
            runner.start()
        runner.stop()

    def test_submit_after_stop_rejected(self):
        runner = ThreadedEngineRunner(CEPREngine()).start()
        runner.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            runner.submit(E("A", 1))

    def test_stop_is_idempotent(self):
        runner = ThreadedEngineRunner(CEPREngine()).start()
        runner.stop()
        runner.stop()


class TestConcurrency:
    def test_many_producers_one_engine(self):
        engine = CEPREngine()
        handle = engine.register_query("PATTERN SEQ(A a)")
        runner = ThreadedEngineRunner(engine).start()

        def produce(offset):
            for i in range(200):
                runner.submit(E("A", float(offset * 1000 + i)))

        threads = [threading.Thread(target=produce, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        runner.stop()
        assert runner.events_processed == 800
        assert len(handle.matches()) == 800

    def test_results_match_sequential_run(self):
        workload = GenericWorkload(seed=9, alphabet_size=3)
        events = list(workload.events(1000))
        query = (
            "PATTERN SEQ(A a, B b) WITHIN 30 EVENTS USING SKIP_TILL_ANY "
            "RANK BY b.value - a.value DESC LIMIT 3 EMIT ON WINDOW CLOSE"
        )

        threaded_engine = CEPREngine()
        threaded_handle = threaded_engine.register_query(query)
        with ThreadedEngineRunner(threaded_engine) as runner:
            runner.submit_all(
                Event(e.event_type, e.timestamp, **e.payload) for e in events
            )

        sequential_engine = CEPREngine()
        sequential_handle = sequential_engine.register_query(query)
        sequential_engine.run(
            Event(e.event_type, e.timestamp, **e.payload) for e in events
        )

        def fp(handle):
            return [
                (e.epoch, tuple(tuple(m.rank_values) for m in e.ranking))
                for e in handle.results()
            ]

        assert fp(threaded_handle) == fp(sequential_handle)

    def test_engine_failure_surfaces_to_producer(self):
        engine = CEPREngine()
        engine.register_query("PATTERN SEQ(A a) WHERE a.x > 1")
        runner = ThreadedEngineRunner(engine).start()
        runner.submit(E("A", 1))  # missing x: strict mode raises in thread
        with pytest.raises(RuntimeError, match="engine thread failed"):
            runner.stop()
        assert runner.failure is not None

    def test_backlog_visible(self):
        engine = CEPREngine()
        engine.register_query("PATTERN SEQ(A a)")
        runner = ThreadedEngineRunner(engine)
        # not started: queue only fills
        runner._queue.put(E("A", 1))
        assert runner.backlog == 1


class TestStress:
    """Adversarial schedules: races, mid-stream failures, saturation."""

    def test_producers_racing_submit_against_stop(self):
        """Producers hammering submit while the main thread stops the
        runner must never deadlock or corrupt state: each submit either
        lands or raises the runner-stopped error."""
        engine = CEPREngine()
        handle = engine.register_query("PATTERN SEQ(A a)")
        runner = ThreadedEngineRunner(engine, max_queue=64).start()
        start_gate = threading.Event()
        rejected = threading.Event()

        def produce(offset):
            start_gate.wait()
            for i in range(5000):
                try:
                    runner.submit(E("A", float(offset * 10_000 + i)))
                except RuntimeError as exc:
                    assert "stopped" in str(exc)
                    rejected.set()
                    return

        threads = [
            threading.Thread(target=produce, args=(n,)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        start_gate.set()
        runner.stop()
        for thread in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive()
        # Everything the consumer processed became a match; submits that
        # arrived behind the stop sentinel were dropped, never processed.
        assert len(handle.matches()) == runner.events_processed
        assert runner.events_processed <= runner.events_submitted

    def test_predicate_error_mid_stream_surfaces_and_joins(self):
        """A predicate raising with lenient_errors=False must kill the
        consumer cleanly: stop() re-raises with the cause attached and the
        thread is joined, not leaked."""
        engine = CEPREngine(lenient_errors=False)
        engine.register_query("PATTERN SEQ(A a, B b) WHERE b.x / a.x > 0")
        runner = ThreadedEngineRunner(engine).start()
        runner.submit(E("A", 1, x=2))
        runner.submit(E("B", 2, x=4))  # fine: 4 / 2
        runner.submit(E("A", 3, x=0))
        runner.submit(E("B", 4, x=1))  # 1 / 0 raises mid-stream
        with pytest.raises(RuntimeError, match="engine thread failed") as info:
            runner.stop()
        assert info.value.__cause__ is runner.failure
        assert runner._thread is not None and not runner._thread.is_alive()
        # Producers see the failure too, rather than queueing into a void.
        with pytest.raises(RuntimeError):
            runner.submit(E("A", 5, x=1))

    def test_submit_blocks_at_max_queue(self):
        """Backpressure: with the consumer wedged, the bounded queue fills
        and submit(timeout=...) raises queue.Full instead of growing
        memory without bound."""
        import queue as queue_module

        gate = threading.Event()
        engine = CEPREngine()
        engine.register_query("PATTERN SEQ(A a)")
        runner = ThreadedEngineRunner(
            engine, on_emission=lambda emission: gate.wait(), max_queue=2
        ).start()

        # First event wedges the consumer inside on_emission; the rest can
        # only pile into the queue, which holds exactly max_queue of them.
        runner.submit(E("A", 1))
        deadline = 50
        while runner.backlog > 0 and deadline:  # consumer picked #1 up
            threading.Event().wait(0.01)
            deadline -= 1
        runner.submit(E("A", 2))
        runner.submit(E("A", 3))
        with pytest.raises(queue_module.Full):
            runner.submit(E("A", 4), timeout=0.2)
        assert runner.backlog == 2
        gate.set()  # unwedge; everything drains
        runner.stop()
        assert runner.events_processed == 3
