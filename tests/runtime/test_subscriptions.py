"""The first-class subscription API and sink lifecycle semantics."""

import pytest

from repro import CEPREngine, Event
from repro.ranking.emission import EmissionKind
from repro.runtime.concurrent import ThreadedEngineRunner
from repro.runtime.sharded import ShardedEngineRunner
from repro.runtime.sinks import (
    BaseSink,
    CallbackSink,
    CollectorSink,
    JSONLSink,
    Subscription,
    normalize_kinds,
)

EVERY = """
    PATTERN SEQ(A a)
    WITHIN 10 EVENTS
    RANK BY a.x DESC
    LIMIT 3
    EMIT EAGER
"""

PARTITIONED = """
    NAME per_symbol
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol
    WITHIN 10 SECONDS
    PARTITION BY symbol
    RANK BY s.price DESC
    LIMIT 2
    EMIT ON WINDOW CLOSE
"""


def E(event_type, ts, **attrs):
    return Event(event_type, ts, **attrs)


class RecordingSink(BaseSink):
    """A sink that records deliveries and lifecycle calls."""

    def __init__(self):
        super().__init__()
        self.emissions = []
        self.flushes = 0
        self.closes = 0

    def _deliver(self, emission):
        self.emissions.append(emission)

    def flush(self):
        self.flushes += 1

    def close(self):
        self.closes += 1


class TestSubscribe:
    def test_callback_receives_emissions(self):
        engine = CEPREngine()
        handle = engine.register_query(EVERY, collect_results=False)
        seen = []
        subscription = handle.subscribe(seen.append)
        assert isinstance(subscription, Subscription)
        engine.push(E("A", 1.0, x=1))
        assert len(seen) == 1

    def test_cancel_stops_delivery_and_is_idempotent(self):
        engine = CEPREngine()
        handle = engine.register_query(EVERY, collect_results=False)
        seen = []
        subscription = handle.subscribe(seen.append)
        engine.push(E("A", 1.0, x=1))
        assert subscription.cancel()
        assert not subscription.cancel()  # second cancel is a no-op
        engine.push(E("A", 2.0, x=2))
        assert len(seen) == 1

    def test_kind_filter(self):
        engine = CEPREngine()
        handle = engine.register_query(
            """
            PATTERN SEQ(A a)
            WITHIN 5 EVENTS
            RANK BY a.x DESC
            LIMIT 3
            EMIT EVERY 2 EVENTS
            """,
            collect_results=False,
        )
        periodic, all_kinds = [], []
        handle.subscribe(periodic.append, kinds=EmissionKind.PERIODIC)
        handle.subscribe(all_kinds.append)
        for i in range(11):
            engine.push(E("A", float(i), x=i))
        engine.flush()  # adds a FINAL emission only the unfiltered sub sees
        assert periodic
        assert len(all_kinds) > len(periodic)
        assert all(e.kind is EmissionKind.PERIODIC for e in periodic)

    def test_empty_kinds_rejected(self):
        engine = CEPREngine()
        handle = engine.register_query(EVERY)
        with pytest.raises(ValueError):
            handle.subscribe(lambda e: None, kinds=[])
        with pytest.raises(ValueError):
            normalize_kinds([])

    def test_engine_subscribe_by_name(self):
        engine = CEPREngine()
        engine.register_query(EVERY, name="q", collect_results=False)
        seen = []
        engine.subscribe("q", seen.append)
        engine.push(E("A", 1.0, x=5))
        assert len(seen) == 1

    def test_engine_subscribe_unknown_query_raises(self):
        engine = CEPREngine()
        with pytest.raises(KeyError):
            engine.subscribe("ghost", lambda e: None)

    def test_add_sink_shim_warns_but_delivers(self):
        engine = CEPREngine()
        handle = engine.register_query(EVERY, collect_results=False)
        sink = CollectorSink()
        with pytest.deprecated_call():
            handle.add_sink(sink)
        engine.push(E("A", 1.0, x=1))
        assert sink.emissions


class TestSinkLifecycle:
    def test_flush_and_close_propagate_through_engine(self):
        engine = CEPREngine()
        handle = engine.register_query(EVERY, collect_results=False)
        sink = RecordingSink()
        handle.subscribe(sink)
        engine.push(E("A", 1.0, x=1))
        engine.flush()
        assert sink.flushes == 1
        engine.close()
        assert sink.closes == 1
        # close() is idempotent: a second call must not re-close sinks.
        engine.close()
        assert sink.closes == 1

    def test_remove_sink_detaches(self):
        engine = CEPREngine()
        handle = engine.register_query(EVERY, collect_results=False)
        sink = RecordingSink()
        handle.subscribe(sink)
        assert handle.remove_sink(sink)
        assert not handle.remove_sink(sink)
        engine.push(E("A", 1.0, x=1))
        assert not sink.emissions

    def test_unregister_closes_sinks(self):
        engine = CEPREngine()
        handle = engine.register_query(EVERY, name="q", collect_results=False)
        sink = RecordingSink()
        handle.subscribe(sink)
        engine.unregister_query("q")
        assert sink.flushes == 1 and sink.closes == 1

    def test_jsonl_sink_through_engine_close(self, tmp_path):
        path = tmp_path / "out.jsonl"
        engine = CEPREngine()
        handle = engine.register_query(EVERY, collect_results=False)
        handle.subscribe(JSONLSink(path))
        engine.push(E("A", 1.0, x=1))
        engine.push(E("A", 2.0, x=2))
        engine.close()
        # two eager emissions plus the FINAL snapshot from the flush
        lines = path.read_text().splitlines()
        assert len(lines) == 3

    def test_subscription_counts_deliveries(self):
        engine = CEPREngine()
        handle = engine.register_query(EVERY, collect_results=False)
        sink = CallbackSink(lambda e: None)
        handle.subscribe(sink)
        engine.push(E("A", 1.0, x=1))
        engine.push(E("A", 2.0, x=2))
        assert sink.emissions_accepted == 2


class TestUnregisterPrunesMetrics:
    def test_metrics_disappear_with_the_query(self):
        engine = CEPREngine()
        engine.register_query(EVERY, name="doomed")
        registry = engine.metrics_registry()
        assert any(
            sample.labels.get("query") == "doomed"
            for sample in registry.collect()
        )
        engine.unregister_query("doomed")
        assert not any(
            sample.labels.get("query") == "doomed"
            for sample in registry.collect()
        )

    def test_reregistering_same_name_does_not_collide(self):
        engine = CEPREngine()
        for _ in range(3):
            engine.register_query(EVERY, name="recycled")
            engine.metrics_registry()  # force instrument creation
            engine.unregister_query("recycled")
        engine.register_query(EVERY, name="recycled", collect_results=False)
        engine.push(E("A", 1.0, x=1))
        samples = [
            sample
            for sample in engine.metrics_registry().collect()
            if sample.labels.get("query") == "recycled"
        ]
        series = [
            (sample.name, tuple(sorted(sample.labels.items())))
            for sample in samples
        ]
        assert len(series) == len(set(series)), "duplicate series after churn"
        assert samples, "live query must still be reported"


class TestRunnerSubscriptions:
    def test_threaded_runner_subscribe_while_running(self):
        engine = CEPREngine()
        engine.register_query(EVERY, name="q", collect_results=False)
        seen = []
        with ThreadedEngineRunner(engine) as runner:
            runner.subscribe("q", seen.append)
            runner.submit(E("A", 1.0, x=1))
            runner.sync(timeout=10.0)
            assert len(seen) == 1  # read-your-writes after the barrier
        assert len(seen) == 2  # stop() flushed: one FINAL emission more

    def test_sharded_view_subscribe(self):
        runner = ShardedEngineRunner(shards=2)
        view = runner.register_query(PARTITIONED)
        seen = []
        view.subscribe(seen.append)
        runner.start()
        try:
            for i, symbol in enumerate(["A", "B", "C", "D"]):
                runner.submit(E("Buy", float(i), symbol=symbol, price=1.0))
                runner.submit(
                    E("Sell", float(i) + 0.5, symbol=symbol, price=2.0)
                )
            runner.flush()
        finally:
            runner.stop()
        assert seen
        assert all(e.ranking for e in seen)

    def test_sharded_runner_subscribe_by_name(self):
        runner = ShardedEngineRunner(shards=2)
        runner.register_query(PARTITIONED)
        seen = []
        runner.subscribe("per_symbol", seen.append)
        with pytest.raises(KeyError):
            runner.subscribe("ghost", seen.append)
        runner.start()
        try:
            runner.submit(E("Buy", 1.0, symbol="A", price=1.0))
            runner.submit(E("Sell", 1.5, symbol="A", price=3.0))
            runner.flush()
        finally:
            runner.stop()
        assert seen


class TestRunnerFailureContainment:
    def test_barrier_ops_do_not_wedge_after_consumer_death(self):
        """Regression: ops queued after the terminal drain must not hang."""
        engine = CEPREngine()
        engine.register_query(
            # RANK BY references an attribute the events won't carry, so
            # scoring raises and kills the consumer thread mid-batch.
            "PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.missing DESC LIMIT 1",
            collect_results=False,
        )
        runner = ThreadedEngineRunner(engine).start()
        with pytest.raises(RuntimeError):
            for i in range(50):
                runner.submit(E("A", float(i)))
            runner.sync(timeout=10.0)
        # Every later barrier must fail fast instead of blocking forever.
        with pytest.raises(RuntimeError):
            runner.sync(timeout=10.0)
        with pytest.raises(RuntimeError):
            runner.advance_time(99.0, timeout=10.0)
        with pytest.raises(RuntimeError):
            with runner.pause():
                pass
