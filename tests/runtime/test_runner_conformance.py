"""Runner-protocol conformance: one workload, four backends, one answer.

Every backend built by ``create_runner`` must speak the same lifecycle
(``subscribe`` / ``submit_all`` / ``sync`` / ``flush`` / ``snapshot`` /
``restore`` / ``close``) and produce **byte-identical** emissions for
the same program and stream.  The embedded runner is the ground truth;
each concurrent backend is compared against it after compact JSON
re-serialisation — the same discipline the serving and sharded
differential suites use.
"""

import json

import pytest

from repro.runtime import RunnerConfig, create_runner, emission_to_json
from repro.runtime.sinks import CollectorSink
from repro.workloads.stock import StockWorkload

BACKENDS = ["embedded", "threaded", "sharded", "process"]

TUMBLING = """
    NAME best_trades
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 120 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 5
    EMIT ON WINDOW CLOSE
"""

PERIODIC = """
    NAME ticker
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 50 EVENTS
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT EVERY 25 EVENTS
"""

SHARDS = 2
EVENTS = 1_200
SEED = 2016


def make_events():
    return list(StockWorkload(seed=SEED).events(EVENTS))


def make_runner(backend, query=TUMBLING):
    return create_runner(
        query,
        RunnerConfig(
            backend=backend,
            shards=SHARDS,
            registry=StockWorkload(seed=SEED).registry(),
        ),
    )


def lines(emissions):
    return [json.dumps(emission_to_json(e), sort_keys=True) for e in emissions]


@pytest.fixture(scope="module")
def reference():
    """The embedded ground truth for the TUMBLING workload."""
    runner = make_runner("embedded")
    sink = CollectorSink()
    runner.subscribe("best_trades", sink)
    with runner:
        runner.submit_all(make_events())
        runner.flush()
    assert sink.emissions, "workload must emit for the suite to bite"
    return lines(sink.emissions)


class TestEmissionEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_full_lifecycle_byte_identical(self, backend, reference):
        runner = make_runner(backend)
        sink = CollectorSink()
        runner.subscribe("best_trades", sink)
        with runner:
            accepted = runner.submit_all(make_events())
            runner.sync()
            runner.flush()
        runner.close()
        assert accepted == EVENTS
        assert lines(sink.emissions) == reference

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_event_submit_byte_identical(self, backend, reference):
        runner = make_runner(backend)
        sink = CollectorSink()
        runner.subscribe("best_trades", sink)
        runner.start()
        try:
            for event in make_events():
                runner.submit(event)
            runner.flush()
        finally:
            runner.stop()
        assert lines(sink.emissions) == reference

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_on_emission_hook_sees_the_same_stream(self, backend, reference):
        received = []
        runner = create_runner(
            TUMBLING,
            RunnerConfig(
                backend=backend,
                shards=SHARDS,
                registry=StockWorkload(seed=SEED).registry(),
                on_emission=received.append,
            ),
        )
        with runner:
            runner.submit_all(make_events())
            runner.flush()
        assert lines(received) == reference


class TestSubscribeKinds:
    """The ``kinds`` filter must hold on every backend (satellite #2)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kinds_filter_is_honored(self, backend):
        runner = make_runner(backend, query=PERIODIC)
        filtered, unfiltered = CollectorSink(), CollectorSink()
        runner.subscribe("ticker", filtered, kinds=["periodic"])
        runner.subscribe("ticker", unfiltered)
        with runner:
            runner.submit_all(make_events())
            runner.flush()
        all_kinds = {e.kind.value for e in unfiltered.emissions}
        assert len(all_kinds) >= 2, "need mixed kinds for the test to bite"
        assert {e.kind.value for e in filtered.emissions} == {"periodic"}
        # The filter selects, it never reorders or rewrites.
        assert lines(filtered.emissions) == [
            line
            for line, e in zip(
                lines(unfiltered.emissions), unfiltered.emissions
            )
            if e.kind.value == "periodic"
        ]


class TestStatsShape:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stats_by_query_matches_embedded(self, backend, reference):
        embedded = make_runner("embedded")
        with embedded:
            embedded.submit_all(make_events())
            embedded.flush()
        expected = embedded.stats_by_query()["best_trades"]

        runner = make_runner(backend)
        with runner:
            runner.submit_all(make_events())
            runner.flush()
        row = runner.stats_by_query()["best_trades"]

        # Same shape (fleet backends may add fleet-only columns) ...
        assert set(expected) <= set(row)
        # ... and identical core counters: every event routes exactly once.
        for key in ("events_routed", "matches", "emissions"):
            assert row[key] == expected[key], key

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_metrics_registry_has_instruments(self, backend):
        runner = make_runner(backend)
        with runner:
            runner.submit_all(make_events())
            runner.sync()
            # Read while live: the process fleet mirrors worker registries
            # over a barrier, which needs the workers still running.
            names = {sample.name for sample in runner.metrics_registry().collect()}
            runner.flush()
        assert "events_pushed_total" in names
        assert "latency_seconds" in names

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cost_accounts_cover_the_query(self, backend):
        runner = make_runner(backend)
        with runner:
            runner.submit_all(make_events())
            runner.flush()
        assert "best_trades" in runner.cost_accounts()


class TestCheckpointLifecycle:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_snapshot_restore_resumes_byte_identical(self, backend, reference):
        events = make_events()
        cut = len(events) // 2

        first = make_runner(backend)
        sink = CollectorSink()
        first.subscribe("best_trades", sink)
        first.start()
        first.submit_all(events[:cut])
        first.sync()
        state = first.snapshot()
        prefix = lines(sink.emissions)
        if hasattr(first, "kill"):
            first.kill()
        else:
            first.stop()

        second = make_runner(backend)
        resumed = CollectorSink()
        second.subscribe("best_trades", resumed)
        second.start()
        try:
            second.restore(state)
            second.submit_all(events[cut:])
            second.flush()
        finally:
            second.stop()
        assert prefix + lines(resumed.emissions) == reference

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_snapshot_is_json_safe(self, backend):
        runner = make_runner(backend)
        runner.start()
        try:
            runner.submit_all(make_events()[:200])
            runner.sync()
            state = runner.snapshot()
        finally:
            runner.stop()
        json.dumps(state)  # must not raise
