"""Heartbeat (advance_time) semantics: quiet streams still make progress."""

import pytest

from repro import CEPREngine, EmissionKind, Event


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestPendingConfirmation:
    QUERY = "PATTERN SEQ(A a, B b, NOT C c) WITHIN 10 SECONDS"

    def test_pending_confirmed_by_heartbeat(self):
        engine = CEPREngine()
        handle = engine.register_query(self.QUERY)
        engine.push(E("A", 1.0))
        engine.push(E("B", 2.0))
        assert handle.matches() == []  # pending, stream quiet
        emissions = engine.advance_time(12.0)
        assert len(emissions) == 1
        assert len(handle.matches()) == 1

    def test_heartbeat_before_expiry_keeps_pending(self):
        engine = CEPREngine()
        handle = engine.register_query(self.QUERY)
        engine.push(E("A", 1.0))
        engine.push(E("B", 2.0))
        assert engine.advance_time(5.0) == []
        # the guard still holds: a C can still kill it
        engine.push(E("C", 6.0))
        engine.flush()
        assert handle.matches() == []

    def test_heartbeat_expires_time_window_runs(self):
        engine = CEPREngine()
        handle = engine.register_query("PATTERN SEQ(A a, B b) WITHIN 5 SECONDS")
        engine.push(E("A", 1.0))
        engine.advance_time(20.0)
        assert handle.matcher.stats.runs_expired == 1
        engine.push(E("B", 21.0))
        engine.flush()
        assert handle.matches() == []

    def test_count_windows_unaffected(self):
        engine = CEPREngine()
        handle = engine.register_query("PATTERN SEQ(A a, B b) WITHIN 5 EVENTS")
        engine.push(E("A", 1.0))
        engine.advance_time(1000.0)  # count window: no expiry by time
        engine.push(E("B", 1001.0))
        engine.flush()
        assert len(handle.matches()) == 1


class TestEpochClosure:
    def test_time_epoch_closed_by_heartbeat(self):
        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 10 SECONDS RANK BY a.x DESC LIMIT 2 "
            "EMIT ON WINDOW CLOSE"
        )
        engine.push(E("A", 1.0, x=5))
        engine.push(E("A", 2.0, x=9))
        assert handle.results() == []
        emissions = engine.advance_time(15.0)  # epoch [0, 10) is over
        assert len(emissions) == 1
        assert emissions[0].kind is EmissionKind.WINDOW_CLOSE
        assert [m.rank_values[0] for m in emissions[0].ranking] == [9, 5]

    def test_heartbeat_within_epoch_emits_nothing(self):
        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 10 SECONDS RANK BY a.x DESC "
            "EMIT ON WINDOW CLOSE"
        )
        engine.push(E("A", 1.0, x=5))
        assert engine.advance_time(9.0) == []
        assert handle.results() == []

    def test_count_epochs_not_closed_by_time(self):
        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 10 EVENTS RANK BY a.x DESC "
            "EMIT ON WINDOW CLOSE"
        )
        engine.push(E("A", 1.0, x=5))
        assert engine.advance_time(1000.0) == []
        engine.flush()
        assert len(handle.results()) == 1


class TestSlidingScopes:
    def test_eager_revision_on_expiry_by_heartbeat(self):
        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 5 SECONDS RANK BY a.x DESC LIMIT 1 "
            "EMIT EAGER"
        )
        engine.push(E("A", 1.0, x=100))
        engine.push(E("A", 2.0, x=1))
        emissions = engine.advance_time(7.0)  # x=100 expires, x=1 promoted
        assert len(emissions) == 1
        assert emissions[0].ranking[0].rank_values == (1,)

    def test_periodic_time_emission_fires_on_heartbeat(self):
        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 100 SECONDS RANK BY a.x DESC "
            "EMIT EVERY 10 SECONDS"
        )
        engine.push(E("A", 1.0, x=5))
        emissions = engine.advance_time(12.0)
        assert len(emissions) == 1
        assert emissions[0].kind is EmissionKind.PERIODIC

    def test_heartbeat_after_flush_rejected(self):
        engine = CEPREngine()
        engine.register_query("PATTERN SEQ(A a)")
        engine.flush()
        with pytest.raises(RuntimeError, match="already flushed"):
            engine.advance_time(5.0)
