"""Solo-fallback observability: warning log + ``solo_fallback`` stat.

When ``--shards N`` was requested but a query's shardability certificate
forces it onto a solo engine, the runner must say so (log line naming the
blocker) and count it (``solo_fallback`` in ``stats_by_query``), instead
of silently ignoring the parallelism the caller asked for.
"""

import logging

import pytest

from repro.runtime.sharded import ShardedEngineRunner

PARTITIONED_TUMBLING = (
    "NAME fleet PATTERN SEQ(Buy a, Sell b) WHERE a.symbol == b.symbol "
    "WITHIN 50 EVENTS PARTITION BY symbol EMIT ON WINDOW CLOSE"
)
UNPARTITIONED = (
    "NAME solo_q PATTERN SEQ(Buy a, Sell b) WHERE a.symbol == b.symbol "
    "WITHIN 50 EVENTS EMIT ON WINDOW CLOSE"
)


class TestSoloFallback:
    def test_fallback_logs_blocker_and_counts(self, caplog):
        runner = ShardedEngineRunner(shards=4)
        runner.register_query(UNPARTITIONED)
        with caplog.at_level(logging.WARNING, logger="repro.runtime.sharded"):
            runner.start()
        runner.stop()

        messages = [r.getMessage() for r in caplog.records]
        assert any(
            "solo_q" in m and "--shards 4" in m and "CEPR401" in m
            for m in messages
        ), messages
        assert runner.stats_by_query()["solo_q"]["solo_fallback"] == 1.0

    def test_shardable_query_does_not_warn(self, caplog):
        runner = ShardedEngineRunner(shards=4)
        runner.register_query(PARTITIONED_TUMBLING)
        with caplog.at_level(logging.WARNING, logger="repro.runtime.sharded"):
            runner.start()
        runner.stop()

        assert caplog.records == []
        assert runner.stats_by_query()["fleet"]["solo_fallback"] == 0.0

    def test_single_shard_is_not_a_fallback(self, caplog):
        # shards=1 means the caller never asked for parallelism; running
        # solo is the plan, not a degradation.
        runner = ShardedEngineRunner(shards=1)
        runner.register_query(UNPARTITIONED)
        with caplog.at_level(logging.WARNING, logger="repro.runtime.sharded"):
            runner.start()
        runner.stop()

        assert caplog.records == []
        assert runner.stats_by_query()["solo_q"]["solo_fallback"] == 0.0

    def test_yield_deployment_pin_reports_cepr405(self, caplog):
        runner = ShardedEngineRunner(shards=4)
        runner.register_query(
            "NAME pair PATTERN SEQ(Buy b, Sell s) WHERE b.symbol == s.symbol "
            "PARTITION BY symbol YIELD Pair(symbol = b.symbol)"
        )
        runner.register_query(PARTITIONED_TUMBLING)
        with caplog.at_level(logging.WARNING, logger="repro.runtime.sharded"):
            runner.start()
        runner.stop()

        messages = [r.getMessage() for r in caplog.records]
        # Both queries fall back: the yielding one by its own certificate,
        # the other because the derived stream must stay on one engine.
        assert any("pair" in m and "CEPR405" in m for m in messages), messages
        assert any("fleet" in m and "CEPR405" in m for m in messages), messages
        stats = runner.stats_by_query()
        assert stats["pair"]["solo_fallback"] == 1.0
        assert stats["fleet"]["solo_fallback"] == 1.0

    def test_shardability_report_exposed_on_view(self):
        runner = ShardedEngineRunner(shards=2)
        view = runner.register_query(UNPARTITIONED)
        assert not view.shardability.shardable
        assert [d.code for d in view.shardability.blockers] == ["CEPR401"]
        runner.start()
        runner.stop()
