"""Fault-injection differential tests for checkpoint/restore recovery.

The durability contract (docs/RECOVERY.md): killing an engine at any
event boundary, restoring its latest checkpoint into a fresh process,
and replaying the remaining events produces an emission stream
*identical* to an uninterrupted run — same emissions, same order, same
rankings.  These tests prove it for the single engine and the sharded
runner (K ∈ {1, 2, 4}) over three workloads, with every checkpoint
taking the full disk round trip through :class:`CheckpointStore`.

Fingerprint machinery is shared with the shard-differential suite so
"identical" means the same thing in both.
"""

import functools

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import CEPREngine
from repro.runtime.sharded import ShardedEngineRunner
from repro.store.checkpoint import CheckpointStore, Position
from repro.workloads.clickstream import ClickstreamWorkload
from repro.workloads.sensor import VitalsWorkload
from repro.workloads.stock import StockWorkload
from tests.runtime.test_sharded_differential import (
    COUNT_TUMBLING,
    PASSTHROUGH,
    SOLO_SLIDING,
    emission_fp,
    fingerprint,
)

SHARD_COUNTS = [1, 2, 4]
EVENT_COUNT = 600

FEVER = """
NAME fever
PATTERN SEQ(HeartRate h, Temperature t)
WHERE h.patient == t.patient AND h.value > 95 AND t.value > 37.4
WITHIN 8 SECONDS
PARTITION BY patient
RANK BY t.value DESC
LIMIT 5
EMIT ON WINDOW CLOSE
"""

BIG_CARTS = """
NAME big_carts
PATTERN SEQ(PageView p, AddToCart a)
WHERE p.user == a.user AND a.value > 100
WITHIN 200 EVENTS
PARTITION BY user
RANK BY a.value DESC
LIMIT 5
EMIT ON WINDOW CLOSE
"""

WORKLOADS = {
    "stock": (StockWorkload, [COUNT_TUMBLING, PASSTHROUGH, SOLO_SLIDING]),
    "vitals": (VitalsWorkload, [FEVER]),
    "clickstream": (ClickstreamWorkload, [BIG_CARTS]),
}


@functools.lru_cache(maxsize=None)
def make_events(workload_name, seed=11):
    factory, _ = WORKLOADS[workload_name]
    return tuple(factory(seed=seed).events(EVENT_COUNT))


@functools.lru_cache(maxsize=None)
def baseline(workload_name, seed=11):
    """Uninterrupted single-engine fingerprints, per query name."""
    _, queries = WORKLOADS[workload_name]
    engine = CEPREngine()
    handles = [engine.register_query(q) for q in queries]
    for event in make_events(workload_name, seed):
        engine.push(event)
    engine.flush()
    return {h.name: fingerprint(h) for h in handles}


def checkpoint_round_trip(tmp_path, state, cut, last_ts):
    """Persist + reload through the real store: every test crosses disk."""
    store = CheckpointStore(tmp_path / "ckpt")
    store.save(state, Position(events_consumed=cut, last_seq=cut, last_ts=last_ts))
    checkpoint = store.latest()
    assert checkpoint is not None
    assert checkpoint.position.events_consumed == cut
    return checkpoint


def crash_resume_single(workload_name, cut, tmp_path, seed=11):
    _, queries = WORKLOADS[workload_name]
    events = make_events(workload_name, seed)

    engine = CEPREngine()
    handles = [engine.register_query(q) for q in queries]
    for event in events[:cut]:
        engine.push(event)
    last_ts = events[cut - 1].timestamp if cut else 0.0
    checkpoint = checkpoint_round_trip(tmp_path, engine.snapshot(), cut, last_ts)
    prefix = {h.name: fingerprint(h) for h in handles}
    del engine  # the process is gone

    revived = CEPREngine()
    handles = [revived.register_query(q) for q in queries]
    revived.restore(checkpoint.state)
    for event in events[checkpoint.position.events_consumed :]:
        revived.push(event)
    revived.flush()
    return {h.name: prefix[h.name] + fingerprint(h) for h in handles}


def crash_resume_sharded(workload_name, shards, cut, tmp_path, seed=11):
    _, queries = WORKLOADS[workload_name]
    events = make_events(workload_name, seed)

    runner = ShardedEngineRunner(shards=shards)
    views = [runner.register_query(q) for q in queries]
    runner.start()
    for event in events[:cut]:
        runner.submit(event)
    last_ts = events[cut - 1].timestamp if cut else 0.0
    checkpoint = checkpoint_round_trip(tmp_path, runner.snapshot(), cut, last_ts)
    prefix = {v.name: [emission_fp(e) for e in v.results()] for v in views}
    runner.kill()

    revived = ShardedEngineRunner(shards=shards)
    views = [revived.register_query(q) for q in queries]
    revived.start()
    revived.restore(checkpoint.state)
    for event in events[checkpoint.position.events_consumed :]:
        revived.submit(event)
    revived.flush()
    revived.stop()
    return {v.name: prefix[v.name] + fingerprint(v) for v in views}


CUTS = [1, EVENT_COUNT // 2, EVENT_COUNT - 1]


class TestSingleEngine:
    @pytest.mark.parametrize("cut", [0] + CUTS)
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_kill_restore_identical(self, workload, cut, tmp_path):
        assert crash_resume_single(workload, cut, tmp_path) == baseline(workload)


class TestShardedRunner:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_kill_restore_identical(self, workload, shards, tmp_path):
        cut = EVENT_COUNT // 2
        got = crash_resume_sharded(workload, shards, cut, tmp_path)
        assert got == baseline(workload)

    @pytest.mark.parametrize("cut", CUTS)
    def test_cut_positions_identical(self, cut, tmp_path):
        got = crash_resume_sharded("stock", 4, cut, tmp_path)
        assert got == baseline("stock")

    def test_restore_rejects_mismatched_fleet(self, tmp_path):
        from repro.engine.snapshot import SnapshotFormatError

        runner = ShardedEngineRunner(shards=2)
        runner.register_query(COUNT_TUMBLING)
        runner.start()
        state = runner.snapshot()
        runner.kill()

        other = ShardedEngineRunner(shards=4)
        other.register_query(COUNT_TUMBLING)
        other.start()
        try:
            with pytest.raises(SnapshotFormatError, match="shard count"):
                other.restore(state)
        finally:
            other.stop()


class TestRandomBoundary:
    """Property: the boundary and shard count never matter."""

    @given(
        cut=st.integers(min_value=0, max_value=EVENT_COUNT - 1),
        shards=st.sampled_from(SHARD_COUNTS),
    )
    @settings(max_examples=8, deadline=None)
    def test_sharded_kill_restore_identical(self, cut, shards, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("recovery")
        got = crash_resume_sharded("stock", shards, cut, tmp_path)
        assert got == baseline("stock")

    @given(cut=st.integers(min_value=0, max_value=EVENT_COUNT))
    @settings(max_examples=12, deadline=None)
    def test_single_engine_kill_restore_identical(self, cut, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("recovery")
        got = crash_resume_single("vitals", cut, tmp_path)
        assert got == baseline("vitals")
