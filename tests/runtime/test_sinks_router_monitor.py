"""Unit tests for sinks, the router, and the live monitor."""

import io

from repro import CEPREngine, Event
from repro.ranking.emission import Emission, EmissionKind
from repro.runtime.monitor import Monitor
from repro.runtime.router import EventRouter
from repro.runtime.sinks import CallbackSink, CollectorSink, PrintSink


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


def make_emission(n=1):
    return Emission(kind=EmissionKind.MATCH, ranking=[], at_seq=n, at_ts=float(n))


class TestSinks:
    def test_collector(self):
        sink = CollectorSink()
        sink.accept(make_emission(1))
        sink.accept(make_emission(2))
        assert len(sink) == 2
        assert [e.at_seq for e in sink] == [1, 2]
        assert sink.final_ranking() == []
        sink.clear()
        assert len(sink) == 0

    def test_collector_matches_flattens_rankings(self):
        from repro.engine.match import Match

        match = Match(bindings={}, first_seq=0, last_seq=0, first_ts=0, last_ts=0)
        emission = Emission(EmissionKind.MATCH, [match], 0, 0.0)
        sink = CollectorSink()
        sink.accept(emission)
        assert sink.matches() == [match]

    def test_callback(self):
        seen = []
        CallbackSink(seen.append).accept(make_emission())
        assert len(seen) == 1

    def test_print_sink(self):
        out = io.StringIO()
        PrintSink(out).accept(make_emission())
        assert "match" in out.getvalue()


class TestRouter:
    def make_queries(self):
        engine = CEPREngine()
        qa = engine.register_query("PATTERN SEQ(A a)", name="qa")
        qab = engine.register_query("PATTERN SEQ(A a, B b)", name="qab")
        return qa, qab

    def test_route_by_type(self):
        qa, qab = self.make_queries()
        router = EventRouter()
        router.add(qa)
        router.add(qab)
        assert router.route(E("A", 1)) == [qa, qab]
        assert router.route(E("B", 1)) == [qab]
        assert router.route(E("Z", 1)) == []

    def test_remove(self):
        qa, qab = self.make_queries()
        router = EventRouter()
        router.add(qa)
        router.add(qab)
        router.remove(qab)
        assert router.route(E("B", 1)) == []
        assert len(router) == 1

    def test_interested_types(self):
        qa, qab = self.make_queries()
        router = EventRouter()
        router.add(qab)
        assert router.interested_types() == {"A", "B"}


class TestMonitor:
    def make_engine(self):
        engine = CEPREngine()
        engine.register_query(
            "NAME profits PATTERN SEQ(A a, B b) WITHIN 4 EVENTS "
            "USING SKIP_TILL_ANY RANK BY b.x - a.x DESC LIMIT 2 "
            "EMIT ON WINDOW CLOSE"
        )
        return engine

    def test_render_before_any_events(self):
        monitor = Monitor(self.make_engine())
        text = monitor.render()
        assert "CEPR monitor" in text
        assert "profits" in text
        assert "(no emissions yet)" in text

    def test_render_shows_query_text_and_ranking(self):
        engine = self.make_engine()
        engine.run([E("A", 1, x=0), E("B", 2, x=7), E("Z", 3), E("Z", 4), E("Z", 5)])
        text = Monitor(engine).render()
        assert "PATTERN SEQ(A a, B b)" in text
        assert "window_close" in text
        assert "#1" in text
        assert "score=(7)" in text

    def test_top_n_truncation(self):
        engine = CEPREngine()
        engine.register_query(
            "PATTERN SEQ(A a) WITHIN 8 EVENTS RANK BY a.x DESC "
            "EMIT ON WINDOW CLOSE"
        )
        engine.run([E("A", i, x=i) for i in range(8)] + [E("Z", 9)])
        text = Monitor(engine, top_n=3).render()
        assert "more" in text

    def test_run_live_bounded(self):
        out = io.StringIO()
        monitor = Monitor(self.make_engine())
        sleeps = []
        monitor.run_live(
            refresh_seconds=0.5,
            iterations=3,
            out=out,
            sleep=sleeps.append,
            clear=False,
        )
        assert out.getvalue().count("CEPR monitor") == 3
        assert sleeps == [0.5, 0.5]

    def test_run_live_clear_redraws_in_place(self):
        """clear=True homes the cursor and erases per line — no 2J flicker."""
        out = io.StringIO()
        monitor = Monitor(self.make_engine())
        monitor.run_live(iterations=2, out=out, sleep=lambda _: None, clear=True)
        frames = out.getvalue()
        assert frames.count("\x1b[H") == 2  # cursor home per frame
        assert "\x1b[K" in frames  # erase to end-of-line per line
        assert frames.count("\x1b[J") == 2  # erase below each frame
        assert "\x1b[2J" not in frames  # never a full-screen clear
        # every rendered line carries its erase suffix
        body = frames.split("\x1b[H")[1].split("\x1b[J")[0]
        for line in body.splitlines():
            assert line.endswith("\x1b[K")

    def test_render_shows_stage_profile(self):
        engine = self.make_engine()
        engine.run([E("A", 1, x=0), E("B", 2, x=7), E("Z", 3)])
        text = Monitor(engine).render()
        assert "stages: match=" in text

    def test_render_shows_partition_skips(self):
        engine = CEPREngine()
        engine.register_query(
            "PATTERN SEQ(A a, B b) WITHIN 4 EVENTS PARTITION BY part "
            "RANK BY b.x DESC LIMIT 1 EMIT ON WINDOW CLOSE"
        )
        engine.run([E("A", 1, x=0), E("A", 2, x=1, part="p")])  # first lacks key
        text = Monitor(engine).render()
        assert "partition_skips=1" in text

    def test_render_sharded_runner_shows_shard_block(self):
        from repro.runtime.sharded import ShardedEngineRunner

        runner = ShardedEngineRunner(shards=2)
        runner.register_query(
            "NAME spread PATTERN SEQ(A a, B b) WITHIN 4 EVENTS "
            "PARTITION BY part RANK BY b.x DESC LIMIT 2 EMIT ON WINDOW CLOSE"
        )
        runner.start()
        try:
            for index in range(8):
                runner.submit(E("A", index + 1, x=index, part=index % 2))
            runner.flush()
        finally:
            runner.stop()
        text = Monitor(runner).render()
        assert "-- shards (2 workers)" in text
        assert "shard 0 [sharded]:" in text
        assert "shard 1 [sharded]:" in text
        assert "events=" in text and "backlog=" in text
        assert "shards=2" in text

    def test_render_solo_fallback_flagged(self):
        from repro.runtime.sharded import ShardedEngineRunner

        runner = ShardedEngineRunner(shards=2)
        runner.register_query(  # no PARTITION BY: must fall back to solo
            "NAME global PATTERN SEQ(A a, B b) WITHIN 4 EVENTS "
            "RANK BY b.x DESC LIMIT 2 EMIT ON WINDOW CLOSE"
        )
        runner.start()
        runner.stop()
        text = Monitor(runner).render()
        assert "SOLO-FALLBACK" in text
        assert "[solo]" in text


class TestMonitorTelemetry:
    """Cost and pressure lines in the monitor (PR 8 observability)."""

    QUERY = (
        "NAME profits PATTERN SEQ(A a, B b) WITHIN 4 EVENTS "
        "USING SKIP_TILL_ANY RANK BY b.x - a.x DESC LIMIT 2 "
        "EMIT ON WINDOW CLOSE"
    )

    def test_render_shows_cost_line_after_events(self):
        engine = CEPREngine()
        engine.register_query(self.QUERY)
        engine.run([E("A", 1, x=0), E("B", 2, x=7), E("Z", 3)])
        text = Monitor(engine).render()
        assert "cost: cpu=" in text
        assert "shared" in text

    def test_no_cost_line_before_events(self):
        engine = CEPREngine()
        engine.register_query(self.QUERY)
        text = Monitor(engine).render()
        assert "cost:" not in text

    def test_bare_engine_header_has_no_pressure(self):
        engine = CEPREngine()
        engine.register_query(self.QUERY)
        text = Monitor(engine).render()
        assert "pressure=" not in text

    def test_threaded_runner_source_shows_pressure(self):
        from repro.runtime.concurrent import ThreadedEngineRunner

        engine = CEPREngine()
        engine.register_query(self.QUERY)
        runner = ThreadedEngineRunner(engine)
        runner.start()
        try:
            for index in range(4):
                runner.submit(E("A", index + 1, x=index))
            runner.sync()
            text = Monitor(runner).render()
        finally:
            runner.stop()
        assert "pressure=" in text
        assert "[ok]" in text or "[overloaded]" in text

    def test_sharded_runner_header_shows_pressure(self):
        from repro.runtime.sharded import ShardedEngineRunner

        runner = ShardedEngineRunner(shards=2)
        runner.register_query(
            "NAME spread PATTERN SEQ(A a, B b) WITHIN 4 EVENTS "
            "PARTITION BY part RANK BY b.x DESC LIMIT 2 EMIT ON WINDOW CLOSE"
        )
        runner.start()
        try:
            for index in range(8):
                runner.submit(E("A", index + 1, x=index, part=index % 2))
            runner.flush()
            text = Monitor(runner).render()
        finally:
            runner.stop()
        assert "pressure=" in text
