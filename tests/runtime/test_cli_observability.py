"""CLI tests for the observability commands: ``stats`` and ``trace``."""

import io
import json

import pytest

from repro.cli import main
from repro.events.sources import write_jsonl
from repro.workloads.clickstream import ClickstreamWorkload
from repro.workloads.sensor import VitalsWorkload
from repro.workloads.stock import StockWorkload

QUERY = """
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol AND s.price > b.price
WITHIN 50 EVENTS
PARTITION BY symbol
RANK BY s.price - b.price DESC
LIMIT 3
EMIT ON WINDOW CLOSE
"""


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "spread.ceprql"
    path.write_text(QUERY)
    return path


@pytest.fixture
def stock_events(tmp_path):
    path = tmp_path / "ticks.jsonl"
    write_jsonl(path, StockWorkload(seed=7).events(400))
    return path


class TestStats:
    def test_default_text_table(self, query_file, stock_events):
        code, output = run_cli(
            "stats", str(query_file), "--events", str(stock_events)
        )
        assert code == 0
        assert "-- metrics (cepr) --" in output
        assert "events_pushed_total 400" in output
        assert "query_matches_total{query=spread}" in output
        assert "latency_seconds{query=spread} count=400" in output

    def test_prometheus_exposition(self, query_file, stock_events):
        code, output = run_cli(
            "stats", str(query_file), "--events", str(stock_events), "--prom"
        )
        assert code == 0
        # Structural validity of the exposition format: every non-comment
        # line is `name{labels} value` with a parseable float value, and
        # every series is preceded by a # TYPE header for its family.
        families = set()
        for line in output.splitlines():
            if line.startswith("# TYPE "):
                _, _, family, kind = line.split(" ")
                assert kind in ("counter", "gauge", "summary")
                families.add(family)
                continue
            if line.startswith("#"):
                continue
            name_part, _, value_part = line.rpartition(" ")
            float(value_part)  # must parse
            series = name_part.split("{")[0]
            base = series
            for suffix in ("_sum", "_count"):
                if series.endswith(suffix) and series[: -len(suffix)] in families:
                    base = series[: -len(suffix)]
            assert base in families, line
        assert "cepr_events_pushed_total 400" in output
        assert 'cepr_query_matches_total{query="spread"}' in output
        assert 'cepr_latency_seconds{quantile="0.99",query="spread"}' in output
        assert 'cepr_stage_seconds_total{query="spread",stage="match"}' in output

    def test_json_export(self, query_file, stock_events):
        code, output = run_cli(
            "stats", str(query_file), "--events", str(stock_events), "--json"
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["namespace"] == "cepr"
        by_series = {
            (row["name"], tuple(sorted(row["labels"].items()))): row
            for row in payload["metrics"]
        }
        assert by_series[("events_pushed_total", ())]["value"] == 400.0
        latency = by_series[("latency_seconds", (("query", "spread"),))]
        assert latency["count"] == 400

    def test_sharded_stats_match_single_engine_counters(
        self, query_file, stock_events
    ):
        _, single = run_cli(
            "stats", str(query_file), "--events", str(stock_events), "--json"
        )
        _, sharded = run_cli(
            "stats",
            str(query_file),
            "--events",
            str(stock_events),
            "--shards",
            "4",
            "--json",
        )

        def counters(payload):
            return {
                (row["name"], tuple(sorted(row["labels"].items()))): row["value"]
                for row in json.loads(payload)["metrics"]
                if row["kind"] == "counter"
                and row["name"].startswith(("query_", "runs_", "events_pushed"))
                # cpu totals are measured wall time, not event counts:
                # exact equality across topologies is not a property
                and "cpu_seconds" not in row["name"]
            }

        single_counters = counters(single)
        sharded_counters = {
            key: value
            for key, value in counters(sharded).items()
            if key in single_counters
        }
        assert sharded_counters == single_counters
        assert 'shard_events_processed_total' in sharded

    def test_watch_renders_monitor_then_exports(self, query_file, stock_events):
        code, output = run_cli(
            "stats",
            str(query_file),
            "--events",
            str(stock_events),
            "--watch",
            "--refresh",
            "0.01",
            "--prom",
        )
        assert code == 0
        assert "CEPR monitor" in output
        assert "cepr_events_pushed_total 400" in output

    def test_watch_sharded(self, query_file, stock_events):
        code, output = run_cli(
            "stats",
            str(query_file),
            "--events",
            str(stock_events),
            "--shards",
            "2",
            "--watch",
            "--refresh",
            "0.01",
        )
        assert code == 0
        assert "CEPR monitor" in output
        assert "shard 0" in output
        assert "-- metrics (cepr) --" in output

    def test_invalid_shards_rejected(self, query_file, stock_events):
        code, output = run_cli(
            "stats", str(query_file), "--events", str(stock_events),
            "--shards", "0",
        )
        assert code == 1
        assert "error:" in output


WORKLOAD_QUERIES = {
    "stock": (
        StockWorkload,
        """
        PATTERN SEQ(Buy b, Sell s)
        WHERE b.symbol == s.symbol AND s.price > b.price
        WITHIN 50 EVENTS
        PARTITION BY symbol
        RANK BY s.price - b.price DESC
        LIMIT 3
        EMIT ON WINDOW CLOSE
        """,
    ),
    "sensor": (
        VitalsWorkload,
        """
        PATTERN SEQ(HeartRate a, HeartRate b)
        WHERE b.value > a.value
        WITHIN 100 EVENTS
        PARTITION BY patient
        RANK BY b.value DESC
        LIMIT 3
        EMIT ON WINDOW CLOSE
        """,
    ),
    "clickstream": (
        ClickstreamWorkload,
        """
        PATTERN SEQ(AddToCart c, Purchase p)
        WHERE p.user == c.user
        WITHIN 200 EVENTS
        PARTITION BY user
        RANK BY c.value DESC
        LIMIT 3
        EMIT ON WINDOW CLOSE
        """,
    ),
}


class TestTrace:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_QUERIES))
    def test_provenance_reconstructed_per_workload(self, tmp_path, name):
        workload_cls, query = WORKLOAD_QUERIES[name]
        events = tmp_path / f"{name}.jsonl"
        write_jsonl(events, workload_cls(seed=11).events(600))
        query_path = tmp_path / f"{name}.ceprql"
        query_path.write_text(query)

        code, output = run_cli("trace", str(query_path), "--events", str(events))
        assert code == 0, output
        # full provenance of at least one emission: header, ranked match
        # with its bound events, rank keys, and span totals
        assert "emission window_close" in output
        assert f"query={name}" in output
        assert "#1 detection=" in output
        assert "  events:" in output
        assert "  rank keys:" in output
        assert "en route: " in output
        assert "query span totals:" in output
        assert "route=" in output

    def test_json_output(self, tmp_path):
        workload_cls, query = WORKLOAD_QUERIES["stock"]
        events = tmp_path / "ticks.jsonl"
        write_jsonl(events, workload_cls(seed=3).events(300))
        query_path = tmp_path / "stock.ceprql"
        query_path.write_text(query)

        code, output = run_cli(
            "trace", str(query_path), "--events", str(events),
            "--emission", "0", "--json",
        )
        assert code == 0
        (trace,) = json.loads(output)
        assert trace["query"] == "stock"
        assert trace["matches"]
        best = trace["matches"][0]
        assert {event["variable"] for event in best["events"]} == {"b", "s"}
        assert best["rank_keys"][0]["direction"] == "DESC"
        assert best["competition"].get("run_create", 0) >= 1
        assert trace["span_counts"]["route"] == 300

    def test_all_emissions(self, tmp_path):
        workload_cls, query = WORKLOAD_QUERIES["stock"]
        events = tmp_path / "ticks.jsonl"
        write_jsonl(events, workload_cls(seed=3).events(300))
        query_path = tmp_path / "stock.ceprql"
        query_path.write_text(query)

        code, output = run_cli(
            "trace", str(query_path), "--events", str(events), "--all"
        )
        assert code == 0
        assert output.count("emission window_close") >= 2

    def test_no_emissions_exits_nonzero(self, tmp_path, query_file):
        events = tmp_path / "empty.jsonl"
        events.write_text("")
        code, output = run_cli(
            "trace", str(query_file), "--events", str(events)
        )
        assert code == 1
        assert "(no emissions to trace)" in output

    def test_emission_index_out_of_range(self, tmp_path, query_file, stock_events):
        code, output = run_cli(
            "trace", str(query_file), "--events", str(stock_events),
            "--emission", "999",
        )
        assert code == 1
        assert "out of range" in output

    def test_unknown_query_name_rejected(self, query_file, stock_events):
        code, output = run_cli(
            "trace", str(query_file), "--events", str(stock_events),
            "--query", "nope",
        )
        assert code == 1
        assert "does not name a registered query" in output

    def test_query_filter_selects_one_query(self, tmp_path, stock_events):
        first = tmp_path / "spread.ceprql"
        first.write_text(QUERY)
        second = tmp_path / "volume.ceprql"
        second.write_text(
            """
            PATTERN SEQ(Buy b)
            WHERE b.volume > 0
            WITHIN 50 EVENTS
            PARTITION BY symbol
            RANK BY b.volume DESC
            LIMIT 1
            EMIT ON WINDOW CLOSE
            """
        )
        code, output = run_cli(
            "trace", str(first), str(second),
            "--events", str(stock_events), "--query", "volume",
        )
        assert code == 0
        assert "query=volume" in output
        assert "query=spread" not in output


class TestTop:
    def test_replay_renders_ranked_table(self, query_file, stock_events):
        code, output = run_cli(
            "top", str(query_file), "--events", str(stock_events)
        )
        assert code == 0
        assert "-- cepr top: 1 quer(ies) by cost --" in output
        assert "QUERY" in output and "CPU(ms)" in output
        assert "spread" in output

    def test_replay_json(self, query_file, stock_events):
        code, output = run_cli(
            "top", str(query_file), "--events", str(stock_events), "--json"
        )
        assert code == 0
        doc = json.loads(output)
        assert [acc["query"] for acc in doc["cost_accounts"]] == ["spread"]
        account = doc["cost_accounts"][0]
        assert account["events_routed"] == 400
        assert "cpu_per_event_us" in account
        # a bare replay engine has no ingest queue to be pressured
        assert doc["pressure"] is None

    def test_sharded_replay_reports_pressure(self, query_file, stock_events):
        code, output = run_cli(
            "top", str(query_file), "--events", str(stock_events),
            "--shards", "2", "--json",
        )
        assert code == 0
        doc = json.loads(output)
        assert doc["cost_accounts"][0]["events_routed"] == 400
        assert doc["pressure"]["state"] in ("ok", "overloaded")

    def test_ranking_is_most_expensive_first(self, tmp_path, stock_events):
        hot = tmp_path / "hot.ceprql"
        hot.write_text(QUERY)
        cold = tmp_path / "cold.ceprql"
        cold.write_text(
            """
            PATTERN SEQ(Never n)
            WITHIN 50 EVENTS
            RANK BY n.price DESC
            LIMIT 1
            EMIT ON WINDOW CLOSE
            """
        )
        code, output = run_cli(
            "top", str(hot), str(cold),
            "--events", str(stock_events), "--json",
        )
        assert code == 0
        doc = json.loads(output)
        ranked = [acc["query"] for acc in doc["cost_accounts"]]
        assert set(ranked) == {"hot", "cold"}
        costs = [acc["cpu_seconds"] for acc in doc["cost_accounts"]]
        assert costs == sorted(costs, reverse=True)

    def test_requires_events_or_connect(self, query_file):
        code, output = run_cli("top", str(query_file))
        assert code == 1
        assert "error:" in output

    def test_connect_excludes_replay_arguments(self, query_file, stock_events):
        code, output = run_cli(
            "top", str(query_file), "--events", str(stock_events),
            "--connect", "127.0.0.1:1",
        )
        assert code == 1
        assert "error:" in output

    def test_watch_requires_connect(self, query_file, stock_events):
        code, output = run_cli(
            "top", str(query_file), "--events", str(stock_events), "--watch"
        )
        assert code == 1
        assert "error:" in output


class TestFlightrecCLI:
    @pytest.fixture
    def artifact_dir(self, tmp_path):
        from repro.observability.flightrec import FlightRecorder

        recorder = FlightRecorder(byte_budget=8192)
        recorder.record("push", seq=1, query="spread")
        recorder.record("emission", seq=2, query="spread")
        recorder.dump("unit-test", directory=tmp_path)
        return tmp_path

    def test_list_shows_artifacts(self, artifact_dir):
        code, output = run_cli("flightrec", "list", "--dir", str(artifact_dir))
        assert code == 0
        assert "reason=unit-test" in output
        assert "entries=2" in output

    def test_list_empty_dir_exits_nonzero(self, tmp_path):
        code, output = run_cli("flightrec", "list", "--dir", str(tmp_path))
        assert code == 1
        assert "no flight-recorder artifacts" in output

    def test_show_newest_renders_entries(self, artifact_dir):
        code, output = run_cli("flightrec", "show", "--dir", str(artifact_dir))
        assert code == 0
        assert "reason=unit-test" in output
        assert "push" in output and "emission" in output

    def test_show_tail_limits_entries(self, artifact_dir):
        code, output = run_cli(
            "flightrec", "show", "--dir", str(artifact_dir), "--tail", "1"
        )
        assert code == 0
        assert "emission" in output
        assert "seq=1" not in output

    def test_show_json_round_trips(self, artifact_dir):
        code, output = run_cli(
            "flightrec", "show", "--dir", str(artifact_dir), "--json"
        )
        assert code == 0
        doc = json.loads(output)
        assert doc["reason"] == "unit-test"
        assert len(doc["entries"]) == 2
