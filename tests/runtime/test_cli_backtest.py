"""CLI backtest subcommand tests."""

import io
import json

import pytest

from repro.cli import main

QUERY = """
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol AND s.price > b.price
WITHIN 20 EVENTS
RANK BY s.price - b.price DESC
LIMIT 2
EMIT ON WINDOW CLOSE
"""


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "trades.ceprql"
    path.write_text(QUERY)
    return path


@pytest.fixture
def log_file(tmp_path):
    path = tmp_path / "events.jsonl"
    rows = [
        {"type": "Buy", "timestamp": 1.0, "symbol": "X", "price": 10.0},
        {"type": "Sell", "timestamp": 2.0, "symbol": "X", "price": 15.0},
        {"type": "Buy", "timestamp": 10.0, "symbol": "X", "price": 10.0},
        {"type": "Sell", "timestamp": 11.0, "symbol": "X", "price": 20.0},
    ]
    path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
    return path


class TestBacktest:
    def test_full_log(self, query_file, log_file):
        code, output = run_cli("backtest", str(query_file), "--log", str(log_file))
        assert code == 0
        assert "backtest over" in output
        assert "trades: 2 matches over 4 events" in output

    def test_time_slice(self, query_file, log_file):
        code, output = run_cli(
            "backtest",
            str(query_file),
            "--log",
            str(log_file),
            "--start",
            "5",
        )
        assert code == 0
        assert "trades: 1 matches over 2 events" in output

    def test_multiple_candidates(self, query_file, log_file, tmp_path):
        second = tmp_path / "tight.ceprql"
        # a threshold no recorded pair clears (best markup is 2.0x)
        second.write_text(QUERY.replace("s.price > b.price", "s.price > b.price * 2.5"))
        code, output = run_cli(
            "backtest", str(query_file), str(second), "--log", str(log_file)
        )
        assert code == 0
        assert "trades: 2 matches" in output
        assert "tight: 0 matches" in output

    def test_empty_log_fails(self, query_file, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code, output = run_cli("backtest", str(query_file), "--log", str(empty))
        assert code == 1 and "empty" in output

    def test_demo_then_backtest_round_trip(self, query_file, tmp_path):
        log_path = tmp_path / "stock.jsonl"
        run_cli("demo", "stock", "--events", "400", "--out", str(log_path))
        code, output = run_cli(
            "backtest", str(query_file), "--log", str(log_path), "--no-pruning"
        )
        assert code == 0
        assert "backtest over" in output


class TestBacktestSharded:
    def test_sharded_backtest_matches_single(self, query_file, log_file):
        code_one, out_one = run_cli(
            "backtest", str(query_file), "--log", str(log_file)
        )
        code_two, out_two = run_cli(
            "backtest", str(query_file), "--log", str(log_file), "--shards", "2"
        )
        assert code_one == 0 and code_two == 0
        assert out_two == out_one

    def test_invalid_shards_rejected(self, query_file, log_file):
        code, output = run_cli(
            "backtest", str(query_file), "--log", str(log_file), "--shards", "0"
        )
        assert code == 1
        assert "error:" in output
