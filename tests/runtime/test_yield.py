"""Derived streams (YIELD): hierarchical CEP."""

import pytest

from repro import CEPREngine, Event
from repro.language.errors import CEPRSemanticError, CEPRSyntaxError
from repro.language.parser import parse_query
from repro.language.printer import format_query


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


TRADES = """
    NAME trades
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 20 EVENTS
    YIELD Trade(symbol = b.symbol, profit = s.price - b.price, held = duration())
"""


class TestLanguage:
    def test_parse_and_roundtrip(self):
        ast = parse_query(TRADES)
        assert ast.yield_spec.event_type == "Trade"
        assert [a for a, _ in ast.yield_spec.assignments] == [
            "symbol",
            "profit",
            "held",
        ]
        assert parse_query(format_query(ast)) == ast

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(CEPRSyntaxError, match="duplicate YIELD attribute"):
            parse_query("PATTERN SEQ(A a) YIELD D(x = a.v, x = a.w)")

    def test_self_feedback_rejected(self):
        engine = CEPREngine()
        with pytest.raises(CEPRSemanticError, match="self-feedback"):
            engine.register_query("PATTERN SEQ(A a) YIELD A(x = a.v)")

    def test_negated_variable_rejected(self):
        engine = CEPREngine()
        with pytest.raises(CEPRSemanticError, match="negated variable"):
            engine.register_query(
                "PATTERN SEQ(A a, NOT C c, B b) YIELD D(x = c.v)"
            )

    def test_kleene_attr_rejected(self):
        engine = CEPREngine()
        with pytest.raises(CEPRSemanticError, match="through an aggregate"):
            engine.register_query("PATTERN SEQ(A as+) YIELD D(x = as.v)")

    def test_explain_mentions_yield(self):
        engine = CEPREngine()
        handle = engine.register_query(TRADES)
        assert "yield: derive Trade(" in handle.explain()


class TestCascade:
    def test_two_level_hierarchy(self):
        engine = CEPREngine()
        trades = engine.register_query(TRADES)
        streaks = engine.register_query(
            """
            NAME streaks
            PATTERN SEQ(Trade t1, Trade t2)
            WHERE t1.symbol == t2.symbol AND t2.profit > t1.profit
            """
        )
        engine.run(
            [
                E("Buy", 1.0, symbol="X", price=10.0),
                E("Sell", 2.0, symbol="X", price=12.0),
                E("Buy", 3.0, symbol="X", price=10.0),
                E("Sell", 4.0, symbol="X", price=15.0),
            ]
        )
        assert engine.derived_events == 2
        [streak] = streaks.matches()
        assert streak["t1"]["profit"] == 2.0
        assert streak["t2"]["profit"] == 5.0

    def test_derived_events_carry_emission_timestamp(self):
        engine = CEPREngine()
        engine.register_query(TRADES)
        probe = engine.register_query("PATTERN SEQ(Trade t)")
        engine.run(
            [
                E("Buy", 1.0, symbol="X", price=10.0),
                E("Sell", 5.0, symbol="X", price=12.0),
            ]
        )
        [match] = probe.matches()
        assert match["t"].timestamp == 5.0
        assert match["t"]["held"] == 4.0

    def test_ranked_window_close_yields_only_winners(self):
        engine = CEPREngine()
        engine.register_query(
            """
            PATTERN SEQ(Buy b, Sell s)
            WHERE b.symbol == s.symbol AND s.price > b.price
            WITHIN 4 EVENTS
            USING SKIP_TILL_ANY
            RANK BY s.price - b.price DESC
            LIMIT 1
            EMIT ON WINDOW CLOSE
            YIELD Best(profit = s.price - b.price)
            """
        )
        probe = engine.register_query("PATTERN SEQ(Best x)")
        engine.run(
            [
                E("Buy", 1.0, symbol="X", price=10.0),
                E("Sell", 2.0, symbol="X", price=11.0),
                E("Sell", 3.0, symbol="X", price=19.0),
                E("Z", 4.0),
                # epoch closure needs an event the trades query observes:
                E("Buy", 5.0, symbol="X", price=50.0),
            ]
        )
        # only the top-1 of the closed epoch derives an event
        assert [m["x"]["profit"] for m in probe.matches()] == [9.0]

    def test_eager_revisions_do_not_duplicate(self):
        engine = CEPREngine()
        engine.register_query(
            """
            PATTERN SEQ(A a)
            WITHIN 100 EVENTS
            RANK BY a.x DESC
            LIMIT 2
            EMIT EAGER
            YIELD D(x = a.x)
            """
        )
        probe = engine.register_query("PATTERN SEQ(D d)")
        engine.run([E("A", 1.0, x=1), E("A", 2.0, x=2), E("A", 3.0, x=3)])
        # match x=1 appears in revision 1, x=2 joins, x=3 replaces x=1:
        # each distinct match derives exactly once.
        assert sorted(m["d"]["x"] for m in probe.matches()) == [1, 2, 3]

    def test_indirect_cycle_detected(self):
        engine = CEPREngine(max_derivation_depth=4)
        engine.register_query("PATTERN SEQ(P p) YIELD Q(n = p.n + 1)")
        engine.register_query("PATTERN SEQ(Q q) YIELD P(n = q.n + 1)")
        with pytest.raises(RuntimeError, match="max_derivation_depth"):
            engine.push(E("P", 1.0, n=0))

    def test_yield_errors_lenient(self):
        engine = CEPREngine(lenient_errors=True)
        handle = engine.register_query(
            "PATTERN SEQ(A a) YIELD D(x = a.v * 2)"
        )
        probe = engine.register_query("PATTERN SEQ(D d)")
        engine.push(E("A", 1.0))          # missing v: counted, skipped
        engine.push(E("A", 2.0, v=5.0))
        engine.flush()
        assert handle.yield_errors == 1
        assert [m["d"]["x"] for m in probe.matches()] == [10.0]

    def test_yield_errors_strict(self):
        engine = CEPREngine()
        engine.register_query("PATTERN SEQ(A a) YIELD D(x = a.v * 2)")
        from repro.language.errors import EvaluationError

        with pytest.raises(EvaluationError):
            engine.push(E("A", 1.0))

    def test_heartbeat_emissions_cascade(self):
        engine = CEPREngine()
        engine.register_query(
            """
            PATTERN SEQ(A a)
            WITHIN 10 SECONDS
            RANK BY a.x DESC
            LIMIT 1
            EMIT ON WINDOW CLOSE
            YIELD D(x = a.x)
            """
        )
        probe = engine.register_query("PATTERN SEQ(D d)")
        engine.push(E("A", 1.0, x=7))
        engine.advance_time(15.0)  # closes the epoch → derives → cascades
        engine.flush()
        assert [m["d"]["x"] for m in probe.matches()] == [7]
