"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main

QUERY = """
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol AND s.price > b.price
WITHIN 20 EVENTS
USING SKIP_TILL_ANY
RANK BY s.price - b.price DESC
LIMIT 2
EMIT ON WINDOW CLOSE
"""


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "trades.ceprql"
    path.write_text(QUERY)
    return path


@pytest.fixture
def events_file(tmp_path):
    path = tmp_path / "events.jsonl"
    rows = [
        {"type": "Buy", "timestamp": 1.0, "symbol": "X", "price": 10.0},
        {"type": "Sell", "timestamp": 2.0, "symbol": "X", "price": 15.0},
        {"type": "Sell", "timestamp": 3.0, "symbol": "X", "price": 12.0},
    ]
    path.write_text("\n".join(json.dumps(r) for r in rows) + "\n")
    return path


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestValidate:
    def test_valid_query_prints_plan(self, query_file):
        code, output = run_cli("validate", str(query_file))
        assert code == 0
        assert "evaluation plan:" in output
        assert "rank by: s.price - b.price DESC" in output
        assert "1 query file(s) valid" in output

    def test_invalid_query_fails(self, tmp_path):
        bad = tmp_path / "bad.ceprql"
        bad.write_text("PATTERN SEQ(")
        code, output = run_cli("validate", str(bad))
        assert code == 1
        assert "error:" in output

    def test_missing_file_fails(self, tmp_path):
        code, output = run_cli("validate", str(tmp_path / "nope.ceprql"))
        assert code == 1 and "error:" in output


class TestRun:
    def test_text_output(self, query_file, events_file):
        code, output = run_cli(
            "run", str(query_file), "--events", str(events_file)
        )
        assert code == 0
        assert "[trades]" in output
        assert "#1" in output
        assert "score=(5)" in output

    def test_jsonl_output_is_parseable(self, query_file, events_file):
        code, output = run_cli(
            "run", str(query_file), "--events", str(events_file), "--output", "jsonl"
        )
        assert code == 0
        records = [json.loads(line) for line in output.strip().splitlines()]
        assert records
        top = records[-1]["ranking"][0]
        assert top["query"] == "trades"
        assert top["rank_values"] == [5.0]
        assert top["bindings"]["b"]["symbol"] == "X"

    def test_stats_flag(self, query_file, events_file):
        code, output = run_cli(
            "run", str(query_file), "--events", str(events_file), "--stats"
        )
        assert code == 0
        assert "-- statistics --" in output
        assert "matches=2" in output

    def test_no_results_message(self, query_file, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code, output = run_cli("run", str(query_file), "--events", str(empty))
        assert code == 0
        assert "(no results)" in output

    def test_csv_events(self, query_file, tmp_path):
        csv_path = tmp_path / "events.csv"
        csv_path.write_text(
            "type,timestamp,symbol,price\n"
            "Buy,1.0,X,10.0\nSell,2.0,X,15.0\n"
        )
        code, output = run_cli("run", str(query_file), "--events", str(csv_path))
        assert code == 0 and "#1" in output

    def test_unsupported_event_format(self, query_file, tmp_path):
        bad = tmp_path / "events.parquet"
        bad.write_text("")
        code, output = run_cli("run", str(query_file), "--events", str(bad))
        assert code == 1 and "unsupported event file" in output

    def test_multiple_query_files(self, query_file, events_file, tmp_path):
        second = tmp_path / "all_sells.ceprql"
        second.write_text("PATTERN SEQ(Sell s)")
        code, output = run_cli(
            "run", str(query_file), str(second), "--events", str(events_file)
        )
        assert code == 0
        assert "[all_sells]" in output and "[trades]" in output

    def test_no_pruning_flag(self, query_file, events_file):
        code, _ = run_cli(
            "run", str(query_file), "--events", str(events_file), "--no-pruning"
        )
        assert code == 0


class TestDemo:
    @pytest.mark.parametrize("workload", ["stock", "vitals", "traffic", "generic"])
    def test_generates_jsonl(self, tmp_path, workload):
        out_path = tmp_path / "events.jsonl"
        code, output = run_cli(
            "demo", workload, "--events", "50", "--seed", "3", "--out", str(out_path)
        )
        assert code == 0
        assert "wrote 50" in output
        assert len(out_path.read_text().strip().splitlines()) == 50

    def test_demo_then_run_round_trip(self, tmp_path, query_file):
        out_path = tmp_path / "stock.jsonl"
        run_cli("demo", "stock", "--events", "500", "--out", str(out_path))
        code, output = run_cli(
            "run", str(query_file), "--events", str(out_path), "--stats"
        )
        assert code == 0
        assert "-- statistics --" in output


class TestRunSharded:
    PARTITIONED_QUERY = """
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 50 EVENTS
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
    """

    @pytest.fixture
    def partitioned_query_file(self, tmp_path):
        path = tmp_path / "partitioned.ceprql"
        path.write_text(self.PARTITIONED_QUERY)
        return path

    @pytest.fixture
    def stock_log(self, tmp_path):
        path = tmp_path / "stock.jsonl"
        code, _ = run_cli(
            "demo", "stock", "--events", "600", "--seed", "3", "--out", str(path)
        )
        assert code == 0
        return path

    def test_sharded_run_matches_single(self, partitioned_query_file, stock_log):
        """--shards N must not change the output: the merge stage keeps
        results identical to the single-engine run."""
        code_one, out_one = run_cli(
            "run", str(partitioned_query_file), "--events", str(stock_log),
            "--output", "jsonl",
        )
        code_four, out_four = run_cli(
            "run", str(partitioned_query_file), "--events", str(stock_log),
            "--output", "jsonl", "--shards", "4",
        )
        assert code_one == 0 and code_four == 0
        assert out_four == out_one

    def test_sharded_stats_report_fleet_totals(
        self, partitioned_query_file, stock_log
    ):
        code, output = run_cli(
            "run", str(partitioned_query_file), "--events", str(stock_log),
            "--stats", "--shards", "2",
        )
        assert code == 0
        assert "-- statistics --" in output
        assert "events=600" in output

    def test_invalid_shards_rejected(self, partitioned_query_file, stock_log):
        code, output = run_cli(
            "run", str(partitioned_query_file), "--events", str(stock_log),
            "--shards", "0",
        )
        assert code == 1
        assert "error:" in output


SCHEMA_JSON = """
{
  "Buy":  {"symbol": "str", "price": {"dtype": "float", "domain": [0, 10000]}},
  "Sell": {"symbol": "str", "price": "float"}
}
"""


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "registry.json"
    path.write_text(SCHEMA_JSON)
    return path


class TestLint:
    def _write(self, tmp_path, text, name="q.ceprql"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_query_with_only_infos_passes(self, query_file):
        # The fixture query is unpartitioned: the shardability certificate
        # shows as info, which neither fails the lint nor counts as a problem.
        code, output = run_cli("lint", str(query_file))
        assert code == 0
        assert "CEPR401" in output
        assert "no problems" in output

    def test_clean_query(self, tmp_path):
        clean = self._write(
            tmp_path,
            "PATTERN SEQ(Buy a, Sell b) "
            "WHERE a.symbol == b.symbol AND b.price > a.price "
            "WITHIN 50 EVENTS PARTITION BY symbol "
            "RANK BY b.price - a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE",
        )
        code, output = run_cli("lint", str(clean))
        assert code == 0
        assert f"{clean}: clean" in output
        assert "no problems" in output

    def test_error_sets_exit_code(self, tmp_path):
        bad = self._write(
            tmp_path, "PATTERN SEQ(Buy a) WHERE a.price > 10 AND a.price < 5"
        )
        code, output = run_cli("lint", str(bad))
        assert code == 1
        assert "CEPR201" in output
        assert "1 problem(s) (1 error(s), 0 warning(s))" in output

    def test_warnings_do_not_fail(self, tmp_path):
        warn = self._write(
            tmp_path, "PATTERN SEQ(Buy a) WHERE a.price > 5 AND a.price > 5"
        )
        code, output = run_cli("lint", str(warn))
        assert code == 0
        assert "CEPR305" in output
        assert "warning" in output

    def test_syntax_error_is_a_diagnostic(self, tmp_path):
        bad = self._write(tmp_path, "PATTERN SEQ(")
        code, output = run_cli("lint", str(bad))
        assert code == 1
        assert "CEPR001" in output

    def test_schema_enables_type_checks(self, tmp_path, schema_file):
        bad = self._write(tmp_path, "PATTERN SEQ(Buy a) WHERE a.sym == 'X'")
        code, without = run_cli("lint", str(bad))
        assert code == 0
        assert "CEPR101" not in without
        code, with_schema = run_cli(
            "lint", str(bad), "--schema", str(schema_file)
        )
        assert code == 1
        assert "CEPR101" in with_schema
        assert "declared attributes: price, symbol" in with_schema

    def test_json_output(self, tmp_path):
        bad = self._write(tmp_path, "PATTERN SEQ(Buy a, Sell b) WITHIN 1 EVENTS LIMIT 0")
        code, output = run_cli("lint", "--json", str(bad))
        assert code == 1
        payload = json.loads(output)
        assert payload[0]["file"] == str(bad)
        codes = [d["code"] for d in payload[0]["diagnostics"]]
        assert codes == ["CEPR303"]
        assert payload[0]["diagnostics"][0]["span"] == "LIMIT 0"

    def test_multiple_files_aggregate(self, tmp_path, query_file):
        bad = self._write(tmp_path, "PATTERN SEQ(", name="bad.ceprql")
        code, output = run_cli("lint", str(query_file), str(bad))
        assert code == 1
        assert str(query_file) in output
        assert "CEPR001" in output

    def test_bad_schema_file_reports_error(self, tmp_path, query_file):
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        code, output = run_cli(
            "lint", str(query_file), "--schema", str(broken)
        )
        assert code == 1
        assert "error:" in output


class TestStartupDiagnostics:
    def test_run_prints_warnings_to_stderr(self, tmp_path, events_file, capsys):
        query = tmp_path / "warned.ceprql"
        query.write_text(
            "PATTERN SEQ(Buy a) WHERE a.price > 5 AND a.price > 5"
        )
        code, output = run_cli(
            "run", str(query), "--events", str(events_file), "--output", "jsonl"
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "CEPR305" in captured.err
        # results channel stays clean
        assert "CEPR305" not in output

    def test_clean_query_prints_nothing(self, query_file, events_file, capsys):
        code, _output = run_cli(
            "run", str(query_file), "--events", str(events_file)
        )
        assert code == 0
        assert capsys.readouterr().err == ""
