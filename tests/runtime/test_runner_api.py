"""Unified Runner API: factory, config, protocol, deprecation shims.

``create_runner(program, config)`` is the one supported construction
path for all four execution backends.  These tests pin the factory's
contract: program forms, override semantics, early backend/feature
validation, protocol conformance by ``isinstance``, and the
deprecation shims on the legacy constructors (which must stay silent
when the factory itself builds them).
"""

import warnings

import pytest

from repro.language.parser import parse_query
from repro.runtime import (
    EmbeddedRunner,
    ProcessShardedRunner,
    Runner,
    RunnerConfig,
    ShardedEngineRunner,
    ThreadedEngineRunner,
    create_runner,
)
from repro.runtime.engine import CEPREngine

PROFITS = """
    NAME profits
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 60 EVENTS
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""

DROPS = """
    NAME drops
    PATTERN SEQ(Sell hi, Sell lo)
    WHERE hi.symbol == lo.symbol AND lo.price < hi.price
    WITHIN 40 EVENTS
    RANK BY hi.price - lo.price DESC
    LIMIT 2
    EMIT ON WINDOW CLOSE
"""

BACKEND_TYPES = {
    "embedded": EmbeddedRunner,
    "threaded": ThreadedEngineRunner,
    "sharded": ShardedEngineRunner,
    "process": ProcessShardedRunner,
}


class TestFactory:
    def test_default_backend_is_embedded(self):
        runner = create_runner(PROFITS)
        assert isinstance(runner, EmbeddedRunner)

    @pytest.mark.parametrize("backend", sorted(BACKEND_TYPES))
    def test_each_backend_builds_its_class(self, backend):
        runner = create_runner(PROFITS, RunnerConfig(backend=backend))
        assert type(runner) is BACKEND_TYPES[backend]

    @pytest.mark.parametrize("backend", sorted(BACKEND_TYPES))
    def test_every_backend_satisfies_the_protocol(self, backend):
        runner = create_runner(config=RunnerConfig(backend=backend))
        assert isinstance(runner, Runner)

    def test_runner_is_returned_unstarted(self):
        """More queries can be registered between create and start."""
        runner = create_runner(PROFITS, backend="sharded", shards=2)
        runner.register_query(DROPS)
        runner.start()
        try:
            assert {v.name for v in runner.queries()} == {"profits", "drops"}
        finally:
            runner.stop()


class TestProgramForms:
    def test_query_text_registers_under_its_name(self):
        runner = create_runner(PROFITS)
        assert runner.query("profits").name == "profits"

    def test_parsed_ast(self):
        runner = create_runner(parse_query(PROFITS))
        assert runner.query("profits").name == "profits"

    def test_mapping_overrides_names(self):
        runner = create_runner({"a": PROFITS, "b": parse_query(DROPS)})
        assert {v.name for v in runner.queries()} == {"a", "b"}

    def test_iterable_of_queries(self):
        runner = create_runner([PROFITS, parse_query(DROPS)])
        assert {v.name for v in runner.queries()} == {"profits", "drops"}

    def test_none_registers_nothing(self):
        assert create_runner().queries() == []

    def test_bad_program_item_raises_type_error(self):
        with pytest.raises(TypeError, match="program items"):
            create_runner([PROFITS, 42])

    def test_bad_program_raises_type_error(self):
        with pytest.raises(TypeError, match="program must be"):
            create_runner(42)


class TestOverrides:
    def test_keyword_overrides_build_the_config(self):
        runner = create_runner(backend="sharded", shards=2)
        assert isinstance(runner, ShardedEngineRunner)
        assert runner.shards == 2

    def test_overrides_layer_on_top_of_config(self):
        config = RunnerConfig(backend="sharded", shards=4)
        runner = create_runner(config=config, shards=8)
        assert runner.shards == 8
        assert config.shards == 4, "the caller's config must not mutate"

    def test_unknown_override_raises_type_error(self):
        with pytest.raises(TypeError):
            create_runner(PROFITS, sharding_level=3)


class TestValidation:
    def test_unknown_backend_lists_the_choices(self):
        with pytest.raises(ValueError, match="embedded.*process.*sharded"):
            create_runner(PROFITS, backend="distributed")

    def test_embedded_rejects_shedding(self):
        with pytest.raises(ValueError, match="no ingest queue to shed"):
            create_runner(PROFITS, shed_policy="rank")

    @pytest.mark.parametrize("backend", ["sharded", "process"])
    def test_fleet_backends_reject_tracing(self, backend):
        with pytest.raises(ValueError, match="tracing"):
            create_runner(PROFITS, backend=backend, tracing=True)

    def test_process_rejects_shedding(self):
        with pytest.raises(ValueError, match="load shedding"):
            create_runner(PROFITS, backend="process", shed_policy="rank")


class TestDeprecationShims:
    def test_direct_threaded_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="ThreadedEngineRunner"):
            ThreadedEngineRunner(CEPREngine())

    def test_direct_sharded_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="ShardedEngineRunner"):
            ShardedEngineRunner(shards=2)

    def test_direct_process_construction_warns_with_its_own_name(self):
        with pytest.warns(DeprecationWarning, match="ProcessShardedRunner"):
            ProcessShardedRunner(shards=2)

    @pytest.mark.parametrize("backend", sorted(BACKEND_TYPES))
    def test_factory_construction_is_silent(self, backend):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            create_runner(PROFITS, RunnerConfig(backend=backend))

    def test_warning_names_the_factory(self):
        with pytest.warns(DeprecationWarning, match="create_runner"):
            ShardedEngineRunner(shards=2)
