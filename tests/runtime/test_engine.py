"""Engine facade: registration, routing, schemas, metrics."""

import pytest

from repro import CEPREngine, Event
from repro.events.schema import EventSchema, SchemaError, SchemaRegistry
from repro.language.errors import CEPRSemanticError, CEPRSyntaxError


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestRegistration:
    def test_auto_names(self, engine):
        q1 = engine.register_query("PATTERN SEQ(A a)")
        q2 = engine.register_query("PATTERN SEQ(B b)")
        assert (q1.name, q2.name) == ("q1", "q2")

    def test_name_clause_wins_over_auto(self, engine):
        handle = engine.register_query("NAME alerts PATTERN SEQ(A a)")
        assert handle.name == "alerts"

    def test_explicit_name_wins_over_clause(self, engine):
        handle = engine.register_query("NAME x PATTERN SEQ(A a)", name="y")
        assert handle.name == "y"

    def test_duplicate_name_rejected(self, engine):
        engine.register_query("PATTERN SEQ(A a)", name="dup")
        with pytest.raises(CEPRSemanticError, match="already registered"):
            engine.register_query("PATTERN SEQ(B b)", name="dup")

    def test_syntax_error_propagates(self, engine):
        with pytest.raises(CEPRSyntaxError):
            engine.register_query("PATTERN SEQ(")

    def test_register_parsed_ast(self, engine):
        from repro.language.parser import parse_query

        handle = engine.register_query(parse_query("PATTERN SEQ(A a)"))
        assert handle.name == "q1"

    def test_lookup_and_listing(self, engine):
        handle = engine.register_query("PATTERN SEQ(A a)", name="x")
        assert engine.query("x") is handle
        assert engine.queries() == [handle]

    def test_unregister(self, engine):
        engine.register_query("PATTERN SEQ(A a)", name="x")
        engine.unregister_query("x")
        assert engine.queries() == []
        emissions = engine.push(E("A", 1))
        assert emissions == []

    def test_unregister_unknown(self, engine):
        with pytest.raises(KeyError):
            engine.unregister_query("zz")


class TestRouting:
    def test_events_routed_only_to_interested_queries(self, engine):
        qa = engine.register_query("PATTERN SEQ(A a)")
        qb = engine.register_query("PATTERN SEQ(B b)")
        engine.push(E("A", 1))
        assert qa.metrics.events_routed == 1
        assert qb.metrics.events_routed == 0

    def test_negation_types_are_routed(self, engine):
        q = engine.register_query("PATTERN SEQ(A a, NOT C c, B b)")
        engine.push(E("C", 1))
        assert q.metrics.events_routed == 1

    def test_shared_types_fan_out(self, engine):
        q1 = engine.register_query("PATTERN SEQ(A a)")
        q2 = engine.register_query("PATTERN SEQ(A a, B b)")
        engine.push(E("A", 1))
        assert q1.metrics.events_routed == 1
        assert q2.metrics.events_routed == 1

    def test_push_returns_emissions_across_queries(self, engine):
        engine.register_query("PATTERN SEQ(A a)")
        engine.register_query("PATTERN SEQ(A x)")
        emissions = engine.push(E("A", 1))
        assert len(emissions) == 2


class TestSchemas:
    def registry(self):
        return SchemaRegistry([EventSchema.build("A", x="int")])

    def test_validation_rejects_bad_events(self):
        engine = CEPREngine(registry=self.registry())
        engine.register_query("PATTERN SEQ(A a)")
        with pytest.raises(SchemaError):
            engine.push(E("A", 1, x="nope"))

    def test_unknown_type_allowed_by_default(self):
        engine = CEPREngine(registry=self.registry())
        engine.register_query("PATTERN SEQ(A a)")
        engine.push(E("Z", 1))  # no schema, lenient

    def test_strict_schema_rejects_unknown(self):
        engine = CEPREngine(registry=self.registry(), strict_schema=True)
        engine.register_query("PATTERN SEQ(A a)")
        with pytest.raises(SchemaError, match="no schema registered"):
            engine.push(E("Z", 1))

    def test_strict_time(self):
        from repro.events.time import OutOfOrderError

        engine = CEPREngine(strict_time=True)
        engine.register_query("PATTERN SEQ(A a)")
        engine.push(E("A", 5.0))
        with pytest.raises(OutOfOrderError):
            engine.push(E("A", 1.0))


class TestMetrics:
    def test_event_counting(self, engine):
        engine.register_query("PATTERN SEQ(A a)")
        for i in range(5):
            engine.push(E("A", i))
        assert engine.events_pushed == 5
        assert engine.metrics.throughput > 0

    def test_stats_by_query(self, engine):
        engine.register_query("PATTERN SEQ(A a, B b)", name="x")
        engine.push(E("A", 1))
        engine.push(E("B", 2))
        stats = engine.stats_by_query()["x"]
        assert stats["events_routed"] == 2
        assert stats["matches"] == 1
        assert stats["runs_created"] == 1

    def test_partition_skips_exposed_in_stats(self, engine):
        """Regression: events missing a PARTITION BY attribute used to
        vanish without trace.  They are counted and surfaced per query so
        upstream data problems are visible in the monitor."""
        engine.register_query(
            "PATTERN SEQ(A a, B b) PARTITION BY sym", name="pairs"
        )
        engine.push(E("A", 1, sym="X"))
        engine.push(E("A", 2))  # no key: skipped, but not silently
        engine.push(E("B", 3))  # no key: skipped, but not silently
        engine.push(E("B", 4, sym="X"))
        stats = engine.stats_by_query()["pairs"]
        assert stats["partition_skips"] == 2
        assert stats["matches"] == 1
        # Unpartitioned queries never skip.
        engine.register_query("PATTERN SEQ(A a)", name="all_a")
        engine.push(E("A", 5))
        assert engine.stats_by_query()["all_a"]["partition_skips"] == 0

    def test_latency_recorded(self, engine):
        handle = engine.register_query("PATTERN SEQ(A a)")
        engine.push(E("A", 1))
        assert handle.metrics.latency.count == 1
        assert handle.metrics.latency.mean > 0

    def test_run_convenience(self, engine):
        handle = engine.register_query("PATTERN SEQ(A a)")
        emissions = engine.run([E("A", 1), E("A", 2)])
        assert len(emissions) == 2
        assert handle.metrics.matches == 2


class TestResultAccess:
    def test_results_require_collector(self):
        engine = CEPREngine()
        handle = engine.register_query("PATTERN SEQ(A a)", collect_results=False)
        with pytest.raises(RuntimeError, match="collect_results"):
            handle.results()
        with pytest.raises(RuntimeError):
            handle.matches()
        with pytest.raises(RuntimeError):
            handle.final_ranking()

    def test_custom_sink_receives_emissions(self, engine):
        received = []
        handle = engine.register_query("PATTERN SEQ(A a)")
        from repro.runtime.sinks import CallbackSink

        handle.subscribe(CallbackSink(received.append))
        engine.push(E("A", 1))
        assert len(received) == 1
