"""Workload generators: determinism, schema conformity, injected structure."""

import pytest

from repro.workloads.base import Workload
from repro.workloads.clickstream import ClickstreamWorkload
from repro.workloads.generic import GenericWorkload, type_alphabet
from repro.workloads.sensor import VitalsWorkload
from repro.workloads.stock import StockWorkload
from repro.workloads.traffic import TrafficWorkload

ALL_WORKLOADS = [
    lambda seed: ClickstreamWorkload(seed=seed),
    lambda seed: StockWorkload(seed=seed),
    lambda seed: VitalsWorkload(seed=seed),
    lambda seed: TrafficWorkload(seed=seed),
    lambda seed: GenericWorkload(seed=seed),
]


class TestCommonProperties:
    @pytest.mark.parametrize("factory", ALL_WORKLOADS)
    def test_deterministic_given_seed(self, factory):
        first = list(factory(42).events(200))
        second = list(factory(42).events(200))
        assert first == second

    @pytest.mark.parametrize("factory", ALL_WORKLOADS)
    def test_different_seeds_differ(self, factory):
        assert list(factory(1).events(100)) != list(factory(2).events(100))

    @pytest.mark.parametrize("factory", ALL_WORKLOADS)
    def test_timestamps_non_decreasing(self, factory):
        events = list(factory(0).events(500))
        timestamps = [e.timestamp for e in events]
        assert timestamps == sorted(timestamps)

    @pytest.mark.parametrize("factory", ALL_WORKLOADS)
    def test_events_conform_to_registry(self, factory):
        workload = factory(0)
        registry = workload.registry()
        for event in workload.events(500):
            registry.validate(event, strict=True)

    @pytest.mark.parametrize("factory", ALL_WORKLOADS)
    def test_reset_rewinds(self, factory):
        workload = factory(5)
        first = list(workload.events(100))
        workload.reset()
        assert list(workload.events(100)) == first


class TestBaseWorkload:
    def test_invalid_rate(self):
        with pytest.raises(ValueError, match="rate must be positive"):
            Workload(rate=0)

    def test_invalid_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            Workload(jitter=1.5)

    def test_next_event_abstract(self):
        with pytest.raises(NotImplementedError):
            Workload().next_event()

    def test_stream_wrapper(self):
        assert len(GenericWorkload().stream(10).collect()) == 10


class TestStockWorkload:
    def test_prices_within_domain(self):
        workload = StockWorkload(seed=1)
        for event in workload.events(1000):
            assert workload.price_floor <= event["price"] <= workload.price_cap

    def test_symbols_restricted(self):
        workload = StockWorkload(seed=1, symbols=("AA", "BB"))
        assert {e["symbol"] for e in workload.events(200)} == {"AA", "BB"}

    def test_tick_fraction(self):
        workload = StockWorkload(seed=1, tick_fraction=0.5)
        types = [e.event_type for e in workload.events(500)]
        assert types.count("Tick") > 100

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            StockWorkload(symbols=())
        with pytest.raises(ValueError):
            StockWorkload(price_floor=10, price_cap=5)


class TestVitalsWorkload:
    def test_episodes_raise_values(self):
        workload = VitalsWorkload(seed=3, anomaly_rate=0.05)
        events = list(workload.events(3000))
        episode_hr = [
            e["value"]
            for e in events
            if e.event_type == "HeartRate" and e["episode"]
        ]
        normal_hr = [
            e["value"]
            for e in events
            if e.event_type == "HeartRate" and not e["episode"]
        ]
        assert episode_hr, "no episodes injected at 5% anomaly rate"
        assert sum(episode_hr) / len(episode_hr) > sum(normal_hr) / len(normal_hr)

    def test_zero_anomaly_rate_means_no_episodes(self):
        workload = VitalsWorkload(seed=3, anomaly_rate=0.0)
        assert not any(e["episode"] for e in workload.events(1000))

    def test_patient_ids_in_range(self):
        workload = VitalsWorkload(seed=0, patients=3)
        assert {e["patient"] for e in workload.events(300)} <= {0, 1, 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            VitalsWorkload(patients=0)
        with pytest.raises(ValueError):
            VitalsWorkload(anomaly_rate=2.0)


class TestTrafficWorkload:
    def test_incidents_slow_segments(self):
        workload = TrafficWorkload(seed=2, incident_rate=0.02)
        events = list(workload.events(5000))
        speeds = [e["speed"] for e in events if e.event_type == "SpeedReport"]
        clears = [e for e in events if e.event_type == "Clear"]
        assert clears, "incidents should eventually clear"
        assert min(speeds) < 40 < max(speeds)

    def test_no_incidents_without_rate(self):
        workload = TrafficWorkload(seed=2, incident_rate=0.0)
        events = list(workload.events(2000))
        assert all(e.event_type == "SpeedReport" for e in events)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficWorkload(segments=0)


class TestClickstreamWorkload:
    def test_funnels_are_ordered_per_user(self):
        workload = ClickstreamWorkload(seed=4, users=5)
        events = list(workload.events(3000))
        carted: dict[int, float] = {}
        for event in events:
            if event.event_type == "AddToCart":
                carted[event["user"]] = event["value"]
            elif event.event_type == "Purchase":
                # every purchase follows an AddToCart of the same value
                assert carted.get(event["user"]) == event["value"]

    def test_abandonment_rate_roughly_respected(self):
        workload = ClickstreamWorkload(seed=4, users=10, abandon_rate=0.5)
        events = list(workload.events(8000))
        adds = sum(1 for e in events if e.event_type == "AddToCart")
        purchases = sum(1 for e in events if e.event_type == "Purchase")
        assert adds > 50
        assert 0.3 < purchases / adds < 0.7

    def test_no_abandonment_when_rate_zero(self):
        workload = ClickstreamWorkload(seed=4, users=4, abandon_rate=0.0)
        events = list(workload.events(4000))
        adds = sum(1 for e in events if e.event_type == "AddToCart")
        purchases = sum(1 for e in events if e.event_type == "Purchase")
        # pending funnels at stream end explain any small shortfall
        assert purchases >= adds - 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ClickstreamWorkload(users=0)
        with pytest.raises(ValueError):
            ClickstreamWorkload(abandon_rate=1.5)


class TestGenericWorkload:
    def test_type_alphabet(self):
        assert type_alphabet(3) == ("A", "B", "C")
        with pytest.raises(ValueError):
            type_alphabet(0)
        with pytest.raises(ValueError):
            type_alphabet(27)

    def test_types_uniformish(self):
        workload = GenericWorkload(seed=0, alphabet_size=2)
        types = [e.event_type for e in workload.events(1000)]
        assert 300 < types.count("A") < 700

    def test_values_in_range(self):
        workload = GenericWorkload(seed=0, value_range=(10.0, 20.0))
        assert all(10.0 <= e["value"] <= 20.0 for e in workload.events(500))

    def test_groups(self):
        workload = GenericWorkload(seed=0, groups=4)
        assert {e["group"] for e in workload.events(500)} == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            GenericWorkload(value_range=(5.0, 5.0))
        with pytest.raises(ValueError):
            GenericWorkload(groups=0)
