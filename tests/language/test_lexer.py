"""Unit tests for the CEPR-QL lexer."""

import pytest

from repro.language.errors import CEPRSyntaxError
from repro.language.lexer import tokenize
from repro.language.tokens import TokenType


def types_of(text):
    return [t.type for t in tokenize(text)]


def values_of(text):
    return [t.value for t in tokenize(text)[:-1]]  # drop EOF


class TestBasics:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].type == TokenType.EOF

    def test_whitespace_only(self):
        assert types_of("  \n\t ") == [TokenType.EOF]

    def test_identifiers(self):
        tokens = tokenize("foo _bar baz2")
        assert [t.value for t in tokens[:-1]] == ["foo", "_bar", "baz2"]
        assert all(t.type == TokenType.IDENT for t in tokens[:-1])

    def test_keywords_case_insensitive(self):
        for text in ("PATTERN", "pattern", "Pattern"):
            token = tokenize(text)[0]
            assert token.type == TokenType.KEYWORD and token.value == "PATTERN"

    def test_is_keyword_helper(self):
        token = tokenize("where")[0]
        assert token.is_keyword("WHERE") and token.is_keyword("where")
        assert not token.is_keyword("LIMIT")


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type == TokenType.NUMBER and token.value == 42
        assert isinstance(token.value, int)

    def test_float(self):
        token = tokenize("3.25")[0]
        assert token.value == 3.25 and isinstance(token.value, float)

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].value == 0.5

    def test_scientific_notation(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e2")[0].value == 250.0

    def test_number_followed_by_dot_attr_is_not_float(self):
        # "b.price" after a number: "1.price" lexes as 1 . price
        tokens = tokenize("1.price")
        assert tokens[0].value == 1
        assert tokens[1].type == TokenType.DOT
        assert tokens[2].value == "price"


class TestStrings:
    def test_single_quoted(self):
        assert tokenize("'hello'")[0].value == "hello"

    def test_double_quoted(self):
        assert tokenize('"hello"')[0].value == "hello"

    def test_doubled_quote_escape(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(CEPRSyntaxError, match="unterminated string"):
            tokenize("'oops")

    def test_newline_in_string(self):
        with pytest.raises(CEPRSyntaxError, match="newline in string"):
            tokenize("'oops\n'")


class TestOperators:
    @pytest.mark.parametrize(
        "text,token_type",
        [
            ("==", TokenType.EQ),
            ("=", TokenType.EQ),
            ("!=", TokenType.NEQ),
            ("<>", TokenType.NEQ),
            ("<", TokenType.LT),
            ("<=", TokenType.LTE),
            (">", TokenType.GT),
            (">=", TokenType.GTE),
            ("+", TokenType.PLUS),
            ("-", TokenType.MINUS),
            ("*", TokenType.STAR),
            ("/", TokenType.SLASH),
            ("%", TokenType.PERCENT),
            ("(", TokenType.LPAREN),
            (")", TokenType.RPAREN),
            (",", TokenType.COMMA),
            (".", TokenType.DOT),
        ],
    )
    def test_single_operator(self, text, token_type):
        assert tokenize(text)[0].type == token_type

    def test_adjacent_operators(self):
        assert types_of("a<=b")[:3] == [TokenType.IDENT, TokenType.LTE, TokenType.IDENT]

    def test_unexpected_character(self):
        with pytest.raises(CEPRSyntaxError, match="unexpected character"):
            tokenize("a @ b")


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert values_of("a -- comment here\n b") == ["a", "b"]

    def test_comment_at_end_of_input(self):
        assert values_of("a -- trailing") == ["a"]

    def test_positions_are_one_based(self):
        token = tokenize("  foo")[0]
        assert token.line == 1 and token.column == 3

    def test_line_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_error_carries_position(self):
        try:
            tokenize("ok\n   @")
        except CEPRSyntaxError as exc:
            assert exc.line == 2 and exc.column == 4
        else:
            pytest.fail("expected CEPRSyntaxError")
