"""Unit tests for the CEPR-QL parser."""

import pytest

from repro.language.ast_nodes import (
    Aggregate,
    AttrRef,
    Binary,
    BinaryOp,
    Direction,
    EmitKind,
    FuncCall,
    Literal,
    PrevRef,
    SelectionStrategy,
    Unary,
    UnaryOp,
    VarRef,
    WindowKind,
)
from repro.language.errors import CEPRSyntaxError
from repro.language.parser import parse_query


def parse_expr(expr_text: str):
    query = parse_query(f"PATTERN SEQ(A a) WHERE {expr_text}")
    return query.where


class TestPatternClause:
    def test_simple_sequence(self):
        query = parse_query("PATTERN SEQ(Buy b, Sell s)")
        assert [(e.event_type, e.variable) for e in query.pattern] == [
            ("Buy", "b"),
            ("Sell", "s"),
        ]

    def test_kleene_plus(self):
        query = parse_query("PATTERN SEQ(A a, B bs+)")
        assert not query.pattern[0].kleene
        assert query.pattern[1].kleene

    def test_negation(self):
        query = parse_query("PATTERN SEQ(A a, NOT C c, B b)")
        assert query.pattern[1].negated
        assert query.negated_elements()[0].variable == "c"
        assert [e.variable for e in query.positive_elements()] == ["a", "b"]

    def test_negated_kleene_rejected(self):
        with pytest.raises(CEPRSyntaxError, match="cannot be Kleene"):
            parse_query("PATTERN SEQ(A a, NOT C cs+, B b)")

    def test_missing_pattern_keyword(self):
        with pytest.raises(CEPRSyntaxError, match="expected 'PATTERN'"):
            parse_query("SEQ(A a)")

    def test_missing_variable(self):
        with pytest.raises(CEPRSyntaxError, match="pattern variable"):
            parse_query("PATTERN SEQ(A)")

    def test_name_clause(self):
        query = parse_query("NAME hot_pairs PATTERN SEQ(A a)")
        assert query.name == "hot_pairs"


class TestWindowClause:
    def test_count_window(self):
        query = parse_query("PATTERN SEQ(A a) WITHIN 50 EVENTS")
        assert query.window.kind is WindowKind.COUNT and query.window.span == 50

    def test_time_window_minutes(self):
        query = parse_query("PATTERN SEQ(A a) WITHIN 10 MINUTES")
        assert query.window.kind is WindowKind.TIME and query.window.span == 600.0

    def test_time_window_seconds(self):
        assert parse_query("PATTERN SEQ(A a) WITHIN 2 SECONDS").window.span == 2.0

    def test_fractional_count_rejected(self):
        with pytest.raises(CEPRSyntaxError, match="must be an integer"):
            parse_query("PATTERN SEQ(A a) WITHIN 2.5 EVENTS")

    def test_missing_unit(self):
        with pytest.raises(CEPRSyntaxError, match="expected EVENTS or a time unit"):
            parse_query("PATTERN SEQ(A a) WITHIN 50")


class TestOtherClauses:
    def test_strategy_aliases(self):
        for text, expected in [
            ("STRICT", SelectionStrategy.STRICT),
            ("STRICT_CONTIGUITY", SelectionStrategy.STRICT),
            ("SKIP_TILL_NEXT_MATCH", SelectionStrategy.SKIP_TILL_NEXT),
            ("skip_till_any", SelectionStrategy.SKIP_TILL_ANY),
        ]:
            query = parse_query(f"PATTERN SEQ(A a) USING {text}")
            assert query.strategy is expected

    def test_unknown_strategy(self):
        with pytest.raises(CEPRSyntaxError, match="unknown selection strategy"):
            parse_query("PATTERN SEQ(A a) USING SOMETIMES")

    def test_partition_by(self):
        query = parse_query("PATTERN SEQ(A a) PARTITION BY symbol, region")
        assert query.partition_by == ("symbol", "region")

    def test_rank_by_directions(self):
        query = parse_query(
            "PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.x DESC, a.y ASC, a.z"
        )
        directions = [k.direction for k in query.rank_by]
        assert directions == [Direction.DESC, Direction.ASC, Direction.ASC]

    def test_limit(self):
        assert parse_query("PATTERN SEQ(A a) WITHIN 5 EVENTS LIMIT 7").limit == 7

    @pytest.mark.parametrize("bad", ["-1", "2.5"])
    def test_invalid_limit(self, bad):
        with pytest.raises(CEPRSyntaxError):
            parse_query(f"PATTERN SEQ(A a) LIMIT {bad}")

    def test_limit_zero_parses(self):
        # Accepted by the grammar so the analyzer can point at the clause
        # (CEPR303); rejected later by semantic analysis.
        assert parse_query("PATTERN SEQ(A a) LIMIT 0").limit == 0

    def test_emit_on_window_close(self):
        query = parse_query("PATTERN SEQ(A a) WITHIN 5 EVENTS EMIT ON WINDOW CLOSE")
        assert query.emit.kind is EmitKind.ON_WINDOW_CLOSE

    def test_emit_eager(self):
        assert parse_query("PATTERN SEQ(A a) EMIT EAGER").emit.kind is EmitKind.EAGER

    def test_emit_every_events(self):
        emit = parse_query("PATTERN SEQ(A a) EMIT EVERY 10 EVENTS").emit
        assert emit.kind is EmitKind.EVERY
        assert emit.period == 10 and emit.period_kind is WindowKind.COUNT

    def test_emit_every_seconds(self):
        emit = parse_query("PATTERN SEQ(A a) EMIT EVERY 5 SECONDS").emit
        assert emit.period == 5.0 and emit.period_kind is WindowKind.TIME

    def test_duplicate_clause_rejected(self):
        with pytest.raises(CEPRSyntaxError, match="duplicate WHERE"):
            parse_query("PATTERN SEQ(A a) WHERE a.x > 1 WHERE a.y > 1")

    def test_clauses_in_any_order(self):
        query = parse_query(
            "PATTERN SEQ(A a) LIMIT 2 WITHIN 5 EVENTS RANK BY a.x WHERE a.x > 0"
        )
        assert query.limit == 2 and query.window is not None
        assert query.where is not None and len(query.rank_by) == 1

    def test_trailing_garbage(self):
        with pytest.raises(CEPRSyntaxError, match="expected a clause keyword"):
            parse_query("PATTERN SEQ(A a) bogus")


class TestExpressions:
    def test_attr_ref(self):
        assert parse_expr("a.price > 1") == Binary(
            BinaryOp.GT, AttrRef("a", "price"), Literal(1)
        )

    def test_equality_spellings(self):
        assert parse_expr("a.x = 1") == parse_expr("a.x == 1")
        assert parse_expr("a.x != 1") == parse_expr("a.x <> 1")

    def test_arithmetic_precedence(self):
        expr = parse_expr("a.x + a.y * 2 > 0")
        assert isinstance(expr.left, Binary) and expr.left.op is BinaryOp.ADD
        assert expr.left.right.op is BinaryOp.MUL

    def test_parentheses_override(self):
        expr = parse_expr("(a.x + a.y) * 2 > 0")
        assert expr.left.op is BinaryOp.MUL
        assert expr.left.left.op is BinaryOp.ADD

    def test_boolean_precedence_and_binds_tighter(self):
        expr = parse_expr("a.x > 1 OR a.y > 2 AND a.z > 3")
        assert expr.op is BinaryOp.OR
        assert expr.right.op is BinaryOp.AND

    def test_not(self):
        expr = parse_expr("NOT a.x > 1")
        assert isinstance(expr, Unary) and expr.op is UnaryOp.NOT

    def test_unary_minus(self):
        expr = parse_expr("-a.x < 0")
        assert isinstance(expr.left, Unary) and expr.left.op is UnaryOp.NEG

    def test_string_literal(self):
        expr = parse_expr("a.name == 'ACME'")
        assert expr.right == Literal("ACME")

    def test_boolean_literals(self):
        assert parse_expr("TRUE") == Literal(True)
        assert parse_expr("false") == Literal(False)

    def test_aggregate_with_attr(self):
        expr = parse_expr("avg(a.price) > 1")
        assert expr.left == Aggregate("avg", "a", "price")

    def test_count_bare_variable(self):
        expr = parse_expr("count(a) > 1")
        assert expr.left == Aggregate("count", "a", None)

    def test_sum_requires_attr(self):
        with pytest.raises(CEPRSyntaxError, match="expects v.attr"):
            parse_expr("sum(a) > 1")

    def test_prev(self):
        expr = parse_expr("a.x > prev(a.x)")
        assert expr.right == PrevRef("a", "x")

    def test_prev_requires_attr_ref(self):
        with pytest.raises(CEPRSyntaxError, match="prev"):
            parse_expr("prev(1) > 0")

    def test_duration(self):
        assert parse_expr("duration() < 5").left == FuncCall("duration", ())

    def test_timestamp_of_var(self):
        expr = parse_expr("timestamp(a) > 0")
        assert expr.left == FuncCall("timestamp", (VarRef("a"),))

    def test_abs(self):
        expr = parse_expr("abs(a.x - 1) > 0")
        assert isinstance(expr.left, FuncCall) and expr.left.name == "abs"

    def test_min2(self):
        expr = parse_expr("min2(a.x, a.y) > 0")
        assert expr.left.name == "min2" and len(expr.left.args) == 2

    def test_wrong_arity(self):
        with pytest.raises(CEPRSyntaxError, match="takes 1 argument"):
            parse_expr("abs(a.x, a.y) > 0")

    def test_unknown_function(self):
        with pytest.raises(CEPRSyntaxError, match="unknown function"):
            parse_expr("frobnicate(a.x) > 0")

    def test_modulo(self):
        expr = parse_expr("a.x % 2 == 0")
        assert expr.left.op is BinaryOp.MOD

    def test_left_associativity_of_subtraction(self):
        expr = parse_expr("a.x - a.y - a.z > 0")
        # (a.x - a.y) - a.z
        assert expr.left.left.op is BinaryOp.SUB
