"""The Diagnostic record type and its helpers."""

import pytest

from repro.language.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    Severity,
    has_errors,
    max_severity,
)


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("CEPR999", Severity.ERROR, "query", "nope")

    def test_title_comes_from_catalogue(self):
        d = Diagnostic("CEPR301", Severity.WARNING, "PATTERN Sell b", "unused")
        assert d.title == DIAGNOSTIC_CODES["CEPR301"]

    def test_format_without_hint(self):
        d = Diagnostic("CEPR201", Severity.ERROR, "WHERE a.x < 5", "contradiction")
        assert d.format() == "error   CEPR201  [WHERE a.x < 5] contradiction"

    def test_format_with_hint(self):
        d = Diagnostic(
            "CEPR201", Severity.ERROR, "WHERE a.x < 5", "contradiction",
            hint="drop one side",
        )
        assert d.format().endswith("\n        hint: drop one side")

    def test_to_dict_omits_missing_hint(self):
        d = Diagnostic("CEPR202", Severity.WARNING, "WHERE a.x >= 0", "tautology")
        payload = d.to_dict()
        assert payload["code"] == "CEPR202"
        assert payload["severity"] == "warning"
        assert "hint" not in payload

    def test_to_dict_includes_hint(self):
        d = Diagnostic(
            "CEPR202", Severity.WARNING, "WHERE a.x >= 0", "tautology",
            hint="remove it",
        )
        assert d.to_dict()["hint"] == "remove it"


class TestSeverityHelpers:
    def _diags(self, *severities):
        return [
            Diagnostic("CEPR202", severity, "query", "m") for severity in severities
        ]

    def test_max_severity(self):
        diags = self._diags(Severity.INFO, Severity.ERROR, Severity.WARNING)
        assert max_severity(diags) is Severity.ERROR

    def test_max_severity_empty(self):
        assert max_severity([]) is None

    def test_has_errors(self):
        assert has_errors(self._diags(Severity.WARNING, Severity.ERROR))
        assert not has_errors(self._diags(Severity.WARNING, Severity.INFO))

    def test_severity_rank_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank

    def test_catalogue_codes_are_well_formed(self):
        for code in DIAGNOSTIC_CODES:
            assert code.startswith("CEPR") and len(code) == 7
