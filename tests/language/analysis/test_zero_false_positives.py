"""Zero-false-positive sweep: the analyzer stays quiet on known-good queries.

Every CEPR-QL query embedded in ``examples/`` and ``benchmarks/`` is a
working, reviewed query; the analyzer must not raise errors or warnings on
any of them (informational shardability notes are fine).  Queries are
extracted from string literals in the sources; f-string templates (those
containing ``{``) are skipped, but the benchmark query *factories* are
invoked directly so their rendered output is swept too.
"""

import re
import sys
from pathlib import Path

import pytest

from repro.language.analysis import Severity, lint_text

REPO_ROOT = Path(__file__).resolve().parents[3]

_STRING_LITERAL = re.compile(r'"""(.*?)"""|\'\'\'(.*?)\'\'\'|"([^"\n]*)"', re.DOTALL)


def _embedded_queries(source: str):
    for match in _STRING_LITERAL.finditer(source):
        text = next(group for group in match.groups() if group is not None)
        if "PATTERN" not in text or "SEQ(" not in text:
            continue
        if "{" in text:  # f-string template; placeholders are not CEPR-QL
            continue
        yield text


def _corpus():
    cases = []
    for directory in ("examples", "benchmarks"):
        for path in sorted((REPO_ROOT / directory).glob("*.py")):
            source = path.read_text()
            for i, query in enumerate(_embedded_queries(source)):
                cases.append(pytest.param(query, id=f"{path.name}:{i}"))
    return cases


def _factory_queries():
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import common
    finally:
        sys.path.pop(0)
    return [
        pytest.param(common.stock_rank_query(), id="stock_rank_query"),
        pytest.param(common.stock_rank_query(k=None), id="stock_rank_query-unlimited"),
        pytest.param(common.generic_rank_query(), id="generic_rank_query"),
        pytest.param(common.kleene_rank_query(), id="kleene_rank_query"),
    ]


def _significant(query):
    return [
        d for d in lint_text(query) if d.severity is not Severity.INFO
    ]


class TestNoFalsePositives:
    @pytest.mark.parametrize("query", _corpus())
    def test_embedded_queries_are_clean(self, query):
        assert _significant(query) == []

    @pytest.mark.parametrize("query", _factory_queries())
    def test_benchmark_factories_are_clean(self, query):
        assert _significant(query) == []

    def test_sweep_found_queries(self):
        # Guard against the extractor silently matching nothing.
        assert len(_corpus()) >= 10
