"""Golden corpus: known-bad queries must produce exactly these diagnostics.

Each case pins the analyzer's output down to (code, span) pairs, so any
change in what a check fires on — or where it points — shows up here.
Informational diagnostics (the CEPR4xx shardability certificate) are
excluded from the exact-match assertion; they are covered by
``test_shardability.py``.
"""

import pytest

from repro.events.schema import Domain, EventSchema, SchemaRegistry
from repro.language.analysis import Severity, lint_text

REGISTRY = SchemaRegistry(
    [
        EventSchema.build(
            "Buy", symbol="str", price=("float", Domain(0, 10000)), urgent="bool"
        ),
        EventSchema.build("Sell", symbol="str", price="float"),
        EventSchema.build("Cancel", symbol="str"),
    ]
)

# (name, query, use_schema, expected {(code, span)})
CORPUS = [
    (
        "syntax-error",
        "PATTERN SEQ(",
        False,
        {("CEPR001", "query")},
    ),
    (
        "semantic-unbound-variable",
        "PATTERN SEQ(Buy a) WHERE z.price > 5",
        False,
        {("CEPR002", "query")},
    ),
    (
        "unknown-attribute",
        "PATTERN SEQ(Buy a) WHERE a.sym > 5",
        True,
        {("CEPR101", "WHERE a.sym > 5")},
    ),
    (
        "comparison-type-mismatch",
        "PATTERN SEQ(Buy a) WHERE a.symbol > 5",
        True,
        {("CEPR102", "WHERE a.symbol > 5")},
    ),
    (
        "non-numeric-arithmetic",
        "PATTERN SEQ(Buy a) WHERE a.symbol + 1 > 2",
        True,
        {("CEPR103", "WHERE a.symbol + 1 > 2")},
    ),
    (
        "non-numeric-rank-key",
        "PATTERN SEQ(Buy a) WHERE a.price > 0 WITHIN 10 EVENTS "
        "RANK BY a.symbol DESC LIMIT 5",
        True,
        {("CEPR104", "RANK BY a.symbol")},
    ),
    (
        "non-boolean-predicate",
        "PATTERN SEQ(Buy a) WHERE a.price + 1",
        True,
        {("CEPR105", "WHERE a.price + 1")},
    ),
    (
        "mixed-type-equality",
        "PATTERN SEQ(Buy a) WHERE a.price == 'cheap'",
        True,
        {("CEPR106", "WHERE a.price == 'cheap'")},
    ),
    (
        "non-numeric-function-argument",
        "PATTERN SEQ(Buy a) WHERE sqrt(a.symbol) > 1",
        True,
        {("CEPR107", "WHERE sqrt(a.symbol) > 1")},
    ),
    (
        "boolean-ordering",
        "PATTERN SEQ(Buy a, Sell b) WHERE (a.price > 1) > (b.price > 2)",
        True,
        {("CEPR108", "WHERE (a.price > 1) > (b.price > 2)")},
    ),
    (
        "contradictory-predicates",
        "PATTERN SEQ(Buy a) WHERE a.price > 10 AND a.price < 5",
        False,
        {("CEPR201", "WHERE a.price < 5")},
    ),
    (
        "tautology-against-domain",
        "PATTERN SEQ(Buy a) WHERE a.price >= 0",
        True,
        {("CEPR202", "WHERE a.price >= 0")},
    ),
    (
        "constant-true-predicate",
        "PATTERN SEQ(Buy a) WHERE 1 < 2 AND a.price > 0",
        False,
        {("CEPR203", "WHERE 1 < 2")},
    ),
    (
        "constant-false-predicate",
        "PATTERN SEQ(Buy a) WHERE 1 > 2 AND a.price > 0",
        False,
        {("CEPR204", "WHERE 1 > 2")},
    ),
    (
        "domain-contradiction",
        "PATTERN SEQ(Buy a) WHERE a.price > 20000",
        True,
        {("CEPR205", "WHERE a.price > 20000")},
    ),
    (
        "constant-division-by-zero",
        "PATTERN SEQ(Buy a) WHERE a.price / 0 > 1",
        False,
        {("CEPR206", "WHERE a.price / 0 > 1")},
    ),
    (
        "unused-variable",
        "PATTERN SEQ(Buy a, Sell b) WHERE a.price > 5",
        False,
        {("CEPR301", "PATTERN Sell b")},
    ),
    (
        "dead-negation-under-strict",
        "PATTERN SEQ(Buy a, NOT Cancel c, Sell b) "
        "WHERE a.price > 0 AND b.price > 0 AND c.symbol == 'X' USING STRICT",
        False,
        {("CEPR302", "NOT Cancel c")},
    ),
    (
        "unsatisfiable-negation-predicates",
        "PATTERN SEQ(Buy a, NOT Cancel c, Sell b) "
        "WHERE a.price > 0 AND b.price > 0 AND c.price > 10 AND c.price < 5 "
        "USING SKIP_TILL_ANY",
        False,
        {("CEPR302", "WHERE c.price < 5")},
    ),
    (
        "zero-limit",
        "PATTERN SEQ(Buy a) WITHIN 5 EVENTS LIMIT 0",
        False,
        {("CEPR303", "LIMIT 0")},
    ),
    (
        "window-too-short",
        "PATTERN SEQ(Buy a, Sell b) WHERE a.price > 0 AND b.price > 0 "
        "WITHIN 1 EVENTS",
        False,
        {("CEPR304", "WITHIN 1 EVENTS")},
    ),
    (
        "duplicate-predicate",
        "PATTERN SEQ(Buy a) WHERE a.price > 5 AND a.price > 5",
        False,
        {("CEPR305", "WHERE a.price > 5")},
    ),
    (
        "constant-rank-key",
        "PATTERN SEQ(Buy a) WHERE a.price > 0 WITHIN 10 EVENTS "
        "RANK BY 1 + 2 ASC LIMIT 5",
        False,
        {("CEPR306", "RANK BY 1 + 2")},
    ),
    (
        "duplicate-rank-key",
        "PATTERN SEQ(Buy a) WHERE a.price > 0 WITHIN 10 EVENTS "
        "RANK BY a.price DESC, a.price ASC LIMIT 5",
        False,
        {("CEPR307", "RANK BY a.price")},
    ),
]


def _significant(diagnostics):
    return {
        (d.code, d.span)
        for d in diagnostics
        if d.severity is not Severity.INFO
    }


class TestGoldenCorpus:
    @pytest.mark.parametrize(
        "query,use_schema,expected",
        [case[1:] for case in CORPUS],
        ids=[case[0] for case in CORPUS],
    )
    def test_exact_codes_and_spans(self, query, use_schema, expected):
        registry = REGISTRY if use_schema else None
        assert _significant(lint_text(query, registry)) == expected

    def test_corpus_is_large_enough(self):
        assert len(CORPUS) >= 20

    def test_every_error_code_family_is_covered(self):
        covered = {code for case in CORPUS for code, _span in case[3]}
        for family in ("CEPR0", "CEPR1", "CEPR2", "CEPR3"):
            assert any(code.startswith(family) for code in covered)


class TestCleanQueries:
    """The canonical well-formed queries produce zero diagnostics."""

    CLEAN = [
        "PATTERN SEQ(Buy a, Sell b) "
        "WHERE a.symbol == b.symbol AND b.price > a.price "
        "WITHIN 50 EVENTS USING SKIP_TILL_ANY PARTITION BY symbol "
        "RANK BY b.price - a.price DESC LIMIT 5 EMIT ON WINDOW CLOSE",
        "PATTERN SEQ(Buy a) WHERE a.price > 100 WITHIN 10 EVENTS "
        "PARTITION BY symbol EMIT ON WINDOW CLOSE",
    ]

    @pytest.mark.parametrize("query", CLEAN)
    def test_no_diagnostics_at_all(self, query):
        assert lint_text(query, REGISTRY) == []
