"""The shardability certificate: decision table and blocker codes.

``certify_shardability`` replaced the runner-private ``_exactly_shardable``
predicate; these tests pin the decision table and, unlike the old boolean,
the *reason* each solo query cannot shard.
"""

import pytest

from repro.language.analysis.shardability import certify_shardability
from repro.language.parser import parse_query
from repro.language.semantics import analyze


def certify(text):
    return certify_shardability(analyze(parse_query(text)))


BASE = (
    "PATTERN SEQ(Buy a, Sell b) WHERE a.symbol == b.symbol "
    "WITHIN 50 EVENTS PARTITION BY symbol "
)


def blocker_codes(report):
    return [d.code for d in report.blockers]


class TestShardable:
    def test_partitioned_tumbling_is_shardable(self):
        report = certify(BASE + "RANK BY b.price DESC LIMIT 5 EMIT ON WINDOW CLOSE")
        assert report.shardable
        assert report.mode == "sharded-tumbling"
        assert report.blockers == ()

    def test_partitioned_eager_unranked_is_passthrough(self):
        report = certify(
            "PATTERN SEQ(Buy a, Sell b) WHERE a.symbol == b.symbol "
            "PARTITION BY symbol"
        )
        assert report.shardable
        assert report.mode == "sharded-passthrough"

    def test_describe_shardable(self):
        report = certify(BASE + "EMIT ON WINDOW CLOSE")
        assert report.describe() == ["exactly shardable (sharded-tumbling)"]


class TestSoloBlockers:
    def test_no_partition_by(self):
        report = certify(
            "PATTERN SEQ(Buy a, Sell b) WHERE a.symbol == b.symbol "
            "WITHIN 50 EVENTS EMIT ON WINDOW CLOSE"
        )
        assert not report.shardable
        assert report.mode == "solo"
        assert blocker_codes(report) == ["CEPR401"]

    def test_trailing_negation(self):
        report = certify(
            "PATTERN SEQ(Buy a, Sell b, NOT Cancel c) "
            "WHERE a.symbol == b.symbol WITHIN 50 EVENTS "
            "PARTITION BY symbol EMIT ON WINDOW CLOSE"
        )
        assert not report.shardable
        assert "CEPR402" in blocker_codes(report)

    def test_eager_ranked_sliding_emission(self):
        report = certify(BASE + "RANK BY b.price DESC LIMIT 5 EMIT EAGER")
        assert not report.shardable
        assert blocker_codes(report) == ["CEPR403"]

    def test_emit_every_sliding_emission(self):
        report = certify(BASE + "EMIT EVERY 10 EVENTS")
        assert not report.shardable
        assert blocker_codes(report) == ["CEPR403"]

    def test_eager_unranked_with_global_limit_and_window(self):
        report = certify(
            "PATTERN SEQ(Buy a, Sell b) WHERE a.symbol == b.symbol "
            "WITHIN 50 EVENTS PARTITION BY symbol LIMIT 5"
        )
        assert not report.shardable
        assert blocker_codes(report) == ["CEPR404"]

    def test_own_yield(self):
        report = certify(BASE + "EMIT ON WINDOW CLOSE YIELD Spike(sym = a.symbol)")
        assert not report.shardable
        assert blocker_codes(report) == ["CEPR405"]

    def test_blockers_accumulate(self):
        report = certify(
            "PATTERN SEQ(Buy a, Sell b, NOT Cancel c) "
            "WHERE a.symbol == b.symbol WITHIN 50 EVENTS EMIT ON WINDOW CLOSE"
        )
        codes = blocker_codes(report)
        assert "CEPR401" in codes and "CEPR402" in codes

    def test_blockers_are_info_severity(self):
        report = certify(BASE + "RANK BY b.price DESC LIMIT 5 EMIT EAGER")
        assert all(d.severity.value == "info" for d in report.blockers)
        assert all(d.span == "query" for d in report.blockers)

    def test_describe_solo_lists_reasons(self):
        report = certify(BASE + "RANK BY b.price DESC LIMIT 5 EMIT EAGER")
        described = report.describe()
        assert described[0] == "solo (not exactly shardable):"
        assert any("CEPR403" in line for line in described[1:])


class TestExplainIntegration:
    def test_explain_renders_certificate(self):
        from repro.runtime.engine import CEPREngine

        engine = CEPREngine()
        handle = engine.register_query(BASE + "EMIT ON WINDOW CLOSE")
        assert "sharding: exactly shardable (sharded-tumbling)" in handle.explain()

    def test_explain_renders_solo_reasons(self):
        from repro.runtime.engine import CEPREngine

        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(Buy a, Sell b) WHERE a.symbol == b.symbol "
            "WITHIN 50 EVENTS EMIT ON WINDOW CLOSE"
        )
        output = handle.explain()
        assert "sharding: solo (not exactly shardable):" in output
        assert "CEPR401" in output
