"""Unit tests for the pretty-printer and its parse round-trip."""

import pytest

from repro.language.parser import parse_query
from repro.language.printer import format_expr, format_query

ROUND_TRIP_QUERIES = [
    "PATTERN SEQ(A a)",
    "PATTERN SEQ(Buy b, Sell s)",
    "PATTERN SEQ(A a, B bs+, C c)",
    "PATTERN SEQ(A a, NOT C c, B b)",
    "NAME my_query PATTERN SEQ(A a)",
    "PATTERN SEQ(A a) WHERE a.x > 1",
    "PATTERN SEQ(A a, B b) WHERE a.x + b.y * 2 >= 10 AND a.z == 'hi'",
    "PATTERN SEQ(A a) WHERE NOT (a.x > 1 OR a.y < 2)",
    "PATTERN SEQ(A as+) WHERE as.x > prev(as.x)",
    "PATTERN SEQ(A as+, B b) WHERE avg(as.x) < b.x AND count(as) >= 3",
    "PATTERN SEQ(A a) WITHIN 50 EVENTS",
    "PATTERN SEQ(A a) WITHIN 10 SECONDS",
    "PATTERN SEQ(A a) USING STRICT",
    "PATTERN SEQ(A a) USING SKIP_TILL_ANY",
    "PATTERN SEQ(A a) PARTITION BY symbol, region",
    "PATTERN SEQ(A a, B b) WITHIN 9 EVENTS RANK BY b.x - a.x DESC, a.x ASC",
    "PATTERN SEQ(A a) WITHIN 5 EVENTS LIMIT 3",
    "PATTERN SEQ(A a) WITHIN 5 EVENTS EMIT ON WINDOW CLOSE",
    "PATTERN SEQ(A a) EMIT EVERY 10 EVENTS",
    "PATTERN SEQ(A a) EMIT EVERY 5 SECONDS",
    "PATTERN SEQ(A a) EMIT EAGER",
    "PATTERN SEQ(A a) WHERE abs(a.x - 1) > 0.5",
    "PATTERN SEQ(A a) WHERE duration() < 5 AND timestamp(a) > 0",
    "PATTERN SEQ(A a) WHERE -a.x < 0",
    "PATTERN SEQ(A a) WHERE a.x % 2 == 0",
    "PATTERN SEQ(A a) WHERE a.x - 1 - 2 == 0",
    "PATTERN SEQ(A a) WHERE a.x - (1 - 2) == 0",
    "PATTERN SEQ(A a) YIELD D(x = a.v)",
    "PATTERN SEQ(Buy b, Sell s) YIELD Trade(symbol = b.symbol, profit = s.price - b.price, held = duration())",
    "PATTERN SEQ(A as+) WITHIN 5 EVENTS RANK BY avg(as.x) DESC YIELD Peak(top = max(as.x))",
]


class TestRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIP_QUERIES)
    def test_parse_format_parse_is_identity(self, text):
        ast = parse_query(text)
        formatted = format_query(ast)
        assert parse_query(formatted) == ast

    def test_format_is_stable(self):
        ast = parse_query(ROUND_TRIP_QUERIES[5])
        once = format_query(ast)
        assert format_query(parse_query(once)) == once


class TestFormatting:
    def test_minimal_parentheses(self):
        ast = parse_query("PATTERN SEQ(A a) WHERE a.x + a.y * 2 > 0")
        assert format_expr(ast.where) == "a.x + a.y * 2 > 0"

    def test_necessary_parentheses_kept(self):
        ast = parse_query("PATTERN SEQ(A a) WHERE (a.x + a.y) * 2 > 0")
        assert "(a.x + a.y) * 2" in format_expr(ast.where)

    def test_string_escaping(self):
        ast = parse_query("PATTERN SEQ(A a) WHERE a.s == 'it''s'")
        formatted = format_expr(ast.where)
        assert "'it''s'" in formatted
        assert parse_query(f"PATTERN SEQ(A a) WHERE {formatted}") == ast

    def test_float_literals_stay_floats(self):
        ast = parse_query("PATTERN SEQ(A a) WHERE a.x > 2.0")
        reparsed = parse_query(format_query(ast))
        assert reparsed == ast

    def test_booleans(self):
        ast = parse_query("PATTERN SEQ(A a) WHERE a.flag == TRUE")
        assert "TRUE" in format_expr(ast.where)

    def test_query_layout_one_clause_per_line(self):
        ast = parse_query(
            "PATTERN SEQ(A a) WHERE a.x > 0 WITHIN 5 EVENTS "
            "RANK BY a.x DESC LIMIT 2 EMIT ON WINDOW CLOSE"
        )
        lines = format_query(ast).splitlines()
        assert lines[0].startswith("PATTERN")
        assert any(line.startswith("RANK BY") for line in lines)
        assert lines[-1] == "EMIT ON WINDOW CLOSE"

    def test_kleene_and_negation_rendering(self):
        ast = parse_query("PATTERN SEQ(A a, B bs+, NOT C c)")
        text = format_query(ast)
        assert "B bs+" in text and "NOT C c" in text
