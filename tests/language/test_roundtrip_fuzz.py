"""Parser/printer round-trip fuzzing.

The printer's contract is that its output is *canonical*: for any valid
query text ``q``, ``format_query(parse_query(q))`` is a fixed point of
parse-then-print.  These tests generate a few hundred seeded random
queries spanning the whole grammar — patterns with Kleene and negation,
nested expressions with every operator, windows, strategies, partitions,
ranking, emission policies, and YIELD — and assert the fixed point both
at the text level and at the AST level.  A printer that drops
parentheses, mangles literals, or forgets a clause fails here before it
misleads the monitor or corrupts a saved query.
"""

import random

import pytest

from repro.language.parser import parse_query
from repro.language.printer import format_query

EVENT_TYPES = ["Alpha", "Beta", "Gamma", "Delta", "Omega"]
ATTRS = ["price", "volume", "x", "y", "grp"]
STRATEGIES = ["STRICT", "SKIP_TILL_NEXT", "SKIP_TILL_ANY"]
AGGREGATES = ["count", "sum", "avg", "min", "max", "first", "last", "len"]
FUNCS = [("abs", 1), ("round", 1), ("sqrt", 1), ("min2", 2), ("max2", 2)]
COMPARATORS = ["==", "!=", "<", "<=", ">", ">="]
ARITH = ["+", "-", "*", "/", "%"]


class QueryFuzzer:
    """Grammar-directed random query-text generator."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.variables: list[str] = []
        self.kleene_vars: list[str] = []

    # -- expressions ------------------------------------------------------------

    def atom(self) -> str:
        roll = self.rng.random()
        if roll < 0.45:
            return f"{self.rng.choice(self.variables)}.{self.rng.choice(ATTRS)}"
        if roll < 0.60:
            return str(self.rng.randint(0, 1000))
        if roll < 0.72:
            return f"{self.rng.uniform(0, 100):.2f}"
        if roll < 0.80:
            text = self.rng.choice(["ACME", "it's", "x y", ""])
            return "'" + text.replace("'", "''") + "'"
        if roll < 0.84:
            return self.rng.choice(["TRUE", "FALSE"])
        if roll < 0.90 and self.kleene_vars:
            var = self.rng.choice(self.kleene_vars)
            func = self.rng.choice(AGGREGATES)
            if func in ("count", "len"):
                return f"{func}({var})"
            return f"{func}({var}.{self.rng.choice(ATTRS)})"
        if roll < 0.95:
            var = self.rng.choice(self.variables)
            return f"prev({var}.{self.rng.choice(ATTRS)})"
        name, arity = self.rng.choice(FUNCS)
        args = ", ".join(self.arith(1) for _ in range(arity))
        return f"{name}({args})"

    def arith(self, depth: int) -> str:
        if depth <= 0 or self.rng.random() < 0.4:
            atom = self.atom()
            if self.rng.random() < 0.15:
                return f"-({atom})" if atom.startswith("-") else f"-{atom}"
            return atom
        left = self.arith(depth - 1)
        right = self.arith(depth - 1)
        text = f"{left} {self.rng.choice(ARITH)} {right}"
        return f"({text})" if self.rng.random() < 0.3 else text

    def comparison(self, depth: int) -> str:
        left = self.arith(depth)
        right = self.arith(depth - 1)
        return f"{left} {self.rng.choice(COMPARATORS)} {right}"

    def boolean(self, depth: int) -> str:
        if depth <= 0 or self.rng.random() < 0.5:
            text = self.comparison(max(depth, 1))
            if self.rng.random() < 0.2:
                return f"NOT ({text})" if self.rng.random() < 0.5 else f"NOT {text}"
            return text
        left = self.boolean(depth - 1)
        right = self.boolean(depth - 1)
        op = self.rng.choice(["AND", "OR"])
        text = f"{left} {op} {right}"
        return f"({text})" if self.rng.random() < 0.3 else text

    # -- clauses ----------------------------------------------------------------

    def pattern(self) -> str:
        count = self.rng.randint(1, 4)
        elements = []
        self.variables = []
        self.kleene_vars = []
        for index in range(count):
            var = f"v{index}"
            event_type = self.rng.choice(EVENT_TYPES)
            # The first element must be positive (the parser allows a
            # leading NOT but semantics reject it, and negated elements
            # cannot be Kleene).
            negated = index > 0 and self.rng.random() < 0.25
            kleene = not negated and self.rng.random() < 0.25
            text = f"{event_type} {var}"
            if negated:
                text = f"NOT {text}"
            if kleene:
                text += "+"
                self.kleene_vars.append(var)
            else:
                self.variables.append(var)
            elements.append(text)
        if not self.variables:  # ensure at least one singleton to reference
            self.variables.append(self.kleene_vars[-1])
        return f"PATTERN SEQ({', '.join(elements)})"

    def query(self) -> str:
        lines = [self.pattern()]
        if self.rng.random() < 0.4:
            lines.insert(0, f"NAME q_{self.rng.randint(0, 999)}")
        if self.rng.random() < 0.8:
            lines.append(f"WHERE {self.boolean(2)}")
        has_window = self.rng.random() < 0.8
        if has_window:
            if self.rng.random() < 0.5:
                lines.append(f"WITHIN {self.rng.randint(1, 500)} EVENTS")
            else:
                span = self.rng.choice(["5", "30", "2.5", "0.25"])
                lines.append(f"WITHIN {span} SECONDS")
        if self.rng.random() < 0.4:
            lines.append(f"USING {self.rng.choice(STRATEGIES)}")
        if self.rng.random() < 0.4:
            attrs = self.rng.sample(ATTRS, self.rng.randint(1, 2))
            lines.append("PARTITION BY " + ", ".join(attrs))
        is_ranked = self.rng.random() < 0.6
        if is_ranked:
            keys = ", ".join(
                f"{self.arith(2)} {self.rng.choice(['ASC', 'DESC'])}"
                for _ in range(self.rng.randint(1, 2))
            )
            lines.append(f"RANK BY {keys}")
        if self.rng.random() < 0.5:
            lines.append(f"LIMIT {self.rng.randint(1, 50)}")
        if self.rng.random() < 0.5:
            roll = self.rng.random()
            if roll < 0.34 and has_window:
                lines.append("EMIT ON WINDOW CLOSE")
            elif roll < 0.67:
                lines.append("EMIT EAGER")
            elif self.rng.random() < 0.5:
                lines.append(f"EMIT EVERY {self.rng.randint(1, 100)} EVENTS")
            else:
                lines.append(f"EMIT EVERY {self.rng.randint(1, 60)} SECONDS")
        if self.rng.random() < 0.25:
            assignments = ", ".join(
                f"{attr} = {self.arith(1)}"
                for attr in self.rng.sample(ATTRS, self.rng.randint(1, 2))
            )
            lines.append(f"YIELD Derived({assignments})")
        return "\n".join(lines)


@pytest.mark.parametrize("seed", range(200))
def test_parse_print_parse_is_fixed_point(seed):
    text = QueryFuzzer(seed).query()
    try:
        first_ast = parse_query(text)
    except Exception as exc:  # generator bug, not a printer bug
        pytest.fail(f"fuzzer emitted unparseable query (seed={seed}):\n{text}\n{exc}")
    printed = format_query(first_ast)
    second_ast = parse_query(printed)
    assert second_ast == first_ast, f"seed={seed}\noriginal:\n{text}\nprinted:\n{printed}"
    reprinted = format_query(second_ast)
    assert reprinted == printed, f"seed={seed}\nfirst:\n{printed}\nsecond:\n{reprinted}"


def test_fuzzer_covers_the_grammar():
    """Guard the fuzzer itself: across all seeds, every major clause and
    construct must actually appear (a silently narrowed generator would
    turn the 200 round-trip cases into noise)."""
    corpus = "\n".join(QueryFuzzer(seed).query() for seed in range(200))
    for needle in [
        "NAME ",
        "WHERE ",
        "WITHIN ",
        " EVENTS",
        " SECONDS",
        "USING ",
        "PARTITION BY ",
        "RANK BY ",
        "LIMIT ",
        "EMIT ON WINDOW CLOSE",
        "EMIT EAGER",
        "EMIT EVERY ",
        "YIELD ",
        "NOT ",
        "+,",  # a Kleene element followed by another element
        "prev(",
        "AND",
        "OR",
    ]:
        assert needle in corpus, f"fuzzer never generated {needle!r}"
