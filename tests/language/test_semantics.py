"""Unit tests for semantic analysis: predicate decomposition and validation."""

import pytest

from repro.events.schema import EventSchema, SchemaRegistry
from repro.language.ast_nodes import Direction, EmitKind, SelectionStrategy
from repro.language.errors import CEPRSemanticError
from repro.language.parser import parse_query
from repro.language.semantics import analyze


def analyze_text(text, registry=None):
    return analyze(parse_query(text), registry)


class TestVariableResolution:
    def test_positions(self):
        analyzed = analyze_text("PATTERN SEQ(A a, B bs+, C c)")
        assert [v.name for v in analyzed.positives] == ["a", "bs", "c"]
        assert analyzed.variables["bs"].is_kleene
        assert analyzed.variables["c"].position == 2

    def test_duplicate_variable(self):
        with pytest.raises(CEPRSemanticError, match="duplicate pattern variable"):
            analyze_text("PATTERN SEQ(A x, B x)")

    def test_leading_negation_rejected(self):
        with pytest.raises(CEPRSemanticError, match="must follow at least one"):
            analyze_text("PATTERN SEQ(NOT C c, A a)")

    def test_all_negative_pattern_rejected(self):
        with pytest.raises(CEPRSemanticError):
            analyze_text("PATTERN SEQ(NOT C c)")

    def test_internal_negation_positions(self):
        analyzed = analyze_text("PATTERN SEQ(A a, NOT C c, B b)")
        negation = analyzed.negations[0]
        assert negation.after == 0 and negation.before == 1
        assert not negation.before_is_end

    def test_trailing_negation_requires_window(self):
        with pytest.raises(CEPRSemanticError, match="requires a WITHIN window"):
            analyze_text("PATTERN SEQ(A a, NOT C c)")

    def test_trailing_negation_with_window(self):
        analyzed = analyze_text("PATTERN SEQ(A a, NOT C c) WITHIN 10 EVENTS")
        assert analyzed.negations[0].before_is_end

    def test_relevant_types_include_negations(self):
        analyzed = analyze_text("PATTERN SEQ(A a, NOT C c, B b)")
        assert analyzed.relevant_types == {"A", "B", "C"}


class TestPredicateDecomposition:
    def test_single_var_predicate_anchored_at_var(self):
        analyzed = analyze_text("PATTERN SEQ(A a, B b) WHERE a.x > 1")
        assert len(analyzed.predicates_at["a"]) == 1
        assert not analyzed.predicates_at["b"]

    def test_cross_var_predicate_anchored_at_latest(self):
        analyzed = analyze_text("PATTERN SEQ(A a, B b) WHERE a.x < b.x")
        assert len(analyzed.predicates_at["b"]) == 1

    def test_conjuncts_split(self):
        analyzed = analyze_text(
            "PATTERN SEQ(A a, B b) WHERE a.x > 1 AND b.x > 2 AND a.x < b.x"
        )
        assert len(analyzed.predicates_at["a"]) == 1
        assert len(analyzed.predicates_at["b"]) == 2

    def test_disjunction_not_split(self):
        analyzed = analyze_text("PATTERN SEQ(A a, B b) WHERE a.x > 1 OR b.x > 2")
        assert len(analyzed.predicates_at["b"]) == 1
        assert not analyzed.predicates_at["a"]

    def test_kleene_attr_ref_is_incremental(self):
        analyzed = analyze_text("PATTERN SEQ(A a, B bs+) WHERE bs.x > a.x")
        specs = analyzed.predicates_at["bs"]
        assert len(specs) == 1 and specs[0].incremental

    def test_prev_is_incremental(self):
        analyzed = analyze_text("PATTERN SEQ(B bs+) WHERE bs.x > prev(bs.x)")
        assert analyzed.predicates_at["bs"][0].incremental

    def test_incremental_forward_reference_rejected(self):
        with pytest.raises(CEPRSemanticError, match="references later variable"):
            analyze_text("PATTERN SEQ(A as+, B b) WHERE as.x < b.x")

    def test_two_kleene_per_element_refs_rejected(self):
        with pytest.raises(CEPRSemanticError, match="at most one Kleene"):
            analyze_text("PATTERN SEQ(A as+, B bs+) WHERE as.x < bs.x")

    def test_aggregate_of_kleene_anchored_at_next_var(self):
        analyzed = analyze_text("PATTERN SEQ(A as+, B b) WHERE avg(as.x) < b.x")
        assert len(analyzed.predicates_at["b"]) == 1
        assert not analyzed.predicates_at["b"][0].incremental

    def test_aggregate_of_trailing_kleene_is_completion_predicate(self):
        analyzed = analyze_text("PATTERN SEQ(A a, B bs+) WHERE avg(bs.x) > 1")
        assert len(analyzed.completion_predicates) == 1

    def test_vacuous_constant_predicate_folded_away(self):
        analyzed = analyze_text("PATTERN SEQ(A a) WHERE 1 < 2")
        assert analyzed.completion_predicates == []
        assert not analyzed.predicates_at["a"]

    def test_false_constant_predicate_kept_as_completion(self):
        analyzed = analyze_text("PATTERN SEQ(A a) WHERE 1 > 2")
        assert len(analyzed.completion_predicates) == 1

    def test_unfoldable_constant_is_completion(self):
        # 1/0 cannot fold (it would raise); it stays, deferred to runtime.
        analyzed = analyze_text("PATTERN SEQ(A a) WHERE 1 / 0 > 1")
        assert len(analyzed.completion_predicates) == 1

    def test_duration_anchored_at_last_singleton(self):
        analyzed = analyze_text("PATTERN SEQ(A a, B b) WHERE duration() < 5")
        assert len(analyzed.predicates_at["b"]) == 1

    def test_duration_with_trailing_kleene_is_completion(self):
        analyzed = analyze_text("PATTERN SEQ(A a, B bs+) WHERE duration() < 5")
        assert len(analyzed.completion_predicates) == 1

    def test_unknown_variable_rejected(self):
        with pytest.raises(CEPRSemanticError, match="unknown pattern variable"):
            analyze_text("PATTERN SEQ(A a) WHERE zz.x > 1")

    def test_prev_on_non_kleene_rejected(self):
        with pytest.raises(CEPRSemanticError, match="is not a Kleene variable"):
            analyze_text("PATTERN SEQ(A a, B b) WHERE b.x > prev(a.x)")

    def test_timestamp_of_kleene_rejected(self):
        with pytest.raises(CEPRSemanticError, match="ambiguous"):
            analyze_text("PATTERN SEQ(A as+, B b) WHERE timestamp(as) < 5")


class TestNegationPredicates:
    def test_negation_predicate_attached_to_spec(self):
        analyzed = analyze_text(
            "PATTERN SEQ(A a, NOT C c, B b) WHERE c.x > a.x"
        )
        assert len(analyzed.negations[0].predicates) == 1
        assert not analyzed.predicates_at["a"]

    def test_negation_predicate_forward_reference_rejected(self):
        with pytest.raises(CEPRSemanticError, match="guard interval opens"):
            analyze_text("PATTERN SEQ(A a, NOT C c, B b) WHERE c.x > b.x")

    def test_two_negated_vars_rejected(self):
        with pytest.raises(CEPRSemanticError, match="at most one negated"):
            analyze_text(
                "PATTERN SEQ(A a, NOT C c, B b, NOT D d) "
                "WITHIN 5 EVENTS WHERE c.x > d.x"
            )

    def test_duration_with_negated_var_rejected(self):
        with pytest.raises(CEPRSemanticError, match="duration"):
            analyze_text(
                "PATTERN SEQ(A a, NOT C c, B b) WHERE c.x > duration()"
            )

    def test_aggregate_over_negated_rejected(self):
        with pytest.raises(CEPRSemanticError, match="negated variable"):
            analyze_text("PATTERN SEQ(A a, NOT C c, B b) WHERE avg(c.x) > 1")

    def test_kleene_mixed_with_negation_rejected(self):
        with pytest.raises(CEPRSemanticError, match="cannot mix"):
            analyze_text(
                "PATTERN SEQ(A as+, NOT C c, B b) WHERE as.x > c.x"
            )


class TestRankKeys:
    def test_compiled_keys_and_directions(self):
        analyzed = analyze_text(
            "PATTERN SEQ(A a, B b) WITHIN 5 EVENTS RANK BY b.x - a.x DESC, a.x ASC"
        )
        assert [k.direction for k in analyzed.rank_keys] == [
            Direction.DESC,
            Direction.ASC,
        ]
        assert analyzed.is_ranked

    def test_rank_requires_window(self):
        with pytest.raises(CEPRSemanticError, match="RANK BY requires a WITHIN"):
            analyze_text("PATTERN SEQ(A a) RANK BY a.x")

    def test_rank_on_negated_var_rejected(self):
        with pytest.raises(CEPRSemanticError, match="negated variable"):
            analyze_text(
                "PATTERN SEQ(A a, NOT C c, B b) WITHIN 5 EVENTS RANK BY c.x"
            )

    def test_rank_on_kleene_attr_rejected(self):
        with pytest.raises(CEPRSemanticError, match="through an aggregate"):
            analyze_text("PATTERN SEQ(A as+) WITHIN 5 EVENTS RANK BY as.x")

    def test_rank_on_kleene_aggregate_allowed(self):
        analyzed = analyze_text(
            "PATTERN SEQ(A as+) WITHIN 5 EVENTS RANK BY avg(as.x) DESC"
        )
        assert analyzed.is_ranked

    def test_prev_in_rank_rejected(self):
        with pytest.raises(CEPRSemanticError, match="prev"):
            analyze_text("PATTERN SEQ(A as+) WITHIN 5 EVENTS RANK BY prev(as.x)")

    def test_unknown_var_in_rank_rejected(self):
        with pytest.raises(CEPRSemanticError, match="unknown pattern variable"):
            analyze_text("PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY zz.x")


class TestDefaultsAndClauseInteractions:
    def test_default_strategy(self):
        analyzed = analyze_text("PATTERN SEQ(A a)")
        assert analyzed.strategy is SelectionStrategy.SKIP_TILL_NEXT

    def test_explicit_strategy_kept(self):
        analyzed = analyze_text("PATTERN SEQ(A a) USING STRICT")
        assert analyzed.strategy is SelectionStrategy.STRICT

    def test_ranked_default_emit_is_window_close(self):
        analyzed = analyze_text("PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.x")
        assert analyzed.emit.kind is EmitKind.ON_WINDOW_CLOSE

    def test_unranked_default_emit_is_eager(self):
        analyzed = analyze_text("PATTERN SEQ(A a)")
        assert analyzed.emit.kind is EmitKind.EAGER

    def test_window_close_requires_window(self):
        with pytest.raises(CEPRSemanticError, match="EMIT ON WINDOW CLOSE requires"):
            analyze_text("PATTERN SEQ(A a) EMIT ON WINDOW CLOSE")

    def test_limit_without_rank_requires_window(self):
        with pytest.raises(CEPRSemanticError, match="LIMIT requires"):
            analyze_text("PATTERN SEQ(A a) LIMIT 3")

    def test_limit_with_window_but_no_rank_allowed(self):
        analyzed = analyze_text("PATTERN SEQ(A a) WITHIN 5 EVENTS LIMIT 3")
        assert analyzed.limit == 3 and not analyzed.is_ranked

    def test_name_propagates(self):
        assert analyze_text("NAME q PATTERN SEQ(A a)").name == "q"


class TestSchemaChecks:
    def test_partition_attr_must_exist_on_all_types(self):
        registry = SchemaRegistry(
            [EventSchema.build("A", sym="str"), EventSchema.build("B", other="str")]
        )
        with pytest.raises(CEPRSemanticError, match="PARTITION BY attribute"):
            analyze_text("PATTERN SEQ(A a, B b) PARTITION BY sym", registry)

    def test_partition_ok_when_declared_everywhere(self):
        registry = SchemaRegistry(
            [EventSchema.build("A", sym="str"), EventSchema.build("B", sym="str")]
        )
        analyzed = analyze_text("PATTERN SEQ(A a, B b) PARTITION BY sym", registry)
        assert analyzed.partition_by == ("sym",)

    def test_unknown_event_types_pass_without_schema(self):
        registry = SchemaRegistry([EventSchema.build("A", sym="str")])
        analyze_text("PATTERN SEQ(A a, Z z) PARTITION BY sym", registry)
