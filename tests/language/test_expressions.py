"""Unit tests for expression compilation and evaluation."""

import pytest

from repro.events.event import Event
from repro.language.ast_nodes import (
    Aggregate,
    AttrRef,
    Binary,
    BinaryOp,
    FuncCall,
    Literal,
    PrevRef,
    Unary,
    UnaryOp,
    VarRef,
)
from repro.language.errors import EvaluationError
from repro.language.expressions import (
    EvalContext,
    VacuousPredicate,
    compile_expr,
    evaluate_predicate,
)
from repro.language.parser import parse_query


def compile_text(expr_text: str):
    """Compile an expression written as a WHERE clause."""
    query = parse_query(f"PATTERN SEQ(A a, B bs+) WHERE {expr_text}")
    return compile_expr(query.where)


def ctx(**bindings):
    return EvalContext(bindings=bindings)


class TestLeaves:
    def test_literal(self):
        assert compile_expr(Literal(42))(ctx()) == 42

    def test_attr_ref_singleton(self):
        evaluator = compile_expr(AttrRef("a", "x"))
        assert evaluator(ctx(a=Event("A", 0, x=5))) == 5

    def test_attr_ref_unbound_raises(self):
        with pytest.raises(EvaluationError, match="not bound"):
            compile_expr(AttrRef("a", "x"))(ctx())

    def test_attr_ref_missing_attr(self):
        with pytest.raises(EvaluationError, match="no attribute"):
            compile_expr(AttrRef("a", "y"))(ctx(a=Event("A", 0, x=5)))

    def test_attr_ref_on_kleene_binding_raises(self):
        with pytest.raises(EvaluationError, match="Kleene binding"):
            compile_expr(AttrRef("a", "x"))(ctx(a=[Event("A", 0, x=5)]))

    def test_attr_ref_uses_current_event(self):
        evaluator = compile_expr(AttrRef("a", "x"))
        context = EvalContext(
            bindings={}, current_var="a", current_event=Event("A", 0, x=9)
        )
        assert evaluator(context) == 9

    def test_bare_var_ref_rejected_at_compile(self):
        with pytest.raises(EvaluationError, match="not a value"):
            compile_expr(VarRef("a"))


class TestPrev:
    def test_prev_reads_last_accepted(self):
        evaluator = compile_expr(PrevRef("bs", "x"))
        context = EvalContext(
            bindings={"bs": [Event("B", 0, x=1), Event("B", 1, x=2)]},
            current_var="bs",
            current_event=Event("B", 2, x=3),
        )
        assert evaluator(context) == 2

    def test_prev_on_first_element_is_vacuous(self):
        evaluator = compile_expr(PrevRef("bs", "x"))
        context = EvalContext(
            bindings={}, current_var="bs", current_event=Event("B", 0, x=1)
        )
        with pytest.raises(VacuousPredicate):
            evaluator(context)

    def test_prev_outside_its_variable_errors(self):
        evaluator = compile_expr(PrevRef("bs", "x"))
        with pytest.raises(EvaluationError, match="only valid while binding"):
            evaluator(ctx(bs=[Event("B", 0, x=1)]))


class TestAggregates:
    def make_binding(self, *values):
        return [Event("B", i, x=v) for i, v in enumerate(values)]

    @pytest.mark.parametrize(
        "func,expected",
        [
            ("count", 3),
            ("len", 3),
            ("sum", 9.0),
            ("avg", 3.0),
            ("min", 2.0),
            ("max", 4.0),
            ("first", 2.0),
            ("last", 4.0),
        ],
    )
    def test_each_aggregate(self, func, expected):
        attr = None if func in ("count", "len") else "x"
        evaluator = compile_expr(Aggregate(func, "bs", attr))
        assert evaluator(ctx(bs=self.make_binding(2.0, 3.0, 4.0))) == expected

    def test_aggregate_over_singleton_binding(self):
        evaluator = compile_expr(Aggregate("avg", "a", "x"))
        assert evaluator(ctx(a=Event("A", 0, x=7.0))) == 7.0

    def test_empty_aggregate_in_incremental_context_is_vacuous(self):
        evaluator = compile_expr(Aggregate("avg", "bs", "x"))
        context = EvalContext(
            bindings={}, current_var="bs", current_event=Event("B", 0, x=1)
        )
        with pytest.raises(VacuousPredicate):
            evaluator(context)

    def test_empty_aggregate_elsewhere_errors(self):
        evaluator = compile_expr(Aggregate("avg", "bs", "x"))
        with pytest.raises(EvaluationError, match="empty binding"):
            evaluator(ctx())

    def test_incremental_aggregate_excludes_current(self):
        evaluator = compile_expr(Aggregate("max", "bs", "x"))
        context = EvalContext(
            bindings={"bs": self.make_binding(1.0, 2.0)},
            current_var="bs",
            current_event=Event("B", 9, x=100.0),
        )
        assert evaluator(context) == 2.0

    def test_agg_lookup_fast_path_used(self):
        calls = []

        def lookup(var, func, attr):
            calls.append((var, func, attr))
            return 42.0

        evaluator = compile_expr(Aggregate("avg", "bs", "x"))
        context = EvalContext(bindings={"bs": self.make_binding(1.0)}, agg_lookup=lookup)
        assert evaluator(context) == 42.0
        assert calls == [("bs", "avg", "x")]

    def test_agg_lookup_none_falls_back(self):
        evaluator = compile_expr(Aggregate("avg", "bs", "x"))
        context = EvalContext(
            bindings={"bs": self.make_binding(5.0)}, agg_lookup=lambda *a: None
        )
        assert evaluator(context) == 5.0


class TestFunctions:
    def test_duration(self):
        evaluator = compile_text("duration() >= 0")
        context = ctx(a=Event("A", 1.0), bs=[Event("B", 4.0)])
        assert evaluator(context) is True
        assert context.duration() == 3.0

    def test_duration_without_events_errors(self):
        with pytest.raises(EvaluationError, match="no events bound"):
            ctx().duration()

    def test_timestamp(self):
        evaluator = compile_expr(FuncCall("timestamp", (VarRef("a"),)))
        assert evaluator(ctx(a=Event("A", 2.5))) == 2.5

    def test_ts_alias(self):
        evaluator = compile_expr(FuncCall("ts", (VarRef("a"),)))
        assert evaluator(ctx(a=Event("A", 2.5))) == 2.5

    @pytest.mark.parametrize(
        "name,value,expected",
        [
            ("abs", -3.0, 3.0),
            ("round", 2.6, 3),
            ("floor", 2.6, 2),
            ("ceil", 2.1, 3),
            ("sqrt", 9.0, 3.0),
            ("exp", 0.0, 1.0),
            ("sign", -5.0, -1),
            ("sign", 0.0, 0),
            ("sign", 2.0, 1),
        ],
    )
    def test_math_functions(self, name, value, expected):
        evaluator = compile_expr(FuncCall(name, (Literal(value),)))
        assert evaluator(ctx()) == expected

    def test_sqrt_of_negative_errors(self):
        with pytest.raises(EvaluationError):
            compile_expr(FuncCall("sqrt", (Literal(-1.0),)))(ctx())

    def test_log(self):
        import math

        evaluator = compile_expr(FuncCall("log", (Literal(math.e),)))
        assert evaluator(ctx()) == pytest.approx(1.0)

    def test_min2_max2(self):
        assert compile_expr(FuncCall("min2", (Literal(1), Literal(2))))(ctx()) == 1
        assert compile_expr(FuncCall("max2", (Literal(1), Literal(2))))(ctx()) == 2

    def test_math_on_non_number_errors(self):
        with pytest.raises(EvaluationError, match="expected a number"):
            compile_expr(FuncCall("abs", (Literal("hi"),)))(ctx())


class TestOperators:
    def test_arithmetic(self):
        assert compile_text("1 + 2 * 3 == 7")(ctx()) is True
        assert compile_text("10 / 4 == 2.5")(ctx()) is True
        assert compile_text("7 % 3 == 1")(ctx()) is True
        assert compile_text("1 - 5 == -4")(ctx()) is True

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError, match="division by zero"):
            compile_text("1 / 0 > 0")(ctx())

    def test_modulo_by_zero(self):
        with pytest.raises(EvaluationError, match="modulo by zero"):
            compile_text("1 % 0 > 0")(ctx())

    def test_arith_type_error(self):
        with pytest.raises(EvaluationError, match="expected a number"):
            compile_text("a.x + 1 > 0")(ctx(a=Event("A", 0, x="str")))

    def test_equality_any_types(self):
        assert compile_text("a.x == 'hi'")(ctx(a=Event("A", 0, x="hi"))) is True
        assert compile_text("a.x != 3")(ctx(a=Event("A", 0, x="hi"))) is True

    def test_ordering_numbers(self):
        assert compile_text("2 < 3")(ctx()) is True
        assert compile_text("3 <= 3")(ctx()) is True
        assert compile_text("2 > 3")(ctx()) is False
        assert compile_text("3 >= 4")(ctx()) is False

    def test_ordering_strings(self):
        assert compile_text("a.x < 'b'")(ctx(a=Event("A", 0, x="a"))) is True

    def test_ordering_mixed_types_errors(self):
        with pytest.raises(EvaluationError, match="numbers or both strings"):
            compile_text("a.x < 3")(ctx(a=Event("A", 0, x="str")))

    def test_and_short_circuits(self):
        # The right side would divide by zero; False AND ... must not reach it.
        assert compile_text("1 > 2 AND 1 / 0 > 0")(ctx()) is False

    def test_or_short_circuits(self):
        assert compile_text("2 > 1 OR 1 / 0 > 0")(ctx()) is True

    def test_boolean_context_requires_bool(self):
        with pytest.raises(EvaluationError, match="expected a boolean"):
            compile_text("1 AND 2 > 0")(ctx())

    def test_not(self):
        assert compile_text("NOT 1 > 2")(ctx()) is True

    def test_unary_minus(self):
        assert compile_text("-(1 + 2) == -3")(ctx()) is True

    def test_unary_minus_type_error(self):
        with pytest.raises(EvaluationError):
            compile_text("-a.x > 0")(ctx(a=Event("A", 0, x="s")))


class TestEvaluatePredicate:
    def test_pass_and_fail(self):
        assert evaluate_predicate(compile_text("1 < 2"), ctx()) is True
        assert evaluate_predicate(compile_text("1 > 2"), ctx()) is False

    def test_vacuous_counts_as_pass(self):
        evaluator = compile_text("bs.x > prev(bs.x)")
        context = EvalContext(
            bindings={}, current_var="bs", current_event=Event("B", 0, x=1)
        )
        assert evaluate_predicate(evaluator, context) is True

    def test_non_boolean_result_rejected(self):
        with pytest.raises(EvaluationError, match="expected a boolean"):
            evaluate_predicate(compile_expr(Literal(3)), ctx())


class TestContextHelpers:
    def test_events_of_singleton(self):
        context = ctx(a=Event("A", 0, x=1))
        assert len(context.events_of("a")) == 1

    def test_events_of_missing(self):
        assert ctx().events_of("zz") == ()

    def test_all_events_includes_current(self):
        context = EvalContext(
            bindings={"a": Event("A", 1.0)},
            current_var="b",
            current_event=Event("B", 2.0),
        )
        assert [e.timestamp for e in context.all_events()] == [1.0, 2.0]
