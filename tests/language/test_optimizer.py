"""Unit tests for the expression optimiser."""

from repro.language.ast_nodes import (
    AttrRef,
    Binary,
    BinaryOp,
    FuncCall,
    Literal,
    Unary,
    UnaryOp,
)
from repro.language.optimizer import optimize
from repro.language.parser import parse_query


def opt_text(expr_text):
    return optimize(parse_query(f"PATTERN SEQ(A a) WHERE {expr_text}").where)


class TestConstantFolding:
    def test_arithmetic_folds(self):
        assert opt_text("2 * 3 + 1 > a.x") == Binary(
            BinaryOp.GT, Literal(7), AttrRef("a", "x")
        )

    def test_nested_folding(self):
        assert opt_text("a.x > (2 + 3) * (1 + 1)") == Binary(
            BinaryOp.GT, AttrRef("a", "x"), Literal(10)
        )

    def test_comparison_of_literals_folds(self):
        assert opt_text("1 < 2") == Literal(True)
        assert opt_text("2 < 1") == Literal(False)

    def test_string_equality_folds(self):
        assert opt_text("'a' == 'a'") == Literal(True)

    def test_division_by_zero_not_folded(self):
        result = opt_text("1 / 0 > 1")
        assert not isinstance(result, Literal)

    def test_negation_of_numeric_literal(self):
        assert opt_text("a.x > -(5)") == Binary(
            BinaryOp.GT, AttrRef("a", "x"), Literal(-5)
        )

    def test_not_of_boolean_literal(self):
        assert opt_text("NOT TRUE") == Literal(False)

    def test_foldable_functions(self):
        assert opt_text("a.x > abs(-3)") == Binary(
            BinaryOp.GT, AttrRef("a", "x"), Literal(3)
        )
        assert opt_text("a.x > min2(4, 7)").right == Literal(4)

    def test_sqrt_of_negative_not_folded(self):
        result = opt_text("a.x > sqrt(-1)")
        assert isinstance(result.right, FuncCall)


class TestBooleanIdentities:
    def test_and_true_elided(self):
        assert opt_text("a.x > 1 AND TRUE") == opt_text("a.x > 1")
        assert opt_text("TRUE AND a.x > 1") == opt_text("a.x > 1")

    def test_false_and_shortcircuits(self):
        assert opt_text("FALSE AND a.x > 1") == Literal(False)

    def test_or_false_elided(self):
        assert opt_text("a.x > 1 OR FALSE") == opt_text("a.x > 1")
        assert opt_text("FALSE OR a.x > 1") == opt_text("a.x > 1")

    def test_true_or_shortcircuits(self):
        assert opt_text("TRUE OR a.x > 1") == Literal(True)

    def test_and_false_right_not_folded(self):
        # p AND FALSE keeps p: p may raise, which must still happen first.
        result = opt_text("a.x > 1 AND FALSE")
        assert isinstance(result, Binary) and result.op is BinaryOp.AND

    def test_double_not_preserved(self):
        # NOT NOT p would silently legalise non-boolean p; must be kept.
        result = opt_text("NOT NOT a.flag")
        assert isinstance(result, Unary) and isinstance(result.operand, Unary)


class TestAlgebraicIdentities:
    # Identities only fire on provably numeric operands: an AttrRef may
    # hold a string, and `a.x + 0` raises on it while a bare `a.x` would
    # silently pass it through.

    def test_add_zero(self):
        assert opt_text("abs(a.x) + 0 > 1").left == FuncCall("abs", (AttrRef("a", "x"),))
        assert opt_text("0 + abs(a.x) > 1").left == FuncCall("abs", (AttrRef("a", "x"),))

    def test_sub_zero(self):
        assert opt_text("abs(a.x) - 0 > 1").left == FuncCall("abs", (AttrRef("a", "x"),))

    def test_mul_one(self):
        assert opt_text("abs(a.x) * 1 > 1").left == FuncCall("abs", (AttrRef("a", "x"),))
        assert opt_text("1 * abs(a.x) > 1").left == FuncCall("abs", (AttrRef("a", "x"),))

    def test_div_one(self):
        assert opt_text("abs(a.x) / 1 > 1").left == FuncCall("abs", (AttrRef("a", "x"),))

    def test_attr_ref_not_elided(self):
        # a.x may be a string at runtime; a.x + 0 raises on it, so the
        # elision would change behaviour.
        result = opt_text("a.x + 0 > 1")
        assert isinstance(result.left, Binary)

    def test_nested_arithmetic_elides(self):
        # (a.x - a.y) is numeric-shaped: the subtraction itself raises on
        # non-numbers, so + 0 on top of it is safe to drop.
        result = opt_text("(a.x - a.y) + 0 > 1")
        assert result.left == Binary(
            BinaryOp.SUB, AttrRef("a", "x"), AttrRef("a", "y")
        )

    def test_mul_zero_not_elided(self):
        # x * 0 → 0 would hide a type error when x is a string.
        result = opt_text("a.x * 0 > 1")
        assert isinstance(result.left, Binary)

    def test_double_negation_of_attr_preserved(self):
        result = opt_text("-(-a.x) > 1")
        assert isinstance(result.left, Unary)


class TestLeavesUntouched:
    def test_attr_refs_pass_through(self):
        expr = AttrRef("a", "x")
        assert optimize(expr) is expr

    def test_aggregates_pass_through(self):
        query = parse_query(
            "PATTERN SEQ(B bs+) WHERE avg(bs.x) > 2 + 3"
        )
        result = optimize(query.where)
        assert result.right == Literal(5)
        assert result.left == query.where.left
