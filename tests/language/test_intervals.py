"""Unit tests for interval arithmetic and the partial-match bound evaluator."""

import math

import pytest

from repro.events.event import Event
from repro.events.schema import Domain
from repro.language.ast_nodes import (
    Aggregate,
    AttrRef,
    Binary,
    BinaryOp,
    FuncCall,
    Literal,
    PrevRef,
    Unary,
    UnaryOp,
    VarRef,
)
from repro.language.intervals import Interval, IntervalEvaluator, PartialMatchView


class TestIntervalArithmetic:
    def test_exact_and_unbounded(self):
        assert Interval.exact(3.0) == Interval(3.0, 3.0)
        assert Interval.unbounded().lo == -math.inf

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_add_sub(self):
        a, b = Interval(1, 2), Interval(10, 20)
        assert a + b == Interval(11, 22)
        assert b - a == Interval(8, 19)

    def test_mul_sign_cases(self):
        assert Interval(2, 3) * Interval(4, 5) == Interval(8, 15)
        assert Interval(-2, 3) * Interval(4, 5) == Interval(-10, 15)
        assert Interval(-3, -2) * Interval(-5, -4) == Interval(8, 15)

    def test_mul_with_infinity_and_zero(self):
        product = Interval(0, 0) * Interval(0, math.inf)
        assert product == Interval(0, 0)

    def test_div(self):
        assert Interval(10, 20) / Interval(2, 4) == Interval(2.5, 10)

    def test_div_by_interval_containing_zero(self):
        assert Interval(1, 2) / Interval(-1, 1) is None

    def test_neg(self):
        assert -Interval(1, 2) == Interval(-2, -1)

    def test_abs(self):
        assert Interval(1, 2).abs() == Interval(1, 2)
        assert Interval(-2, -1).abs() == Interval(1, 2)
        assert Interval(-3, 2).abs() == Interval(0, 3)

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(5, 6)) == Interval(0, 6)

    def test_monotone_map_failure_returns_none(self):
        assert Interval(-4, -1).monotone_map(math.sqrt) is None

    def test_from_domain(self):
        assert Interval.from_domain(Domain(1, 5)) == Interval(1, 5)


def make_view(
    bindings=None,
    open_vars=(),
    domains=None,
    kleene=(),
    max_count=None,
    duration_so_far=0.0,
    max_duration=None,
    latest_ts=None,
):
    domains = domains or {}

    def domain_of(event_type, attr):
        return domains.get((event_type, attr))

    return PartialMatchView(
        bindings=bindings or {},
        var_types={"a": "A", "b": "B", "ks": "K"},
        kleene_vars=frozenset(kleene),
        open_vars=frozenset(open_vars),
        domain_of=domain_of,
        max_kleene_count=max_count,
        duration_so_far=duration_so_far,
        max_duration=max_duration,
        latest_timestamp=latest_ts,
    )


class TestAttrBounds:
    def test_bound_variable_is_exact(self):
        view = make_view(bindings={"a": Event("A", 0, x=5.0)}, open_vars={"b"})
        bound = IntervalEvaluator(view).bound(AttrRef("a", "x"))
        assert bound == Interval.exact(5.0)

    def test_unbound_variable_uses_domain(self):
        view = make_view(open_vars={"a", "b"}, domains={("B", "x"): Domain(0, 10)})
        bound = IntervalEvaluator(view).bound(AttrRef("b", "x"))
        assert bound == Interval(0, 10)

    def test_unbound_variable_without_domain_is_none(self):
        view = make_view(open_vars={"b"})
        assert IntervalEvaluator(view).bound(AttrRef("b", "x")) is None

    def test_string_attribute_is_none(self):
        view = make_view(bindings={"a": Event("A", 0, x="str")})
        assert IntervalEvaluator(view).bound(AttrRef("a", "x")) is None

    def test_literal(self):
        assert IntervalEvaluator(make_view()).bound(Literal(4)) == Interval.exact(4.0)
        assert IntervalEvaluator(make_view()).bound(Literal("s")) is None
        assert IntervalEvaluator(make_view()).bound(Literal(True)) is None

    def test_prev_ref_is_none(self):
        assert IntervalEvaluator(make_view()).bound(PrevRef("ks", "x")) is None


class TestAggregateBounds:
    def kleene_view(self, values, is_open, domain=Domain(0, 10), max_count=5):
        events = tuple(Event("K", i, x=v) for i, v in enumerate(values))
        return make_view(
            bindings={"ks": events},
            open_vars={"ks"} if is_open else set(),
            kleene={"ks"},
            domains={("K", "x"): domain},
            max_count=max_count,
        )

    def test_closed_kleene_aggregates_are_exact(self):
        view = self.kleene_view([2.0, 4.0], is_open=False)
        evaluator = IntervalEvaluator(view)
        assert evaluator.bound(Aggregate("sum", "ks", "x")) == Interval.exact(6.0)
        assert evaluator.bound(Aggregate("avg", "ks", "x")) == Interval.exact(3.0)
        assert evaluator.bound(Aggregate("min", "ks", "x")) == Interval.exact(2.0)
        assert evaluator.bound(Aggregate("max", "ks", "x")) == Interval.exact(4.0)
        assert evaluator.bound(Aggregate("count", "ks", None)) == Interval.exact(2.0)
        assert evaluator.bound(Aggregate("first", "ks", "x")) == Interval.exact(2.0)
        assert evaluator.bound(Aggregate("last", "ks", "x")) == Interval.exact(4.0)

    def test_open_count_bound_by_window(self):
        view = self.kleene_view([1.0, 2.0], is_open=True, max_count=5)
        bound = IntervalEvaluator(view).bound(Aggregate("count", "ks", None))
        assert bound == Interval(2.0, 5.0)

    def test_open_count_unbounded_without_cap(self):
        view = self.kleene_view([1.0], is_open=True, max_count=None)
        bound = IntervalEvaluator(view).bound(Aggregate("count", "ks", None))
        assert bound.hi == math.inf

    def test_open_min_can_only_decrease(self):
        view = self.kleene_view([4.0, 6.0], is_open=True)
        bound = IntervalEvaluator(view).bound(Aggregate("min", "ks", "x"))
        assert bound == Interval(0.0, 4.0)

    def test_open_max_can_only_increase(self):
        view = self.kleene_view([4.0, 6.0], is_open=True)
        bound = IntervalEvaluator(view).bound(Aggregate("max", "ks", "x"))
        assert bound == Interval(6.0, 10.0)

    def test_open_first_is_pinned_once_observed(self):
        view = self.kleene_view([4.0], is_open=True)
        bound = IntervalEvaluator(view).bound(Aggregate("first", "ks", "x"))
        assert bound == Interval.exact(4.0)

    def test_open_last_floats_in_domain(self):
        view = self.kleene_view([4.0], is_open=True)
        bound = IntervalEvaluator(view).bound(Aggregate("last", "ks", "x"))
        assert bound == Interval(0.0, 10.0)

    def test_open_sum_uses_remaining_count(self):
        # observed sum 3, up to 3 more elements each in [0, 10]
        view = self.kleene_view([1.0, 2.0], is_open=True, max_count=5)
        bound = IntervalEvaluator(view).bound(Aggregate("sum", "ks", "x"))
        assert bound == Interval(3.0, 33.0)

    def test_open_aggregate_without_domain_is_none(self):
        view = self.kleene_view([1.0], is_open=True, domain=None)
        view = make_view(
            bindings=view.bindings,
            open_vars={"ks"},
            kleene={"ks"},
            domains={},
            max_count=5,
        )
        assert IntervalEvaluator(view).bound(Aggregate("sum", "ks", "x")) is None

    def test_sum_soundness_on_concrete_completion(self):
        """Any completion's actual sum must lie inside the bound."""
        view = self.kleene_view([1.0, 2.0], is_open=True, max_count=4)
        bound = IntervalEvaluator(view).bound(Aggregate("sum", "ks", "x"))
        for future in ([], [10.0], [0.0, 10.0]):
            total = 3.0 + sum(future)
            assert bound.lo <= total <= bound.hi


class TestFunctionBounds:
    def test_duration_bound(self):
        view = make_view(duration_so_far=2.0, max_duration=10.0)
        bound = IntervalEvaluator(view).bound(FuncCall("duration", ()))
        assert bound == Interval(2.0, 10.0)

    def test_duration_unbounded_without_cap(self):
        view = make_view(duration_so_far=2.0)
        bound = IntervalEvaluator(view).bound(FuncCall("duration", ()))
        assert bound.hi == math.inf

    def test_timestamp_bound_var(self):
        view = make_view(bindings={"a": Event("A", 3.5)})
        bound = IntervalEvaluator(view).bound(FuncCall("timestamp", (VarRef("a"),)))
        assert bound == Interval.exact(3.5)

    def test_timestamp_unbound_var_starts_at_latest(self):
        view = make_view(open_vars={"b"}, latest_ts=7.0)
        bound = IntervalEvaluator(view).bound(FuncCall("ts", (VarRef("b"),)))
        assert bound.lo == 7.0 and bound.hi == math.inf

    def test_abs_bound(self):
        view = make_view(bindings={"a": Event("A", 0, x=-4.0)})
        expr = FuncCall("abs", (AttrRef("a", "x"),))
        assert IntervalEvaluator(view).bound(expr) == Interval.exact(4.0)

    def test_sign_bound(self):
        view = make_view(open_vars={"b"}, domains={("B", "x"): Domain(-5, 5)})
        bound = IntervalEvaluator(view).bound(FuncCall("sign", (AttrRef("b", "x"),)))
        assert bound == Interval(-1.0, 1.0)

    def test_min2_max2_bounds(self):
        view = make_view(
            open_vars={"b"},
            bindings={"a": Event("A", 0, x=3.0)},
            domains={("B", "x"): Domain(0, 10)},
        )
        lo = IntervalEvaluator(view).bound(
            FuncCall("min2", (AttrRef("a", "x"), AttrRef("b", "x")))
        )
        hi = IntervalEvaluator(view).bound(
            FuncCall("max2", (AttrRef("a", "x"), AttrRef("b", "x")))
        )
        assert lo == Interval(0.0, 3.0)
        assert hi == Interval(3.0, 10.0)


class TestOperatorBounds:
    def view(self):
        return make_view(
            bindings={"a": Event("A", 0, x=3.0)},
            open_vars={"b"},
            domains={("B", "x"): Domain(0, 10)},
        )

    def test_subtraction_bound(self):
        expr = Binary(BinaryOp.SUB, AttrRef("b", "x"), AttrRef("a", "x"))
        assert IntervalEvaluator(self.view()).bound(expr) == Interval(-3.0, 7.0)

    def test_multiplication_bound(self):
        expr = Binary(BinaryOp.MUL, AttrRef("b", "x"), Literal(2))
        assert IntervalEvaluator(self.view()).bound(expr) == Interval(0.0, 20.0)

    def test_division_bound(self):
        expr = Binary(BinaryOp.DIV, AttrRef("a", "x"), Literal(2))
        assert IntervalEvaluator(self.view()).bound(expr) == Interval.exact(1.5)

    def test_boolean_ops_have_no_bound(self):
        expr = Binary(BinaryOp.GT, AttrRef("a", "x"), Literal(1))
        assert IntervalEvaluator(self.view()).bound(expr) is None

    def test_negation_bound(self):
        expr = Unary(UnaryOp.NEG, AttrRef("b", "x"))
        assert IntervalEvaluator(self.view()).bound(expr) == Interval(-10.0, 0.0)

    def test_propagates_none(self):
        expr = Binary(BinaryOp.ADD, AttrRef("b", "nodomain"), Literal(1))
        assert IntervalEvaluator(self.view()).bound(expr) is None
