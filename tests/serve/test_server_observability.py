"""Serve-layer observability: trace propagation, telemetry in stats,
flight-recorder artifacts on drain.

These tests close the loop the CLI (`cepr trace --connect`, `cepr top
--connect`) relies on: a trace context injected at the client must come
back out of the server stitched into the causal chain of the emission it
contributed to, and `stats` must carry ranked cost accounts plus the
pressure assessment alongside the metrics it always had.
"""

import pytest

from repro.events.event import Event
from repro.observability.flightrec import (
    install_flight_recorder,
    list_artifacts,
    load_artifact,
    uninstall_flight_recorder,
)
from repro.serve.client import CEPRClient, CEPRServeError

from .test_server import PROFIT, ServerHarness

SPREAD = """
    NAME spread
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 10 SECONDS
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""


def _paired_events(count: int = 5) -> list[Event]:
    events = []
    ts = 0.0
    for i in range(count):
        ts += 1.0
        events.append(Event("Buy", ts, symbol="A", price=10.0 + i))
        ts += 1.0
        events.append(Event("Sell", ts, symbol="A", price=20.0 + i))
    return events


class TestTracePropagation:
    def test_hello_context_reaches_emission_trace(self):
        with ServerHarness(queries={"spread": SPREAD}, tracing=True) as harness:
            client = CEPRClient(
                port=harness.port,
                trace_context={"client": "pytest", "run": "r1"},
            )
            try:
                client.subscribe("spread")
                client.push_batch(_paired_events())
                client.advance_time(1000.0)
                client.sync()
                doc = client.trace("spread", -1)
            finally:
                client.close()

        assert "text" in doc and doc["text"]
        remote = doc["remote"]
        assert remote, "expected remote contexts stitched into the trace"
        for entry in remote:
            assert entry["context"]["client"] == "pytest"
            assert entry["context"]["run"] == "r1"
            assert entry["variable"] in ("b", "s")
            assert entry["type"] in ("Buy", "Sell")

    def test_per_push_context_overlays_hello(self):
        with ServerHarness(queries={"spread": SPREAD}, tracing=True) as harness:
            client = CEPRClient(
                port=harness.port,
                trace_context={"client": "pytest", "stage": "hello"},
            )
            try:
                client.subscribe("spread")
                # one window whose events carry a per-push overlay
                client.push(
                    Event("Buy", 1.0, symbol="A", price=1.0),
                    trace={"stage": "push", "batch": "b7"},
                )
                client.push(
                    Event("Sell", 2.0, symbol="A", price=9.0),
                    trace={"stage": "push", "batch": "b7"},
                )
                client.advance_time(1000.0)
                client.sync()
                doc = client.trace("spread", -1)
            finally:
                client.close()

        contexts = [entry["context"] for entry in doc["remote"]]
        assert contexts
        for context in contexts:
            # per-push keys overlay HELLO keys; untouched keys survive
            assert context["client"] == "pytest"
            assert context["stage"] == "push"
            assert context["batch"] == "b7"

    def test_untraced_connection_still_traces_without_contexts(self):
        with ServerHarness(queries={"spread": SPREAD}, tracing=True) as harness:
            client = CEPRClient(port=harness.port)
            try:
                client.push_batch(_paired_events())
                client.advance_time(1000.0)
                client.sync()
                doc = client.trace("spread", -1)
            finally:
                client.close()
        assert doc["remote"] == []

    def test_bad_hello_trace_rejected(self):
        with ServerHarness(queries={"spread": SPREAD}) as harness:
            with pytest.raises(CEPRServeError) as excinfo:
                CEPRClient(port=harness.port, trace_context="not-a-dict")
            assert excinfo.value.code == "CEPR503"


class TestTraceErrors:
    def test_unknown_query(self):
        with ServerHarness(queries={"spread": SPREAD}, tracing=True) as harness:
            client = CEPRClient(port=harness.port)
            try:
                with pytest.raises(CEPRServeError) as excinfo:
                    client.trace("nope")
                assert excinfo.value.code == "CEPR504"
            finally:
                client.close()

    def test_bad_emission_index(self):
        with ServerHarness(queries={"spread": SPREAD}, tracing=True) as harness:
            client = CEPRClient(port=harness.port)
            try:
                client.push_batch(_paired_events())
                client.advance_time(1000.0)
                client.sync()
                with pytest.raises(CEPRServeError) as excinfo:
                    client.trace("spread", emission=99)
                assert excinfo.value.code == "CEPR507"
            finally:
                client.close()

    def test_unsupported_when_sharded(self):
        with ServerHarness(queries={"profits": PROFIT}, shards=2) as harness:
            client = CEPRClient(port=harness.port)
            try:
                with pytest.raises(CEPRServeError) as excinfo:
                    client.trace("profits")
                assert excinfo.value.code == "CEPR509"
            finally:
                client.close()


class TestStatsTelemetry:
    def test_stats_carries_cost_accounts_and_pressure(self):
        with ServerHarness(queries={"spread": SPREAD}) as harness:
            client = CEPRClient(port=harness.port)
            try:
                client.push_batch(_paired_events())
                client.sync()
                stats = client.stats()
            finally:
                client.close()

        accounts = stats["cost_accounts"]
        assert [doc["query"] for doc in accounts] == ["spread"]
        assert accounts[0]["events_routed"] == 10
        assert "cpu_seconds" in accounts[0]
        assert "hit_ratio" in accounts[0]

        pressure = stats["pressure"]
        assert pressure["state"] in ("ok", "overloaded")
        assert "level" in pressure
        sample = pressure["sample"]
        assert sample["queue_capacity"] > 0
        assert 0.0 <= sample["score"] <= 1.0

    def test_stats_shedding_is_null_when_off(self):
        with ServerHarness(queries={"spread": SPREAD}) as harness:
            client = CEPRClient(port=harness.port)
            try:
                stats = client.stats()
            finally:
                client.close()
        assert stats["shedding"] is None

    def test_stats_carries_shedding_snapshot(self):
        with ServerHarness(
            queries={"spread": SPREAD},
            shed_policy="adaptive",
            latency_target=0.5,
        ) as harness:
            client = CEPRClient(port=harness.port)
            try:
                client.push_batch(_paired_events())
                client.sync()
                stats = client.stats()
            finally:
                client.close()

        shedding = stats["shedding"]
        assert shedding["policy"] == "adaptive"
        assert shedding["latency_target"] == 0.5
        assert shedding["engaged"] in (True, False)
        ledger = shedding["stats"]
        assert ledger["shed_events_total"] >= 0
        assert 0.0 <= ledger["recall_estimate"] <= 1.0
        # the registry exports the counters alongside
        prom = stats["prom"]
        assert "shed_events_total" in prom
        assert "shed_recall_estimate" in prom

    def test_invalid_shed_policy_rejected(self):
        with pytest.raises(ValueError, match="shed_policy"):
            from repro.serve.server import CEPRServer

            CEPRServer(shed_policy="sometimes")

    def test_prom_export_has_subscriber_gauges(self):
        with ServerHarness(queries={"spread": SPREAD}) as harness:
            client = CEPRClient(port=harness.port)
            try:
                client.subscribe("spread")
                client.push_batch(_paired_events())
                client.sync()
                prom = client.stats()["prom"]
            finally:
                client.close()

        for needle in (
            "serve_subscriber_queue_depth",
            "serve_subscriber_queue_high_water",
        ):
            assert needle in prom, f"missing {needle} in prom export"


class TestDrainArtifact:
    @pytest.fixture(autouse=True)
    def _disarm(self):
        uninstall_flight_recorder()
        yield
        uninstall_flight_recorder()

    def test_graceful_drain_dumps_when_armed(self, tmp_path):
        install_flight_recorder(byte_budget=64 * 1024, directory=tmp_path)
        with ServerHarness(
            queries={"spread": SPREAD}, checkpoint_dir=tmp_path
        ) as harness:
            client = CEPRClient(port=harness.port)
            try:
                client.push_batch(_paired_events())
                client.sync()
            finally:
                client.close()
            harness.drain()

        artifacts = list_artifacts(tmp_path)
        assert artifacts, "drain with an armed recorder must leave an artifact"
        doc = load_artifact(artifacts[-1])
        assert doc["reason"] == "drain"
        kinds = {entry["kind"] for entry in doc["entries"]}
        assert "register" in kinds

    def test_drain_without_recorder_writes_nothing(self, tmp_path):
        with ServerHarness(
            queries={"spread": SPREAD}, checkpoint_dir=tmp_path
        ) as harness:
            client = CEPRClient(port=harness.port)
            client.close()
            harness.drain()
        assert list_artifacts(tmp_path) == []
