"""Server/client integration: differential correctness and failure policy.

The differential tests are the serving layer's ground truth: pushing a
workload through a :class:`~repro.serve.server.CEPRServer` over TCP must
produce emission documents *byte-identical* (after compact
re-serialisation) to running the same stream through an embedded
:class:`~repro.runtime.engine.CEPREngine`.
"""

import asyncio
import socket
import struct
import threading
import time

import pytest

from repro.events.jsonsafe import dumps
from repro.runtime.engine import CEPREngine
from repro.runtime.serialize import emission_to_line
from repro.serve.client import CEPRClient, CEPRServeError, ServerClosed
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    encode_frame,
    read_frame_blocking,
)
from repro.serve.server import CEPRServer
from repro.workloads.clickstream import ClickstreamWorkload
from repro.workloads.stock import StockWorkload

PROFIT = """
    NAME profits
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 60 EVENTS
    USING SKIP_TILL_ANY
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""

ABANDONMENT = """
    NAME abandonment
    PATTERN SEQ(AddToCart cart, NOT Purchase bought)
    WHERE bought.value == cart.value
    WITHIN 120 SECONDS
    PARTITION BY user
    RANK BY cart.value DESC
    LIMIT 5
    EMIT ON WINDOW CLOSE
"""


class ServerHarness:
    """Runs a :class:`CEPRServer` on a background thread for one test."""

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("port", 0)
        self.server = CEPRServer(**kwargs)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self.server.serve(on_ready=lambda _: self._ready.set()))

    @property
    def port(self) -> int:
        assert self.server.bound_port is not None
        return self.server.bound_port

    def drain(self, timeout: float = 15.0) -> None:
        self.server.request_drain_threadsafe()
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), "server did not drain in time"

    def __enter__(self) -> "ServerHarness":
        self._thread.start()
        assert self._ready.wait(timeout=10.0), "server did not start"
        return self

    def __exit__(self, *exc_info) -> None:
        if self._thread.is_alive():
            self.drain()


def embedded_lines(queries: dict[str, str], events) -> list[str]:
    """The embedded-engine ground truth: every emission, serialised."""
    engine = CEPREngine()
    collected = []
    for name, text in queries.items():
        handle = engine.register_query(text, name=name, collect_results=False)
        handle.subscribe(collected.append)
    for event in events:
        engine.push(event)
    engine.flush()
    return [emission_to_line(emission) for emission in collected]


def remote_lines(queries: dict[str, str], events) -> list[str]:
    """The same stream through a real TCP server, drained gracefully."""
    with ServerHarness(queries=queries) as harness:
        client = CEPRClient(port=harness.port, timeout=30.0)
        try:
            for name in queries:
                client.subscribe(name)
            client.push_batch(events)
            client.sync()
            harness.server.request_drain_threadsafe()
            frames = client.pop_emissions() + client.drain(timeout=15.0)
        finally:
            client.close()
    return [dumps(frame["emission"]) for frame in frames]


class TestRemoteDifferential:
    def test_stock_stream_byte_identical(self):
        events = list(StockWorkload(seed=3).events(1_500))
        queries = {"profits": PROFIT}
        assert remote_lines(queries, events) == embedded_lines(queries, events)

    def test_clickstream_byte_identical(self):
        events = list(
            ClickstreamWorkload(seed=11, users=10, abandon_rate=0.4).events(
                1_500
            )
        )
        queries = {"abandonment": ABANDONMENT}
        remote = remote_lines(queries, events)
        assert remote == embedded_lines(queries, events)
        assert remote, "workload must produce emissions for the test to bite"

    def test_two_queries_interleaved_order_preserved(self):
        events = list(StockWorkload(seed=5).events(1_000))
        queries = {
            "profits": PROFIT,
            "drops": """
                NAME drops
                PATTERN SEQ(Sell hi, Sell lo)
                WHERE hi.symbol == lo.symbol AND lo.price < hi.price
                WITHIN 40 EVENTS
                RANK BY hi.price - lo.price DESC
                LIMIT 2
                EMIT ON WINDOW CLOSE
            """,
        }
        assert remote_lines(queries, events) == embedded_lines(queries, events)


class TestReadYourWrites:
    def test_sync_delivers_prior_emissions(self):
        events = list(StockWorkload(seed=3).events(500))
        with ServerHarness(queries={"profits": PROFIT}) as harness:
            with CEPRClient(port=harness.port) as client:
                client.subscribe("profits")
                client.push_batch(events)
                ingested = client.sync()
                assert ingested == len(events)
                # Windows close every 60 events: emissions must already
                # be buffered when sync returns, with gapless sequences.
                frames = client.pop_emissions()
                assert frames
                assert [f["seq"] for f in frames] == list(
                    range(1, len(frames) + 1)
                )

    def test_kind_filter_limits_frames(self):
        events = list(StockWorkload(seed=3).events(400))
        query = PROFIT.replace("EMIT ON WINDOW CLOSE", "EMIT EVERY 25 EVENTS")
        with ServerHarness(queries={"q": query}) as harness:
            with CEPRClient(port=harness.port) as client:
                client.subscribe("q", kinds=["window_close"])
                client.push_batch(events)
                client.sync()
                kinds = {
                    frame["emission"]["kind"]
                    for frame in client.pop_emissions()
                }
                assert kinds <= {"window_close"}


PARTITIONED = """
    NAME sym_profits
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 60 EVENTS
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""

RUNNER_BACKENDS = ["threaded", "sharded", "process"]


def _harness_for(backend: str, queries: dict[str, str]) -> ServerHarness:
    # The threaded backend is single-engine by definition; the fleet
    # backends get two shards so partition-parallel paths actually run.
    shards = 1 if backend == "threaded" else 2
    return ServerHarness(
        queries=queries, shards=shards, runner_backend=backend
    )


class TestRunnerBackendParity:
    """``--runner`` changes the execution substrate, never the answer."""

    @pytest.mark.parametrize("backend", RUNNER_BACKENDS)
    def test_backend_byte_identical(self, backend):
        events = list(StockWorkload(seed=3).events(1_200))
        queries = {"sym_profits": PARTITIONED}
        with _harness_for(backend, queries) as harness:
            client = CEPRClient(port=harness.port, timeout=30.0)
            try:
                client.subscribe("sym_profits")
                client.push_batch(events)
                client.sync()
                harness.server.request_drain_threadsafe()
                frames = client.pop_emissions() + client.drain(timeout=15.0)
            finally:
                client.close()
        remote = [dumps(frame["emission"]) for frame in frames]
        assert remote == embedded_lines(queries, events)
        assert remote, "workload must produce emissions for the test to bite"

    @pytest.mark.parametrize("backend", RUNNER_BACKENDS)
    def test_kinds_filter_end_to_end(self, backend):
        """Per-subscriber ``kinds`` holds through every runner backend.

        Two clients on one server: the filtered one must see *only* its
        requested kind while the unfiltered one proves the stream
        carried several kinds (satellite: honor ``kinds`` end to end).
        """
        events = list(StockWorkload(seed=3).events(600))
        query = PARTITIONED.replace(
            "EMIT ON WINDOW CLOSE", "EMIT EVERY 25 EVENTS"
        )
        with _harness_for(backend, {"q": query}) as harness:
            filtered = CEPRClient(port=harness.port, timeout=30.0)
            unfiltered = CEPRClient(port=harness.port, timeout=30.0)
            try:
                filtered.subscribe("q", kinds=["periodic"])
                unfiltered.subscribe("q")
                unfiltered.push_batch(events)
                unfiltered.sync()
                filtered.sync()
                harness.server.request_drain_threadsafe()
                filtered_frames = filtered.pop_emissions() + filtered.drain(
                    timeout=15.0
                )
                unfiltered_frames = unfiltered.pop_emissions() + (
                    unfiltered.drain(timeout=15.0)
                )
            finally:
                filtered.close()
                unfiltered.close()
        all_kinds = {f["emission"]["kind"] for f in unfiltered_frames}
        assert len(all_kinds) >= 2, "need mixed kinds for the test to bite"
        assert {f["emission"]["kind"] for f in filtered_frames} == {"periodic"}
        # The filter selects, it never reorders or rewrites frames.
        assert [
            dumps(f["emission"]) for f in filtered_frames
        ] == [
            dumps(f["emission"])
            for f in unfiltered_frames
            if f["emission"]["kind"] == "periodic"
        ]

    def test_invalid_backend_combinations_raise(self):
        with pytest.raises(ValueError, match="single-engine"):
            CEPRServer(queries={}, shards=2, runner_backend="threaded")
        with pytest.raises(ValueError, match="threaded|sharded|process"):
            CEPRServer(queries={}, runner_backend="warp")
        with pytest.raises(ValueError, match="load shedding"):
            CEPRServer(
                queries={},
                shards=2,
                runner_backend="process",
                shed_policy="exact",
            )


class TestSlowConsumer:
    def _flood(self, harness: ServerHarness) -> dict:
        """Subscribe, never read emissions, push until the queue jams."""
        events = list(StockWorkload(seed=3).events(4_000))
        victim = CEPRClient(port=harness.port)
        victim.subscribe("q")
        # A second connection does the pushing so the victim's socket
        # stays untouched (nothing drains its outbound queue).
        with CEPRClient(port=harness.port) as pusher:
            pusher.push_batch(events)
            pusher.sync()
        deadline = time.monotonic() + 10.0
        stats = harness.server.stats
        while time.monotonic() < deadline:
            if stats.emissions_dropped or stats.slow_consumer_disconnects:
                break
            time.sleep(0.05)
        return {
            "dropped": stats.emissions_dropped,
            "disconnects": stats.slow_consumer_disconnects,
            "victim": victim,
        }

    def test_drop_policy_counts_drops_and_keeps_connection(self):
        query = PROFIT.replace("EMIT ON WINDOW CLOSE", "EMIT EVERY 5 EVENTS")
        with ServerHarness(
            queries={"q": query}, outbound_queue=4, slow_consumer="drop"
        ) as harness:
            result = self._flood(harness)
            victim = result["victim"]
            try:
                assert result["dropped"] > 0
                assert result["disconnects"] == 0
                # The victim's connection survived: a request still works.
                assert victim.ping()["of"] == "ping"
            finally:
                victim.close()

    def test_disconnect_policy_severs_the_slow_subscriber(self):
        query = PROFIT.replace("EMIT ON WINDOW CLOSE", "EMIT EVERY 5 EVENTS")
        with ServerHarness(
            queries={"q": query}, outbound_queue=4, slow_consumer="disconnect"
        ) as harness:
            result = self._flood(harness)
            victim = result["victim"]
            try:
                assert result["disconnects"] == 1
                with pytest.raises((ConnectionClosed, OSError)):
                    victim.ping()
                    victim.ping()  # if the RST raced the first round trip
            finally:
                victim.close()


class TestTypedErrors:
    def test_unknown_query_is_cepr504(self):
        with ServerHarness(queries={}) as harness:
            with CEPRClient(port=harness.port) as client:
                with pytest.raises(CEPRServeError) as excinfo:
                    client.subscribe("ghost")
                assert excinfo.value.code == "CEPR504"

    def test_rejected_query_is_cepr505(self):
        with ServerHarness(queries={}) as harness:
            with CEPRClient(port=harness.port) as client:
                with pytest.raises(CEPRServeError) as excinfo:
                    client.register("PATTERN SEQ(")
                assert excinfo.value.code == "CEPR505"

    def test_invalid_event_is_cepr506(self):
        with ServerHarness(queries={}) as harness:
            with CEPRClient(port=harness.port) as client:
                with pytest.raises(CEPRServeError) as excinfo:
                    client.push({"no_type": True})
                assert excinfo.value.code == "CEPR506"

    def test_register_on_sharded_fleet_is_cepr509(self):
        queries = {"abandonment": ABANDONMENT}
        with ServerHarness(queries=queries, shards=2) as harness:
            with CEPRClient(port=harness.port) as client:
                with pytest.raises(CEPRServeError) as excinfo:
                    client.register(PROFIT, name="late")
                assert excinfo.value.code == "CEPR509"

    def test_bad_kinds_filter_is_cepr507(self):
        with ServerHarness(queries={"profits": PROFIT}) as harness:
            with CEPRClient(port=harness.port) as client:
                with pytest.raises(CEPRServeError) as excinfo:
                    client.subscribe("profits", kinds=["not_a_kind"])
                assert excinfo.value.code == "CEPR507"

    def test_unknown_op_is_cepr502_and_connection_survives(self):
        with ServerHarness(queries={}) as harness:
            sock = socket.create_connection(("127.0.0.1", harness.port), 5.0)
            sock.settimeout(5.0)
            try:
                sock.sendall(
                    encode_frame({"op": "hello", "version": PROTOCOL_VERSION})
                )
                assert read_frame_blocking(sock)["op"] == "ack"
                sock.sendall(encode_frame({"op": "warp", "id": 2}))
                reply = read_frame_blocking(sock)
                assert reply["op"] == "error" and reply["code"] == "CEPR502"
                sock.sendall(encode_frame({"op": "ping", "id": 3}))
                assert read_frame_blocking(sock)["op"] == "ack"
            finally:
                sock.close()

    def test_missing_hello_is_cepr503(self):
        with ServerHarness(queries={}) as harness:
            sock = socket.create_connection(("127.0.0.1", harness.port), 5.0)
            sock.settimeout(5.0)
            try:
                sock.sendall(encode_frame({"op": "ping"}))
                reply = read_frame_blocking(sock)
                assert reply["op"] == "error" and reply["code"] == "CEPR503"
                assert sock.recv(1) == b""  # server hung up
            finally:
                sock.close()

    def test_oversized_frame_is_fatal_cepr501(self):
        with ServerHarness(queries={}, max_frame_bytes=512) as harness:
            sock = socket.create_connection(("127.0.0.1", harness.port), 5.0)
            sock.settimeout(5.0)
            try:
                sock.sendall(
                    encode_frame({"op": "hello", "version": PROTOCOL_VERSION})
                )
                assert read_frame_blocking(sock)["op"] == "ack"
                sock.sendall(struct.pack(">I", 1 << 20))  # huge declared len
                reply = read_frame_blocking(sock)
                assert reply["op"] == "error" and reply["code"] == "CEPR501"
                assert sock.recv(1) == b""  # fatal: connection closed
            finally:
                sock.close()

    def test_wrong_version_hello_is_rejected(self):
        with ServerHarness(queries={}) as harness:
            sock = socket.create_connection(("127.0.0.1", harness.port), 5.0)
            sock.settimeout(5.0)
            try:
                sock.sendall(encode_frame({"op": "hello", "version": 99}))
                reply = read_frame_blocking(sock)
                assert reply["op"] == "error" and reply["code"] == "CEPR503"
            finally:
                sock.close()


class TestDrainSemantics:
    def test_drain_sends_final_flush_then_bye(self):
        events = list(StockWorkload(seed=3).events(90))  # window still open
        with ServerHarness(queries={"profits": PROFIT}) as harness:
            client = CEPRClient(port=harness.port)
            try:
                client.subscribe("profits")
                client.push_batch(events)
                client.sync()
                before = len(client.pop_emissions())
                harness.drain()
                final = client.drain(timeout=10.0)
                # 90 events of a 60-event window: one close at 60, one
                # partial-window flush emission on drain.
                assert before >= 1
                assert len(final) >= 1
            finally:
                client.close()

    def test_requests_after_drain_are_refused(self):
        with ServerHarness(queries={"profits": PROFIT}) as harness:
            with CEPRClient(port=harness.port) as client:
                harness.drain()
                with pytest.raises((CEPRServeError, ServerClosed, OSError)):
                    client.push_batch(
                        list(StockWorkload(seed=1).events(10))
                    )

    def test_dynamic_register_then_unregister_notifies(self):
        with ServerHarness(queries={}) as harness:
            with CEPRClient(port=harness.port) as client:
                name = client.register(PROFIT, name="temp")
                assert name == "temp"
                client.subscribe("temp")
                client.unregister("temp")
                client.ping()  # forces any pending notice to be read
                notices = client.pop_notices()
                assert notices and notices[0]["query"] == "temp"
                with pytest.raises(CEPRServeError) as excinfo:
                    client.subscribe("temp")
                assert excinfo.value.code == "CEPR504"
