"""Protocol conformance: the frame codec against golden and hostile bytes."""

import asyncio
import json
import socket
import struct
import threading

import pytest

from repro.serve.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    E_FRAME_TOO_LARGE,
    E_MALFORMED,
    HEADER_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameError,
    ack_frame,
    decode_payload,
    encode_frame,
    error_frame,
    read_frame,
    read_frame_blocking,
)

GOLDEN_FRAMES = [
    {"op": "hello", "version": PROTOCOL_VERSION},
    {"op": "ping", "t": 12.5},
    {"op": "push", "event": {"type": "Buy", "t": 1.0, "symbol": "ACME"}},
    {"op": "push_batch", "events": [{"type": "A", "t": 0.0}] * 3},
    {"op": "subscribe", "query": "spikes", "kinds": ["window_close"]},
    {"op": "ack", "of": "sync", "id": 7, "events_ingested": 120},
    {"op": "error", "code": "CEPR504", "message": "unknown query 'x'"},
    {"op": "emission", "query": "q", "sub": 1, "seq": 9, "emission": {}},
    {"op": "bye", "reason": "drained"},
    {"op": "unicode", "text": "héllo ✓ 事件"},
]


class TestGoldenRoundTrips:
    @pytest.mark.parametrize("doc", GOLDEN_FRAMES, ids=lambda d: d["op"])
    def test_encode_decode_identity(self, doc):
        raw = encode_frame(doc)
        (length,) = struct.unpack(">I", raw[:HEADER_BYTES])
        assert length == len(raw) - HEADER_BYTES
        assert decode_payload(raw[HEADER_BYTES:]) == doc

    @pytest.mark.parametrize("doc", GOLDEN_FRAMES, ids=lambda d: d["op"])
    def test_payload_is_compact_json(self, doc):
        payload = encode_frame(doc)[HEADER_BYTES:]
        text = payload.decode("utf-8")
        assert text == json.dumps(
            doc, separators=(",", ":"), ensure_ascii=False
        )

    def test_header_is_big_endian(self):
        raw = encode_frame({"op": "x"})
        assert raw[:HEADER_BYTES] == len(raw[HEADER_BYTES:]).to_bytes(4, "big")


class TestFrameSizeLimit:
    def test_encode_rejects_oversized_frame(self):
        doc = {"op": "push", "blob": "x" * 256}
        with pytest.raises(FrameError) as excinfo:
            encode_frame(doc, max_frame_bytes=64)
        assert excinfo.value.code == E_FRAME_TOO_LARGE
        assert excinfo.value.fatal

    def test_frame_at_exact_limit_is_accepted(self):
        doc = {"op": "p"}
        payload_len = len(json.dumps(doc, separators=(",", ":")))
        raw = encode_frame(doc, max_frame_bytes=payload_len)
        assert decode_payload(raw[HEADER_BYTES:]) == doc

    def test_default_limit_is_4mib(self):
        assert DEFAULT_MAX_FRAME_BYTES == 4 * 1024 * 1024


class TestDecodeRejections:
    @pytest.mark.parametrize(
        "payload",
        [
            b"not json at all",
            b"\xff\xfe invalid utf8 \xff",
            b"[1,2,3]",
            b'"just a string"',
            b"{}",
            b'{"op": 7}',
            b'{"op": ""}',
        ],
        ids=[
            "garbage",
            "bad-utf8",
            "array",
            "string",
            "missing-op",
            "non-string-op",
            "empty-op",
        ],
    )
    def test_malformed_payloads(self, payload):
        with pytest.raises(FrameError) as excinfo:
            decode_payload(payload)
        assert excinfo.value.code == E_MALFORMED
        assert not excinfo.value.fatal


class TestBuilders:
    def test_ack_echoes_op_and_id(self):
        ack = ack_frame({"op": "sync", "id": 42}, events_ingested=9)
        assert ack == {"op": "ack", "of": "sync", "id": 42, "events_ingested": 9}

    def test_ack_without_id(self):
        assert "id" not in ack_frame({"op": "ping"})

    def test_error_echoes_reply_to(self):
        frame = error_frame("CEPR502", "nope", reply_to=3)
        assert frame == {
            "op": "error",
            "code": "CEPR502",
            "message": "nope",
            "id": 3,
        }


class TestAsyncReader:
    def _read(self, data: bytes, **kwargs):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return await read_frame(reader, **kwargs)

        return asyncio.run(go())

    def test_reads_golden_frame(self):
        doc = {"op": "ping", "t": 1.0}
        assert self._read(encode_frame(doc)) == doc

    def test_eof_mid_header_raises_connection_closed(self):
        with pytest.raises(ConnectionClosed):
            self._read(b"\x00\x00")

    def test_truncated_payload_raises_connection_closed(self):
        raw = encode_frame({"op": "ping"})
        with pytest.raises(ConnectionClosed):
            self._read(raw[:-2])

    def test_oversized_declared_length_is_fatal(self):
        with pytest.raises(FrameError) as excinfo:
            self._read(struct.pack(">I", 1 << 30), max_frame_bytes=1024)
        assert excinfo.value.code == E_FRAME_TOO_LARGE
        assert excinfo.value.fatal

    def test_slow_payload_times_out_fatally(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", 100))  # header, then silence
            return await read_frame(reader, payload_timeout=0.05)

        with pytest.raises(FrameError) as excinfo:
            asyncio.run(go())
        assert excinfo.value.fatal


class TestBlockingReader:
    def _serve_bytes(self, data: bytes) -> socket.socket:
        server, client = socket.socketpair()

        def feed():
            server.sendall(data)
            server.close()

        threading.Thread(target=feed, daemon=True).start()
        client.settimeout(5.0)
        return client

    def test_round_trip(self):
        doc = {"op": "ack", "of": "push", "id": 1}
        sock = self._serve_bytes(encode_frame(doc))
        try:
            assert read_frame_blocking(sock) == doc
        finally:
            sock.close()

    def test_truncated_stream_raises_connection_closed(self):
        sock = self._serve_bytes(encode_frame({"op": "ping"})[:-1])
        try:
            with pytest.raises(ConnectionClosed):
                read_frame_blocking(sock)
        finally:
            sock.close()

    def test_oversized_length_is_fatal(self):
        sock = self._serve_bytes(struct.pack(">I", 1 << 30))
        try:
            with pytest.raises(FrameError) as excinfo:
                read_frame_blocking(sock, max_frame_bytes=1024)
            assert excinfo.value.fatal
        finally:
            sock.close()
