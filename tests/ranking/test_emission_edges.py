"""Emission-policy edge cases across features."""

from repro import CEPREngine, EmissionKind, Event


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestTumblingWithTrailingNegation:
    QUERY = """
        PATTERN SEQ(A a, B b, NOT C c)
        WITHIN 4 EVENTS
        RANK BY b.x - a.x DESC
        LIMIT 2
        EMIT ON WINDOW CLOSE
    """

    def test_pending_confirmed_at_boundary_competes_in_its_epoch(self):
        engine = CEPREngine()
        handle = engine.register_query(self.QUERY)
        engine.run(
            [
                E("A", 1, x=0),
                E("B", 2, x=5),
                E("Z", 3),
                E("Z", 4),
                E("A", 5, x=0),  # epoch 1 event confirms the pending
                E("B", 6, x=1),
            ]
        )
        emissions = handle.results()
        epochs = {e.epoch: [m.rank_values[0] for m in e.ranking] for e in emissions}
        assert epochs[0] == [5]
        assert epochs[1] == [1]

    def test_violated_pending_never_ranks(self):
        engine = CEPREngine()
        handle = engine.register_query(self.QUERY)
        engine.run(
            [E("A", 1, x=0), E("B", 2, x=5), E("C", 3), E("A", 5, x=0)]
        )
        assert all(not e.ranking for e in handle.results())


class TestFinalEmissions:
    def test_sliding_final_snapshot_kind(self):
        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 100 EVENTS RANK BY a.x DESC "
            "EMIT EVERY 50 EVENTS"
        )
        engine.run([E("A", 1, x=1)])
        kinds = [e.kind for e in handle.results()]
        assert kinds == [EmissionKind.FINAL]

    def test_eager_final_snapshot_not_duplicated(self):
        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 100 EVENTS RANK BY a.x DESC LIMIT 1 "
            "EMIT EAGER"
        )
        engine.run([E("A", 1, x=1)])
        # one eager snapshot when the match arrived + one final snapshot
        kinds = [e.kind for e in handle.results()]
        assert kinds == [EmissionKind.EAGER, EmissionKind.FINAL]

    def test_periodic_boundary_exact(self):
        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 100 EVENTS RANK BY a.x DESC "
            "EMIT EVERY 3 EVENTS"
        )
        engine.run([E("A", float(i), x=i) for i in range(6)])
        periodic = [
            e for e in handle.results() if e.kind is EmissionKind.PERIODIC
        ]
        assert [e.at_seq for e in periodic] == [2, 5]


class TestRevisionsAndDeltas:
    def test_exit_by_expiry_reported(self):
        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 3 EVENTS RANK BY a.x DESC LIMIT 1 "
            "EMIT EAGER"
        )
        engine.push(E("A", 1, x=100))
        engine.push(E("Z", 2))
        engine.push(E("Z", 3))
        emissions = engine.push(E("A", 4, x=1))  # x=100 expired
        [emission] = emissions
        assert [m.rank_values[0] for m in emission.entered] == [1]
        assert [m.rank_values[0] for m in emission.exited] == [100]

    def test_snapshot_empty_after_total_expiry(self):
        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(A a) WHERE a.x > 0 WITHIN 2 EVENTS "
            "RANK BY a.x DESC EMIT EAGER"
        )
        engine.push(E("A", 1, x=7))
        # routed (type A) but non-matching fillers advance the query's view
        engine.push(E("A", 2, x=0))
        emissions = engine.push(E("A", 3, x=0))
        # the only match expired: eager emits the (now empty) snapshot
        assert len(emissions) == 1
        assert emissions[0].ranking == []


class TestMonitorExtras:
    def test_pending_and_derived_shown(self):
        from repro import Monitor

        engine = CEPREngine()
        engine.register_query(
            "PATTERN SEQ(A a, B b, NOT C c) WITHIN 10 EVENTS YIELD D(x = a.v)"
        )
        engine.push(E("A", 1.0, v=1.0))
        engine.push(E("B", 2.0))
        text = Monitor(engine).render()
        assert "pending=1" in text
        assert "derived_type=D" in text

    def test_eval_errors_shown(self):
        from repro import Monitor

        engine = CEPREngine(lenient_errors=True)
        engine.register_query("PATTERN SEQ(A a) WHERE a.v > 1")
        engine.push(E("A", 1.0))  # missing v
        assert "eval_errors=1" in Monitor(engine).render()
