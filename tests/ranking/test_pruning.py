"""Score-bound pruning: effectiveness and — critically — exactness."""

from repro import CEPREngine, Event
from repro.workloads.generic import GenericWorkload
from repro.workloads.stock import StockWorkload


def run_with(query_text, events, registry, enable_pruning):
    engine = CEPREngine(registry=registry, enable_pruning=enable_pruning)
    handle = engine.register_query(query_text)
    engine.run(events)
    return engine, handle


def emission_fingerprints(handle):
    return [
        (
            emission.kind,
            emission.epoch,
            tuple((m.first_seq, m.last_seq, m.rank_values) for m in emission.ranking),
        )
        for emission in handle.results()
    ]


STOCK_QUERY = """
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 60 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""


class TestExactness:
    """Pruning must never change emitted rankings — only skip dead work."""

    def test_stock_query_identical_results(self):
        workload = StockWorkload(seed=7)
        registry = workload.registry()
        events = list(workload.events(3000))
        _, pruned = run_with(STOCK_QUERY, events, registry, enable_pruning=True)
        workload.reset()
        events = list(workload.events(3000))
        _, unpruned = run_with(STOCK_QUERY, events, registry, enable_pruning=False)
        assert emission_fingerprints(pruned) == emission_fingerprints(unpruned)

    def test_kleene_aggregate_query_identical_results(self):
        query = """
            PATTERN SEQ(A first, B bs+)
            WITHIN 20 EVENTS
            USING SKIP_TILL_ANY
            RANK BY sum(bs.value) DESC
            LIMIT 2
            EMIT ON WINDOW CLOSE
        """
        workload = GenericWorkload(seed=3, alphabet_size=3)
        registry = workload.registry()
        events = list(workload.events(600))
        _, pruned = run_with(query, events, registry, enable_pruning=True)
        workload.reset()
        events = list(workload.events(600))
        _, unpruned = run_with(query, events, registry, enable_pruning=False)
        assert emission_fingerprints(pruned) == emission_fingerprints(unpruned)


GENERIC_QUERY = """
    PATTERN SEQ(A a, B b)
    WITHIN 25 EVENTS
    USING SKIP_TILL_ANY
    RANK BY b.value - a.value DESC
    LIMIT 1
    EMIT ON WINDOW CLOSE
"""


class TestEffectiveness:
    def test_pruning_discards_runs(self):
        # The declared value domain is exactly the generator's range, so the
        # optimistic bound (domain.hi - a.value) is tight: once the epoch's
        # best profit exceeds it, new runs from high-value A events die.
        workload = GenericWorkload(seed=5, alphabet_size=2)
        events = list(workload.events(2000))
        engine, handle = run_with(
            GENERIC_QUERY, events, workload.registry(), enable_pruning=True
        )
        stats = handle.matcher.stats
        assert stats.runs_pruned > 0
        assert handle.pruner is not None
        assert handle.pruner.stats.pruned == stats.runs_pruned

    def test_pruning_reduces_live_runs(self):
        def peak_runs(enable):
            workload = GenericWorkload(seed=5, alphabet_size=2)
            events = list(workload.events(2000))
            _, handle = run_with(
                GENERIC_QUERY, events, workload.registry(), enable_pruning=enable
            )
            return handle.matcher.stats.peak_live_runs

        assert peak_runs(True) < peak_runs(False)

    def test_no_pruning_without_domains(self):
        # Without a registry the value domain is unknown → bounds unavailable.
        workload = GenericWorkload(seed=5, alphabet_size=2)
        events = list(workload.events(1000))
        engine, handle = run_with(GENERIC_QUERY, events, None, enable_pruning=True)
        assert handle.matcher.stats.runs_pruned == 0
        assert handle.pruner.stats.unbounded_expression > 0

    def test_loose_domains_prune_conservatively(self):
        # A domain much wider than the data keeps bounds optimistic: pruning
        # stays exact but fires rarely (never, for the stock walk's spread).
        workload = StockWorkload(seed=7)
        events = list(workload.events(1000))
        _, handle = run_with(STOCK_QUERY, events, workload.registry(), True)
        assert handle.pruner.stats.attempts > 0

    def test_smaller_k_prunes_more(self):
        def pruned_for(k):
            workload = GenericWorkload(seed=11, alphabet_size=2)
            events = list(workload.events(2000))
            query = GENERIC_QUERY.replace("LIMIT 1", f"LIMIT {k}")
            _, handle = run_with(query, events, workload.registry(), True)
            return handle.matcher.stats.runs_pruned

        assert pruned_for(1) >= pruned_for(10)

    def test_prune_rate_statistic(self):
        workload = GenericWorkload(seed=5, alphabet_size=2)
        events = list(workload.events(1500))
        _, handle = run_with(GENERIC_QUERY, events, workload.registry(), True)
        stats = handle.pruner.stats
        assert 0.0 < stats.prune_rate <= 1.0
        assert stats.attempts >= stats.pruned


class TestPrunerGating:
    """Pruning only engages where it is sound (see DESIGN.md)."""

    def test_no_pruner_without_rank(self):
        engine = CEPREngine(enable_pruning=True)
        handle = engine.register_query("PATTERN SEQ(A a) WITHIN 5 EVENTS LIMIT 1")
        assert handle.pruner is None

    def test_no_pruner_without_limit(self):
        engine = CEPREngine(enable_pruning=True)
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.x EMIT ON WINDOW CLOSE"
        )
        assert handle.pruner is None

    def test_no_pruner_for_sliding_emission(self):
        engine = CEPREngine(enable_pruning=True)
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.x LIMIT 1 EMIT EAGER"
        )
        assert handle.pruner is None

    def test_pruner_disabled_by_engine_flag(self):
        engine = CEPREngine(enable_pruning=False)
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.x LIMIT 1 "
            "EMIT ON WINDOW CLOSE"
        )
        assert handle.pruner is None

    def test_pruner_present_when_all_conditions_met(self):
        engine = CEPREngine(enable_pruning=True)
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.x LIMIT 1 "
            "EMIT ON WINDOW CLOSE"
        )
        assert handle.pruner is not None
