"""Tests for the skyline (Pareto-front) ranking extension."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import CEPREngine, Event
from repro.engine.match import Match
from repro.language.ast_nodes import Direction
from repro.language.errors import EvaluationError
from repro.ranking.skyline import SkylineSet, dominates, pareto_front

DD = [Direction.DESC, Direction.DESC]


def make_match(index, *rank_values):
    match = Match(
        bindings={},
        first_seq=index,
        last_seq=index,
        first_ts=float(index),
        last_ts=float(index),
        detection_index=index,
    )
    match.rank_values = tuple(rank_values)
    return match


class TestDominates:
    def test_strict_domination(self):
        assert dominates((2, 2), (1, 1))

    def test_partial_improvement_dominates(self):
        assert dominates((2, 1), (1, 1))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_tradeoff_is_incomparable(self):
        assert not dominates((2, 0), (0, 2))
        assert not dominates((0, 2), (2, 0))


class TestParetoFront:
    def test_front_of_tradeoffs(self):
        matches = [
            make_match(0, 10.0, 1.0),
            make_match(1, 5.0, 5.0),
            make_match(2, 1.0, 10.0),
            make_match(3, 4.0, 4.0),  # dominated by (5, 5)
        ]
        front = pareto_front(matches, DD)
        assert [m.detection_index for m in front] == [0, 1, 2]

    def test_directions_respected(self):
        # profit DESC, duration ASC: (10, 1) beats (5, 5)
        matches = [make_match(0, 10.0, 1.0), make_match(1, 5.0, 5.0)]
        front = pareto_front(matches, [Direction.DESC, Direction.ASC])
        assert [m.detection_index for m in front] == [0]

    def test_duplicates_all_kept(self):
        matches = [make_match(0, 3.0, 3.0), make_match(1, 3.0, 3.0)]
        assert len(pareto_front(matches, DD)) == 2

    def test_empty_input(self):
        assert pareto_front([], DD) == []

    def test_single_criterion_is_max(self):
        matches = [make_match(i, float(i)) for i in range(5)]
        front = pareto_front(matches, [Direction.DESC])
        assert [m.detection_index for m in front] == [4]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="directions"):
            pareto_front([make_match(0, 1.0)], DD)

    def test_non_numeric_rejected(self):
        bad = make_match(0, "oops", 1.0)
        with pytest.raises(EvaluationError, match="numeric"):
            pareto_front([bad], DD)

    def test_accepts_compiled_rank_keys(self):
        engine = CEPREngine()
        handle = engine.register_query(
            """
            PATTERN SEQ(Buy b, Sell s)
            WHERE b.symbol == s.symbol
            WITHIN 100 EVENTS
            USING SKIP_TILL_ANY
            RANK BY s.price - b.price DESC, duration() ASC
            EMIT ON WINDOW CLOSE
            """
        )
        engine.run(
            [
                Event("Buy", 1.0, symbol="X", price=10.0),
                Event("Sell", 2.0, symbol="X", price=20.0),   # profit 10, dur 1
                Event("Buy", 3.0, symbol="X", price=10.0),
                Event("Sell", 9.0, symbol="X", price=25.0),   # profit 15, dur 6 / 8
            ]
        )
        front = pareto_front(handle.matches(), handle.analyzed.rank_keys)
        profits = sorted(m.rank_values[0] for m in front)
        assert 15.0 in profits       # best profit is always on the front
        assert 10.0 in profits       # best duration trade-off survives too


class TestSkylineSet:
    def test_incremental_matches_batch(self):
        matches = [
            make_match(0, 1.0, 9.0),
            make_match(1, 5.0, 5.0),
            make_match(2, 3.0, 3.0),
            make_match(3, 9.0, 1.0),
            make_match(4, 6.0, 6.0),
        ]
        skyline = SkylineSet(DD)
        for match in matches:
            skyline.insert(match)
        assert [m.detection_index for m in skyline.front()] == [
            m.detection_index for m in pareto_front(matches, DD)
        ]

    def test_dominating_insert_evicts(self):
        skyline = SkylineSet(DD)
        skyline.insert(make_match(0, 1.0, 1.0))
        assert skyline.insert(make_match(1, 2.0, 2.0))
        assert len(skyline) == 1
        assert skyline.evicted == 1

    def test_dominated_insert_rejected(self):
        skyline = SkylineSet(DD)
        skyline.insert(make_match(0, 5.0, 5.0))
        assert not skyline.insert(make_match(1, 1.0, 1.0))
        assert skyline.rejected == 1

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_front_invariants(self, vectors):
        matches = [make_match(i, float(a), float(b)) for i, (a, b) in enumerate(vectors)]
        skyline = SkylineSet(DD)
        for match in matches:
            skyline.insert(match)
        front = skyline.front()
        front_vectors = [(m.rank_values[0], m.rank_values[1]) for m in front]
        # 1. mutually non-dominated
        for i, a in enumerate(front_vectors):
            for j, b in enumerate(front_vectors):
                if i != j:
                    assert not dominates(a, b) or a == b
        # 2. everything off the front is dominated by someone on it (or a duplicate)
        front_ids = {m.detection_index for m in front}
        for match in matches:
            if match.detection_index in front_ids:
                continue
            vector = (match.rank_values[0], match.rank_values[1])
            assert any(
                dominates(fv, vector) or fv == vector for fv in front_vectors
            )
        # 3. incremental equals batch
        assert front_ids == {m.detection_index for m in pareto_front(matches, DD)}
