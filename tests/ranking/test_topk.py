"""Unit tests for the top-k containers."""

from repro.engine.match import Match
from repro.language.ast_nodes import WindowKind, WindowSpec
from repro.ranking.topk import EpochTopK, SlidingRanking


def make_match(score, index, last_seq=0, last_ts=0.0):
    return Match(
        bindings={},
        first_seq=last_seq,
        last_seq=last_seq,
        first_ts=last_ts,
        last_ts=last_ts,
        detection_index=index,
        score=(score,),
    )


class TestEpochTopK:
    def test_keeps_best_k(self):
        topk = EpochTopK(2)
        for i, score in enumerate([5.0, 1.0, 3.0, 0.5]):
            topk.insert(make_match(score, i))
        assert [m.score[0] for m in topk.ranking()] == [0.5, 1.0]

    def test_insert_returns_retention(self):
        topk = EpochTopK(1)
        assert topk.insert(make_match(5.0, 0)) is True
        assert topk.insert(make_match(9.0, 1)) is False
        assert topk.insert(make_match(1.0, 2)) is True

    def test_unbounded_when_k_none(self):
        topk = EpochTopK(None)
        for i in range(10):
            topk.insert(make_match(float(-i), i))
        assert len(topk) == 10
        assert topk.kth_key() is None
        assert not topk.is_full

    def test_kth_key_only_when_full(self):
        topk = EpochTopK(2)
        topk.insert(make_match(1.0, 0))
        assert topk.kth_key() is None
        topk.insert(make_match(2.0, 1))
        assert topk.kth_key() == (2.0, 1)

    def test_discarded_counter(self):
        topk = EpochTopK(1)
        topk.insert(make_match(1.0, 0))
        topk.insert(make_match(2.0, 1))  # rejected
        topk.insert(make_match(0.5, 2))  # evicts
        assert topk.discarded == 2

    def test_ties_break_by_detection_order(self):
        topk = EpochTopK(1)
        topk.insert(make_match(1.0, 5))
        topk.insert(make_match(1.0, 2))
        assert topk.ranking()[0].detection_index == 2

    def test_ranking_is_sorted(self):
        topk = EpochTopK(5)
        for i, score in enumerate([3.0, 1.0, 2.0]):
            topk.insert(make_match(score, i))
        assert [m.score[0] for m in topk.ranking()] == [1.0, 2.0, 3.0]

    def test_iteration(self):
        topk = EpochTopK(3)
        topk.insert(make_match(1.0, 0))
        assert len(list(topk)) == 1


class TestSlidingRanking:
    def window(self, span=5, kind=WindowKind.COUNT):
        return WindowSpec(kind, span)

    def test_ranking_orders_live_matches(self):
        sliding = SlidingRanking(2, self.window())
        for i, score in enumerate([3.0, 1.0, 2.0]):
            sliding.insert(make_match(score, i))
        assert [m.score[0] for m in sliding.ranking()] == [1.0, 2.0]

    def test_k_none_returns_all_sorted(self):
        sliding = SlidingRanking(None, self.window())
        for i, score in enumerate([3.0, 1.0]):
            sliding.insert(make_match(score, i))
        assert [m.score[0] for m in sliding.ranking()] == [1.0, 3.0]

    def test_count_expiry(self):
        sliding = SlidingRanking(10, self.window(span=3))
        sliding.insert(make_match(1.0, 0, last_seq=0))
        sliding.insert(make_match(2.0, 1, last_seq=2))
        dropped = sliding.expire(now_seq=3, now_ts=0.0)
        assert dropped == 1 and len(sliding) == 1
        assert sliding.expired == 1

    def test_time_expiry(self):
        sliding = SlidingRanking(10, self.window(span=5.0, kind=WindowKind.TIME))
        sliding.insert(make_match(1.0, 0, last_ts=0.0))
        sliding.insert(make_match(2.0, 1, last_ts=4.0))
        dropped = sliding.expire(now_seq=0, now_ts=6.0)
        assert dropped == 1

    def test_expiry_promotes_dominated_match(self):
        sliding = SlidingRanking(1, self.window(span=3))
        sliding.insert(make_match(1.0, 0, last_seq=0))  # best but old
        sliding.insert(make_match(2.0, 1, last_seq=2))
        assert sliding.ranking()[0].score[0] == 1.0
        sliding.expire(now_seq=3, now_ts=0.0)
        assert sliding.ranking()[0].score[0] == 2.0

    def test_no_window_never_expires(self):
        sliding = SlidingRanking(1, None)
        sliding.insert(make_match(1.0, 0))
        assert sliding.expire(10_000, 10_000.0) == 0

    def test_expire_all(self):
        sliding = SlidingRanking(1, self.window(span=1))
        sliding.insert(make_match(1.0, 0, last_seq=0))
        sliding.insert(make_match(1.5, 1, last_seq=0))
        assert sliding.expire(now_seq=5, now_ts=0.0) == 2
        assert sliding.ranking() == []
