"""Rank operator behaviour per emission policy, through the engine facade."""

import pytest

from repro import CEPREngine, EmissionKind, Event


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


def run(query_text, events, **engine_kwargs):
    engine = CEPREngine(**engine_kwargs)
    handle = engine.register_query(query_text)
    engine.run(events)
    return handle


class TestWindowCloseEmission:
    QUERY = (
        "PATTERN SEQ(A a, B b) WITHIN 4 EVENTS USING SKIP_TILL_ANY "
        "RANK BY b.x - a.x DESC LIMIT 2 EMIT ON WINDOW CLOSE"
    )

    def test_epoch_rankings(self):
        # epoch 0: seqs 0-3, epoch 1: seqs 4-7
        handle = run(
            self.QUERY,
            [
                E("A", 1, x=0),
                E("B", 2, x=5),
                E("B", 3, x=9),
                E("Z", 4),
                E("A", 5, x=0),
                E("B", 6, x=1),
            ],
        )
        emissions = handle.results()
        assert [e.kind for e in emissions] == [
            EmissionKind.WINDOW_CLOSE,
            EmissionKind.WINDOW_CLOSE,
        ]
        first, second = emissions
        assert first.epoch == 0 and second.epoch == 1
        assert [m.rank_values[0] for m in first.ranking] == [9, 5]
        assert [m.rank_values[0] for m in second.ranking] == [1]

    def test_limit_cuts_ranking(self):
        handle = run(
            self.QUERY,
            [E("A", 1, x=0), E("B", 2, x=1), E("B", 3, x=2), E("B", 4, x=3)],
        )
        # B at seq 3 is in epoch 0 (seqs 0-3): matches 1,2,3 → top-2 kept
        [emission] = handle.results()
        assert [m.rank_values[0] for m in emission.ranking] == [3, 2]

    def test_empty_epochs_not_emitted(self):
        handle = run(self.QUERY, [E("Z", i) for i in range(1, 10)])
        assert handle.results() == []

    def test_ascending_direction(self):
        handle = run(
            "PATTERN SEQ(A a, B b) WITHIN 8 EVENTS USING SKIP_TILL_ANY "
            "RANK BY b.x ASC EMIT ON WINDOW CLOSE",
            [E("A", 1, x=0), E("B", 2, x=5), E("B", 3, x=1)],
        )
        [emission] = handle.results()
        assert [m.rank_values[0] for m in emission.ranking] == [1, 5]

    def test_lexicographic_tiebreak(self):
        handle = run(
            "PATTERN SEQ(A a, B b) WITHIN 8 EVENTS USING SKIP_TILL_ANY "
            "RANK BY b.x DESC, b.y ASC EMIT ON WINDOW CLOSE",
            [E("A", 1, x=0), E("B", 2, x=5, y=2), E("B", 3, x=5, y=1)],
        )
        [emission] = handle.results()
        assert [m.rank_values for m in emission.ranking] == [(5, 1), (5, 2)]


class TestPeriodicEmission:
    def test_every_n_events(self):
        handle = run(
            "PATTERN SEQ(A a) WITHIN 100 EVENTS RANK BY a.x DESC "
            "EMIT EVERY 3 EVENTS",
            [E("A", i, x=i) for i in range(1, 8)],
        )
        emissions = handle.results()
        periodic = [e for e in emissions if e.kind is EmissionKind.PERIODIC]
        assert len(periodic) == 2  # events 3 and 6
        assert periodic[0].ranking[0].rank_values == (3,)
        final = [e for e in emissions if e.kind is EmissionKind.FINAL]
        assert len(final) == 1

    def test_every_time_period(self):
        handle = run(
            "PATTERN SEQ(A a) WITHIN 100 SECONDS RANK BY a.x DESC "
            "EMIT EVERY 5 SECONDS",
            [E("A", float(t), x=t) for t in range(0, 13)],
        )
        periodic = [
            e for e in handle.results() if e.kind is EmissionKind.PERIODIC
        ]
        assert len(periodic) == 2

    def test_sliding_scope_expires_matches(self):
        handle = run(
            "PATTERN SEQ(A a) WITHIN 4 EVENTS RANK BY a.x DESC "
            "EMIT EVERY 4 EVENTS",
            [E("A", 1, x=100)] + [E("Z", i) for i in range(2, 6)] + [E("A", 6, x=1)],
        )
        emissions = [e for e in handle.results() if e.ranking]
        # by the second periodic snapshot the x=100 match has expired
        last = emissions[-1]
        assert [m.rank_values[0] for m in last.ranking] == [1]


class TestEagerEmission:
    QUERY = (
        "PATTERN SEQ(A a) WITHIN 100 EVENTS RANK BY a.x DESC LIMIT 2 EMIT EAGER"
    )

    def test_emits_only_on_topk_change(self):
        handle = run(
            self.QUERY,
            [E("A", 1, x=10), E("A", 2, x=5), E("A", 3, x=7), E("A", 4, x=1)],
        )
        eager = [e for e in handle.results() if e.kind is EmissionKind.EAGER]
        # x=10 enters; x=5 enters; x=7 replaces 5; x=1 changes nothing
        assert len(eager) == 3

    def test_revision_numbers_increase(self):
        handle = run(self.QUERY, [E("A", 1, x=1), E("A", 2, x=2)])
        revisions = [e.revision for e in handle.results()]
        assert revisions == sorted(revisions)
        assert len(set(revisions)) == len(revisions)

    def test_entered_and_exited_deltas(self):
        handle = run(
            self.QUERY, [E("A", 1, x=1), E("A", 2, x=2), E("A", 3, x=3)]
        )
        eager = [e for e in handle.results() if e.kind is EmissionKind.EAGER]
        last = eager[-1]
        assert [m.rank_values[0] for m in last.entered] == [3]
        assert [m.rank_values[0] for m in last.exited] == [1]


class TestUnrankedPassthrough:
    def test_each_match_emitted(self):
        handle = run(
            "PATTERN SEQ(A a, B b)",
            [E("A", 1), E("B", 2), E("A", 3), E("B", 4)],
        )
        emissions = handle.results()
        assert all(e.kind is EmissionKind.MATCH for e in emissions)
        # skip-till-next: each A consumes the next B → (a1,b2), (a3,b4)
        assert len(emissions) == 2

    def test_limit_per_epoch(self):
        handle = run(
            "PATTERN SEQ(A a) WITHIN 4 EVENTS LIMIT 1 EMIT EAGER",
            [E("A", i) for i in range(1, 9)],
        )
        emissions = handle.results()
        # 2 epochs of 4 events, 1 match allowed per epoch
        assert len(emissions) == 2

    def test_unranked_window_close_collects_in_detection_order(self):
        handle = run(
            "PATTERN SEQ(A a) WITHIN 4 EVENTS EMIT ON WINDOW CLOSE",
            [E("A", 1, x=3), E("A", 2, x=1), E("Z", 3), E("Z", 4), E("Z", 5)],
        )
        [emission] = handle.results()
        assert [m.bindings["a"]["x"] for m in emission.ranking] == [3, 1]


class TestFinalFlush:
    def test_tumbling_flush_closes_open_epoch(self):
        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 100 EVENTS RANK BY a.x DESC "
            "EMIT ON WINDOW CLOSE"
        )
        engine.push(E("A", 1, x=5))
        assert handle.results() == []
        engine.flush()
        [emission] = handle.results()
        assert emission.ranking[0].rank_values == (5,)

    def test_double_flush_is_idempotent(self):
        engine = CEPREngine()
        engine.register_query("PATTERN SEQ(A a)")
        engine.push(E("A", 1))
        first = engine.flush()
        assert engine.flush() == []

    def test_push_after_flush_rejected(self):
        engine = CEPREngine()
        engine.register_query("PATTERN SEQ(A a)")
        engine.flush()
        with pytest.raises(RuntimeError, match="already flushed"):
            engine.push(E("A", 1))
