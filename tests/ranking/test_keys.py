"""Unit tests for normalised ranking keys."""

import pytest

from repro.language.ast_nodes import Direction
from repro.language.errors import EvaluationError
from repro.ranking.keys import ReversedStr, normalise_bound, normalise_component


class TestNormaliseComponent:
    def test_numeric_asc_unchanged(self):
        assert normalise_component(3.5, Direction.ASC) == 3.5

    def test_numeric_desc_negated(self):
        assert normalise_component(3.5, Direction.DESC) == -3.5

    def test_bool_treated_as_int(self):
        assert normalise_component(True, Direction.ASC) == 1
        assert normalise_component(True, Direction.DESC) == -1

    def test_string_asc_unchanged(self):
        assert normalise_component("abc", Direction.ASC) == "abc"

    def test_string_desc_wrapped(self):
        wrapped = normalise_component("abc", Direction.DESC)
        assert isinstance(wrapped, ReversedStr)

    def test_unsupported_type_rejected(self):
        with pytest.raises(EvaluationError, match="numbers or strings"):
            normalise_component([1], Direction.ASC)

    def test_desc_ordering_property(self):
        # smaller normalised = better; DESC means big raw values are better
        assert normalise_component(10, Direction.DESC) < normalise_component(
            5, Direction.DESC
        )


class TestReversedStr:
    def test_comparison_is_reversed(self):
        assert ReversedStr("b") < ReversedStr("a")
        assert not ReversedStr("a") < ReversedStr("b")

    def test_equality_and_hash(self):
        assert ReversedStr("x") == ReversedStr("x")
        assert hash(ReversedStr("x")) == hash(ReversedStr("x"))
        assert ReversedStr("x") != ReversedStr("y")

    def test_not_comparable_to_plain_str(self):
        with pytest.raises(TypeError):
            ReversedStr("x") < "y"

    def test_sorting_reverses_lexicographic(self):
        values = [ReversedStr(s) for s in ["b", "a", "c"]]
        assert [v.value for v in sorted(values)] == ["c", "b", "a"]

    def test_repr(self):
        assert "abc" in repr(ReversedStr("abc"))


class TestNormaliseBound:
    def test_asc_keeps_value(self):
        assert normalise_bound(2.0, Direction.ASC) == 2.0

    def test_desc_negates(self):
        assert normalise_bound(2.0, Direction.DESC) == -2.0
