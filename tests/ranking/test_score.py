"""Unit tests for the Scorer and Emission helpers."""

import pytest

from repro.engine.match import Match
from repro.events.event import Event
from repro.language.errors import EvaluationError
from repro.language.parser import parse_query
from repro.language.semantics import analyze
from repro.ranking.emission import Emission, EmissionKind, snapshot_delta
from repro.ranking.score import Scorer


def make_scorer(text):
    return Scorer(analyze(parse_query(text)).rank_keys)


def make_match(**bindings):
    events = [b for b in bindings.values()]
    return Match(
        bindings=bindings,
        first_seq=0,
        last_seq=len(events) - 1,
        first_ts=min(e.timestamp for e in events),
        last_ts=max(e.timestamp for e in events),
        detection_index=0,
    )


class TestScorer:
    def test_fills_raw_and_normalised(self):
        scorer = make_scorer(
            "PATTERN SEQ(A a, B b) WITHIN 5 EVENTS RANK BY b.x - a.x DESC, a.x ASC"
        )
        match = make_match(a=Event("A", 1, x=2.0), b=Event("B", 2, x=10.0))
        scorer.score(match)
        assert match.rank_values == (8.0, 2.0)
        assert match.score == (-8.0, 2.0)

    def test_unranked_scorer_sets_empty_score(self):
        scorer = Scorer(())
        match = make_match(a=Event("A", 1, x=1))
        scorer.score(match)
        assert match.score == () and match.rank_values == ()
        assert not scorer.is_ranked

    def test_duration_in_rank(self):
        scorer = make_scorer(
            "PATTERN SEQ(A a, B b) WITHIN 5 SECONDS RANK BY duration() ASC"
        )
        match = make_match(a=Event("A", 1.0), b=Event("B", 3.5))
        scorer.score(match)
        assert match.rank_values == (2.5,)

    def test_kleene_aggregate_in_rank(self):
        scorer = make_scorer(
            "PATTERN SEQ(B bs+) WITHIN 5 EVENTS RANK BY avg(bs.x) DESC"
        )
        match = Match(
            bindings={"bs": (Event("B", 1, x=2.0), Event("B", 2, x=4.0))},
            first_seq=0,
            last_seq=1,
            first_ts=1.0,
            last_ts=2.0,
        )
        scorer.score(match)
        assert match.rank_values == (3.0,)

    def test_scoring_error_is_wrapped(self):
        scorer = make_scorer("PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.x DESC")
        match = make_match(a=Event("A", 1))  # x missing
        with pytest.raises(EvaluationError, match="RANK BY key"):
            scorer.score(match)

    def test_sort_key_includes_detection_tiebreak(self):
        scorer = make_scorer("PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.x ASC")
        first = make_match(a=Event("A", 1, x=1.0))
        second = make_match(a=Event("A", 2, x=1.0))
        second.detection_index = 1
        scorer.score(first)
        scorer.score(second)
        assert first.sort_key() < second.sort_key()


class TestMatchHelpers:
    def test_events_iteration_and_size(self):
        match = Match(
            bindings={
                "a": Event("A", 1),
                "bs": (Event("B", 2), Event("B", 3)),
            },
            first_seq=0,
            last_seq=2,
            first_ts=1.0,
            last_ts=3.0,
        )
        assert match.size == 3
        assert len(list(match.events())) == 3
        assert match.duration == 2.0

    def test_describe_mentions_bindings_and_score(self):
        match = make_match(a=Event("A", 1))
        match.rank_values = (4.5,)
        text = match.describe()
        assert "a=A@1" in text and "4.5" in text

    def test_getitem(self):
        event = Event("A", 1)
        match = make_match(a=event)
        assert match["a"] is event


class TestSnapshotDelta:
    def matches(self, *indexes):
        out = []
        for index in indexes:
            match = make_match(a=Event("A", 1))
            match.detection_index = index
            out.append(match)
        return out

    def test_entered_and_exited(self):
        prev = self.matches(1, 2)
        cur = self.matches(2, 3)
        entered, exited = snapshot_delta(prev, cur)
        assert [m.detection_index for m in entered] == [3]
        assert [m.detection_index for m in exited] == [1]

    def test_no_change(self):
        prev = self.matches(1)
        entered, exited = snapshot_delta(prev, prev)
        assert entered == [] and exited == []

    def test_emission_describe_and_top(self):
        match = make_match(a=Event("A", 1))
        emission = Emission(
            kind=EmissionKind.WINDOW_CLOSE,
            ranking=[match],
            at_seq=5,
            at_ts=2.0,
            epoch=0,
        )
        assert emission.top is match
        assert "#1" in emission.describe()
        empty = Emission(EmissionKind.EAGER, [], 0, 0.0)
        assert empty.top is None
