"""The public API surface: every exported name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.events",
    "repro.language",
    "repro.engine",
    "repro.ranking",
    "repro.runtime",
    "repro.workloads",
    "repro.baselines",
    "repro.store",
    "repro.serve",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} must declare __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_and_functions_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name)
        if not callable(obj):
            continue  # typing aliases (e.g. PruneHook) carry docs at use site
        if getattr(obj, "__module__", "") == "typing":
            continue
        if not (getattr(obj, "__doc__", None) or "").strip():
            undocumented.append(name)
    assert not undocumented, f"{package_name}: missing docstrings: {undocumented}"


def test_version_string():
    import repro

    assert repro.__version__
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_package_docstrings():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        assert (package.__doc__ or "").strip(), f"{package_name} needs a docstring"
