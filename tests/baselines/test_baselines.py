"""Baselines: answer-equivalence with the integrated path."""

import pytest

from repro import CEPREngine
from repro.baselines.match_then_rank import MatchThenRankQuery
from repro.baselines.unranked import UnrankedQuery, strip_ranking
from repro.language.errors import CEPRSemanticError
from repro.language.parser import parse_query
from repro.workloads.generic import GenericWorkload
from repro.workloads.stock import StockWorkload

STOCK_QUERY = """
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 40 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""


def integrated_emissions(query, events, registry=None):
    engine = CEPREngine(registry=registry)
    handle = engine.register_query(query)
    engine.run(events)
    return handle.results()


def fingerprint(emissions):
    return [
        (e.epoch, tuple((m.first_seq, m.last_seq, m.rank_values) for m in e.ranking))
        for e in emissions
        if e.ranking or e.epoch is not None
    ]


class TestMatchThenRank:
    def test_equivalent_to_integrated_on_stock(self):
        workload = StockWorkload(seed=9)
        events = list(workload.events(2500))
        integrated = integrated_emissions(STOCK_QUERY, events, workload.registry())

        workload.reset()
        events = list(workload.events(2500))
        baseline = MatchThenRankQuery(STOCK_QUERY, workload.registry())
        baseline.run(events)

        assert fingerprint(baseline.emissions) == fingerprint(integrated)

    def test_equivalent_with_kleene_ranking(self):
        query = """
            PATTERN SEQ(A a, B bs+)
            WITHIN 15 EVENTS
            RANK BY count(bs) DESC, avg(bs.value) DESC
            LIMIT 2
            EMIT ON WINDOW CLOSE
        """
        workload = GenericWorkload(seed=4, alphabet_size=2)
        events = list(workload.events(400))
        integrated = integrated_emissions(query, events, workload.registry())

        workload.reset()
        events = list(workload.events(400))
        baseline = MatchThenRankQuery(query, workload.registry())
        baseline.run(events)
        assert fingerprint(baseline.emissions) == fingerprint(integrated)

    def test_buffers_every_match(self):
        workload = GenericWorkload(seed=4, alphabet_size=2)
        events = list(workload.events(500))
        baseline = MatchThenRankQuery(
            "PATTERN SEQ(A a, B b) WITHIN 20 EVENTS USING SKIP_TILL_ANY "
            "RANK BY b.value DESC LIMIT 1 EMIT ON WINDOW CLOSE",
            workload.registry(),
        )
        baseline.run(events)
        emitted = sum(len(e.ranking) for e in baseline.emissions)
        # materialises far more matches than it emits — the cost CEPR avoids
        assert baseline.matches_buffered > emitted

    def test_rejects_non_tumbling_emission(self):
        with pytest.raises(CEPRSemanticError, match="tumbling"):
            MatchThenRankQuery(
                "PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.value EMIT EAGER"
            )


class TestUnranked:
    def test_strip_ranking(self):
        ast = parse_query(
            "PATTERN SEQ(A a) WITHIN 5 EVENTS RANK BY a.x DESC LIMIT 2 "
            "EMIT ON WINDOW CLOSE"
        )
        stripped = strip_ranking(ast)
        assert stripped.rank_by == ()
        assert stripped.limit is None
        assert stripped.emit is None
        assert stripped.window is not None

    def test_finds_same_match_set_as_integrated_matcher(self):
        workload = GenericWorkload(seed=8, alphabet_size=3)
        events = list(workload.events(600))
        query = (
            "PATTERN SEQ(A a, B b) WHERE b.value > a.value "
            "WITHIN 20 EVENTS USING SKIP_TILL_ANY"
        )
        baseline = UnrankedQuery(query)
        baseline.run(events)

        workload.reset()
        events = list(workload.events(600))
        engine = CEPREngine()
        handle = engine.register_query(query)
        engine.run(events)
        integrated = handle.matches()

        def sigs(matches):
            return {(m.first_seq, m.last_seq) for m in matches}

        assert sigs(baseline.matches) == sigs(integrated)

    def test_matches_in_detection_order(self):
        workload = GenericWorkload(seed=8, alphabet_size=2)
        events = list(workload.events(200))
        baseline = UnrankedQuery("PATTERN SEQ(A a, B b) WITHIN 10 EVENTS")
        baseline.run(events)
        indexes = [m.detection_index for m in baseline.matches]
        assert indexes == sorted(indexes)
