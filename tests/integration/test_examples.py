"""Smoke tests: every example script must run and produce its report."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent.parent / "examples"


def run_example(name, *args, timeout=120):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Ranked Buy→Sell matches" in out
        assert "#1 ACME" in out

    def test_stock_trading(self):
        out = run_example("stock_trading.py", "3000")
        assert "best trades" in out
        assert "momentum" in out
        assert "throughput" in out

    def test_health_monitoring(self):
        out = run_example("health_monitoring.py", "8000")
        assert "tachycardia" in out
        assert "processed 8000 readings" in out

    def test_smart_transportation(self):
        out = run_example("smart_transportation.py", "8000")
        assert "congestion onsets" in out

    def test_pareto_trades(self):
        out = run_example("pareto_trades.py", "3000")
        assert "Pareto front" in out

    def test_hierarchical_cep(self):
        out = run_example("hierarchical_cep.py", "6000")
        assert "Trade events derived" in out
        assert "level 2" in out

    def test_backtesting(self):
        out = run_example("backtesting.py", "4000")
        assert "backtesting 3 candidates" in out
        assert "second half only" in out

    @pytest.mark.slow
    def test_live_monitor(self):
        out = run_example("live_monitor.py", "1.0", timeout=60)
        assert "CEPR monitor" in out

    def test_remote_client(self):
        out = run_example("remote_client.py")
        assert "pushed 2000 events" in out
        assert "server exited with code 0" in out

    def test_flightrec_postmortem(self):
        out = run_example("flightrec_postmortem.py")
        assert "on-demand artifact: reason=sigusr2" in out
        assert "postmortem artifact: reason=drain" in out
        assert "flight-recorder postmortem OK" in out

    def test_process_shards(self):
        out = run_example("process_shards.py", "4000")
        assert "all backends byte-identical OK" in out
        assert "process" in out

    def test_shed_overload(self):
        out = run_example("shed_overload.py")
        assert "shed overload demo OK" in out
        assert "server exited with code 0" in out

    def test_all_examples_are_covered(self):
        scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        covered = {
            "quickstart.py",
            "stock_trading.py",
            "health_monitoring.py",
            "smart_transportation.py",
            "pareto_trades.py",
            "backtesting.py",
            "hierarchical_cep.py",
            "live_monitor.py",
            "remote_client.py",
            "flightrec_postmortem.py",
            "shed_overload.py",
            "process_shards.py",
        }
        assert scripts == covered, "new example scripts need smoke tests"
