"""End-to-end scenarios mirroring the demo paper's application domains."""

from repro import CEPREngine, Event
from repro.workloads.sensor import VitalsWorkload
from repro.workloads.stock import StockWorkload
from repro.workloads.traffic import TrafficWorkload


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestStockScenario:
    QUERY = """
        NAME best_trades
        PATTERN SEQ(Buy b, Sell s)
        WHERE b.symbol == s.symbol AND s.price > b.price
        WITHIN 100 EVENTS
        USING SKIP_TILL_ANY
        PARTITION BY symbol
        RANK BY s.price - b.price DESC
        LIMIT 5
        EMIT ON WINDOW CLOSE
    """

    def test_crafted_stream_exact_answer(self):
        engine = CEPREngine()
        handle = engine.register_query(self.QUERY)
        engine.run(
            [
                E("Buy", 1, symbol="X", price=10.0),
                E("Buy", 2, symbol="Y", price=50.0),
                E("Sell", 3, symbol="X", price=12.0),
                E("Sell", 4, symbol="Y", price=49.0),  # loss: filtered
                E("Sell", 5, symbol="X", price=25.0),
            ]
        )
        ranking = handle.final_ranking()
        assert [m.rank_values[0] for m in ranking] == [15.0, 2.0]
        assert all(m["b"]["symbol"] == m["s"]["symbol"] for m in ranking)

    def test_generated_stream_rankings_are_sorted_and_bounded(self):
        workload = StockWorkload(seed=21)
        engine = CEPREngine(registry=workload.registry())
        handle = engine.register_query(self.QUERY)
        engine.run(workload.events(5000))
        for emission in handle.results():
            profits = [m.rank_values[0] for m in emission.ranking]
            assert profits == sorted(profits, reverse=True)
            assert len(profits) <= 5
            assert all(p > 0 for p in profits)


class TestHealthScenario:
    QUERY = """
        NAME tachycardia
        PATTERN SEQ(HeartRate h, HeartRate hs+)
        WHERE h.value > 100 AND hs.value > 100 AND hs.value >= prev(hs.value)
        WITHIN 30 SECONDS
        PARTITION BY patient
        RANK BY count(hs) DESC, max(hs.value) DESC
        LIMIT 3
        EMIT ON WINDOW CLOSE
    """

    def test_crafted_episode_ranked_by_length(self):
        engine = CEPREngine()
        handle = engine.register_query(self.QUERY)
        readings = [102, 110, 120, 130]
        engine.run(
            [
                E("HeartRate", float(i), patient=1, value=float(v))
                for i, v in enumerate(readings)
            ]
        )
        ranking = handle.final_ranking()
        assert ranking, "escalating tachycardia must match"
        best = ranking[0]
        assert best.rank_values[0] == 3  # hs holds the 3 readings after h
        assert best.rank_values[1] == 130.0

    def test_generated_stream_finds_episodes(self):
        workload = VitalsWorkload(seed=13, anomaly_rate=0.03)
        engine = CEPREngine(registry=workload.registry())
        handle = engine.register_query(self.QUERY)
        engine.run(workload.events(6000))
        matched_patients = {
            m.partition_key[0]
            for emission in handle.results()
            for m in emission.ranking
        }
        assert matched_patients, "injected episodes should surface"


class TestTrafficScenario:
    QUERY = """
        NAME congestion_onset
        PATTERN SEQ(SpeedReport s1, SpeedReport slow+, NOT Clear cl)
        WHERE s1.speed > 70 AND slow.speed < 50 AND slow.speed <= prev(slow.speed)
        WITHIN 60 SECONDS
        PARTITION BY segment
        RANK BY first(slow.speed) - last(slow.speed) DESC
        LIMIT 3
        EMIT ON WINDOW CLOSE
    """

    def test_crafted_onset(self):
        engine = CEPREngine()
        handle = engine.register_query(self.QUERY)
        engine.run(
            [
                E("SpeedReport", 1.0, segment=1, speed=90.0),
                E("SpeedReport", 2.0, segment=1, speed=45.0),
                E("SpeedReport", 3.0, segment=1, speed=30.0),
                E("SpeedReport", 4.0, segment=1, speed=20.0),
            ]
        )
        ranking = handle.final_ranking()
        assert ranking
        # sharpest decline: 45 → 20
        assert ranking[0].rank_values[0] == 25.0

    def test_clear_event_suppresses_match(self):
        engine = CEPREngine()
        handle = engine.register_query(self.QUERY)
        engine.run(
            [
                E("SpeedReport", 1.0, segment=1, speed=90.0),
                E("SpeedReport", 2.0, segment=1, speed=45.0),
                E("Clear", 3.0, segment=1),
            ]
        )
        # the Clear kills the pending onset for that closure
        rankings = [m for e in handle.results() for m in e.ranking]
        assert all(m.last_ts < 3.0 or m.rank_values[0] == 0 for m in rankings)

    def test_generated_stream(self):
        workload = TrafficWorkload(seed=17, incident_rate=0.01)
        engine = CEPREngine(registry=workload.registry())
        handle = engine.register_query(self.QUERY)
        engine.run(workload.events(8000))
        for emission in handle.results():
            drops = [m.rank_values[0] for m in emission.ranking]
            assert drops == sorted(drops, reverse=True)


class TestMultiQueryDeployment:
    def test_three_domains_in_one_engine(self):
        stock = StockWorkload(seed=1, rate=100.0)
        engine = CEPREngine()
        trades = engine.register_query(TestStockScenario.QUERY)
        spikes = engine.register_query(
            """
            NAME price_spikes
            PATTERN SEQ(Sell a, Sell b)
            WHERE a.symbol == b.symbol AND b.price > a.price * 1.01
            WITHIN 50 EVENTS
            PARTITION BY symbol
            RANK BY b.price / a.price DESC
            LIMIT 3
            EMIT ON WINDOW CLOSE
            """
        )
        engine.run(stock.events(4000))
        assert trades.metrics.events_routed > 0
        assert spikes.metrics.events_routed > 0
        # Buy events must not reach the spikes query
        assert spikes.metrics.events_routed < trades.metrics.events_routed

    def test_independent_results_per_query(self):
        engine = CEPREngine()
        q1 = engine.register_query("PATTERN SEQ(A a)")
        q2 = engine.register_query("PATTERN SEQ(A a, B b)")
        engine.run([E("A", 1), E("B", 2)])
        assert len(q1.matches()) == 1
        assert len(q2.matches()) == 1


class TestEngineReuseAcrossWindows:
    def test_long_stream_many_epochs(self):
        engine = CEPREngine()
        handle = engine.register_query(
            "PATTERN SEQ(A a) WITHIN 10 EVENTS RANK BY a.x DESC LIMIT 1 "
            "EMIT ON WINDOW CLOSE"
        )
        engine.run([E("A", float(i), x=i % 10) for i in range(100)])
        emissions = handle.results()
        assert len(emissions) == 10
        assert all(e.ranking[0].rank_values == (9,) for e in emissions)
