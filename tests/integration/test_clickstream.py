"""Cart-abandonment scenario: trailing negation + ranking on clickstream."""

from repro import CEPREngine, Event
from repro.workloads.clickstream import ClickstreamWorkload

ABANDONMENT = """
    NAME abandonment
    PATTERN SEQ(AddToCart cart, NOT Purchase bought)
    WHERE bought.value == cart.value
    WITHIN 120 SECONDS
    PARTITION BY user
    RANK BY cart.value DESC
    LIMIT 5
    EMIT ON WINDOW CLOSE
"""


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


class TestCraftedStreams:
    def test_purchase_suppresses_abandonment(self):
        engine = CEPREngine()
        handle = engine.register_query(ABANDONMENT)
        engine.run(
            [
                E("AddToCart", 1.0, user=1, value=50.0),
                E("Purchase", 5.0, user=1, value=50.0),
                E("AddToCart", 6.0, user=2, value=80.0),
                # user 2 never purchases
            ]
        )
        abandoned = [m for e in handle.results() for m in e.ranking]
        assert [m["cart"]["value"] for m in abandoned] == [80.0]
        assert abandoned[0].partition_key == (2,)

    def test_other_users_purchase_does_not_suppress(self):
        engine = CEPREngine()
        handle = engine.register_query(ABANDONMENT)
        engine.run(
            [
                E("AddToCart", 1.0, user=1, value=50.0),
                E("Purchase", 2.0, user=2, value=50.0),  # different partition
            ]
        )
        abandoned = [m for e in handle.results() for m in e.ranking]
        assert len(abandoned) == 1

    def test_ranked_by_cart_value(self):
        engine = CEPREngine()
        handle = engine.register_query(ABANDONMENT)
        engine.run(
            [
                E("AddToCart", 1.0, user=1, value=10.0),
                E("AddToCart", 2.0, user=2, value=300.0),
                E("AddToCart", 3.0, user=3, value=75.0),
            ]
        )
        [emission] = handle.results()
        assert [m.rank_values[0] for m in emission.ranking] == [300.0, 75.0, 10.0]


class TestGeneratedStream:
    def test_abandonments_found_and_ranked(self):
        workload = ClickstreamWorkload(seed=11, users=15, abandon_rate=0.4)
        engine = CEPREngine(registry=workload.registry())
        handle = engine.register_query(ABANDONMENT)
        engine.run(workload.events(12_000))

        emissions = [e for e in handle.results() if e.ranking]
        assert emissions, "40% abandonment must surface matches"
        for emission in emissions:
            values = [m.rank_values[0] for m in emission.ranking]
            assert values == sorted(values, reverse=True)
            assert len(values) <= 5

    def test_zero_abandonment_yields_far_fewer_matches(self):
        def abandoned_count(rate):
            workload = ClickstreamWorkload(seed=11, users=15, abandon_rate=rate)
            engine = CEPREngine(registry=workload.registry())
            handle = engine.register_query(ABANDONMENT)
            engine.run(workload.events(8_000))
            return handle.metrics.matches

        # rate 0 still yields some pendings confirmed before the purchase
        # lands?  No: the purchase must land within the window; with gap≈6
        # events it always does, so only stream-end truncation remains.
        assert abandoned_count(0.0) < abandoned_count(0.8) / 5
