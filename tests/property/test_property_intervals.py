"""Property test: interval evaluation is a sound enclosure.

This is the load-bearing guarantee behind pruning: for ANY completion of a
partial match (future events drawn from the declared domains), the actual
value of the scoring expression must lie inside the interval the evaluator
computed from the partial view.  We generate random arithmetic expressions
over two variables, bind one, enumerate random completions for the other,
and check containment.
"""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.events.event import Event
from repro.events.schema import Domain
from repro.language.ast_nodes import (
    Aggregate,
    AttrRef,
    Binary,
    BinaryOp,
    Expr,
    FuncCall,
    Literal,
    Unary,
    UnaryOp,
)
from repro.language.errors import EvaluationError
from repro.language.expressions import EvalContext, compile_expr
from repro.language.intervals import IntervalEvaluator, PartialMatchView

DOMAIN = Domain(0.0, 100.0)

values = st.floats(min_value=0.0, max_value=100.0, allow_nan=False).map(
    lambda f: round(f, 3)
)


def scoring_expressions() -> st.SearchStrategy[Expr]:
    leaves = st.one_of(
        values.map(Literal),
        st.just(AttrRef("a", "value")),   # bound variable
        st.just(AttrRef("b", "value")),   # unbound variable
    )

    def extend(children):
        return st.one_of(
            st.tuples(
                st.sampled_from([BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL]),
                children,
                children,
            ).map(lambda t: Binary(*t)),
            children.map(lambda c: Unary(UnaryOp.NEG, c)),
            children.map(lambda c: FuncCall("abs", (c,))),
            children.map(lambda c: FuncCall("min2", (c, Literal(50.0)))),
            children.map(lambda c: FuncCall("max2", (c, Literal(50.0)))),
        )

    return st.recursive(leaves, extend, max_leaves=6)


def make_view(a_value: float):
    return PartialMatchView(
        bindings={"a": Event("A", 1.0, value=a_value)},
        var_types={"a": "A", "b": "B"},
        kleene_vars=frozenset(),
        open_vars=frozenset({"b"}),
        domain_of=lambda _t, _attr: DOMAIN,
        latest_timestamp=1.0,
    )


class TestSingletonSoundness:
    @given(scoring_expressions(), values, st.lists(values, min_size=1, max_size=5))
    @settings(max_examples=300, deadline=None)
    def test_completions_lie_within_bound(self, expr, a_value, b_candidates):
        view = make_view(a_value)
        interval = IntervalEvaluator(view).bound(expr)
        if interval is None:
            return  # no claim made — pruning would skip this run
        evaluator = compile_expr(expr)
        for b_value in b_candidates:
            ctx = EvalContext(
                bindings={
                    "a": Event("A", 1.0, value=a_value),
                    "b": Event("B", 2.0, value=b_value),
                }
            )
            try:
                actual = evaluator(ctx)
            except EvaluationError:
                continue
            assert interval.lo - 1e-9 <= actual <= interval.hi + 1e-9, (
                f"{expr} = {actual} outside {interval} for a={a_value}, b={b_value}"
            )


def kleene_aggregates() -> st.SearchStrategy[Expr]:
    return st.sampled_from(
        [
            Aggregate("sum", "ks", "value"),
            Aggregate("avg", "ks", "value"),
            Aggregate("min", "ks", "value"),
            Aggregate("max", "ks", "value"),
            Aggregate("count", "ks", None),
            Aggregate("first", "ks", "value"),
            Aggregate("last", "ks", "value"),
        ]
    )


class TestKleeneAggregateSoundness:
    @given(
        kleene_aggregates(),
        st.lists(values, min_size=1, max_size=4),  # observed prefix
        st.lists(values, min_size=0, max_size=4),  # future elements
    )
    @settings(max_examples=300, deadline=None)
    def test_aggregate_of_any_extension_is_enclosed(self, expr, prefix, future):
        max_count = len(prefix) + 4
        observed = tuple(
            Event("K", float(i), value=v) for i, v in enumerate(prefix)
        )
        view = PartialMatchView(
            bindings={"ks": observed},
            var_types={"ks": "K"},
            kleene_vars=frozenset({"ks"}),
            open_vars=frozenset({"ks"}),
            domain_of=lambda _t, _attr: DOMAIN,
            max_kleene_count=max_count,
        )
        interval = IntervalEvaluator(view).bound(expr)
        assert interval is not None, "aggregates over declared domains must bound"

        full = list(prefix) + list(future[: max_count - len(prefix)])
        events = tuple(Event("K", float(i), value=v) for i, v in enumerate(full))
        actual = compile_expr(expr)(EvalContext(bindings={"ks": events}))
        assert interval.lo - 1e-9 <= actual <= interval.hi + 1e-9, (
            f"{expr.func} = {actual} outside {interval} for "
            f"prefix={prefix}, future={future}"
        )


class TestDurationSoundness:
    @given(
        st.floats(min_value=0, max_value=50, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_duration_bound_contains_final_duration(self, so_far, extra):
        max_duration = 200.0
        view = PartialMatchView(
            bindings={},
            var_types={},
            kleene_vars=frozenset(),
            open_vars=frozenset(),
            domain_of=lambda _t, _attr: None,
            duration_so_far=so_far,
            max_duration=max_duration,
        )
        interval = IntervalEvaluator(view).bound(FuncCall("duration", ()))
        final = min(so_far + extra, max_duration)
        assert interval is not None
        assert interval.lo <= final <= interval.hi


class TestIntervalAlgebraProperties:
    @given(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_pointwise_operations_enclosed(self, a_lo, a_hi, b_lo, b_hi):
        from repro.language.intervals import Interval

        a = Interval(min(a_lo, a_hi), max(a_lo, a_hi))
        b = Interval(min(b_lo, b_hi), max(b_lo, b_hi))
        for x in (a.lo, a.hi, (a.lo + a.hi) / 2):
            for y in (b.lo, b.hi, (b.lo + b.hi) / 2):
                add, sub, mul = a + b, a - b, a * b
                assert add.lo - 1e-9 <= x + y <= add.hi + 1e-9
                assert sub.lo - 1e-9 <= x - y <= sub.hi + 1e-9
                assert mul.lo - 1e-6 <= x * y <= mul.hi + 1e-6
                quotient = a / b
                if quotient is not None and y != 0:
                    # reciprocal-multiply can differ from direct division by
                    # a few ULPs; compare with relative slack.
                    slack = 1e-9 * max(abs(quotient.lo), abs(quotient.hi), 1.0)
                    assert quotient.lo - slack <= x / y <= quotient.hi + slack
