"""Property test: the optimiser preserves expression semantics.

For arbitrary expressions and arbitrary event payloads, the optimised
expression must either produce exactly the same value as the original, or
both must raise :class:`EvaluationError` (error *presence* is preserved;
the specific message may differ).
"""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.events.event import Event
from repro.language.ast_nodes import (
    AttrRef,
    Binary,
    BinaryOp,
    Expr,
    FuncCall,
    Literal,
    Unary,
    UnaryOp,
)
from repro.language.errors import EvaluationError
from repro.language.expressions import EvalContext, compile_expr
from repro.language.optimizer import optimize

values = st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.floats(min_value=-100, max_value=100, allow_nan=False).map(
        lambda f: round(f, 3)
    ),
    st.booleans(),
    st.sampled_from(["alpha", "beta", ""]),
)


def expressions() -> st.SearchStrategy[Expr]:
    leaves = st.one_of(
        values.map(Literal),
        st.sampled_from(["x", "y"]).map(lambda attr: AttrRef("a", attr)),
    )

    def extend(children):
        ops = st.sampled_from(list(BinaryOp))
        return st.one_of(
            st.tuples(ops, children, children).map(lambda t: Binary(*t)),
            children.map(lambda c: Unary(UnaryOp.NEG, c)),
            children.map(lambda c: Unary(UnaryOp.NOT, c)),
            children.map(lambda c: FuncCall("abs", (c,))),
            st.tuples(children, children).map(
                lambda t: FuncCall("max2", (t[0], t[1]))
            ),
        )

    return st.recursive(leaves, extend, max_leaves=10)


def outcome(expr: Expr, ctx: EvalContext):
    try:
        value = compile_expr(expr)(ctx)
    except EvaluationError:
        return ("error",)
    if isinstance(value, float) and math.isnan(value):
        return ("nan",)
    return ("value", value)


class TestOptimizerEquivalence:
    @given(expressions(), values, values)
    @settings(max_examples=400, deadline=None)
    def test_same_outcome_on_any_payload(self, expr, x, y):
        ctx = EvalContext(bindings={"a": Event("A", 0.0, x=x, y=y)})
        original = outcome(expr, ctx)
        optimized = outcome(optimize(expr), ctx)
        assert original == optimized, f"{expr} -> {optimize(expr)}"

    @given(expressions())
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, expr):
        once = optimize(expr)
        assert optimize(once) == once

    @given(expressions(), values, values)
    @settings(max_examples=200, deadline=None)
    def test_never_larger(self, expr, x, y):
        from repro.language.ast_nodes import iter_subexpressions

        before = sum(1 for _ in iter_subexpressions(expr))
        after = sum(1 for _ in iter_subexpressions(optimize(expr)))
        assert after <= before


def identity_shapes() -> st.SearchStrategy[Expr]:
    """Expressions shaped exactly like the algebraic-identity rewrites.

    The general generator rarely hits ``x + 0`` / ``x * 1`` / ``x / 0``
    with a non-numeric ``x``; this directed generator makes those shapes —
    where the elision soundness bug lived — the whole search space.
    """
    inner = st.one_of(
        st.sampled_from(["x", "y"]).map(lambda attr: AttrRef("a", attr)),
        values.map(Literal),
        st.sampled_from(["x", "y"]).map(
            lambda attr: FuncCall("abs", (AttrRef("a", attr),))
        ),
    )
    zero_or_one = st.sampled_from([Literal(0), Literal(1), Literal(0.0), Literal(1.0)])
    ops = st.sampled_from(
        [BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.DIV, BinaryOp.MOD]
    )

    def build(op, x, unit, flipped):
        return Binary(op, unit, x) if flipped else Binary(op, x, unit)

    return st.builds(build, ops, inner, zero_or_one, st.booleans())


class TestFoldSoundness:
    """Regression suite for the identity-elision and fold-error bugs."""

    @given(identity_shapes(), values, values)
    @settings(max_examples=200, deadline=None)
    def test_identity_shapes_preserve_outcome(self, expr, x, y):
        ctx = EvalContext(bindings={"a": Event("A", 0.0, x=x, y=y)})
        assert outcome(expr, ctx) == outcome(optimize(expr), ctx), (
            f"{expr} -> {optimize(expr)}"
        )

    def test_string_plus_zero_still_raises(self):
        expr = Binary(BinaryOp.ADD, AttrRef("a", "x"), Literal(0))
        optimized = optimize(expr)
        ctx = EvalContext(bindings={"a": Event("A", 0.0, x="alpha")})
        assert outcome(optimized, ctx) == ("error",)

    def test_numeric_shaped_operand_still_elides(self):
        expr = Binary(
            BinaryOp.ADD, FuncCall("abs", (AttrRef("a", "x"),)), Literal(0)
        )
        assert optimize(expr) == FuncCall("abs", (AttrRef("a", "x"),))

    def test_division_by_zero_literal_not_folded(self):
        expr = Binary(BinaryOp.DIV, Literal(1), Literal(0))
        assert optimize(expr) == expr

    def test_overflowing_fold_deferred_to_runtime(self):
        # exp(1000) overflows float; optimisation must not crash, and the
        # error must still surface on evaluation.
        expr = FuncCall("exp", (Literal(1000),))
        optimized = optimize(expr)
        assert optimized == expr
