"""Property tests: fleet metric aggregation is split-invariant.

Two layers:

* Pure aggregation — :func:`aggregate_query_metrics` (and the
  :class:`LatencyRecorder` absorb underneath it) over any K-way split of
  the same observations equals the unsplit metrics: counters exactly,
  percentiles within float tolerance while the pooled reservoir is under
  capacity.
* End-to-end — a :class:`ShardedEngineRunner` at K ∈ {1, 2, 4, 8} shards
  reports the same per-query counters as a single :class:`CEPREngine` fed
  the identical stream.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import CEPREngine, Event
from repro.runtime.metrics import (
    LatencyRecorder,
    QueryMetrics,
    aggregate_query_metrics,
)
from repro.runtime.sharded import ShardedEngineRunner

SHARD_COUNTS = (1, 2, 4, 8)

# (K, [(latency sample, shard it lands on), ...]) for K ∈ SHARD_COUNTS
samples_and_splits = st.sampled_from(SHARD_COUNTS).flatmap(
    lambda shards: st.lists(
        st.tuples(
            st.floats(
                min_value=1e-7, max_value=1e-2,
                allow_nan=False, allow_infinity=False,
            ),
            st.integers(min_value=0, max_value=shards - 1),
        ),
        min_size=0,
        max_size=200,
    ).map(lambda rows: (shards, rows))
)


class TestPureAggregation:
    @given(samples_and_splits)
    @settings(max_examples=60, deadline=None)
    def test_latency_absorb_is_split_invariant(self, case):
        shards, rows = case
        whole = LatencyRecorder()
        parts = [LatencyRecorder() for _ in range(shards)]
        for value, shard in rows:
            whole.record(value)
            parts[shard].record(value)

        merged = LatencyRecorder()
        for part in parts:
            merged.absorb(part)

        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total, rel=1e-12, abs=0.0)
        assert merged.maximum == whole.maximum
        # under reservoir capacity, pooling keeps every sample: the order
        # statistics agree exactly (sorted sets are identical)
        for q in (0, 50, 90, 99, 100):
            assert merged.percentile(q) == pytest.approx(
                whole.percentile(q), rel=1e-12, abs=0.0
            )

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),  # events_routed
                st.integers(min_value=0, max_value=20),  # matches
                st.integers(min_value=0, max_value=10),  # emissions
                st.integers(min_value=0, max_value=10),  # revisions
            ),
            min_size=0,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_aggregate_query_metrics_sums_counters(self, parts_spec):
        parts = []
        for events_routed, matches, emissions, revisions in parts_spec:
            part = QueryMetrics()
            part.events_routed = events_routed
            part.matches = matches
            part.emissions = emissions
            part.revisions = revisions
            parts.append(part)
        total = aggregate_query_metrics(parts)
        assert total.events_routed == sum(p.events_routed for p in parts)
        assert total.matches == sum(p.matches for p in parts)
        assert total.emissions == sum(p.emissions for p in parts)
        assert total.revisions == sum(p.revisions for p in parts)


QUERY = """
NAME spread
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol AND s.price > b.price
WITHIN 30 EVENTS
PARTITION BY symbol
RANK BY s.price - b.price DESC
LIMIT 3
EMIT ON WINDOW CLOSE
"""

event_specs = st.lists(
    st.tuples(
        st.booleans(),  # Buy / Sell
        st.integers(min_value=0, max_value=5),  # symbol
        st.integers(min_value=1, max_value=100),  # price
    ),
    min_size=0,
    max_size=120,
)


def build_stream(specs):
    events = []
    ts = 0.0
    for is_buy, symbol, price in specs:
        ts += 0.25
        events.append(
            Event(
                "Buy" if is_buy else "Sell",
                ts,
                symbol=f"S{symbol}",
                price=float(price),
            )
        )
    return events


class TestEndToEndShardSplit:
    @given(specs=event_specs, shards=st.sampled_from(SHARD_COUNTS))
    @settings(max_examples=25, deadline=None)
    def test_sharded_counters_equal_single_engine(self, specs, shards):
        events = build_stream(specs)

        engine = CEPREngine()
        handle = engine.register_query(QUERY)
        for event in events:
            engine.push(event)
        engine.flush()

        runner = ShardedEngineRunner(shards=shards)
        view = runner.register_query(QUERY)
        runner.start()
        try:
            for event in events:
                runner.submit(event)
            runner.flush()
        finally:
            runner.stop()

        single = handle.metrics
        fleet = aggregate_query_metrics([h.metrics for h in view.handles])
        assert fleet.events_routed == single.events_routed
        assert fleet.matches == single.matches
        # fleet latency pools one sample per routed event across shards
        assert fleet.latency.count == single.latency.count
        # emission counts compare on the merged stream view
        assert view.metrics.emissions == single.emissions
        assert view.metrics.events_routed == single.events_routed
