"""Property tests: fleet metric aggregation is split-invariant.

Three layers:

* Pure aggregation — :func:`aggregate_query_metrics` (and the
  :class:`LatencyRecorder` absorb underneath it) over any K-way split of
  the same observations equals the unsplit metrics: counters exactly,
  percentiles within float tolerance while the pooled reservoir is under
  capacity.
* End-to-end — a :class:`ShardedEngineRunner` at K ∈ {1, 2, 4, 8} shards
  reports the same per-query counters as a single :class:`CEPREngine` fed
  the identical stream, and the shard-level :class:`CostAccount` records
  merge to exactly the single-engine account.
* Telemetry primitives — :func:`merge_samples` preserves its documented
  sum/max semantics for any shard split, and the
  :class:`FlightRecorder` ring never exceeds its byte budget under
  sustained load while keeping its counters consistent.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import CEPREngine, Event
from repro.observability.cost import CostAccount
from repro.observability.flightrec import FlightRecorder
from repro.observability.pressure import PressureSample, merge_samples
from repro.runtime.metrics import (
    LatencyRecorder,
    QueryMetrics,
    aggregate_query_metrics,
)
from repro.runtime.sharded import ShardedEngineRunner

SHARD_COUNTS = (1, 2, 4, 8)

# (K, [(latency sample, shard it lands on), ...]) for K ∈ SHARD_COUNTS
samples_and_splits = st.sampled_from(SHARD_COUNTS).flatmap(
    lambda shards: st.lists(
        st.tuples(
            st.floats(
                min_value=1e-7, max_value=1e-2,
                allow_nan=False, allow_infinity=False,
            ),
            st.integers(min_value=0, max_value=shards - 1),
        ),
        min_size=0,
        max_size=200,
    ).map(lambda rows: (shards, rows))
)


class TestPureAggregation:
    @given(samples_and_splits)
    @settings(max_examples=60, deadline=None)
    def test_latency_absorb_is_split_invariant(self, case):
        shards, rows = case
        whole = LatencyRecorder()
        parts = [LatencyRecorder() for _ in range(shards)]
        for value, shard in rows:
            whole.record(value)
            parts[shard].record(value)

        merged = LatencyRecorder()
        for part in parts:
            merged.absorb(part)

        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total, rel=1e-12, abs=0.0)
        assert merged.maximum == whole.maximum
        # under reservoir capacity, pooling keeps every sample: the order
        # statistics agree exactly (sorted sets are identical)
        for q in (0, 50, 90, 99, 100):
            assert merged.percentile(q) == pytest.approx(
                whole.percentile(q), rel=1e-12, abs=0.0
            )

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),  # events_routed
                st.integers(min_value=0, max_value=20),  # matches
                st.integers(min_value=0, max_value=10),  # emissions
                st.integers(min_value=0, max_value=10),  # revisions
            ),
            min_size=0,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_aggregate_query_metrics_sums_counters(self, parts_spec):
        parts = []
        for events_routed, matches, emissions, revisions in parts_spec:
            part = QueryMetrics()
            part.events_routed = events_routed
            part.matches = matches
            part.emissions = emissions
            part.revisions = revisions
            parts.append(part)
        total = aggregate_query_metrics(parts)
        assert total.events_routed == sum(p.events_routed for p in parts)
        assert total.matches == sum(p.matches for p in parts)
        assert total.emissions == sum(p.emissions for p in parts)
        assert total.revisions == sum(p.revisions for p in parts)


QUERY = """
NAME spread
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol AND s.price > b.price
WITHIN 30 EVENTS
PARTITION BY symbol
RANK BY s.price - b.price DESC
LIMIT 3
EMIT ON WINDOW CLOSE
"""

event_specs = st.lists(
    st.tuples(
        st.booleans(),  # Buy / Sell
        st.integers(min_value=0, max_value=5),  # symbol
        st.integers(min_value=1, max_value=100),  # price
    ),
    min_size=0,
    max_size=120,
)


def build_stream(specs):
    events = []
    ts = 0.0
    for is_buy, symbol, price in specs:
        ts += 0.25
        events.append(
            Event(
                "Buy" if is_buy else "Sell",
                ts,
                symbol=f"S{symbol}",
                price=float(price),
            )
        )
    return events


class TestEndToEndShardSplit:
    @given(specs=event_specs, shards=st.sampled_from(SHARD_COUNTS))
    @settings(max_examples=25, deadline=None)
    def test_sharded_counters_equal_single_engine(self, specs, shards):
        events = build_stream(specs)

        engine = CEPREngine()
        handle = engine.register_query(QUERY)
        for event in events:
            engine.push(event)
        engine.flush()

        runner = ShardedEngineRunner(shards=shards)
        view = runner.register_query(QUERY)
        runner.start()
        try:
            for event in events:
                runner.submit(event)
            runner.flush()
        finally:
            runner.stop()

        single = handle.metrics
        fleet = aggregate_query_metrics([h.metrics for h in view.handles])
        assert fleet.events_routed == single.events_routed
        assert fleet.matches == single.matches
        # fleet latency pools one sample per routed event across shards
        assert fleet.latency.count == single.latency.count
        # emission counts compare on the merged stream view
        assert view.metrics.emissions == single.emissions
        assert view.metrics.events_routed == single.events_routed

    @given(specs=event_specs, shards=st.sampled_from(SHARD_COUNTS))
    @settings(max_examples=25, deadline=None)
    def test_cost_accounts_merge_to_single_engine_values(self, specs, shards):
        """Shard cost accounts fold to the single-engine account exactly.

        Every counter the account carries — routed events, run
        lifecycle, shared-index hit/miss, matches, errors — must sum
        across shards to the value one engine reports for the identical
        stream.  CPU time is measured, not counted, so it is the one
        field excluded from the exact comparison.
        """
        events = build_stream(specs)

        engine = CEPREngine()
        handle = engine.register_query(QUERY)
        for event in events:
            engine.push(event)
        engine.flush()
        single = handle.cost_account()

        runner = ShardedEngineRunner(shards=shards)
        view = runner.register_query(QUERY)
        runner.start()
        try:
            for event in events:
                runner.submit(event)
            runner.flush()
        finally:
            runner.stop()

        merged = CostAccount.merge(
            [h.cost_account() for h in view.handles]
        )
        assert merged.parts == shards
        assert merged.query == single.query
        assert merged.events_routed == single.events_routed
        assert merged.runs_created == single.runs_created
        assert merged.runs_extended == single.runs_extended
        assert merged.runs_killed == single.runs_killed
        assert merged.runs_pruned == single.runs_pruned
        assert merged.shared_hits == single.shared_hits
        assert merged.shared_misses == single.shared_misses
        assert merged.matches == single.matches
        assert merged.evaluation_errors == single.evaluation_errors
        # derived ratios follow from the counters, so they agree too
        assert merged.hit_ratio == pytest.approx(single.hit_ratio)
        assert merged.prune_ratio == pytest.approx(single.prune_ratio)


pressure_samples = st.builds(
    PressureSample,
    ingest_lag_seconds=st.floats(
        min_value=0.0, max_value=60.0, allow_nan=False, allow_infinity=False
    ),
    queue_depth=st.integers(min_value=0, max_value=1000),
    queue_capacity=st.integers(min_value=0, max_value=1000),
    queue_high_water=st.integers(min_value=0, max_value=1000),
    subscriber_depth=st.integers(min_value=0, max_value=1000),
    subscriber_capacity=st.integers(min_value=0, max_value=1000),
)


class TestPressureMergeProperties:
    @given(st.lists(pressure_samples, min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_merge_semantics_fieldwise(self, parts):
        merged = merge_samples(parts)
        assert merged.ingest_lag_seconds == max(
            p.ingest_lag_seconds for p in parts
        )
        assert merged.queue_depth == sum(p.queue_depth for p in parts)
        assert merged.queue_capacity == sum(p.queue_capacity for p in parts)
        assert merged.queue_high_water == max(p.queue_high_water for p in parts)
        # The subscriber pair travels together: the merged sample carries
        # the (depth, capacity) of the worst-saturated subscriber — taking
        # max(depth) and max(capacity) from different subscribers would
        # understate saturation (9/10 next to 0/100 reading as 9/100).
        def saturation(depth, capacity):
            if capacity <= 0:
                return 0.0
            return min(1.0, depth / capacity)

        assert (merged.subscriber_depth, merged.subscriber_capacity) in {
            (p.subscriber_depth, p.subscriber_capacity) for p in parts
        }
        assert saturation(
            merged.subscriber_depth, merged.subscriber_capacity
        ) == max(
            saturation(p.subscriber_depth, p.subscriber_capacity)
            for p in parts
        )

    @given(st.lists(pressure_samples, min_size=0, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_merged_score_stays_in_unit_interval(self, parts):
        merged = merge_samples(parts)
        assert 0.0 <= merged.score() <= 1.0
        for value in merged.components().values():
            assert 0.0 <= value <= 1.0


class TestFlightRecorderBudgetProperties:
    @given(
        budget=st.integers(min_value=64, max_value=4096),
        payloads=st.lists(
            st.text(
                alphabet=st.characters(
                    min_codepoint=32, max_codepoint=126
                ),
                max_size=48,
            ),
            min_size=0,
            max_size=300,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_ring_never_exceeds_budget_under_sustained_load(
        self, budget, payloads
    ):
        recorder = FlightRecorder(byte_budget=budget)
        oversize = 0
        for i, payload in enumerate(payloads):
            before = recorder.recorded
            recorder.record("load", seq=i, payload=payload)
            if recorder.recorded == before:
                oversize += 1
            # the budget is a hard invariant at every step, not just at rest
            assert recorder.bytes_used <= budget

        entries = recorder.entries()
        # accepted entries either remain in the ring or were evicted
        assert recorder.recorded == len(payloads) - oversize
        assert recorder.dropped == (recorder.recorded - len(entries)) + oversize
        # eviction is strictly oldest-first: retained seqs are the tail
        seqs = [entry["seq"] for entry in entries]
        assert seqs == sorted(seqs)
        if seqs and not oversize:
            assert seqs[-1] == len(payloads) - 1
