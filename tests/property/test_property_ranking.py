"""Property-based tests of ranking invariants.

The three headline guarantees:

1. **Top-k prefix**: ``LIMIT k`` emits exactly the first k entries of the
   unlimited ranking.
2. **Pruning exactness**: enabling score-bound pruning never changes any
   emission.
3. **Baseline equivalence**: the integrated ranker and the
   match-then-rank baseline produce identical ordered answers.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import CEPREngine
from repro.baselines.match_then_rank import MatchThenRankQuery
from repro.events.event import Event
from repro.events.schema import AttributeSpec, Domain, EventSchema, SchemaRegistry

event_specs = st.lists(
    st.tuples(
        st.sampled_from(["A", "B"]),
        st.integers(min_value=0, max_value=100),
    ),
    min_size=0,
    max_size=40,
)

REGISTRY = SchemaRegistry(
    [
        EventSchema("A", (AttributeSpec("value", "float", Domain(0, 100)),)),
        EventSchema("B", (AttributeSpec("value", "float", Domain(0, 100)),)),
    ]
)


def build_stream(specs):
    return [
        Event(event_type, float(i + 1), value=float(value))
        for i, (event_type, value) in enumerate(specs)
    ]


def query_text(k=None, window=10):
    limit = f"LIMIT {k}" if k else ""
    return f"""
        PATTERN SEQ(A a, B b)
        WITHIN {window} EVENTS
        USING SKIP_TILL_ANY
        RANK BY b.value - a.value DESC
        {limit}
        EMIT ON WINDOW CLOSE
    """


def emissions_of(text, events, registry=None, enable_pruning=True):
    engine = CEPREngine(registry=registry, enable_pruning=enable_pruning)
    handle = engine.register_query(text)
    engine.run(events)
    return handle.results()


def fingerprint(emissions):
    return [
        (e.epoch, tuple((m.first_seq, m.last_seq, m.rank_values) for m in e.ranking))
        for e in emissions
    ]


class TestTopKPrefixProperty:
    @given(event_specs, st.integers(min_value=1, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_limit_k_is_prefix_of_full_ranking(self, specs, k):
        events = build_stream(specs)
        limited = emissions_of(query_text(k=k), events)
        events = build_stream(specs)
        full = emissions_of(query_text(k=None), events)
        assert len(limited) == len(full)
        for lim, all_ in zip(limited, full):
            assert fingerprint([lim])[0][1] == fingerprint([all_])[0][1][:k]

    @given(event_specs)
    @settings(max_examples=100, deadline=None)
    def test_rankings_are_sorted(self, specs):
        events = build_stream(specs)
        for emission in emissions_of(query_text(k=None), events):
            values = [m.rank_values[0] for m in emission.ranking]
            assert values == sorted(values, reverse=True)


class TestPruningExactness:
    @given(event_specs, st.integers(min_value=1, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_pruning_never_changes_emissions(self, specs, k):
        pruned = emissions_of(
            query_text(k=k), build_stream(specs), REGISTRY, enable_pruning=True
        )
        unpruned = emissions_of(
            query_text(k=k), build_stream(specs), REGISTRY, enable_pruning=False
        )
        assert fingerprint(pruned) == fingerprint(unpruned)


class TestBaselineEquivalence:
    @given(event_specs, st.integers(min_value=1, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_match_then_rank_equals_integrated(self, specs, k):
        integrated = emissions_of(query_text(k=k), build_stream(specs), REGISTRY)
        baseline = MatchThenRankQuery(query_text(k=k), REGISTRY)
        baseline.run(build_stream(specs))

        def nonempty(emissions):
            return [e for e in fingerprint(emissions) if e[1]]

        assert nonempty(baseline.emissions) == nonempty(integrated)


class TestEagerConsistency:
    @given(event_specs, st.integers(min_value=1, max_value=4))
    @settings(max_examples=75, deadline=None)
    def test_final_eager_snapshot_equals_batch_ranking(self, specs, k):
        """After the whole stream, EAGER's last snapshot must equal the
        top-k of all live matches computed from scratch."""
        text = f"""
            PATTERN SEQ(A a, B b)
            WITHIN 1000 EVENTS
            USING SKIP_TILL_ANY
            RANK BY b.value - a.value DESC
            LIMIT {k}
            EMIT EAGER
        """
        events = build_stream(specs)
        engine = CEPREngine()
        handle = engine.register_query(text)
        engine.run(events)
        emissions = handle.results()
        if not emissions:
            return
        last = emissions[-1].ranking

        all_matches = sorted(
            {m.detection_index: m for e in emissions for m in e.ranking}.values(),
            key=lambda m: m.sort_key(),
        )
        # every match in the final snapshot must be sorted and size <= k
        values = [m.rank_values[0] for m in last]
        assert values == sorted(values, reverse=True)
        assert len(last) <= k
        del all_matches
