"""Property tests for the event log: slicing is exactly list filtering."""

import tempfile
from pathlib import Path

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.events.event import Event
from repro.store.log import EventLog

records = st.lists(
    st.tuples(
        st.sampled_from(["A", "B", "C"]),
        st.integers(min_value=0, max_value=5),  # ts gap
        st.integers(min_value=0, max_value=100),
    ),
    max_size=60,
)


def build(specs):
    events, ts = [], 0.0
    for event_type, gap, value in specs:
        ts += gap
        events.append(Event(event_type, ts, v=value))
    return events


class TestScanEquivalence:
    @given(
        records,
        st.integers(min_value=1, max_value=7),  # index stride
        st.floats(min_value=-10, max_value=310, allow_nan=False),
        st.floats(min_value=-10, max_value=310, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_range_scan_equals_filter(self, specs, stride, a, b):
        start, end = min(a, b), max(a, b)
        events = build(specs)
        with tempfile.TemporaryDirectory() as tmp:
            log = EventLog(Path(tmp) / "events.log", index_stride=stride)
            log.append_all(events)
            expected = [e for e in events if start <= e.timestamp < end]
            assert list(log.scan(start_ts=start, end_ts=end)) == expected
            log.close()

    @given(records, st.sampled_from([["A"], ["A", "B"], ["C"]]))
    @settings(max_examples=100, deadline=None)
    def test_type_filter_equals_filter(self, specs, types):
        events = build(specs)
        with tempfile.TemporaryDirectory() as tmp:
            log = EventLog(Path(tmp) / "events.log")
            log.append_all(events)
            expected = [e for e in events if e.event_type in set(types)]
            assert list(log.scan(types=types)) == expected
            log.close()

    @given(records, st.integers(min_value=1, max_value=7))
    @settings(max_examples=100, deadline=None)
    def test_reopen_preserves_content(self, specs, stride):
        events = build(specs)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "events.log"
            with EventLog(path, index_stride=stride) as log:
                log.append_all(events)
            reopened = EventLog(path, index_stride=stride)
            assert list(reopened.scan()) == events
            assert len(reopened) == len(events)
