"""Property-based fuzzing of cross-query sharing.

Hypothesis generates families of query variants that differ only in ways
canonicalization must erase — renamed bindings, permuted conjuncts,
flipped comparison operands — plus controlled constant tweaks that must
NOT be erased.  Two properties hold for every generated family:

(a) **dedupe**: the shared index holds exactly one predicate entry per
    semantically distinct self-contained predicate (one per distinct
    threshold constant), no matter how many spellings register it; and
(b) **equivalence**: the shared engine's per-query emissions are
    identical — same order, same stream points, same rankings — to one
    independent engine per query.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import CEPREngine
from repro.events.event import Event
from repro.language.fingerprint import predicate_fingerprint
from repro.language.parser import parse_query
from repro.language.ast_nodes import split_conjuncts

NAME_POOL = ["a", "b", "x", "y", "first", "second"]
THRESHOLDS = [10, 25, 40]


@st.composite
def variants(draw):
    """One query variant: names, conjunct order, flips, and a threshold."""
    v1 = draw(st.sampled_from(NAME_POOL))
    v2 = draw(st.sampled_from([n for n in NAME_POOL if n != v1]))
    threshold = draw(st.sampled_from(THRESHOLDS))
    flip_eq = draw(st.booleans())
    flip_gt = draw(st.booleans())
    flip_const = draw(st.booleans())
    conjuncts = [
        f"{v1}.g == {v2}.g" if not flip_eq else f"{v2}.g == {v1}.g",
        f"{v2}.v > {v1}.v" if not flip_gt else f"{v1}.v < {v2}.v",
        f"{v1}.v > {threshold}" if not flip_const else f"{threshold} < {v1}.v",
    ]
    order = draw(st.permutations(range(3)))
    where = " AND ".join(conjuncts[i] for i in order)
    query = (
        f"PATTERN SEQ(A {v1}, B {v2}) "
        f"WHERE {where} "
        f"WITHIN 30 EVENTS "
        f"RANK BY {v2}.v - {v1}.v DESC LIMIT 3 "
        f"EMIT ON WINDOW CLOSE"
    )
    return query, threshold


event_streams = st.lists(
    st.tuples(
        st.sampled_from(["A", "B", "C"]),
        st.integers(min_value=0, max_value=60),  # v
        st.integers(min_value=0, max_value=2),  # g
    ),
    min_size=0,
    max_size=120,
)


def build_events(specs):
    return [
        Event(kind, float(index), v=value, g=group)
        for index, (kind, value, group) in enumerate(specs)
    ]


def match_fp(match):
    bindings = tuple(
        (
            var,
            (binding.seq,)
            if isinstance(binding, Event)
            else tuple(e.seq for e in binding),
        )
        for var, binding in match.bindings.items()
    )
    return (
        bindings,
        match.rank_values,
        match.detection_index,
    )


def emission_fp(emission):
    return (
        emission.kind.value,
        emission.at_seq,
        emission.at_ts,
        emission.epoch,
        emission.revision,
        tuple(match_fp(m) for m in emission.ranking),
    )


class TestFingerprintDedupe:
    @given(family=st.lists(variants(), min_size=2, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_one_entry_per_distinct_threshold(self, family):
        """(a) the index size tracks semantics, not spelling."""
        engine = CEPREngine()
        for index, (query, _threshold) in enumerate(family):
            engine.register_query(query, name=f"q{index}")
        assert engine.shared is not None
        # The only self-contained predicate is the threshold comparison;
        # the equality and cross-variable conjuncts cannot be shared.
        distinct = {threshold for _query, threshold in family}
        assert engine.shared.distinct_predicates == len(distinct)

    @given(first=variants(), second=variants())
    @settings(max_examples=50, deadline=None)
    def test_fingerprints_blind_to_spelling(self, first, second):
        """Alpha-renaming, flips, and permutations never split an entry;
        distinct constants always do."""

        def threshold_fingerprint(query_text, anchor_hint):
            ast = parse_query(query_text)
            for conjunct in split_conjuncts(ast.where):
                fp = predicate_fingerprint(conjunct, anchor_hint(ast))
                if fp is not None:
                    return fp
            raise AssertionError("no self-contained conjunct found")

        def first_var(ast):
            return ast.pattern[0].variable

        fp1 = threshold_fingerprint(first[0], first_var)
        fp2 = threshold_fingerprint(second[0], first_var)
        assert (fp1 == fp2) == (first[1] == second[1])


class TestEmissionEquivalence:
    @given(
        family=st.lists(variants(), min_size=1, max_size=5),
        specs=event_streams,
    )
    @settings(max_examples=40, deadline=None)
    def test_shared_equals_independent(self, family, specs):
        """(b) byte-identical per-query output under arbitrary variants."""
        shared_engine = CEPREngine(shared_execution=True)
        shared_handles = [
            shared_engine.register_query(query, name=f"q{index}")
            for index, (query, _t) in enumerate(family)
        ]
        for event in build_events(specs):
            shared_engine.push(event)
        shared_engine.flush()

        for index, (query, _t) in enumerate(family):
            solo = CEPREngine(shared_execution=False)
            handle = solo.register_query(query, name=f"q{index}")
            for event in build_events(specs):
                solo.push(event)
            solo.flush()
            assert [emission_fp(e) for e in shared_handles[index].results()] == [
                emission_fp(e) for e in handle.results()
            ], query
