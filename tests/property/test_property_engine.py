"""Property-based tests of matcher invariants over random streams."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.match import Match
from repro.events.event import Event

from tests.engine.helpers import run_pattern

event_specs = st.lists(
    st.tuples(
        st.sampled_from(["A", "B", "C"]),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=0,
    max_size=30,
)


def build_stream(specs):
    events = []
    ts = 0.0
    for event_type, value, group in specs:
        ts += 1.0
        events.append(Event(event_type, ts, value=float(value), group=group))
    return events


def match_signature(match: Match):
    out = []
    for var, binding in sorted(match.bindings.items()):
        if isinstance(binding, Event):
            out.append((var, (binding.seq,)))
        else:
            out.append((var, tuple(e.seq for e in binding)))
    return tuple(out)


class TestWindowInvariant:
    @given(event_specs, st.integers(min_value=1, max_value=8))
    @settings(max_examples=150, deadline=None)
    def test_matches_fit_in_count_window(self, specs, span):
        events = build_stream(specs)
        matches = run_pattern(
            f"PATTERN SEQ(A a, B b) WITHIN {span} EVENTS USING SKIP_TILL_ANY",
            events,
        )
        for match in matches:
            assert match.last_seq - match.first_seq < span

    @given(event_specs, st.integers(min_value=1, max_value=10))
    @settings(max_examples=150, deadline=None)
    def test_matches_fit_in_time_window(self, specs, span):
        events = build_stream(specs)
        matches = run_pattern(
            f"PATTERN SEQ(A a, B b) WITHIN {span} SECONDS USING SKIP_TILL_ANY",
            events,
        )
        for match in matches:
            assert match.last_ts - match.first_ts <= span


class TestOrderingInvariant:
    @given(event_specs)
    @settings(max_examples=150, deadline=None)
    def test_bindings_respect_pattern_order(self, specs):
        events = build_stream(specs)
        matches = run_pattern(
            "PATTERN SEQ(A a, B bs+, C c) USING SKIP_TILL_ANY", events
        )
        for match in matches:
            a_seq = match.bindings["a"].seq
            bs_seqs = [e.seq for e in match.bindings["bs"]]
            c_seq = match.bindings["c"].seq
            assert a_seq < bs_seqs[0]
            assert bs_seqs == sorted(bs_seqs)
            assert bs_seqs[-1] < c_seq

    @given(event_specs)
    @settings(max_examples=150, deadline=None)
    def test_types_match_pattern_elements(self, specs):
        events = build_stream(specs)
        matches = run_pattern("PATTERN SEQ(A a, B b) USING SKIP_TILL_ANY", events)
        for match in matches:
            assert match.bindings["a"].event_type == "A"
            assert match.bindings["b"].event_type == "B"


class TestStrategyContainment:
    @given(event_specs)
    @settings(max_examples=100, deadline=None)
    def test_strict_subset_next_subset_any(self, specs):
        events = build_stream(specs)

        def sigs(strategy):
            matches = run_pattern(
                f"PATTERN SEQ(A a, B b) WHERE b.value >= a.value USING {strategy}",
                [Event(e.event_type, e.timestamp, **e.payload) for e in events],
            )
            return {match_signature(m) for m in matches}

        strict = sigs("STRICT")
        skip_next = sigs("SKIP_TILL_NEXT")
        skip_any = sigs("SKIP_TILL_ANY")
        assert strict <= skip_any
        assert skip_next <= skip_any


class TestPredicateInvariant:
    @given(event_specs, st.integers(min_value=0, max_value=50))
    @settings(max_examples=150, deadline=None)
    def test_all_emitted_matches_satisfy_predicate(self, specs, threshold):
        events = build_stream(specs)
        matches = run_pattern(
            f"PATTERN SEQ(A a, B b) WHERE b.value - a.value > {threshold} "
            "USING SKIP_TILL_ANY",
            events,
        )
        for match in matches:
            diff = match.bindings["b"]["value"] - match.bindings["a"]["value"]
            assert diff > threshold

    @given(event_specs)
    @settings(max_examples=100, deadline=None)
    def test_skip_till_any_is_exhaustive_for_pairs(self, specs):
        """SKIP_TILL_ANY must enumerate exactly the A-before-B pairs."""
        events = build_stream(specs)
        matches = run_pattern(
            "PATTERN SEQ(A a, B b) USING SKIP_TILL_ANY",
            [Event(e.event_type, e.timestamp, **e.payload) for e in events],
        )
        found = {
            (m.bindings["a"].seq, m.bindings["b"].seq) for m in matches
        }
        expected = set()
        for i, first in enumerate(events):
            if first.event_type != "A":
                continue
            for second in events[i + 1 :]:
                if second.event_type == "B":
                    expected.add((i, second.seq if second.seq >= 0 else None))
        # recompute expected by index (seq == arrival index here)
        expected = {
            (i, j)
            for i, first in enumerate(events)
            if first.event_type == "A"
            for j, second in enumerate(events)
            if j > i and second.event_type == "B"
        }
        assert found == expected


class TestNegationInvariant:
    @given(event_specs)
    @settings(max_examples=150, deadline=None)
    def test_no_negated_event_inside_guard(self, specs):
        events = build_stream(specs)
        matches = run_pattern(
            "PATTERN SEQ(A a, NOT C c, B b) USING SKIP_TILL_ANY", events
        )
        c_seqs = [i for i, (t, _v, _g) in enumerate(specs) if t == "C"]
        for match in matches:
            a_seq = match.bindings["a"].seq
            b_seq = match.bindings["b"].seq
            assert not any(a_seq < c < b_seq for c in c_seqs)

    @given(event_specs)
    @settings(max_examples=100, deadline=None)
    def test_negation_only_removes_matches(self, specs):
        events = build_stream(specs)
        with_negation = run_pattern(
            "PATTERN SEQ(A a, NOT C c, B b) USING SKIP_TILL_ANY",
            [Event(e.event_type, e.timestamp, **e.payload) for e in events],
        )
        without = run_pattern(
            "PATTERN SEQ(A a, B b) USING SKIP_TILL_ANY",
            [Event(e.event_type, e.timestamp, **e.payload) for e in events],
        )

        def sigs(matches):
            return {
                (m.bindings["a"].seq, m.bindings["b"].seq) for m in matches
            }

        assert sigs(with_negation) <= sigs(without)
