"""Property-based tests for the language front end."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.language.ast_nodes import (
    AttrRef,
    Binary,
    BinaryOp,
    Direction,
    Expr,
    FuncCall,
    Literal,
    PatternElement,
    Query,
    RankKey,
    SelectionStrategy,
    Unary,
    UnaryOp,
    WindowKind,
    WindowSpec,
    YieldSpec,
)
from repro.language.errors import CEPRError
from repro.language.lexer import tokenize
from repro.language.parser import parse_query
from repro.language.printer import format_expr, format_query

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "PATTERN", "SEQ", "WHERE", "WITHIN", "EVENTS", "USING", "PARTITION",
        "BY", "RANK", "LIMIT", "EMIT", "ON", "WINDOW", "CLOSE", "EVERY",
        "EAGER", "ASC", "DESC", "AND", "OR", "NOT", "TRUE", "FALSE", "NAME",
        "S", "MS", "MIN", "H", "MINUTE", "MINUTES", "SECOND", "SECONDS",
        "HOUR", "HOURS", "DAY", "DAYS", "MILLISECOND", "MILLISECONDS",
        "ABS", "DURATION", "TIMESTAMP", "TS", "ROUND", "FLOOR", "CEIL",
        "SQRT", "LOG", "EXP", "SIGN", "MIN2", "MAX2", "PREV",
        "COUNT", "LEN", "SUM", "AVG", "MAX", "FIRST", "LAST",
    }
)

_RESERVED_UPPER = frozenset(
    {
        "PATTERN", "SEQ", "WHERE", "WITHIN", "EVENTS", "USING", "PARTITION",
        "BY", "RANK", "LIMIT", "EMIT", "ON", "WINDOW", "CLOSE", "EVERY",
        "EAGER", "ASC", "DESC", "AND", "OR", "NOT", "TRUE", "FALSE", "NAME",
        "S", "MS", "MIN", "H", "MINUTE", "MINUTES", "SECOND", "SECONDS",
        "HOUR", "HOURS", "DAY", "DAYS", "MILLISECOND", "MILLISECONDS",
    }
)

type_names = st.from_regex(r"[A-Z][a-z0-9]{0,6}", fullmatch=True).filter(
    lambda s: s.upper() not in _RESERVED_UPPER
)

numbers = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    st.floats(
        min_value=0.001, max_value=10**6, allow_nan=False, allow_infinity=False
    ).map(lambda f: round(f, 4)),
)

string_literals = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=127),
    max_size=8,
)


def expressions(max_depth=3) -> st.SearchStrategy[Expr]:
    leaves = st.one_of(
        numbers.map(Literal),
        string_literals.map(Literal),
        st.booleans().map(Literal),
        st.tuples(identifiers, identifiers).map(lambda t: AttrRef(*t)),
    )

    def extend(children):
        arith = st.sampled_from(
            [BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.DIV, BinaryOp.MOD]
        )
        compare = st.sampled_from(
            [BinaryOp.EQ, BinaryOp.NEQ, BinaryOp.LT, BinaryOp.LTE, BinaryOp.GT, BinaryOp.GTE]
        )
        boolean = st.sampled_from([BinaryOp.AND, BinaryOp.OR])
        return st.one_of(
            st.tuples(arith, children, children).map(lambda t: Binary(*t)),
            st.tuples(compare, children, children).map(lambda t: Binary(*t)),
            st.tuples(boolean, children, children).map(lambda t: Binary(*t)),
            children.map(lambda c: Unary(UnaryOp.NEG, c)),
            children.map(lambda c: Unary(UnaryOp.NOT, c)),
            children.map(lambda c: FuncCall("abs", (c,))),
        )

    return st.recursive(leaves, extend, max_leaves=8)


def queries() -> st.SearchStrategy[Query]:
    elements = st.lists(
        st.tuples(type_names, identifiers, st.booleans()),
        min_size=1,
        max_size=4,
        unique_by=lambda t: t[1],
    ).map(
        lambda items: tuple(
            PatternElement(event_type, var, kleene=kleene)
            for event_type, var, kleene in items
        )
    )
    windows = st.one_of(
        st.none(),
        st.integers(min_value=1, max_value=1000).map(
            lambda n: WindowSpec(WindowKind.COUNT, float(n))
        ),
        st.integers(min_value=1, max_value=86400).map(
            lambda n: WindowSpec(WindowKind.TIME, float(n))
        ),
    )
    rank_keys = st.lists(
        st.tuples(expressions(), st.sampled_from(list(Direction))).map(
            lambda t: RankKey(*t)
        ),
        max_size=3,
    ).map(tuple)

    yield_specs = st.one_of(
        st.none(),
        st.tuples(
            type_names,
            st.lists(
                st.tuples(identifiers, expressions()),
                min_size=1,
                max_size=3,
                unique_by=lambda t: t[0],
            ),
        ).map(lambda t: YieldSpec(t[0], tuple(t[1]))),
    )

    return st.builds(
        Query,
        pattern=elements,
        where=st.one_of(st.none(), expressions()),
        window=windows,
        strategy=st.one_of(st.none(), st.sampled_from(list(SelectionStrategy))),
        partition_by=st.lists(identifiers, max_size=2, unique=True).map(tuple),
        rank_by=rank_keys,
        limit=st.one_of(st.none(), st.integers(min_value=1, max_value=100)),
        name=st.one_of(st.none(), identifiers),
        yield_spec=yield_specs,
    )


class TestPrinterRoundTrip:
    @given(queries())
    @settings(max_examples=200, deadline=None)
    def test_format_then_parse_is_identity(self, query):
        assert parse_query(format_query(query)) == query

    @given(expressions())
    @settings(max_examples=200, deadline=None)
    def test_expression_round_trip(self, expr):
        text = format_expr(expr)
        reparsed = parse_query(f"PATTERN SEQ(A a) WHERE {text}")
        assert reparsed.where == expr


class TestLexerRobustness:
    @given(st.text(max_size=200))
    @settings(max_examples=300, deadline=None)
    def test_lexer_never_crashes_unexpectedly(self, text):
        try:
            tokens = tokenize(text)
        except CEPRError:
            return
        assert tokens[-1].type.name == "EOF"

    @given(st.text(max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_parser_never_crashes_unexpectedly(self, text):
        try:
            parse_query(text)
        except CEPRError:
            pass
