"""Property tests: exact shedding is invisible, adaptive stays bounded.

Two layers:

* End-to-end — for any random stream (with and without schema domains,
  so both the structural and the bound-certified shed paths fire), a
  forced-exact :class:`ShedController` produces **byte-identical**
  emissions to the unshedded engine: same kinds, seqs, epochs,
  revisions, rankings, scores, and detection indices.
* Controller algebra — for any admission sequence the counters stay
  consistent (every shed is safe or sampled, never both; protected
  events are never dropped; the recall estimate is a true ratio in
  [0, 1]) and the AIMD rate never escapes [0, MAX_DROP_RATE].
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import CEPREngine, Event
from repro.events.schema import AttributeSpec, Domain, EventSchema, SchemaRegistry
from repro.runtime.query import SHED_PROTECTED, SHED_SAFE, SHED_UNCERTIFIED
from repro.runtime.shedding import MAX_DROP_RATE, ShedController

RANKED_QUERY = """
NAME spread
PATTERN SEQ(A a, B b)
WITHIN 20 EVENTS
USING SKIP_TILL_ANY
RANK BY b.value - a.value DESC
LIMIT 2
EMIT ON WINDOW CLOSE
"""


def make_registry():
    attrs = (AttributeSpec("value", "float", Domain(0.0, 100.0)),)
    return SchemaRegistry([EventSchema("A", attrs), EventSchema("B", attrs)])


event_specs = st.lists(
    st.tuples(
        st.booleans(),  # A / B
        st.integers(min_value=0, max_value=100),  # value
    ),
    min_size=0,
    max_size=150,
)


def build_stream(specs):
    events = []
    ts = 0.0
    for is_a, value in specs:
        ts += 0.5
        events.append(Event("A" if is_a else "B", ts, value=float(value)))
    return events


def fingerprint(handle):
    out = []
    for emission in handle.results():
        ranking = tuple(
            (
                tuple(
                    (var, binding.seq if isinstance(binding, Event) else None)
                    for var, binding in match.bindings.items()
                ),
                match.score,
                match.rank_values,
                match.detection_index,
            )
            for match in emission.ranking
        )
        out.append(
            (
                emission.kind.value,
                emission.at_seq,
                emission.epoch,
                emission.revision,
                ranking,
            )
        )
    return out


def run(events, registry=None, controller=None):
    engine = CEPREngine(registry=registry)
    handle = engine.register_query(RANKED_QUERY)
    if controller is not None:
        engine.shed_controller = controller
    for event in events:
        engine.push(event)
    engine.flush()
    return handle


class TestExactShedInvisibility:
    @given(specs=event_specs)
    @settings(max_examples=40, deadline=None)
    def test_certified_sheds_never_change_emissions(self, specs):
        events = build_stream(specs)
        registry = make_registry()
        baseline = run(events, registry=registry)
        controller = ShedController(policy="exact", force=True)
        shedded = run(events, registry=registry, controller=controller)
        assert fingerprint(shedded) == fingerprint(baseline)
        # exact mode never takes a lossy drop
        assert controller.stats.shed_sampled_total == 0
        assert controller.stats.uncertified_shed == 0
        assert controller.recall_estimate == 1.0

    @given(specs=event_specs)
    @settings(max_examples=25, deadline=None)
    def test_structural_sheds_without_domains_are_also_invisible(self, specs):
        events = build_stream(specs)
        baseline = run(events)
        controller = ShedController(policy="exact", force=True)
        shedded = run(events, controller=controller)
        assert fingerprint(shedded) == fingerprint(baseline)
        # without domains no bound can certify, only structural safety
        assert controller.stats.certified_total == 0


class _Probe:
    def __init__(self, classification, headroom):
        self.classification = classification
        self.headroom = headroom

    def shed_probe(self, event, seq_hint=None):
        return self.classification, self.headroom


probe_specs = st.lists(
    st.tuples(
        st.sampled_from([SHED_SAFE, SHED_PROTECTED, SHED_UNCERTIFIED]),
        st.one_of(
            st.none(),
            st.floats(
                min_value=-10.0,
                max_value=10.0,
                allow_nan=False,
                allow_infinity=False,
            ),
        ),
    ),
    min_size=0,
    max_size=200,
)


class TestControllerAlgebra:
    @given(
        specs=probe_specs,
        rate=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_admission_counters_stay_consistent(self, specs, rate, seed):
        controller = ShedController(policy="adaptive", force=True, seed=seed)
        controller.drop_rate = rate
        protected_dropped = 0
        for i, (classification, headroom) in enumerate(specs):
            admitted = controller.admit(
                Event("A", float(i)), [_Probe(classification, headroom)]
            )
            if classification is SHED_PROTECTED and not admitted:
                protected_dropped += 1
        stats = controller.stats
        assert protected_dropped == 0
        assert stats.offered == len(specs)
        assert (
            stats.shed_events_total
            == stats.shed_safe_total + stats.shed_sampled_total
        )
        assert stats.uncertified_shed <= stats.uncertified_offered
        assert stats.certified_total <= stats.shed_safe_total
        assert 0.0 <= stats.recall_estimate <= 1.0

    @given(
        pressures=st.lists(
            st.floats(
                min_value=0.0,
                max_value=1.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=0,
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_aimd_rate_stays_bounded(self, pressures):
        controller = ShedController(policy="adaptive")
        for level in pressures:
            controller.control(level)
            assert 0.0 <= controller.drop_rate <= MAX_DROP_RATE
            if not controller.engaged:
                assert controller.drop_rate == 0.0
