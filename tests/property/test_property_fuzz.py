"""End-to-end fuzzing: random valid queries over random streams.

The engine must never crash on a semantically valid query, and every
emission must satisfy the structural invariants regardless of the clause
combination: rankings sorted by the normalised score, LIMIT respected,
matches inside their windows, revisions monotone.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import CEPREngine, Event
from repro.language.ast_nodes import EmitKind

TYPES = ["A", "B", "C"]

patterns = st.sampled_from(
    [
        "SEQ(A a)",
        "SEQ(A a, B b)",
        "SEQ(A a, B b, C c)",
        "SEQ(A a, B bs+)",
        "SEQ(A a, B bs+, C c)",
        "SEQ(A a, NOT C c, B b)",
        "SEQ(A a, B b, NOT C c)",
        "SEQ(B bs+)",
    ]
)

wheres = st.sampled_from(
    [
        "",
        "WHERE a.v > 20",
        "WHERE b.v > a.v",
        "WHERE a.g == b.g",
        "WHERE bs.v > prev(bs.v)",
        "WHERE bs.v > 10 AND a.v < 90",
        "WHERE avg(bs.v) > 30",
        "WHERE duration() < 50",
        "WHERE c.v > a.v",
    ]
)

windows = st.sampled_from(
    ["WITHIN 5 EVENTS", "WITHIN 20 EVENTS", "WITHIN 10 SECONDS", "WITHIN 60 SECONDS"]
)

strategies = st.sampled_from(["", "USING STRICT", "USING SKIP_TILL_NEXT", "USING SKIP_TILL_ANY"])

partitions = st.sampled_from(["", "PARTITION BY g"])

ranks = st.sampled_from(
    [
        "",
        "RANK BY a.v DESC",
        "RANK BY a.v ASC",
        "RANK BY duration() ASC",
    ]
)

limits = st.sampled_from(["", "LIMIT 1", "LIMIT 3"])

emits = st.sampled_from(
    ["", "EMIT ON WINDOW CLOSE", "EMIT EVERY 7 EVENTS", "EMIT EAGER"]
)


def compatible(pattern, where, rank):
    """Filter clause combinations that semantic analysis would reject."""
    variables = {"a": "A a" in pattern, "b": "B b" in pattern,
                 "bs": "B bs+" in pattern, "c": ("C c" in pattern)}
    negated_c = "NOT C c" in pattern
    for var in ("a", "b", "bs", "c"):
        token = f"{var}."
        used = token in where or f"({var}." in where or f"prev({var}" in where
        if used and not variables[var]:
            return False
    if "c.v" in where and not ("C c" in pattern):
        return False
    if "c.v" in where and "NOT C c, B b" not in pattern and negated_c:
        # predicate on a trailing negation that references a: fine; keep
        pass
    if "c.v > a.v" in where and "NOT C c" in pattern and pattern.endswith("NOT C c)"):
        pass
    if rank and "a.v" in rank and not variables["a"]:
        return False
    return True


query_configs = st.tuples(
    patterns, wheres, windows, strategies, partitions, ranks, limits, emits
).filter(lambda t: compatible(t[0], t[1], t[5]))


event_streams = st.lists(
    st.tuples(
        st.sampled_from(TYPES),
        st.integers(min_value=0, max_value=100),  # v
        st.integers(min_value=0, max_value=2),    # g
        st.integers(min_value=0, max_value=3),    # ts gap
    ),
    max_size=40,
)


def build_query(config):
    pattern, where, window, strategy, partition, rank, limit, emit = config
    parts = [f"PATTERN {pattern}", where, window, strategy, partition, rank, limit, emit]
    return "\n".join(p for p in parts if p)


def build_events(specs):
    events, ts = [], 0.0
    for event_type, v, g, gap in specs:
        ts += gap
        events.append(Event(event_type, ts, v=float(v), g=g))
    return events


class TestEngineFuzz:
    @given(query_configs, event_streams)
    @settings(max_examples=300, deadline=None)
    def test_valid_queries_never_crash_and_invariants_hold(self, config, specs):
        from repro.language.errors import CEPRSemanticError

        query_text = build_query(config)
        engine = CEPREngine()
        try:
            handle = engine.register_query(query_text)
        except CEPRSemanticError:
            return  # combination statically rejected: fine
        engine.run(build_events(specs))

        limit = handle.analyzed.limit
        revisions = []
        for emission in handle.results():
            revisions.append(emission.revision)
            if limit is not None:
                assert len(emission.ranking) <= limit
            scores = [m.sort_key() for m in emission.ranking]
            assert scores == sorted(scores), query_text
            window = handle.analyzed.window
            if window is not None:
                for match in emission.ranking:
                    from repro.language.ast_nodes import WindowKind

                    if window.kind is WindowKind.COUNT:
                        assert match.last_seq - match.first_seq < window.span
                    else:
                        assert match.last_ts - match.first_ts <= window.span
        assert revisions == sorted(revisions)

    @given(query_configs, event_streams)
    @settings(max_examples=150, deadline=None)
    def test_lenient_engine_never_raises_evaluation_errors(self, config, specs):
        from repro.language.errors import CEPRSemanticError

        # Drop one attribute from some events to exercise dirty data paths.
        events = build_events(specs)
        for i, event in enumerate(events):
            if i % 3 == 0:
                event.payload.pop("v", None)
        engine = CEPREngine(lenient_errors=True)
        try:
            engine.register_query(build_query(config))
        except CEPRSemanticError:
            return
        engine.run(events)  # must not raise
