"""Unit tests for duration parsing and sequence assignment."""

import pytest

from repro.events.event import Event
from repro.events.time import OutOfOrderError, SequenceAssigner, parse_duration


class TestParseDuration:
    @pytest.mark.parametrize(
        "value,unit,expected",
        [
            (500, "MILLISECONDS", 0.5),
            (1, "ms", 0.001),
            (10, "SECONDS", 10.0),
            (2, "second", 2.0),
            (10, "MINUTES", 600.0),
            (1, "min", 60.0),
            (2, "HOURS", 7200.0),
            (1, "h", 3600.0),
            (1, "DAYS", 86400.0),
            (1.5, "minutes", 90.0),
        ],
    )
    def test_conversions(self, value, unit, expected):
        assert parse_duration(value, unit) == expected

    def test_unknown_unit(self):
        with pytest.raises(ValueError, match="unknown duration unit"):
            parse_duration(1, "fortnights")


class TestSequenceAssigner:
    def test_assigns_monotone_sequence(self):
        assigner = SequenceAssigner()
        events = [Event("A", t) for t in (1.0, 2.0, 3.0)]
        for event in events:
            assigner.assign(event)
        assert [e.seq for e in events] == [0, 1, 2]
        assert assigner.next_seq == 3
        assert assigner.last_timestamp == 3.0

    def test_custom_start(self):
        assigner = SequenceAssigner(start=100)
        event = assigner.assign(Event("A", 1.0))
        assert event.seq == 100

    def test_out_of_order_counted_when_lenient(self):
        assigner = SequenceAssigner()
        assigner.assign(Event("A", 5.0))
        assigner.assign(Event("A", 3.0))
        assert assigner.out_of_order_count == 1

    def test_out_of_order_raises_when_strict(self):
        assigner = SequenceAssigner(strict=True)
        assigner.assign(Event("A", 5.0))
        with pytest.raises(OutOfOrderError):
            assigner.assign(Event("A", 3.0))

    def test_equal_timestamps_allowed_in_strict_mode(self):
        assigner = SequenceAssigner(strict=True)
        assigner.assign(Event("A", 5.0))
        assigner.assign(Event("A", 5.0))
        assert assigner.out_of_order_count == 0

    def test_assign_all_is_lazy_and_complete(self):
        assigner = SequenceAssigner()
        stamped = list(assigner.assign_all(Event("A", t) for t in (1.0, 2.0)))
        assert [e.seq for e in stamped] == [0, 1]
