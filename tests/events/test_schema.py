"""Unit tests for schemas, domains, and the registry."""

import pytest

from repro.events.event import Event
from repro.events.schema import (
    AttributeSpec,
    Domain,
    EventSchema,
    SchemaError,
    SchemaRegistry,
)


class TestDomain:
    def test_contains(self):
        domain = Domain(0.0, 10.0)
        assert domain.contains(0.0)
        assert domain.contains(10.0)
        assert domain.contains(5.5)
        assert not domain.contains(-0.1)
        assert not domain.contains(10.1)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(SchemaError, match="exceeds upper bound"):
            Domain(2.0, 1.0)

    def test_degenerate_domain_allowed(self):
        assert Domain(3.0, 3.0).contains(3.0)


class TestAttributeSpec:
    def test_unknown_dtype_rejected(self):
        with pytest.raises(SchemaError, match="unknown dtype"):
            AttributeSpec("x", "decimal")

    def test_domain_on_string_rejected(self):
        with pytest.raises(SchemaError, match="only valid for numeric"):
            AttributeSpec("name", "str", Domain(0, 1))

    @pytest.mark.parametrize(
        "dtype,value",
        [("int", 3), ("float", 3.5), ("float", 3), ("str", "hi"), ("bool", True)],
    )
    def test_validate_accepts_matching_values(self, dtype, value):
        AttributeSpec("x", dtype).validate(value)

    @pytest.mark.parametrize(
        "dtype,value",
        [("int", 3.5), ("int", "3"), ("float", "3.5"), ("str", 3), ("bool", 1)],
    )
    def test_validate_rejects_mismatched_values(self, dtype, value):
        with pytest.raises(SchemaError):
            AttributeSpec("x", dtype).validate(value)

    def test_bool_rejected_for_numeric_dtypes(self):
        with pytest.raises(SchemaError, match="got bool"):
            AttributeSpec("x", "int").validate(True)

    def test_domain_violation(self):
        spec = AttributeSpec("x", "float", Domain(0, 10))
        spec.validate(10.0)
        with pytest.raises(SchemaError, match="outside domain"):
            spec.validate(10.5)


class TestEventSchema:
    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError, match="duplicate attribute"):
            EventSchema("A", (AttributeSpec("x"), AttributeSpec("x")))

    def test_build_convenience(self):
        schema = EventSchema.build(
            "Buy", symbol="str", price=("float", Domain(0, 100))
        )
        assert schema.attribute("symbol").dtype == "str"
        assert schema.attribute("price").domain == Domain(0, 100)

    def test_validate_wrong_type_name(self):
        schema = EventSchema.build("A", x="int")
        with pytest.raises(SchemaError, match="does not match schema"):
            schema.validate(Event("B", 0, x=1))

    def test_validate_missing_required(self):
        schema = EventSchema.build("A", x="int")
        with pytest.raises(SchemaError, match="missing required"):
            schema.validate(Event("A", 0))

    def test_optional_attribute_may_be_absent(self):
        schema = EventSchema("A", (AttributeSpec("x", "int", required=False),))
        schema.validate(Event("A", 0))

    def test_optional_attribute_validated_when_present(self):
        schema = EventSchema("A", (AttributeSpec("x", "int", required=False),))
        with pytest.raises(SchemaError):
            schema.validate(Event("A", 0, x="oops"))

    def test_extra_attributes_allowed(self):
        EventSchema.build("A", x="int").validate(Event("A", 0, x=1, extra="ok"))

    def test_attribute_names(self):
        schema = EventSchema.build("A", x="int", y="float")
        assert sorted(schema.attribute_names()) == ["x", "y"]


class TestSchemaRegistry:
    def make_registry(self) -> SchemaRegistry:
        return SchemaRegistry(
            [EventSchema.build("A", x=("float", Domain(0, 1))), EventSchema.build("B", y="str")]
        )

    def test_lookup(self):
        registry = self.make_registry()
        assert registry.get("A") is not None
        assert registry.get("Z") is None
        assert "A" in registry and "Z" not in registry
        assert len(registry) == 2

    def test_register_replaces(self):
        registry = self.make_registry()
        registry.register(EventSchema.build("A", x="int"))
        assert registry.get("A").attribute("x").dtype == "int"
        assert len(registry) == 2

    def test_validate_unknown_type_lenient(self):
        self.make_registry().validate(Event("Z", 0))

    def test_validate_unknown_type_strict(self):
        with pytest.raises(SchemaError, match="no schema registered"):
            self.make_registry().validate(Event("Z", 0), strict=True)

    def test_validate_known_type(self):
        registry = self.make_registry()
        registry.validate(Event("A", 0, x=0.5))
        with pytest.raises(SchemaError):
            registry.validate(Event("A", 0, x=2.0))

    def test_domain_of(self):
        registry = self.make_registry()
        assert registry.domain_of("A", "x") == Domain(0, 1)
        assert registry.domain_of("A", "missing") is None
        assert registry.domain_of("B", "y") is None  # strings have no domain
        assert registry.domain_of("Z", "x") is None

    def test_iteration(self):
        types = {schema.event_type for schema in self.make_registry()}
        assert types == {"A", "B"}
