"""Unit tests for the Event record."""

import pytest

from repro.events.event import Event


class TestConstruction:
    def test_basic_fields(self):
        event = Event("Buy", 1.5, symbol="ACME", price=10.0)
        assert event.event_type == "Buy"
        assert event.timestamp == 1.5
        assert event.payload == {"symbol": "ACME", "price": 10.0}

    def test_timestamp_coerced_to_float(self):
        assert isinstance(Event("A", 3).timestamp, float)

    def test_seq_unassigned_by_default(self):
        assert Event("A", 0).seq == -1

    def test_from_mapping(self):
        event = Event.from_mapping("A", 2.0, {"x": 1})
        assert event["x"] == 1
        assert event.timestamp == 2.0

    def test_from_mapping_copies_payload(self):
        payload = {"x": 1}
        event = Event.from_mapping("A", 0.0, payload)
        payload["x"] = 99
        assert event["x"] == 1


class TestAttributeAccess:
    def test_getitem(self):
        assert Event("A", 0, x=7)["x"] == 7

    def test_getitem_missing_raises_keyerror_with_context(self):
        event = Event("A", 0, x=7)
        with pytest.raises(KeyError, match="no attribute 'y'"):
            event["y"]

    def test_get_with_default(self):
        event = Event("A", 0, x=7)
        assert event.get("x") == 7
        assert event.get("y") is None
        assert event.get("y", 0) == 0

    def test_contains(self):
        event = Event("A", 0, x=7)
        assert "x" in event
        assert "y" not in event

    def test_iter_yields_attribute_names(self):
        assert sorted(Event("A", 0, x=1, y=2)) == ["x", "y"]


class TestEqualityAndHash:
    def test_structural_equality(self):
        assert Event("A", 1, x=1) == Event("A", 1, x=1)

    def test_inequality_on_type(self):
        assert Event("A", 1, x=1) != Event("B", 1, x=1)

    def test_inequality_on_payload(self):
        assert Event("A", 1, x=1) != Event("A", 1, x=2)

    def test_seq_excluded_from_equality(self):
        a, b = Event("A", 1, x=1), Event("A", 1, x=1)
        a.seq = 5
        assert a == b

    def test_hash_consistent_with_equality(self):
        assert hash(Event("A", 1, x=1)) == hash(Event("A", 1, x=1))

    def test_not_equal_to_other_types(self):
        assert Event("A", 1) != "A"


class TestReplace:
    def test_replace_updates_attribute(self):
        original = Event("A", 1, x=1, y=2)
        clone = original.replace(x=10)
        assert clone["x"] == 10 and clone["y"] == 2
        assert original["x"] == 1

    def test_replace_preserves_seq(self):
        original = Event("A", 1, x=1)
        original.seq = 42
        assert original.replace(x=2).seq == 42


class TestRepr:
    def test_repr_contains_type_and_attrs(self):
        text = repr(Event("Buy", 1.0, price=10.0))
        assert "Buy" in text and "price=10.0" in text

    def test_repr_shows_seq_once_assigned(self):
        event = Event("A", 1.0)
        assert "seq=" not in repr(event)
        event.seq = 3
        assert "seq=3" in repr(event)
