"""Unit tests for EventStream combinators and merging."""

from repro.events.event import Event
from repro.events.stream import EventStream, PeekableStream, merge_streams


def events(*pairs):
    return [Event(t, ts) for t, ts in pairs]


class TestEventStream:
    def test_iteration(self):
        stream = EventStream(events(("A", 1), ("B", 2)))
        assert [e.event_type for e in stream] == ["A", "B"]

    def test_empty(self):
        assert EventStream.empty().collect() == []

    def test_filter(self):
        stream = EventStream(events(("A", 1), ("B", 2), ("A", 3)))
        kept = stream.filter(lambda e: e.timestamp > 1).collect()
        assert [e.timestamp for e in kept] == [2, 3]

    def test_map(self):
        stream = EventStream([Event("A", 1, x=1)])
        mapped = stream.map(lambda e: e.replace(x=e["x"] * 10)).collect()
        assert mapped[0]["x"] == 10

    def test_of_type(self):
        stream = EventStream(events(("A", 1), ("B", 2), ("C", 3)))
        assert [e.event_type for e in stream.of_type("A", "C")] == ["A", "C"]

    def test_take(self):
        stream = EventStream(events(("A", 1), ("B", 2), ("C", 3)))
        assert len(stream.take(2).collect()) == 2

    def test_take_more_than_available(self):
        assert len(EventStream(events(("A", 1))).take(5).collect()) == 1

    def test_drop(self):
        stream = EventStream(events(("A", 1), ("B", 2), ("C", 3)))
        assert [e.event_type for e in stream.drop(2)] == ["C"]

    def test_drop_everything(self):
        assert EventStream(events(("A", 1))).drop(5).collect() == []

    def test_streams_are_single_use(self):
        stream = EventStream(events(("A", 1)))
        stream.collect()
        assert stream.collect() == []

    def test_chaining(self):
        stream = EventStream(events(("A", 1), ("B", 2), ("A", 3), ("A", 4)))
        result = stream.of_type("A").take(2).collect()
        assert [e.timestamp for e in result] == [1, 3]


class TestPeekableStream:
    def test_peek_does_not_consume(self):
        stream = PeekableStream(events(("A", 1), ("B", 2)))
        assert stream.peek().event_type == "A"
        assert stream.peek().event_type == "A"
        assert next(stream).event_type == "A"
        assert next(stream).event_type == "B"

    def test_peek_at_end_returns_none(self):
        stream = PeekableStream([])
        assert stream.peek() is None

    def test_iteration_after_peek(self):
        stream = PeekableStream(events(("A", 1), ("B", 2)))
        stream.peek()
        assert [e.event_type for e in stream] == ["A", "B"]


class TestMergeStreams:
    def test_merges_by_timestamp(self):
        left = events(("A", 1), ("A", 3), ("A", 5))
        right = events(("B", 2), ("B", 4))
        merged = merge_streams([left, right]).collect()
        assert [e.timestamp for e in merged] == [1, 2, 3, 4, 5]

    def test_ties_broken_by_stream_index(self):
        left = events(("A", 1))
        right = events(("B", 1))
        merged = merge_streams([right, left]).collect()
        assert [e.event_type for e in merged] == ["B", "A"]

    def test_merge_with_empty_stream(self):
        merged = merge_streams([events(("A", 1)), []]).collect()
        assert len(merged) == 1

    def test_merge_three_streams(self):
        merged = merge_streams(
            [events(("A", 1), ("A", 9)), events(("B", 5)), events(("C", 3))]
        ).collect()
        assert [e.event_type for e in merged] == ["A", "C", "B", "A"]
