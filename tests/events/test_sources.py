"""Unit tests for CSV/JSONL sources and replay."""

import pytest

from repro.events.event import Event
from repro.events.sources import CSVSource, JSONLSource, ReplaySource, write_jsonl


class TestCSVSource:
    def test_reads_typed_rows(self, tmp_path):
        path = tmp_path / "events.csv"
        path.write_text(
            "type,timestamp,symbol,price,active\n"
            "Buy,1.0,ACME,10.5,true\n"
            "Sell,2.0,ACME,11,false\n"
        )
        events = list(CSVSource(path))
        assert [e.event_type for e in events] == ["Buy", "Sell"]
        assert events[0]["price"] == 10.5
        assert events[1]["price"] == 11  # integral stays int
        assert events[0]["active"] is True
        assert events[1]["active"] is False
        assert events[0]["symbol"] == "ACME"

    def test_fixed_event_type(self, tmp_path):
        path = tmp_path / "ticks.csv"
        path.write_text("timestamp,price\n1.0,5\n2.0,6\n")
        events = list(CSVSource(path, event_type="Tick"))
        assert all(e.event_type == "Tick" for e in events)

    def test_custom_columns(self, tmp_path):
        path = tmp_path / "events.csv"
        path.write_text("kind,at,x\nA,1.0,2\n")
        events = list(CSVSource(path, type_column="kind", timestamp_column="at"))
        assert events[0].event_type == "A" and events[0].timestamp == 1.0

    def test_missing_type_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,x\n1.0,2\n")
        with pytest.raises(ValueError, match="missing type column"):
            list(CSVSource(path))

    def test_missing_timestamp_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("type,x\nA,2\n")
        with pytest.raises(ValueError, match="missing timestamp column"):
            list(CSVSource(path))

    def test_stream_wrapper(self, tmp_path):
        path = tmp_path / "events.csv"
        path.write_text("type,timestamp\nA,1.0\n")
        assert len(CSVSource(path).stream().collect()) == 1


class TestJSONLSource:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        original = [Event("A", 1.0, x=1), Event("B", 2.0, name="hi")]
        assert write_jsonl(path, original) == 2
        loaded = list(JSONLSource(path))
        assert loaded == original

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "A", "timestamp": 1.0}\n\n')
        assert len(list(JSONLSource(path))) == 1

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match=":1: invalid JSON"):
            list(JSONLSource(path))

    def test_missing_key_reports_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"timestamp": 1.0}\n')
        with pytest.raises(ValueError, match="missing key"):
            list(JSONLSource(path))


class TestReplaySource:
    def test_sleeps_proportionally_to_gaps(self):
        sleeps: list[float] = []
        events = [Event("A", 0.0), Event("A", 1.0), Event("A", 3.0)]
        replay = ReplaySource(events, speedup=2.0, sleep=sleeps.append)
        assert len(list(replay)) == 3
        assert sleeps == [0.5, 1.0]

    def test_no_sleep_before_first_event(self):
        sleeps: list[float] = []
        list(ReplaySource([Event("A", 100.0)], sleep=sleeps.append))
        assert sleeps == []

    def test_zero_gap_does_not_sleep(self):
        sleeps: list[float] = []
        list(ReplaySource([Event("A", 1.0), Event("A", 1.0)], sleep=sleeps.append))
        assert sleeps == []

    def test_invalid_speedup(self):
        with pytest.raises(ValueError, match="speedup must be positive"):
            ReplaySource([], speedup=0)
