"""Per-query cost accounting: CostAccount construction, merge, ranking.

The accounts are views over live counters, so the churn test at the
bottom is the real contract: after registering and unregistering 100
queries, ``cepr top``'s data source must list exactly the survivors — a
ghost query cannot linger because there is no parallel state to retire.
"""

import pytest

from repro.observability.cost import CostAccount, rank_accounts
from repro.runtime.engine import CEPREngine
from repro.events.event import Event

QUERY = """
NAME spread
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol AND s.price > b.price
WITHIN 30 EVENTS
PARTITION BY symbol
RANK BY s.price - b.price DESC
LIMIT 3
EMIT ON WINDOW CLOSE
"""


def _stream(pairs: int = 10):
    ts = 0.0
    for i in range(pairs):
        ts += 1.0
        yield Event("Buy", ts, symbol="A", price=10.0)
        ts += 1.0
        yield Event("Sell", ts, symbol="A", price=11.0 + i)


class TestFromQuery:
    def test_reads_live_counters(self):
        engine = CEPREngine()
        handle = engine.register_query(QUERY)
        for event in _stream():
            engine.push(event)
        engine.flush()

        account = handle.cost_account()
        assert account.query == "spread"
        assert account.events_routed == 20
        assert account.runs_created > 0
        assert account.matches == handle.metrics.matches
        assert account.emissions == handle.metrics.emissions
        assert account.cpu_seconds > 0.0
        assert account.parts == 1

    def test_account_is_a_view_not_a_snapshot(self):
        engine = CEPREngine()
        handle = engine.register_query(QUERY)
        before = handle.cost_account()
        assert before.events_routed == 0
        for event in _stream():
            engine.push(event)
        after = handle.cost_account()
        assert after.events_routed == 20
        # the first account was materialised before the stream: unchanged
        assert before.events_routed == 0

    def test_derived_ratios(self):
        account = CostAccount(
            query="q",
            events_routed=100,
            runs_created=10,
            runs_pruned=4,
            shared_hits=30,
            shared_misses=10,
            cpu_seconds=0.01,
        )
        assert account.predicate_evals == 40
        assert account.hit_ratio == pytest.approx(0.75)
        assert account.prune_ratio == pytest.approx(0.4)
        assert account.cpu_per_event_us == pytest.approx(100.0)

    def test_ratios_guard_zero_denominators(self):
        account = CostAccount(query="q")
        assert account.hit_ratio == 0.0
        assert account.prune_ratio == 0.0
        assert account.cpu_per_event_us == 0.0


class TestMerge:
    def test_counters_sum_exactly(self):
        parts = [
            CostAccount(
                query="q",
                events_routed=3,
                runs_created=2,
                shared_hits=5,
                shared_misses=1,
                cpu_seconds=0.25,
            ),
            CostAccount(
                query="q",
                events_routed=7,
                runs_created=1,
                shared_hits=2,
                shared_misses=4,
                cpu_seconds=0.75,
            ),
        ]
        total = CostAccount.merge(parts)
        assert total.events_routed == 10
        assert total.runs_created == 3
        assert total.shared_hits == 7
        assert total.shared_misses == 5
        assert total.cpu_seconds == pytest.approx(1.0)
        assert total.parts == 2

    def test_merge_rejects_mixed_queries(self):
        with pytest.raises(ValueError, match="different queries"):
            CostAccount.merge(
                [CostAccount(query="a"), CostAccount(query="b")]
            )

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            CostAccount.merge([])


class TestRanking:
    def test_orders_by_cpu_then_events_then_name(self):
        accounts = [
            CostAccount(query="cheap", cpu_seconds=0.1, events_routed=5),
            CostAccount(query="hot", cpu_seconds=0.9, events_routed=1),
            CostAccount(query="busy", cpu_seconds=0.1, events_routed=50),
            CostAccount(query="alpha", cpu_seconds=0.1, events_routed=5),
        ]
        ranked = [account.query for account in rank_accounts(accounts)]
        assert ranked == ["hot", "busy", "alpha", "cheap"]

    def test_to_dict_includes_derived_fields(self):
        doc = CostAccount(
            query="q", shared_hits=1, shared_misses=1
        ).to_dict()
        assert doc["predicate_evals"] == 2
        assert doc["hit_ratio"] == 0.5
        assert "cpu_per_event_us" in doc

    def test_describe_is_one_line(self):
        text = CostAccount(query="q", runs_created=3).describe()
        assert "\n" not in text
        assert "runs +3" in text


class TestEngineAccounts:
    def test_cost_accounts_keyed_by_name(self):
        engine = CEPREngine()
        engine.register_query(QUERY, name="first")
        engine.register_query(QUERY, name="second")
        accounts = engine.cost_accounts()
        assert sorted(accounts) == ["first", "second"]
        assert accounts["first"].query == "first"

    def test_hundred_query_churn_leaves_no_ghosts(self):
        """The `cepr top` data source after heavy register/unregister churn."""
        engine = CEPREngine()
        for i in range(100):
            engine.register_query(QUERY, name=f"churn{i}")
            for event in _stream(pairs=2):
                engine.push(event)
            engine.unregister_query(f"churn{i}")
        engine.register_query(QUERY, name="survivor")
        accounts = engine.cost_accounts()
        assert list(accounts) == ["survivor"]
        ranked = rank_accounts(accounts.values())
        assert [account.query for account in ranked] == ["survivor"]

    def test_explain_includes_cost_line(self):
        engine = CEPREngine()
        handle = engine.register_query(QUERY)
        for event in _stream():
            engine.push(event)
        assert "cost:" in handle.explain()
