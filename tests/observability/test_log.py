"""Tests for structured logging configuration and formatters."""

import io
import json
import logging

import pytest

from repro.observability.log import (
    configure_logging,
    get_logger,
    reset_logging,
)


@pytest.fixture(autouse=True)
def clean_logging():
    reset_logging()
    yield
    reset_logging()


class TestGetLogger:
    def test_qualifies_bare_names(self):
        assert get_logger("cli").name == "repro.cli"

    def test_keeps_qualified_names(self):
        assert get_logger("repro.runtime.sharded").name == "repro.runtime.sharded"
        assert get_logger("repro").name == "repro"


class TestConfigure:
    def test_text_format(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("test").warning("shard %d downgraded", 3)
        assert stream.getvalue() == "warning: shard 3 downgraded\n"

    def test_text_format_renders_extras(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("test").warning("fallback", extra={"data": {"shard": 2}})
        assert stream.getvalue() == "warning: fallback (shard=2)\n"

    def test_json_format(self):
        stream = io.StringIO()
        configure_logging(json_lines=True, stream=stream)
        get_logger("test").error("boom", extra={"data": {"code": 7}})
        record = json.loads(stream.getvalue())
        assert record["level"] == "error"
        assert record["logger"] == "repro.test"
        assert record["message"] == "boom"
        assert record["data"] == {"code": 7}
        assert isinstance(record["ts"], float)

    def test_level_threshold(self):
        stream = io.StringIO()
        configure_logging(level="error", stream=stream)
        logger = get_logger("test")
        logger.warning("quiet")
        logger.error("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_level_accepts_names_and_numbers(self):
        assert configure_logging(level="info").level == logging.INFO
        assert configure_logging(level=logging.DEBUG).level == logging.DEBUG
        with pytest.raises(ValueError):
            configure_logging(level="loudest")

    def test_reconfigure_replaces_handler(self):
        configure_logging()
        configure_logging(json_lines=True)
        configure_logging()
        assert len(logging.getLogger("repro").handlers) == 1

    def test_default_handler_follows_current_stderr(self, capsys):
        configure_logging()
        get_logger("test").warning("redirected")
        captured = capsys.readouterr()
        assert "warning: redirected" in captured.err
        assert captured.out == ""

    def test_records_still_propagate_to_root(self):
        """caplog-style capture at the root logger keeps working."""
        configure_logging(stream=io.StringIO())
        root_stream = io.StringIO()
        root_handler = logging.StreamHandler(root_stream)
        logging.getLogger().addHandler(root_handler)
        try:
            get_logger("test").warning("visible at root")
        finally:
            logging.getLogger().removeHandler(root_handler)
        assert "visible at root" in root_stream.getvalue()

    def test_reset_removes_handler(self):
        configure_logging()
        reset_logging()
        assert logging.getLogger("repro").handlers == []

    def test_exception_rendering(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        try:
            raise RuntimeError("kaput")
        except RuntimeError:
            get_logger("test").exception("operation failed")
        output = stream.getvalue()
        assert "error: operation failed" in output
        assert "RuntimeError: kaput" in output
