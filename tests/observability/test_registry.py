"""Tests for the typed metrics registry and its exporters."""

import json

import pytest

from repro.observability.registry import MetricsRegistry, merge_registries
from repro.runtime.metrics import LatencyRecorder


class TestInstruments:
    def test_counter_owned(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "Jobs seen")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("jobs_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_callback_backed_counter_reads_live_value(self):
        state = {"n": 0}
        counter = MetricsRegistry().counter("live_total", fn=lambda: state["n"])
        assert counter.value == 0.0
        state["n"] = 7
        assert counter.value == 7.0
        with pytest.raises(TypeError):
            counter.inc()

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0

    def test_gauge_rejects_unknown_agg(self):
        with pytest.raises(ValueError):
            MetricsRegistry().gauge("depth", agg="median")

    def test_histogram_owned_observe(self):
        histogram = MetricsRegistry().histogram("latency_seconds")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 10.0
        assert histogram.quantile(0.5) == 2.5

    def test_histogram_bridges_live_recorder(self):
        recorder = LatencyRecorder()
        recorder.record(0.5)
        histogram = MetricsRegistry().histogram("latency_seconds", recorder=recorder)
        assert histogram.count == 1
        recorder.record(1.5)
        assert histogram.count == 2
        assert histogram.sum == 2.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", query="q")
        second = registry.counter("hits_total", query="q")
        assert first is second
        assert len(registry) == 1

    def test_distinct_labels_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", query="a").inc()
        registry.counter("hits_total", query="b").inc(2)
        assert len(registry) == 2

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(TypeError):
            registry.gauge("x_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", **{"0bad": "v"})
        with pytest.raises(ValueError):
            MetricsRegistry(namespace="not ok")

    def test_collect_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.gauge("b_gauge").set(1)
        registry.counter("a_total").inc()
        names = [sample.name for sample in registry.collect()]
        assert names == ["a_total", "b_gauge"]


class TestMerge:
    def build(self, hits, depth, latencies):
        registry = MetricsRegistry()
        registry.counter("hits_total", query="q").inc(hits)
        registry.gauge("depth", query="q").set(depth)
        registry.gauge("peak", agg="max", query="q").set(depth)
        histogram = registry.histogram("latency_seconds", query="q")
        for value in latencies:
            histogram.observe(value)
        return registry

    def test_absorb_semantics(self):
        merged = merge_registries(
            [self.build(3, 5, [1.0, 2.0]), self.build(4, 7, [3.0])]
        )
        by_name = {sample.name: sample for sample in merged.collect()}
        assert by_name["hits_total"].value == 7.0  # counters sum
        assert by_name["depth"].value == 12.0  # sum gauges sum
        assert by_name["peak"].value == 7.0  # max gauges take the max
        assert by_name["latency_seconds"].count == 3  # reservoirs pool
        assert by_name["latency_seconds"].value == 6.0

    def test_absorb_snapshots_callback_instruments(self):
        live = MetricsRegistry()
        state = {"n": 1}
        live.counter("live_total", fn=lambda: state["n"])
        merged = merge_registries([live])
        state["n"] = 99  # the merged copy is a value object, not a view
        assert merged.collect()[0].value == 1.0

    def test_merge_empty_list(self):
        assert len(merge_registries([])) == 0


class TestExport:
    def test_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Hits", query="q").inc(2)
        registry.histogram("latency_seconds", query="q").observe(0.25)
        payload = json.loads(json.dumps(registry.to_json()))
        assert payload["namespace"] == "cepr"
        by_name = {row["name"]: row for row in payload["metrics"]}
        assert by_name["hits_total"]["value"] == 2.0
        assert by_name["latency_seconds"]["count"] == 1
        assert by_name["latency_seconds"]["quantiles"]["0.5"] == 0.25

    def test_prometheus_golden(self):
        """Pin the exposition text exactly (format version 0.0.4)."""
        registry = MetricsRegistry()
        registry.counter("events_total", "Events seen", query="q1").inc(3)
        registry.gauge("live_runs", "Live runs", query="q1").set(2)
        histogram = registry.histogram("latency_seconds", "Latency", query="q1")
        for value in (1.0, 3.0):
            histogram.observe(value)
        assert registry.to_prometheus() == (
            '# HELP cepr_events_total Events seen\n'
            '# TYPE cepr_events_total counter\n'
            'cepr_events_total{query="q1"} 3\n'
            '# HELP cepr_latency_seconds Latency\n'
            '# TYPE cepr_latency_seconds summary\n'
            'cepr_latency_seconds{quantile="0.5",query="q1"} 2\n'
            'cepr_latency_seconds{quantile="0.9",query="q1"} 2.8\n'
            'cepr_latency_seconds{quantile="0.99",query="q1"} 2.98\n'
            'cepr_latency_seconds_sum{query="q1"} 4\n'
            'cepr_latency_seconds_count{query="q1"} 2\n'
            '# HELP cepr_live_runs Live runs\n'
            '# TYPE cepr_live_runs gauge\n'
            'cepr_live_runs{query="q1"} 2\n'
        )

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", log='a"b\\c\nd').inc()
        text = registry.to_prometheus()
        assert r'log="a\"b\\c\nd"' in text

    def test_prometheus_empty_registry(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_prometheus_header_once_per_metric_family(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Hits", query="a").inc()
        registry.counter("hits_total", "Hits", query="b").inc()
        text = registry.to_prometheus()
        assert text.count("# TYPE cepr_hits_total counter") == 1
        assert text.count("cepr_hits_total{") == 2


class TestExpositionConformance:
    """Prometheus text-format conventions beyond the golden sample."""

    def test_counter_without_total_suffix_is_normalised(self):
        registry = MetricsRegistry()
        registry.counter("events_pushed", "Pushes").inc(5)
        text = registry.to_prometheus()
        assert "cepr_events_pushed_total 5" in text
        assert "# TYPE cepr_events_pushed_total counter" in text
        # the un-suffixed spelling must not appear as a sample line
        assert "cepr_events_pushed 5" not in text

    def test_counter_with_total_suffix_not_doubled(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Hits").inc()
        text = registry.to_prometheus()
        assert "cepr_hits_total 1" in text
        assert "total_total" not in text

    def test_gauges_and_summaries_keep_their_names(self):
        registry = MetricsRegistry()
        registry.gauge("queue_depth", "Depth").set(3)
        registry.histogram("latency_seconds", "Latency").observe(0.5)
        text = registry.to_prometheus()
        assert "cepr_queue_depth 3" in text
        assert "queue_depth_total" not in text
        assert "latency_seconds_total" not in text

    def test_families_sorted_and_terminated(self):
        registry = MetricsRegistry()
        registry.counter("zeta_total").inc()
        registry.counter("alpha_total").inc()
        text = registry.to_prometheus()
        assert text.index("cepr_alpha_total") < text.index("cepr_zeta_total")
        assert text.endswith("\n")
