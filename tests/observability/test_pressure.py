"""Pressure signal unit tests: saturation math, merging, hysteresis.

Everything here is pure — the runner/serve integration is exercised in
the runtime and serve suites; this file pins the arithmetic the
composite score and the ok/overloaded state machine are built from.
"""

import pytest

from repro.observability.pressure import (
    DEFAULT_ENTER_THRESHOLD,
    DEFAULT_EXIT_THRESHOLD,
    PressureAssessor,
    PressureSample,
    merge_samples,
)


class TestSample:
    def test_components_are_saturations(self):
        sample = PressureSample(
            ingest_lag_seconds=2.5,
            queue_depth=30,
            queue_capacity=100,
            subscriber_depth=9,
            subscriber_capacity=10,
        )
        parts = sample.components(lag_budget=5.0)
        assert parts["lag"] == pytest.approx(0.5)
        assert parts["queue"] == pytest.approx(0.3)
        assert parts["subscriber"] == pytest.approx(0.9)
        assert sample.score(lag_budget=5.0) == pytest.approx(0.9)

    def test_components_clamp_to_unit_interval(self):
        sample = PressureSample(
            ingest_lag_seconds=50.0, queue_depth=500, queue_capacity=100
        )
        parts = sample.components(lag_budget=5.0)
        assert parts["lag"] == 1.0
        assert parts["queue"] == 1.0
        assert sample.score() == 1.0

    def test_zero_capacity_reads_as_no_pressure(self):
        # an unbounded (or absent) queue cannot be saturated
        sample = PressureSample(queue_depth=10, queue_capacity=0)
        assert sample.components()["queue"] == 0.0
        assert sample.score() == 0.0

    def test_to_dict_has_components_and_score(self):
        doc = PressureSample(queue_depth=5, queue_capacity=10).to_dict()
        assert doc["queue_depth"] == 5
        assert doc["components"]["queue"] == pytest.approx(0.5)
        assert doc["score"] == pytest.approx(0.5)

    def test_to_dict_honours_lag_budget(self):
        # Regression: to_dict used to hardcode the default lag budget, so
        # an assessor tuned to a 2s budget exported components/score that
        # disagreed with its own overload decision.
        sample = PressureSample(ingest_lag_seconds=1.0)
        assert sample.to_dict(lag_budget=2.0)["components"]["lag"] == (
            pytest.approx(0.5)
        )
        assert sample.to_dict(lag_budget=2.0)["score"] == pytest.approx(0.5)
        # default budget (5s) still applies when none is passed
        assert sample.to_dict()["components"]["lag"] == pytest.approx(0.2)


class TestMergeSamples:
    def test_sum_and_max_semantics(self):
        merged = merge_samples(
            [
                PressureSample(
                    ingest_lag_seconds=1.0,
                    queue_depth=3,
                    queue_capacity=10,
                    queue_high_water=7,
                    subscriber_depth=2,
                    subscriber_capacity=8,
                ),
                PressureSample(
                    ingest_lag_seconds=4.0,
                    queue_depth=5,
                    queue_capacity=10,
                    queue_high_water=5,
                    subscriber_depth=6,
                    subscriber_capacity=8,
                ),
            ]
        )
        # depths/capacities sum (total fleet buffering)...
        assert merged.queue_depth == 8
        assert merged.queue_capacity == 20
        # ...lag and high-water take the worst shard...
        assert merged.ingest_lag_seconds == 4.0
        assert merged.queue_high_water == 7
        # ...and subscriber depth is the fullest outbox, not a sum
        assert merged.subscriber_depth == 6
        assert merged.subscriber_capacity == 8

    def test_subscriber_pair_travels_together(self):
        # Regression: the merge used to take max(depth) and max(capacity)
        # independently, so a nearly-full small outbox next to an empty
        # large one read as nearly idle (9/100 = 0.09 instead of 0.9).
        merged = merge_samples(
            [
                PressureSample(subscriber_depth=9, subscriber_capacity=10),
                PressureSample(subscriber_depth=0, subscriber_capacity=100),
            ]
        )
        assert (merged.subscriber_depth, merged.subscriber_capacity) == (9, 10)
        assert merged.components()["subscriber"] == pytest.approx(0.9)

    def test_subscriber_saturation_ties_prefer_deeper_outbox(self):
        merged = merge_samples(
            [
                PressureSample(subscriber_depth=5, subscriber_capacity=10),
                PressureSample(subscriber_depth=50, subscriber_capacity=100),
            ]
        )
        assert (merged.subscriber_depth, merged.subscriber_capacity) == (
            50,
            100,
        )

    def test_empty_merge_is_quiescent(self):
        assert merge_samples([]) == PressureSample()

    def test_single_sample_round_trips(self):
        sample = PressureSample(queue_depth=4, queue_capacity=9)
        assert merge_samples([sample]) == sample


class TestAssessor:
    def test_ewma_is_deterministic(self):
        assessor = PressureAssessor(smoothing=0.5)
        assert assessor.observe(1.0) == pytest.approx(0.5)
        assert assessor.observe(1.0) == pytest.approx(0.75)
        assert assessor.observe(0.0) == pytest.approx(0.375)

    def test_accepts_samples_and_scores(self):
        assessor = PressureAssessor(smoothing=1.0, lag_budget=5.0)
        level = assessor.observe(
            PressureSample(ingest_lag_seconds=2.5)
        )
        assert level == pytest.approx(0.5)

    def test_raw_scores_are_clamped(self):
        assessor = PressureAssessor(smoothing=1.0)
        assert assessor.observe(7.5) == 1.0
        assert assessor.observe(-3.0) == 0.0

    def test_hysteresis_does_not_flap(self):
        assessor = PressureAssessor(smoothing=1.0)
        # sit exactly between exit (0.5) and enter (0.75): never overloaded
        for _ in range(10):
            assessor.observe(0.6)
        assert assessor.state == "ok"
        assert assessor.transitions == 0

        assessor.observe(0.9)
        assert assessor.state == "overloaded"
        assert assessor.transitions == 1
        # dipping below enter but above exit keeps the overloaded state
        for _ in range(10):
            assessor.observe(0.6)
        assert assessor.state == "overloaded"
        assert assessor.transitions == 1

        assessor.observe(0.1)
        assert assessor.state == "ok"
        assert assessor.transitions == 2
        assert not assessor.overloaded

    def test_default_thresholds(self):
        assessor = PressureAssessor()
        assert assessor.enter_threshold == DEFAULT_ENTER_THRESHOLD == 0.75
        assert assessor.exit_threshold == DEFAULT_EXIT_THRESHOLD == 0.5

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError, match="smoothing"):
            PressureAssessor(smoothing=0.0)
        with pytest.raises(ValueError, match="smoothing"):
            PressureAssessor(smoothing=1.5)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError, match="thresholds"):
            PressureAssessor(enter_threshold=0.4, exit_threshold=0.6)
        with pytest.raises(ValueError, match="thresholds"):
            PressureAssessor(enter_threshold=1.4)

    def test_describe_and_to_dict(self):
        assessor = PressureAssessor(smoothing=1.0)
        assessor.observe(0.8)
        assert assessor.describe() == "pressure=0.80 [overloaded]"
        doc = assessor.to_dict()
        assert doc["state"] == "overloaded"
        assert doc["level"] == pytest.approx(0.8)
        assert doc["transitions"] == 1
