"""Unit and integration tests for span tracing and emission provenance."""

from repro import CEPREngine, Event
from repro.observability.tracing import (
    SpanKind,
    Tracer,
    build_emission_trace,
    disable_tracing,
    enable_tracing,
    traced,
    tracing_enabled,
)

QUERY = """
NAME spread
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol AND s.price > b.price
WITHIN 20 EVENTS
PARTITION BY symbol
RANK BY s.price - b.price DESC
LIMIT 3
EMIT ON WINDOW CLOSE
"""


def trades():
    return [
        Event("Buy", 1.0, symbol="X", price=10.0),
        Event("Buy", 2.0, symbol="X", price=12.0),
        Event("Sell", 3.0, symbol="X", price=15.0),
        Event("Buy", 4.0, symbol="Y", price=5.0),
        Event("Sell", 5.0, symbol="Y", price=9.0),
    ]


class TestTracer:
    def test_record_and_filter(self):
        tracer = Tracer()
        tracer.record(SpanKind.ROUTE, 0, 1.0, "q1")
        tracer.record(SpanKind.MATCH, 1, 2.0, "q1", detection_index=0)
        tracer.record(SpanKind.ROUTE, 2, 3.0, "q2")
        assert len(tracer) == 3
        assert len(tracer.spans(kind=SpanKind.ROUTE)) == 2
        assert len(tracer.spans(query="q1")) == 2
        assert tracer.spans(kind=SpanKind.MATCH, query="q1")[0].detail == {
            "detection_index": 0
        }

    def test_counts_by_kind(self):
        tracer = Tracer()
        for seq in range(3):
            tracer.record(SpanKind.ROUTE, seq, float(seq), "q")
        tracer.record(SpanKind.RUN_CREATE, 3, 3.0, "q")
        assert tracer.counts_by_kind() == {"route": 3, "run_create": 1}
        assert tracer.counts_by_kind(query="other") == {}

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=4)
        for seq in range(10):
            tracer.record(SpanKind.ROUTE, seq, float(seq))
        assert len(tracer) == 4
        assert tracer.recorded == 10
        assert tracer.dropped == 6
        assert [span.seq for span in tracer.spans()] == [6, 7, 8, 9]

    def test_clear(self):
        tracer = Tracer()
        tracer.record(SpanKind.ROUTE, 0, 0.0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.recorded == 0
        assert tracer.dropped == 0

    def test_span_describe(self):
        tracer = Tracer()
        tracer.record(SpanKind.RUN_KILL, 7, 1.5, "q", reason="expired")
        text = tracer.spans()[0].describe()
        assert "run_kill" in text
        assert "seq=7" in text
        assert "query=q" in text
        assert "reason='expired'" in text

    def test_partition_activity_scopes_by_partition_and_seq(self):
        tracer = Tracer()
        tracer.record(SpanKind.RUN_CREATE, 1, 1.0, "q", partition=("X",))
        tracer.record(SpanKind.RUN_CREATE, 2, 2.0, "q", partition=("Y",))
        tracer.record(
            SpanKind.RUN_KILL, 3, 3.0, "q", partition=("X",), reason="pruned"
        )
        tracer.record(SpanKind.RUN_CREATE, 9, 9.0, "q", partition=("X",))
        activity = tracer.partition_activity("q", ("X",), 0, 5)
        assert activity == {"run_create": 1, "killed_pruned": 1}


class TestGlobalSwitch:
    def test_default_off(self):
        assert tracing_enabled() is False

    def test_enable_disable(self):
        enable_tracing()
        try:
            assert tracing_enabled() is True
        finally:
            disable_tracing()
        assert tracing_enabled() is False

    def test_traced_context_manager_restores(self):
        assert not tracing_enabled()
        with traced():
            assert tracing_enabled()
        assert not tracing_enabled()

    def test_engine_attaches_tracer_under_switch(self):
        with traced():
            engine = CEPREngine()
        assert engine.tracer is not None
        assert CEPREngine().tracer is None


class TestEngineTracing:
    def run_traced(self):
        engine = CEPREngine(tracing=True)
        engine.register_query(QUERY)
        emissions = []
        for event in trades():
            emissions.extend(engine.push(event))
        emissions.extend(engine.flush())
        return engine, emissions

    def test_pipeline_span_kinds_recorded(self):
        engine, emissions = self.run_traced()
        counts = engine.tracer.counts_by_kind("spread")
        assert counts["route"] == 5
        assert counts["run_create"] >= 2
        assert counts["match"] >= 2
        assert counts["rank"] >= 2
        assert counts["emit"] == len(emissions) >= 1

    def test_emission_trace_reconstructs_provenance(self):
        engine, emissions = self.run_traced()
        trace = engine.trace(emissions[-1])
        assert trace.query == "spread"
        assert trace.matches
        best = trace.matches[0]
        assert best.position == 1
        variables = {variable for variable, _, _, _ in best.events}
        assert variables == {"b", "s"}
        (expr, direction, value) = best.rank_keys[0]
        assert expr == "s.price - b.price"
        assert direction == "DESC"
        assert value == 5.0
        assert best.competition.get("run_create", 0) >= 1
        assert "emission window_close" in trace.describe()
        assert trace.to_dict()["query"] == "spread"

    def test_set_tracing_toggles_at_runtime(self):
        engine = CEPREngine()
        engine.register_query(QUERY)
        assert engine.tracer is None
        tracer = engine.set_tracing(True)
        assert tracer is engine.tracer is not None
        for event in trades():
            engine.push(event)
        assert len(tracer) > 0
        engine.set_tracing(False)
        assert engine.tracer is None

    def test_untraced_engine_records_nothing_but_traces_degraded(self):
        engine = CEPREngine()
        engine.register_query(QUERY)
        emissions = []
        for event in trades():
            emissions.extend(engine.push(event))
        emissions.extend(engine.flush())
        trace = engine.trace(emissions[-1])
        # events and rank keys come from the matches themselves ...
        assert trace.matches and trace.matches[0].events
        assert trace.matches[0].rank_keys
        # ... but span-derived competition tallies need the tracer.
        assert trace.matches[0].competition == {}
        assert trace.span_counts == {}

    def test_build_emission_trace_without_analyzed_uses_positional_keys(self):
        engine, emissions = self.run_traced()
        trace = build_emission_trace(emissions[-1])
        assert trace.matches[0].rank_keys[0][0] == "key[0]"

    def test_dropped_spans_are_reported(self):
        tracer = Tracer(capacity=2)
        for seq in range(5):
            tracer.record(SpanKind.ROUTE, seq, float(seq), "q")
        engine, emissions = self.run_traced()
        trace = build_emission_trace(emissions[-1], tracer=tracer, query="q")
        assert trace.spans_dropped == 3
        assert "overflowed" in trace.describe()
