"""Flight recorder unit tests: ring accounting, artifacts, arming.

The recorder is a black box in the aviation sense — it must never grow
past its byte budget, must survive any crash path long enough to write
one JSON artifact, and must be safe to leave armed in production.  The
sanitizer integration test at the bottom closes the loop: a tripped
invariant both records an entry and dumps an artifact.
"""

import json
import os

import pytest

from repro.observability.flightrec import (
    ARTIFACT_PREFIX,
    ARTIFACT_VERSION,
    DEFAULT_BYTE_BUDGET,
    FlightRecorder,
    current,
    dump_if_armed,
    install_flight_recorder,
    list_artifacts,
    load_artifact,
    uninstall_flight_recorder,
)


@pytest.fixture(autouse=True)
def _disarm():
    """Never leak an armed module-level recorder between tests."""
    uninstall_flight_recorder()
    yield
    uninstall_flight_recorder()


class TestRing:
    def test_records_and_decodes_entries(self):
        recorder = FlightRecorder(byte_budget=4096)
        recorder.record("push", seq=1, query="spread")
        recorder.record("emission", seq=2)
        entries = recorder.entries()
        assert [entry["kind"] for entry in entries] == ["push", "emission"]
        assert entries[0]["seq"] == 1
        assert entries[0]["query"] == "spread"
        assert "ts" in entries[0]
        assert recorder.recorded == 2
        assert recorder.dropped == 0

    def test_never_exceeds_byte_budget(self):
        budget = 2048
        recorder = FlightRecorder(byte_budget=budget)
        for i in range(500):
            recorder.record("tick", seq=i, payload="x" * 40)
            assert recorder.bytes_used <= budget
        assert recorder.recorded == 500
        # eviction is oldest-first: the tail of the stream survives
        seqs = [entry["seq"] for entry in recorder.entries()]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 499
        assert len(seqs) < 500

    def test_oversized_entry_is_dropped_not_stored(self):
        recorder = FlightRecorder(byte_budget=256)
        recorder.record("small", seq=1)
        kept = recorder.bytes_used
        recorder.record("huge", blob="y" * 10_000)
        assert recorder.dropped == 1
        assert recorder.bytes_used == kept
        assert [entry["kind"] for entry in recorder.entries()] == ["small"]

    def test_default_budget(self):
        assert FlightRecorder().byte_budget == DEFAULT_BYTE_BUDGET == 256 * 1024


class TestArtifacts:
    def test_dump_writes_parseable_artifact(self, tmp_path):
        recorder = FlightRecorder(byte_budget=4096)
        recorder.record("push", seq=1)
        recorder.record("crash", detail="boom")
        path = recorder.dump("unit-test", directory=tmp_path)
        assert path.name.startswith(ARTIFACT_PREFIX)
        assert path.parent == tmp_path
        assert recorder.dumps_written == 1

        doc = load_artifact(path)
        assert doc["version"] == ARTIFACT_VERSION
        assert doc["reason"] == "unit-test"
        assert doc["pid"] == os.getpid()
        assert doc["byte_budget"] == 4096
        assert doc["recorded"] == 2
        assert [entry["kind"] for entry in doc["entries"]] == ["push", "crash"]

    def test_dump_uses_configured_directory(self, tmp_path):
        recorder = FlightRecorder(byte_budget=1024, directory=tmp_path)
        recorder.record("tick")
        path = recorder.dump("configured")
        assert path.parent == tmp_path

    def test_artifact_is_plain_json(self, tmp_path):
        recorder = FlightRecorder(byte_budget=1024)
        recorder.record("tick", seq=7)
        path = recorder.dump("raw", directory=tmp_path)
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["entries"][0]["seq"] == 7

    def test_list_artifacts_sorted(self, tmp_path):
        recorder = FlightRecorder(byte_budget=1024)
        recorder.record("tick")
        first = recorder.dump("one", directory=tmp_path)
        second = recorder.dump("two", directory=tmp_path)
        found = list_artifacts(tmp_path)
        assert found == sorted(found)
        assert set(found) == {first, second}

    def test_load_artifact_rejects_garbage(self, tmp_path):
        bogus = tmp_path / f"{ARTIFACT_PREFIX}bogus.json"
        bogus.write_text(json.dumps({"version": 999, "entries": []}))
        with pytest.raises(ValueError):
            load_artifact(bogus)


class TestModuleArming:
    def test_install_current_uninstall(self, tmp_path):
        assert current() is None
        recorder = install_flight_recorder(
            byte_budget=1024, directory=tmp_path
        )
        assert current() is recorder
        uninstall_flight_recorder()
        assert current() is None

    def test_dump_if_armed_noop_when_unarmed(self, tmp_path):
        assert dump_if_armed("nothing", tmp_path) is None
        assert list_artifacts(tmp_path) == []

    def test_dump_if_armed_writes_when_armed(self, tmp_path):
        install_flight_recorder(byte_budget=1024, directory=tmp_path)
        current().record("tick")
        path = dump_if_armed("armed")
        assert path is not None
        assert load_artifact(path)["reason"] == "armed"

    def test_dump_if_armed_directory_override(self, tmp_path):
        install_flight_recorder(byte_budget=1024, directory=tmp_path / "a")
        override = tmp_path / "b"
        override.mkdir()
        path = dump_if_armed("routed", override)
        assert path.parent == override


class TestSanitizerIntegration:
    def test_trip_records_and_dumps(self, tmp_path):
        from repro.sanitize.core import Sanitizer, SanitizerError

        install_flight_recorder(byte_budget=4096, directory=tmp_path)
        sanitizer = Sanitizer(scope="test", mode="raise")
        with pytest.raises(SanitizerError):
            sanitizer.trip("unit-check", "synthetic failure", detail=42)

        entries = current().entries()
        assert any(
            entry["kind"] == "sanitizer_trip"
            and entry["message"] == "synthetic failure"
            and entry["detail"] == 42
            for entry in entries
        )
        artifacts = list_artifacts(tmp_path)
        assert len(artifacts) == 1
        doc = load_artifact(artifacts[0])
        assert doc["reason"] == "sanitizer-unit-check"

    def test_log_mode_records_without_dump(self, tmp_path):
        from repro.sanitize.core import Sanitizer

        install_flight_recorder(byte_budget=4096, directory=tmp_path)
        sanitizer = Sanitizer(scope="test", mode="log")
        sanitizer.trip("unit-check", "soft failure")
        assert any(
            entry["kind"] == "sanitizer_trip"
            for entry in current().entries()
        )
        assert list_artifacts(tmp_path) == []
