"""Tests for per-stage profiling (StageTimer / StageProfile) and its wiring."""

from repro import CEPREngine, Event
from repro.observability.profiling import STAGES, StageProfile, StageTimer

QUERY = """
NAME spread
PATTERN SEQ(Buy b, Sell s)
WHERE b.symbol == s.symbol AND s.price > b.price
WITHIN 20 EVENTS
RANK BY s.price - b.price DESC
LIMIT 2
EMIT ON WINDOW CLOSE
"""


def trades():
    return [
        Event("Buy", 1.0, symbol="X", price=10.0),
        Event("Sell", 2.0, symbol="X", price=15.0),
    ]


class TestStageTimer:
    def test_add_accumulates(self):
        timer = StageTimer()
        timer.add(0.5)
        timer.add(1.5)
        assert timer.count == 2
        assert timer.total == 2.0
        assert timer.maximum == 1.5
        assert timer.mean == 1.0

    def test_mean_of_empty_timer(self):
        assert StageTimer().mean == 0.0

    def test_absorb(self):
        left, right = StageTimer(), StageTimer()
        left.add(1.0)
        right.add(3.0)
        right.add(2.0)
        left.absorb(right)
        assert left.count == 3
        assert left.total == 6.0
        assert left.maximum == 3.0


class TestStageProfile:
    def fill(self, match=1.0, rank=0.5, emit=0.25):
        profile = StageProfile()
        profile.match.add(match)
        profile.rank.add(rank)
        profile.emit.add(emit)
        return profile

    def test_stage_names(self):
        assert STAGES == ("match", "rank", "emit")
        profile = StageProfile()
        assert [name for name, _ in profile.timers()] == list(STAGES)

    def test_total_and_describe(self):
        profile = self.fill()
        assert profile.total_seconds == 1.75
        text = profile.describe()
        assert "match=" in text and "rank=" in text and "emit=" in text
        assert "(57%)" in text  # match share of 1.75s

    def test_absorb_merges_fleet_profiles(self):
        left = self.fill()
        left.absorb(self.fill())
        assert left.total_seconds == 3.5
        assert left.match.count == 2

    def test_snapshot(self):
        snapshot = self.fill().snapshot()
        assert snapshot["match"]["total_s"] == 1.0
        assert snapshot["rank"]["count"] == 1
        assert snapshot["emit"]["mean_us"] == 250_000.0


class TestEngineWiring:
    def run(self, **engine_kwargs):
        engine = CEPREngine(**engine_kwargs)
        handle = engine.register_query(QUERY)
        for event in trades():
            engine.push(event)
        engine.flush()
        return engine, handle

    def test_profiling_on_by_default(self):
        engine, handle = self.run()
        assert handle.profile is not None
        assert handle.profile.match.count == 2  # one sample per event
        assert handle.profile.total_seconds > 0
        assert engine.profiles_by_query() == {"spread": handle.profile}

    def test_profiling_can_be_disabled(self):
        engine, handle = self.run(enable_profiling=False)
        assert handle.profile is None
        assert engine.profiles_by_query() == {}
        # latency accounting still works on the bare path
        assert handle.metrics.latency.count == 2

    def test_explain_includes_stage_profile(self):
        _, handle = self.run()
        assert "stage profile:" in handle.explain()

    def test_explain_omits_profile_before_any_event(self):
        engine = CEPREngine()
        handle = engine.register_query(QUERY)
        assert "stage profile:" not in handle.explain()
