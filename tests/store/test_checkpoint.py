"""Unit tests for the atomic checkpoint store."""

import json
import math

import pytest

from repro.store.checkpoint import (
    CheckpointError,
    CheckpointStore,
    Position,
)


class TestSaveAndLoad:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        state = {"a": 1, "nested": {"xs": [1.5, 2.5]}, "s": "text"}
        path = store.save(state, Position(10, 9, 3.5))
        assert path.exists()
        checkpoint = store.latest()
        assert checkpoint.position == Position(10, 9, 3.5)
        assert checkpoint.state == state
        assert store.saves == 1
        assert store.loads == 1

    def test_empty_directory(self, tmp_path):
        assert CheckpointStore(tmp_path).latest() is None

    def test_directory_created(self, tmp_path):
        nested = tmp_path / "a" / "b"
        CheckpointStore(nested)
        assert nested.is_dir()

    def test_latest_picks_highest_position(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 1}, Position(100, 99, 1.0))
        store.save({"n": 2}, Position(250, 249, 2.0))
        store.save({"n": 3}, Position(90, 89, 0.5))
        assert store.latest().state == {"n": 2}

    def test_nonfinite_and_tuple_state(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(
            {"x": float("-inf"), "y": float("nan"), "t": (1, 2)},
            Position(1, 0, 0.0),
        )
        checkpoint = store.latest()
        assert checkpoint.state["x"] == -math.inf
        assert math.isnan(checkpoint.state["y"])
        assert checkpoint.state["t"] == [1, 2]  # tuples come back as lists
        json.loads(
            checkpoint.path.read_text(),
            parse_constant=lambda name: pytest.fail(
                f"non-strict JSON literal {name!r} on disk"
            ),
        )

    def test_negative_position_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="events_consumed"):
            store.save({}, Position(-1, 0, 0.0))

    def test_keep_validated(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointStore(tmp_path, keep=0)


class TestCorruptionFallback:
    def test_torn_newest_falls_back_to_previous(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"n": 1}, Position(100, 99, 1.0))
        newest = store.save({"n": 2}, Position(200, 199, 2.0))
        newest.write_text(newest.read_text()[:-40])  # torn disk write
        checkpoint = store.latest()
        assert checkpoint.state == {"n": 1}
        assert store.invalid_skipped == 1

    def test_tampered_state_fails_checksum(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save({"n": 1}, Position(1, 0, 0.0))
        document = json.loads(path.read_text())
        document["state"]["n"] = 42
        path.write_text(json.dumps(document))
        assert store.latest() is None
        assert store.invalid_skipped == 1

    def test_unknown_version_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save({"n": 1}, Position(1, 0, 0.0))
        document = json.loads(path.read_text())
        document["version"] = 999
        path.write_text(json.dumps(document))
        assert store.latest() is None

    def test_foreign_file_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path)
        (tmp_path / "checkpoint-000000000007.json").write_text('{"not": "ours"}')
        assert store.latest() is None
        assert store.invalid_skipped == 1


class TestRetention:
    def test_prune_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for i in range(5):
            store.save({"n": i}, Position(i, i, float(i)))
        assert len(list(tmp_path.glob("checkpoint-*.json"))) == 2
        assert store.latest().state == {"n": 4}
        assert store.pruned == 3

    def test_stray_temp_ignored_and_cleaned(self, tmp_path):
        store = CheckpointStore(tmp_path)
        stray = tmp_path / "checkpoint-000000000999.json.tmp"
        stray.write_text("partial write")
        assert store.latest() is None
        store.save({"n": 1}, Position(1, 0, 0.0))
        assert not stray.exists()


class TestObservability:
    def test_metrics_registered(self, tmp_path):
        from repro.observability.registry import MetricsRegistry

        store = CheckpointStore(tmp_path)
        store.save({"n": 1}, Position(1, 0, 0.0))
        store.latest()
        registry = MetricsRegistry()
        store.register_metrics(registry)
        samples = {s.name: s for s in registry.collect()}
        assert samples["checkpoint_saves_total"].value == 1.0
        assert samples["checkpoint_loads_total"].value == 1.0
        assert samples["checkpoint_last_save_bytes"].value > 0
        assert samples["checkpoint_save_seconds"].count == 1
