"""Torn-tail recovery and non-finite payloads in the event log.

The crash contract (see the module docs in ``repro/store/log.py``): a
file whose *final* line was cut mid-write reopens cleanly — a complete
record that merely lost its newline is kept, an undecodable tail is
dropped (reported via ``recovered_tail_bytes``) and physically truncated
before the next append.  The byte sweep below proves this at every
possible cut position inside the final record.
"""

import json
import math

import pytest

from repro.events.event import Event
from repro.store.log import EventLog, LogCorruptError


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


def build_file(path, count=5):
    """A clean 5-record log; returns its raw bytes."""
    with EventLog(path) as log:
        log.append_all(E("A", float(i), n=i) for i in range(count))
    return path.read_bytes()


class TestTornTail:
    def test_cut_at_every_byte_of_final_record(self, tmp_path):
        path = tmp_path / "events.log"
        data = build_file(path, count=5)
        final_start = data.rindex(b"\n", 0, len(data) - 1) + 1
        for cut in range(final_start, len(data) + 1):
            path.write_bytes(data[:cut])
            log = EventLog(path)
            if cut >= len(data) - 1:
                # Intact file, or only the trailing newline lost: the
                # final record is complete and must be kept.
                assert len(log) == 5, cut
                assert log.recovered_tail_bytes == 0, cut
            elif cut == final_start:
                # Cut exactly between records: a clean shorter log.
                assert len(log) == 4
                assert log.recovered_tail_bytes == 0
            else:
                # Cut mid-record: the tail is dropped and accounted for.
                assert len(log) == 4, cut
                assert log.recovered_tail_bytes == cut - final_start, cut
            assert [e["n"] for e in log.scan()] == list(range(len(log)))
            assert log.last_timestamp == float(len(log) - 1)

    def test_garbage_final_line_with_newline_recovered(self, tmp_path):
        path = tmp_path / "events.log"
        build_file(path, count=3)
        with path.open("ab") as handle:
            handle.write(b"garbage\n")
        log = EventLog(path)
        assert len(log) == 3
        assert log.recovered_tail_bytes == len(b"garbage\n")

    def test_append_after_torn_tail_truncates(self, tmp_path):
        path = tmp_path / "events.log"
        data = build_file(path, count=5)
        final_start = data.rindex(b"\n", 0, len(data) - 1) + 1
        path.write_bytes(data[: final_start + 3])
        log = EventLog(path)
        assert log.recovered_tail_bytes == 3
        log.append(E("A", 10.0, n=99))
        log.flush()
        # the torn bytes were truncated away before the new record, so the
        # file is fully valid again
        reopened = EventLog(path)
        assert reopened.recovered_tail_bytes == 0
        assert [e["n"] for e in reopened.scan()] == [0, 1, 2, 3, 99]

    def test_append_after_lost_newline_completes_separator(self, tmp_path):
        path = tmp_path / "events.log"
        data = build_file(path, count=3)
        path.write_bytes(data[:-1])  # strip only the final newline
        log = EventLog(path)
        assert len(log) == 3
        log.append(E("A", 9.0, n=9))
        log.flush()
        reopened = EventLog(path)
        assert reopened.recovered_tail_bytes == 0
        assert [e["n"] for e in reopened.scan()] == [0, 1, 2, 9]

    def test_read_only_open_never_rewrites_the_file(self, tmp_path):
        path = tmp_path / "events.log"
        data = build_file(path, count=5)
        torn = data[: len(data) - 4]
        path.write_bytes(torn)
        log = EventLog(path)
        assert len(list(log.scan())) == 4
        # no append happened, so recovery must not have touched the disk
        assert path.read_bytes() == torn

    def test_scan_never_reads_past_the_valid_region(self, tmp_path):
        path = tmp_path / "events.log"
        data = build_file(path, count=5)
        path.write_bytes(data[: len(data) - 4])
        log = EventLog(path)
        assert [e.timestamp for e in log.scan(start_ts=2.0)] == [2.0, 3.0]

    def test_interior_corruption_is_not_a_torn_tail(self, tmp_path):
        path = tmp_path / "events.log"
        path.write_text(
            '{"type": "A", "timestamp": 1.0}\n'
            "definitely not json\n"
            '{"type": "A", "timestamp": 2.0}\n'
        )
        with pytest.raises(LogCorruptError, match="bad event record"):
            EventLog(path)

    def test_regressing_final_line_still_raises(self, tmp_path):
        path = tmp_path / "events.log"
        path.write_text(
            '{"type": "A", "timestamp": 5.0}\n'
            '{"type": "A", "timestamp": 1.0}'  # decodes fine; time regresses
        )
        with pytest.raises(LogCorruptError, match="regress"):
            EventLog(path)

    def test_recovered_tail_metric_registered(self, tmp_path):
        from repro.observability.registry import MetricsRegistry

        path = tmp_path / "events.log"
        data = build_file(path, count=5)
        path.write_bytes(data[: len(data) - 4])
        log = EventLog(path)
        registry = MetricsRegistry()
        log.register_metrics(registry)
        samples = {s.name: s.value for s in registry.collect()}
        assert samples["store_recovered_tail_bytes_total"] == float(
            log.recovered_tail_bytes
        )
        assert log.recovered_tail_bytes > 0


class TestScanLineNumbers:
    def test_error_reports_true_line_number_after_index_seek(self, tmp_path):
        # Regression: scan() used to reset its line counter to zero after
        # an index seek, reporting offsets-within-the-scan instead of file
        # line numbers.
        path = tmp_path / "events.log"
        log = EventLog(path, index_stride=4)
        log.append_all(E("A", float(i)) for i in range(20))
        log.close()
        # corrupt line 15 in place, preserving byte length so the sparse
        # index (already built) stays valid
        lines = path.read_bytes().split(b"\n")
        lines[14] = b"x" * len(lines[14])
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(LogCorruptError, match=r":15:"):
            list(log.scan(start_ts=10.0))


class TestNonFinitePayloads:
    def test_nan_payload_round_trips(self, tmp_path):
        path = tmp_path / "events.log"
        with EventLog(path) as log:
            log.append(
                E(
                    "Reading",
                    1.0,
                    temp=float("nan"),
                    hi=float("inf"),
                    lo=float("-inf"),
                    ok=2.5,
                )
            )
        [event] = list(EventLog(path).scan())
        assert math.isnan(event["temp"])
        assert event["hi"] == math.inf
        assert event["lo"] == -math.inf
        assert event["ok"] == 2.5

    def test_on_disk_lines_are_strict_json(self, tmp_path):
        # bare json.dumps would emit NaN/Infinity literals that strict
        # parsers (and our own decoder) reject
        path = tmp_path / "events.log"
        with EventLog(path) as log:
            log.append(E("Reading", 1.0, temp=float("nan")))
        for line in path.read_text().splitlines():
            json.loads(
                line,
                parse_constant=lambda name: pytest.fail(
                    f"non-strict JSON literal {name!r} on disk"
                ),
            )

    def test_finite_payloads_have_no_flag_field(self, tmp_path):
        path = tmp_path / "events.log"
        with EventLog(path) as log:
            log.append(E("Reading", 1.0, temp=36.5))
        [line] = path.read_text().splitlines()
        assert "~nf" not in json.loads(line)
