"""Tests for the event log and back-testing."""

import pytest

from repro import CEPREngine, Event
from repro.store.backtest import Backtester, RecordingTap
from repro.store.log import EventLog, LogCorruptError
from repro.workloads.stock import StockWorkload


def E(t, ts, **attrs):
    return Event(t, ts, **attrs)


@pytest.fixture
def log(tmp_path):
    return EventLog(tmp_path / "events.log", index_stride=4)


class TestAppendAndScan:
    def test_round_trip(self, log):
        events = [E("A", float(i), n=i) for i in range(10)]
        assert log.append_all(events) == 10
        assert list(log.scan()) == events
        assert len(log) == 10
        assert log.time_range == (0.0, 9.0)

    def test_empty_log(self, log):
        assert list(log.scan()) == []
        assert log.time_range is None
        assert len(log) == 0

    def test_regressing_timestamp_rejected(self, log):
        log.append(E("A", 5.0))
        with pytest.raises(ValueError, match="non-decreasing"):
            log.append(E("A", 4.0))

    def test_equal_timestamps_allowed(self, log):
        log.append(E("A", 5.0, n=1))
        log.append(E("A", 5.0, n=2))
        assert [e["n"] for e in log.scan()] == [1, 2]

    def test_time_range_scan_half_open(self, log):
        log.append_all(E("A", float(i)) for i in range(10))
        scanned = [e.timestamp for e in log.scan(start_ts=3.0, end_ts=7.0)]
        assert scanned == [3.0, 4.0, 5.0, 6.0]

    def test_type_filter(self, log):
        log.append_all([E("A", 1.0), E("B", 2.0), E("A", 3.0)])
        assert [e.timestamp for e in log.scan(types=["A"])] == [1.0, 3.0]

    def test_sparse_index_seek_correct(self, tmp_path):
        # stride 4 over 100 events: scan from mid-file must not miss/dup
        log = EventLog(tmp_path / "big.log", index_stride=4)
        log.append_all(E("A", float(i)) for i in range(100))
        scanned = [e.timestamp for e in log.scan(start_ts=53.0)]
        assert scanned == [float(i) for i in range(53, 100)]

    def test_scan_before_first_index_entry(self, log):
        log.append_all(E("A", float(i + 10)) for i in range(10))
        assert len(list(log.scan(start_ts=0.0))) == 10


class TestPersistence:
    def test_reopen_restores_state(self, tmp_path):
        path = tmp_path / "events.log"
        with EventLog(path, index_stride=4) as log:
            log.append_all(E("A", float(i), n=i) for i in range(20))
        reopened = EventLog(path, index_stride=4)
        assert len(reopened) == 20
        assert reopened.time_range == (0.0, 19.0)
        assert [e["n"] for e in reopened.scan(start_ts=15.0)] == [15, 16, 17, 18, 19]

    def test_append_after_reopen(self, tmp_path):
        path = tmp_path / "events.log"
        with EventLog(path) as log:
            log.append(E("A", 1.0))
        with EventLog(path) as log:
            log.append(E("A", 2.0))
            log.flush()
            assert len(list(log.scan())) == 2

    def test_reopen_rejects_earlier_appends(self, tmp_path):
        path = tmp_path / "events.log"
        with EventLog(path) as log:
            log.append(E("A", 9.0))
        reopened = EventLog(path)
        with pytest.raises(ValueError, match="non-decreasing"):
            reopened.append(E("A", 1.0))

    def test_corrupt_interior_line_detected(self, tmp_path):
        # A bad line *before* the end of the file is real corruption, not a
        # torn tail (torn-tail recovery is covered in test_log_recovery.py).
        path = tmp_path / "events.log"
        path.write_text(
            '{"type": "A", "timestamp": 1.0}\n'
            "not json\n"
            '{"type": "A", "timestamp": 2.0}\n'
        )
        with pytest.raises(LogCorruptError, match="bad event record"):
            EventLog(path)

    def test_regressing_file_detected(self, tmp_path):
        path = tmp_path / "events.log"
        path.write_text(
            '{"type": "A", "timestamp": 5.0}\n{"type": "A", "timestamp": 1.0}\n'
        )
        with pytest.raises(LogCorruptError, match="regress"):
            EventLog(path)

    def test_sync_size(self, log):
        assert log.sync_size() == 0
        log.append(E("A", 1.0))
        assert log.sync_size() > 0

    def test_invalid_stride(self, tmp_path):
        with pytest.raises(ValueError, match="index_stride"):
            EventLog(tmp_path / "x.log", index_stride=0)


QUERY = """
    PATTERN SEQ(Buy b, Sell s)
    WHERE b.symbol == s.symbol AND s.price > b.price
    WITHIN 50 EVENTS
    USING SKIP_TILL_ANY
    PARTITION BY symbol
    RANK BY s.price - b.price DESC
    LIMIT 3
    EMIT ON WINDOW CLOSE
"""


class TestRecordingTap:
    def test_tee_records_and_processes(self, tmp_path):
        workload = StockWorkload(seed=5)
        log = EventLog(tmp_path / "stream.log")
        engine = CEPREngine(registry=workload.registry())
        handle = engine.register_query(QUERY)
        tap = RecordingTap(engine, log)
        tap.run(workload.events(500))
        assert len(log) == 500
        assert handle.metrics.events_routed == 500


class TestBacktester:
    def record(self, tmp_path, count=2000):
        workload = StockWorkload(seed=5)
        log = EventLog(tmp_path / "stream.log")
        log.append_all(workload.events(count))
        return log, workload.registry()

    def test_backtest_equals_live_run(self, tmp_path):
        log, registry = self.record(tmp_path)
        result = Backtester(log, registry).run(QUERY)

        workload = StockWorkload(seed=5)
        engine = CEPREngine(registry=registry)
        handle = engine.register_query(QUERY)
        engine.run(workload.events(2000))

        def fp(emissions):
            return [
                (e.epoch, tuple(tuple(m.rank_values) for m in e.ranking))
                for e in emissions
            ]

        assert fp(result.emissions) == fp(handle.results())
        assert result.matches == handle.metrics.matches

    def test_time_sliced_backtest(self, tmp_path):
        log, registry = self.record(tmp_path)
        lo, hi = log.time_range
        mid = (lo + hi) / 2
        first_half = Backtester(log, registry).run(QUERY, end_ts=mid)
        second_half = Backtester(log, registry).run(QUERY, start_ts=mid)
        assert first_half.events_replayed + second_half.events_replayed == len(log)

    def test_compare_candidates(self, tmp_path):
        log, registry = self.record(tmp_path, count=800)
        results = Backtester(log, registry).compare(
            {
                "loose": QUERY,
                "tight": QUERY.replace("s.price > b.price", "s.price > b.price * 1.01"),
            }
        )
        assert set(results) == {"loose", "tight"}
        assert results["tight"].matches <= results["loose"].matches

    def test_backtest_result_final_ranking(self, tmp_path):
        log, registry = self.record(tmp_path, count=500)
        result = Backtester(log, registry).run(QUERY)
        if result.emissions:
            assert result.final_ranking == result.emissions[-1].ranking
