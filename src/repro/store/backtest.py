"""Back-testing: run candidate queries over recorded history.

The demo-system workflow this enables: record a live stream once (tee the
engine's input into an :class:`~repro.store.log.EventLog` with
:class:`RecordingTap`), then iterate on query formulations by replaying
any time slice — same engine semantics, no live feed required.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.events.event import Event
from repro.events.schema import SchemaRegistry
from repro.ranking.emission import Emission
from repro.runtime.engine import CEPREngine
from repro.store.log import EventLog


class RecordingTap:
    """Wraps an engine so every pushed event is also persisted.

    >>> tap = RecordingTap(engine, EventLog(path))
    >>> tap.push(event)          # processes AND records
    """

    def __init__(self, engine: CEPREngine, log: EventLog) -> None:
        self.engine = engine
        self.log = log

    def push(self, event: Event) -> list[Emission]:
        self.log.append(event)
        return self.engine.push(event)

    def run(self, events) -> list[Emission]:
        emissions = []
        for event in events:
            emissions.extend(self.push(event))
        self.log.flush()
        emissions.extend(self.engine.flush())
        return emissions


@dataclass
class BacktestResult:
    """Outcome of one backtest run."""

    query_name: str
    events_replayed: int
    emissions: list[Emission]
    matches: int

    @property
    def final_ranking(self):
        return self.emissions[-1].ranking if self.emissions else []


class Backtester:
    """Replays slices of an :class:`EventLog` against fresh engines."""

    def __init__(
        self,
        log: EventLog,
        registry: SchemaRegistry | None = None,
        enable_pruning: bool = True,
        shards: int = 1,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.log = log
        self.registry = registry
        self.enable_pruning = enable_pruning
        #: replay partitioned queries across this many worker shards (the
        #: sharded runtime's merge stage keeps results identical).
        self.shards = shards

    def run(
        self,
        query: str,
        start_ts: float | None = None,
        end_ts: float | None = None,
        name: str = "backtest",
    ) -> BacktestResult:
        """Evaluate ``query`` over ``[start_ts, end_ts)`` of the log."""
        if self.shards > 1:
            return self._run_sharded(query, start_ts, end_ts, name)
        engine = CEPREngine(
            registry=self.registry, enable_pruning=self.enable_pruning
        )
        handle = engine.register_query(query, name=name)
        replayed = 0
        for event in self.log.scan(start_ts, end_ts):
            engine.push(event)
            replayed += 1
        engine.flush()
        return BacktestResult(
            query_name=name,
            events_replayed=replayed,
            emissions=handle.results(),
            matches=handle.metrics.matches,
        )

    def _run_sharded(
        self,
        query: str,
        start_ts: float | None,
        end_ts: float | None,
        name: str,
    ) -> BacktestResult:
        from repro.runtime.sharded import ShardedEngineRunner

        runner = ShardedEngineRunner(
            shards=self.shards,
            registry=self.registry,
            enable_pruning=self.enable_pruning,
        )
        view = runner.register_query(query, name=name)
        runner.start()
        try:
            replayed = runner.submit_all(self.log.scan(start_ts, end_ts))
            runner.flush()
        finally:
            runner.stop()
        return BacktestResult(
            query_name=name,
            events_replayed=replayed,
            emissions=view.results(),
            matches=view.metrics.matches,
        )

    def compare(
        self,
        queries: dict[str, str],
        start_ts: float | None = None,
        end_ts: float | None = None,
    ) -> dict[str, BacktestResult]:
        """Backtest several candidate queries over the same slice."""
        return {
            name: self.run(text, start_ts, end_ts, name=name)
            for name, text in queries.items()
        }
