"""An append-only, time-indexed event log.

The log persists events as JSON lines and keeps a sparse in-memory time
index (one ``(timestamp, byte offset, line number)`` entry every
``index_stride`` records), so time-range scans seek close to the range
start instead of reading the whole file.  Timestamps must be
non-decreasing on append — the same contract the engine's windows assume —
which is what makes the sparse index valid.

This is the storage substrate behind back-testing and crash recovery:
record a live stream once, then re-run candidate queries over any time
slice of it (:class:`~repro.store.backtest.Backtester`), or replay the
tail past a checkpoint (:mod:`repro.store.checkpoint`).

Torn-tail recovery
------------------

The normal post-crash state of an append-only log is a *torn tail*: the
final ``write()`` was cut mid-record, leaving a trailing line that either
lacks its newline or is not decodable JSON.  Opening such a file recovers
instead of raising:

* a final line that decodes but lacks its terminating newline is kept —
  the record is complete, only the separator was lost, and the next
  append repairs it;
* a final line that does not decode (with or without a newline) is a torn
  write: it is dropped, the dropped byte count is exposed via
  :attr:`EventLog.recovered_tail_bytes`, and the next append truncates
  the file back to the last valid record before writing, so the torn
  bytes can never concatenate into the next record.

Corruption *before* the final line — an undecodable interior line, or
timestamps that regress — is not a torn write and still raises
:class:`LogCorruptError`.
"""

from __future__ import annotations

import bisect
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.events.event import Event
from repro.events.jsonsafe import NONFINITE_KEY, dumps, scrub, unscrub

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.registry import MetricsRegistry


class LogCorruptError(ValueError):
    """Raised when a log line cannot be decoded as an event."""


def _encode(event: Event) -> str:
    clean, flags = scrub(event.payload)
    record = {"type": event.event_type, "timestamp": event.timestamp}
    record.update(clean)
    if flags:
        record[NONFINITE_KEY] = flags
    return dumps(record)


def _decode(line: str, lineno: int, path: Path) -> Event:
    try:
        record = json.loads(line)
        flags = record.pop(NONFINITE_KEY, None)
        if flags is not None:
            unscrub(record, flags)
        event_type = record.pop("type")
        timestamp = float(record.pop("timestamp"))
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise LogCorruptError(f"{path}:{lineno}: bad event record: {exc}") from exc
    return Event(event_type, timestamp, **record)


class EventLog:
    """Append-only persistent event log with sparse time indexing.

    Parameters
    ----------
    path:
        Backing file; created on first append, loaded (and indexed) when it
        already exists.  A torn final line — the normal state after a crash
        mid-append — is recovered, not an error (see the module docs).
    index_stride:
        One index entry is kept per this many records.  Smaller strides
        seek more precisely at the cost of memory.
    """

    def __init__(self, path: str | Path, index_stride: int = 256) -> None:
        if index_stride <= 0:
            raise ValueError(f"index_stride must be positive, got {index_stride}")
        self.path = Path(path)
        self.index_stride = index_stride
        self.count = 0
        # Session I/O counters (this process only; count covers the file).
        self.events_appended = 0
        self.events_read = 0
        self.scans = 0
        self.index_seeks = 0
        #: bytes of torn tail dropped when the file was opened (0 = clean).
        self.recovered_tail_bytes = 0
        self.first_timestamp: float | None = None
        self.last_timestamp: float | None = None
        # sparse index: parallel arrays of timestamps, byte offsets, and
        # 1-based physical line numbers (for accurate corruption reports)
        self._index_ts: list[float] = []
        self._index_offset: list[int] = []
        self._index_lineno: list[int] = []
        self._append_handle = None
        #: logical end of the valid region; bytes past it are torn tail.
        self._valid_size = 0
        #: physical lines occupied by the valid region (blank lines included).
        self._line_count = 0
        #: the last valid record decodes but lost its trailing newline.
        self._needs_newline = False
        if self.path.exists():
            self._build_index()

    # -- writing ------------------------------------------------------------------

    def append(self, event: Event) -> None:
        """Persist one event (timestamps must be non-decreasing)."""
        if self.last_timestamp is not None and event.timestamp < self.last_timestamp:
            raise ValueError(
                f"event timestamp {event.timestamp} regresses below "
                f"{self.last_timestamp}; the log requires non-decreasing time "
                f"(reorder with a LatenessBuffer first)"
            )
        if self._append_handle is None:
            self._open_for_append()
        if self.count % self.index_stride == 0:
            self._index_ts.append(event.timestamp)
            self._index_offset.append(self._append_handle.tell())
            self._index_lineno.append(self._line_count + 1)
        self._append_handle.write(_encode(event) + "\n")
        if self.first_timestamp is None:
            self.first_timestamp = event.timestamp
        self.last_timestamp = event.timestamp
        self.count += 1
        self._line_count += 1
        self.events_appended += 1
        self._valid_size = self._append_handle.tell()

    def _open_for_append(self) -> None:
        """Open the append handle, repairing any recovered torn tail first.

        A dropped tail is physically truncated away here (not at open
        time), so merely *reading* a crashed log never rewrites it; a
        complete-but-unterminated final record gets its newline completed
        before new records follow it.
        """
        if self.recovered_tail_bytes and self.path.exists():
            with self.path.open("r+b") as handle:
                handle.truncate(self._valid_size)
        self._append_handle = self.path.open("a")
        if self._needs_newline:
            self._append_handle.write("\n")
            self._needs_newline = False
            self._valid_size = self._append_handle.tell()

    def append_all(self, events: Iterable[Event]) -> int:
        """Append every event; returns how many were written."""
        written = 0
        for event in events:
            self.append(event)
            written += 1
        self.flush()
        return written

    def flush(self) -> None:
        if self._append_handle is not None:
            self._append_handle.flush()

    def close(self) -> None:
        if self._append_handle is not None:
            self._append_handle.close()
            self._append_handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.count

    @property
    def time_range(self) -> tuple[float, float] | None:
        if self.first_timestamp is None or self.last_timestamp is None:
            return None
        return (self.first_timestamp, self.last_timestamp)

    def scan(
        self,
        start_ts: float | None = None,
        end_ts: float | None = None,
        types: Iterable[str] | None = None,
    ) -> Iterator[Event]:
        """Iterate events with ``start_ts <= timestamp < end_ts``.

        ``types`` optionally restricts to a set of event types.  The sparse
        index is used to seek near ``start_ts``; events before it in the
        same stride are skipped by comparison.  A recovered torn tail is
        never read.
        """
        self.flush()
        if not self.path.exists():
            return
        self.scans += 1
        wanted = frozenset(types) if types is not None else None
        offset, lineno = self._seek_position(start_ts)
        if offset > 0:
            self.index_seeks += 1
        valid_size = self._valid_size
        with self.path.open() as handle:
            handle.seek(offset)
            position = offset
            while position < valid_size:
                line = handle.readline()
                if not line:
                    break
                lineno += 1
                position += len(line.encode("utf-8"))
                stripped = line.strip()
                if not stripped:
                    continue
                event = _decode(stripped, lineno, self.path)
                self.events_read += 1
                if start_ts is not None and event.timestamp < start_ts:
                    continue
                if end_ts is not None and event.timestamp >= end_ts:
                    return
                if wanted is not None and event.event_type not in wanted:
                    continue
                yield event

    def _seek_position(self, start_ts: float | None) -> tuple[int, int]:
        """``(byte offset, lines before it)`` to start scanning from.

        The line count is the number of physical lines preceding the
        offset, so error reports carry true file line numbers even after
        an index seek.
        """
        if start_ts is None or not self._index_ts:
            return 0, 0
        # Rightmost index entry with timestamp strictly below start_ts.
        # An entry *at* start_ts cannot be used: with duplicate timestamps
        # the indexed event may not be the first one at that instant, and
        # seeking to it would skip its same-timestamp predecessors.
        position = bisect.bisect_left(self._index_ts, start_ts) - 1
        if position < 0:
            return 0, 0
        return self._index_offset[position], self._index_lineno[position] - 1

    # -- startup ------------------------------------------------------------------

    def _build_index(self) -> None:
        """Scan an existing file once to rebuild counters and the index.

        Interior corruption raises; a torn final line recovers (see the
        module docs for the exact policy).
        """
        file_size = os.path.getsize(self.path)
        with self.path.open() as handle:
            offset = 0
            lineno = 0
            pending: str | None = handle.readline()
            while pending:
                line, pending = pending, handle.readline()
                lineno += 1
                is_final = not pending
                terminated = line.endswith("\n")
                stripped = line.strip()
                if stripped:
                    try:
                        event = _decode(stripped, lineno, self.path)
                    except LogCorruptError:
                        if not is_final:
                            raise
                        # Torn tail: drop it and stop before the bad bytes.
                        self.recovered_tail_bytes = file_size - offset
                        self._line_count = lineno - 1
                        self._valid_size = offset
                        return
                    if (
                        self.last_timestamp is not None
                        and event.timestamp < self.last_timestamp
                    ):
                        raise LogCorruptError(
                            f"{self.path}:{lineno}: timestamps regress; "
                            f"log is corrupt"
                        )
                    if self.count % self.index_stride == 0:
                        self._index_ts.append(event.timestamp)
                        self._index_offset.append(offset)
                        self._index_lineno.append(lineno)
                    if self.first_timestamp is None:
                        self.first_timestamp = event.timestamp
                    self.last_timestamp = event.timestamp
                    self.count += 1
                    if is_final and not terminated:
                        # Complete record, lost separator: keep the data
                        # and complete the newline on the next append.
                        self._needs_newline = True
                offset += len(line.encode("utf-8"))
            self._line_count = lineno
            self._valid_size = offset

    def sync_size(self) -> int:
        """Current on-disk size in bytes (after flushing)."""
        self.flush()
        return os.path.getsize(self.path) if self.path.exists() else 0

    # -- observability ------------------------------------------------------------

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Register this log's I/O counters (labelled by file name)."""
        log = self.path.name
        registry.counter(
            "store_events_appended_total",
            "Events appended to the log this session",
            fn=lambda: self.events_appended,
            log=log,
        )
        registry.counter(
            "store_events_read_total",
            "Event records decoded by scans",
            fn=lambda: self.events_read,
            log=log,
        )
        registry.counter(
            "store_scans_total",
            "Time-range scans started",
            fn=lambda: self.scans,
            log=log,
        )
        registry.counter(
            "store_index_seeks_total",
            "Scans that skipped ahead via the sparse time index",
            fn=lambda: self.index_seeks,
            log=log,
        )
        registry.counter(
            "store_recovered_tail_bytes_total",
            "Torn-tail bytes dropped when the log was opened",
            fn=lambda: self.recovered_tail_bytes,
            log=log,
        )
        registry.gauge(
            "store_events",
            "Events in the log (including prior sessions)",
            fn=lambda: self.count,
            agg="max",
            log=log,
        )
        registry.gauge(
            "store_size_bytes",
            "On-disk size of the log",
            fn=lambda: float(self.sync_size()),
            agg="max",
            log=log,
        )
