"""Atomic, versioned checkpoint files for crash-safe engine state.

A checkpoint is one JSON document capturing everything a
:class:`~repro.runtime.engine.CEPREngine` (or
:class:`~repro.runtime.sharded.ShardedEngineRunner`) needs to continue a
stream exactly where it left off: the engine ``snapshot()`` plus a
*position* — how many source events were consumed, and the ``(seq, ts)``
of the last one.  Recovery is restore + replay: load the latest valid
checkpoint into a freshly built engine, skip the consumed prefix of the
event source (or scan the :class:`~repro.store.log.EventLog` tail), and
keep pushing.  docs/RECOVERY.md walks through the guarantees.

Durability model
----------------

``save()`` never exposes a partially written file:

1. the document is written to a temp file **in the checkpoint directory**
   (same filesystem, so the rename below cannot degrade to copy+delete),
2. flushed and ``fsync``-ed,
3. atomically moved into place with ``os.replace``,
4. the directory entry is ``fsync``-ed, making the rename itself durable.

A crash during any step leaves either the previous checkpoint set intact
or a stray ``*.tmp`` file that is ignored (and cleaned on the next save).
On top of that, every document embeds a CRC-32 of its state payload;
``latest()`` walks checkpoints newest-first and **skips** anything that
fails to parse or verify instead of raising, so one bad file (torn disk
write, partial copy) degrades recovery by one checkpoint interval instead
of preventing it.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.events.jsonsafe import desanitize, dumps, sanitize
from repro.runtime.metrics import LatencyRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.registry import MetricsRegistry

#: magic value identifying checkpoint documents.
CHECKPOINT_FORMAT = "cepr-checkpoint"
#: current document version; readers reject versions they don't know.
CHECKPOINT_VERSION = 1

_PREFIX = "checkpoint-"
_SUFFIX = ".json"


class CheckpointError(ValueError):
    """Raised on invalid save arguments (never by ``latest()``)."""


@dataclass(frozen=True)
class Position:
    """Stream position a checkpoint was taken at.

    ``events_consumed`` counts *source* events fed to the engine/runner
    (before any lateness reordering), which is exactly the prefix to skip
    on replay; ``last_seq``/``last_ts`` locate the same point in sequence
    numbers and stream time for log-tail scans and sanity checks.
    """

    events_consumed: int
    last_seq: int
    last_ts: float

    def as_json(self) -> dict[str, Any]:
        return {
            "events_consumed": self.events_consumed,
            "last_seq": self.last_seq,
            "last_ts": self.last_ts,
        }

    @classmethod
    def from_json(cls, state: dict[str, Any]) -> "Position":
        return cls(
            events_consumed=int(state["events_consumed"]),
            last_seq=int(state["last_seq"]),
            last_ts=float(state["last_ts"]),
        )


@dataclass(frozen=True)
class Checkpoint:
    """One loaded (and verified) checkpoint."""

    path: Path
    position: Position
    state: dict[str, Any]


def _checksum(canonical: str) -> int:
    return zlib.crc32(canonical.encode("utf-8"))


def _canonical(state: Any) -> str:
    # Key order is canonicalised so the checksum is a function of the
    # state's *content*, not of dict construction order.
    return json.dumps(state, allow_nan=False, sort_keys=True, separators=(",", ":"))


class CheckpointStore:
    """Writes and reads checkpoints in one directory (see module docs).

    Parameters
    ----------
    directory:
        Checkpoint directory; created if missing.
    keep:
        How many most-recent checkpoints to retain after each save.
        Retaining more than one means a latent corruption in the newest
        file costs one checkpoint interval, not the whole run.
    """

    def __init__(self, directory: str | Path, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.saves = 0
        self.loads = 0
        #: checkpoint files skipped by ``latest()`` as unreadable/corrupt.
        self.invalid_skipped = 0
        self.pruned = 0
        self.last_save_bytes = 0
        self.save_latency = LatencyRecorder()

    # -- writing ------------------------------------------------------------------

    def save(self, state: dict[str, Any], position: Position) -> Path:
        """Atomically persist ``state`` at ``position``; returns the path.

        ``state`` is deep-sanitised (non-finite floats become sentinel
        objects, tuples become lists), so engine snapshots can be passed
        as-is.
        """
        if position.events_consumed < 0:
            raise CheckpointError(
                f"events_consumed must be >= 0, got {position.events_consumed}"
            )
        started = time.perf_counter()
        safe_state = sanitize(state)
        canonical = _canonical(safe_state)
        document = dumps(
            {
                "format": CHECKPOINT_FORMAT,
                "version": CHECKPOINT_VERSION,
                "position": position.as_json(),
                "checksum": _checksum(canonical),
                "state": safe_state,
            }
        )
        final = self.directory / (
            f"{_PREFIX}{position.events_consumed:012d}{_SUFFIX}"
        )
        temp = final.with_suffix(final.suffix + ".tmp")
        with temp.open("w") as handle:
            handle.write(document)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, final)
        self._fsync_directory()
        self.saves += 1
        self.last_save_bytes = len(document.encode("utf-8"))
        self.save_latency.record(time.perf_counter() - started)
        self.prune()
        return final

    def _fsync_directory(self) -> None:
        # Makes the rename durable; not supported on every platform/FS.
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def prune(self) -> None:
        """Drop all but the ``keep`` newest checkpoints (and stray temps)."""
        for stale in self._checkpoint_paths()[self.keep :]:
            stale.unlink(missing_ok=True)
            self.pruned += 1
        for temp in self.directory.glob(f"{_PREFIX}*{_SUFFIX}.tmp"):
            temp.unlink(missing_ok=True)

    # -- reading ------------------------------------------------------------------

    def latest(self) -> Checkpoint | None:
        """The newest checkpoint that parses and verifies, or ``None``.

        Invalid files (torn writes, wrong format/version, checksum
        mismatch) are counted in :attr:`invalid_skipped` and skipped, so
        recovery falls back to the previous checkpoint instead of failing.
        """
        for path in self._checkpoint_paths():
            checkpoint = self._load(path)
            if checkpoint is not None:
                self.loads += 1
                return checkpoint
            self.invalid_skipped += 1
        return None

    def _checkpoint_paths(self) -> list[Path]:
        """Checkpoint files, newest (highest position) first."""
        return sorted(
            self.directory.glob(f"{_PREFIX}*{_SUFFIX}"), reverse=True
        )

    def _load(self, path: Path) -> Checkpoint | None:
        try:
            document = json.loads(path.read_text())
            if document.get("format") != CHECKPOINT_FORMAT:
                return None
            if document.get("version") != CHECKPOINT_VERSION:
                return None
            safe_state = document["state"]
            if _checksum(_canonical(safe_state)) != int(document["checksum"]):
                return None
            position = Position.from_json(document["position"])
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return Checkpoint(
            path=path, position=position, state=desanitize(safe_state)
        )

    # -- observability ------------------------------------------------------------

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Register checkpoint counters/latency (labelled by directory)."""
        store = self.directory.name
        registry.counter(
            "checkpoint_saves_total",
            "Checkpoints written",
            fn=lambda: self.saves,
            store=store,
        )
        registry.counter(
            "checkpoint_loads_total",
            "Checkpoints loaded for recovery",
            fn=lambda: self.loads,
            store=store,
        )
        registry.counter(
            "checkpoint_invalid_skipped_total",
            "Corrupt/unreadable checkpoint files skipped by recovery",
            fn=lambda: self.invalid_skipped,
            store=store,
        )
        registry.counter(
            "checkpoint_pruned_total",
            "Old checkpoints removed by retention",
            fn=lambda: self.pruned,
            store=store,
        )
        registry.gauge(
            "checkpoint_last_save_bytes",
            "Size of the most recently written checkpoint",
            fn=lambda: float(self.last_save_bytes),
            agg="max",
            store=store,
        )
        registry.histogram(
            "checkpoint_save_seconds",
            "Latency of checkpoint saves",
            recorder=self.save_latency,
            store=store,
        )
