"""Persistent event storage and back-testing.

:class:`~repro.store.log.EventLog` is an append-only JSONL log with a
sparse time index; :class:`~repro.store.backtest.Backtester` replays
slices of it against fresh engines, and
:class:`~repro.store.backtest.RecordingTap` tees a live engine's input
into a log.
"""

from repro.store.backtest import Backtester, BacktestResult, RecordingTap
from repro.store.log import EventLog, LogCorruptError

__all__ = [
    "BacktestResult",
    "Backtester",
    "EventLog",
    "LogCorruptError",
    "RecordingTap",
]
