"""CEPR-QL: the CEPR query language front end.

The pipeline is ``text → tokens → AST → analysed query``:

>>> from repro.language import parse_query, analyze
>>> ast = parse_query('''
...     PATTERN SEQ(Buy b, Sell s)
...     WHERE b.symbol == s.symbol AND s.price > b.price
...     WITHIN 50 EVENTS
...     RANK BY s.price - b.price DESC
...     LIMIT 3
... ''')
>>> analyzed = analyze(ast)
>>> analyzed.is_ranked
True
"""

from repro.language.ast_nodes import (
    Aggregate,
    AttrRef,
    Binary,
    BinaryOp,
    Direction,
    EmitKind,
    EmitSpec,
    Expr,
    FuncCall,
    Literal,
    PatternElement,
    PrevRef,
    Query,
    RankKey,
    SelectionStrategy,
    Unary,
    UnaryOp,
    VarRef,
    WindowKind,
    WindowSpec,
)
from repro.language.errors import (
    CEPRError,
    CEPRSemanticError,
    CEPRSyntaxError,
    EvaluationError,
)
from repro.language.expressions import (
    EvalContext,
    VacuousPredicate,
    compile_expr,
    evaluate_predicate,
)
from repro.language.intervals import Interval, IntervalEvaluator, PartialMatchView
from repro.language.lexer import tokenize
from repro.language.optimizer import optimize
from repro.language.parser import parse_query
from repro.language.printer import format_expr, format_query
from repro.language.semantics import (
    AnalyzedQuery,
    CompiledRankKey,
    NegationSpec,
    PredicateSpec,
    VariableInfo,
    analyze,
)

__all__ = [
    "Aggregate",
    "AnalyzedQuery",
    "AttrRef",
    "Binary",
    "BinaryOp",
    "CEPRError",
    "CEPRSemanticError",
    "CEPRSyntaxError",
    "CompiledRankKey",
    "Direction",
    "EmitKind",
    "EmitSpec",
    "EvalContext",
    "EvaluationError",
    "Expr",
    "FuncCall",
    "Interval",
    "IntervalEvaluator",
    "Literal",
    "NegationSpec",
    "PartialMatchView",
    "PatternElement",
    "PredicateSpec",
    "PrevRef",
    "Query",
    "RankKey",
    "SelectionStrategy",
    "Unary",
    "UnaryOp",
    "VacuousPredicate",
    "VarRef",
    "VariableInfo",
    "WindowKind",
    "WindowSpec",
    "analyze",
    "compile_expr",
    "evaluate_predicate",
    "format_expr",
    "optimize",
    "format_query",
    "parse_query",
    "tokenize",
]
