"""Interval arithmetic over CEPR-QL expressions.

This is the analytical heart of score-bound pruning
(:mod:`repro.ranking.pruning`): given a *partial* match — some pattern
variables bound to concrete events, others still open — we bound the value
any *completion* of the match could give a scoring expression.  Bound
variables contribute exact (degenerate) intervals; unbound variables
contribute their schema-declared attribute :class:`~repro.events.schema.Domain`;
aggregates over partially-bound Kleene variables combine the observed prefix
with domain bounds on future elements.

``bound(expr)`` returns an :class:`Interval` that is guaranteed to contain
the expression's value for **every** possible completion, or ``None`` when
no finite reasoning is possible (string values, undeclared domains,
division by an interval containing zero, ...).  ``None`` simply disables
pruning for that run — it is never wrong, only useless.

Soundness assumptions (documented in DESIGN.md):

* event timestamps are non-decreasing in arrival order, so a future event's
  timestamp is at least the latest observed timestamp;
* events conform to their declared domains (enforce with schema validation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.events.event import Event
from repro.events.schema import Domain
from repro.language.ast_nodes import (
    Aggregate,
    AttrRef,
    Binary,
    BinaryOp,
    Expr,
    FuncCall,
    Literal,
    PrevRef,
    Unary,
    UnaryOp,
    VarRef,
)

_INF = math.inf
_FLOAT_MAX = 1.7976931348623157e308  # sys.float_info.max


def _sound(lo: float, hi: float) -> "Interval":
    """Build an interval from arithmetic endpoints, fixing overflow.

    Endpoint arithmetic that overflows rounds to ±inf.  An infinite *outer*
    endpoint is a sound (loose) claim, but an infinite *inner* endpoint
    (lo=+inf or hi=-inf) would exclude reachable finite values.  IEEE
    round-to-nearest only overflows when the exact value already exceeds
    the largest finite float, so clamping the inner endpoint to ±float-max
    restores soundness.
    """
    if lo == _INF:
        lo = _FLOAT_MAX
    if hi == -_INF:
        hi = -_FLOAT_MAX
    return Interval(lo, hi)


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]``; endpoints may be infinite."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"invalid interval [{self.lo}, {self.hi}]")

    @classmethod
    def exact(cls, value: float) -> "Interval":
        return cls(value, value)

    @classmethod
    def unbounded(cls) -> "Interval":
        return cls(-_INF, _INF)

    @classmethod
    def from_domain(cls, domain: Domain) -> "Interval":
        return cls(domain.lo, domain.hi)

    @property
    def is_exact(self) -> bool:
        return self.lo == self.hi

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __add__(self, other: "Interval") -> "Interval":
        return _sound(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return _sound(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        # inf * 0 is nan under IEEE; treat it as 0 (a zero endpoint wins).
        products = [0.0 if math.isnan(p) else p for p in products]
        return _sound(min(products), max(products))

    def __truediv__(self, other: "Interval") -> "Interval | None":
        if other.lo <= 0 <= other.hi:
            return None  # denominator may be zero: unbounded / undefined
        inv_a, inv_b = 1 / other.lo, 1 / other.hi
        if math.isinf(inv_a) or math.isinf(inv_b):
            # denominator endpoints too close to zero: the reciprocal
            # overflows and could exclude reachable finite values — make no
            # claim rather than an unsound one.
            return None
        inverse = Interval(min(inv_a, inv_b), max(inv_a, inv_b))
        return self * inverse

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def monotone_map(self, fn: Callable[[float], float]) -> "Interval | None":
        """Apply a non-decreasing function to both endpoints."""
        try:
            return Interval(fn(self.lo), fn(self.hi))
        except (ValueError, OverflowError):
            return None

    def abs(self) -> "Interval":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))

    def __repr__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


#: ``(event_type, attribute) -> Domain | None`` lookup.
DomainLookup = Callable[[str, str], Domain | None]


@dataclass
class PartialMatchView:
    """What the interval evaluator knows about a partial match.

    Parameters
    ----------
    bindings:
        Concretely bound events so far (Kleene variables map to the
        accepted prefix, possibly still open).
    var_types:
        Pattern variable → event type, for every positive variable.
    kleene_vars:
        Names of Kleene variables.
    open_vars:
        Variables that may still accept events: unbound variables and the
        currently-open Kleene variable.
    max_kleene_count:
        Upper bound on the number of elements any Kleene variable can ever
        hold (window-derived), or ``None`` when unbounded.
    duration_so_far / max_duration:
        Observed span of the partial match and the window-derived cap on
        the final span (``None`` when the window does not cap time).
    latest_timestamp:
        Timestamp of the most recent event observed by the engine; future
        events are assumed to be at least this late.
    """

    bindings: Mapping[str, Event | Sequence[Event]]
    var_types: Mapping[str, str]
    kleene_vars: frozenset[str]
    open_vars: frozenset[str]
    domain_of: DomainLookup
    max_kleene_count: int | None = None
    duration_so_far: float = 0.0
    max_duration: float | None = None
    latest_timestamp: float | None = None

    def events_of(self, var: str) -> Sequence[Event]:
        binding = self.bindings.get(var)
        if binding is None:
            return ()
        if isinstance(binding, Event):
            return (binding,)
        return binding

    def attr_domain(self, var: str) -> Callable[[str], Interval | None]:
        event_type = self.var_types.get(var)

        def lookup(attr: str) -> Interval | None:
            if event_type is None:
                return None
            domain = self.domain_of(event_type, attr)
            return Interval.from_domain(domain) if domain is not None else None

        return lookup


class IntervalEvaluator:
    """Bounds expression values over all completions of a partial match."""

    def __init__(self, view: PartialMatchView) -> None:
        self.view = view

    def bound(self, expr: Expr) -> Interval | None:
        """Return a sound enclosure of ``expr``'s final value, or ``None``."""
        if isinstance(expr, Literal):
            if isinstance(expr.value, bool) or not isinstance(expr.value, (int, float)):
                return None
            return Interval.exact(float(expr.value))
        if isinstance(expr, AttrRef):
            return self._bound_attr(expr)
        if isinstance(expr, PrevRef):
            # prev() only appears in incremental WHERE predicates, never in
            # scoring expressions (enforced by semantic analysis).
            return None
        if isinstance(expr, Aggregate):
            return self._bound_aggregate(expr)
        if isinstance(expr, FuncCall):
            return self._bound_func(expr)
        if isinstance(expr, VarRef):
            return None
        if isinstance(expr, Binary):
            return self._bound_binary(expr)
        if isinstance(expr, Unary):
            return self._bound_unary(expr)
        return None

    # -- leaves --------------------------------------------------------------

    def _numeric_exact(self, value: Any) -> Interval | None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return Interval.exact(float(value))

    def _bound_attr(self, expr: AttrRef) -> Interval | None:
        events = self.view.events_of(expr.var)
        if events and expr.var not in self.view.kleene_vars:
            return self._numeric_exact(events[0].get(expr.attr))
        if expr.var in self.view.kleene_vars:
            # Per-element reference outside an incremental predicate has no
            # single value; semantic analysis rejects it in rank keys.
            return None
        return self.view.attr_domain(expr.var)(expr.attr)

    def _bound_aggregate(self, expr: Aggregate) -> Interval | None:
        var = expr.var
        observed = self.view.events_of(var)
        is_open = var in self.view.open_vars
        if expr.func in ("count", "len"):
            return self._bound_count(len(observed), is_open)
        assert expr.attr is not None
        values: list[float] = []
        for event in observed:
            exact = self._numeric_exact(event.get(expr.attr))
            if exact is None:
                return None
            values.append(exact.lo)
        domain = self.view.attr_domain(var)(expr.attr)
        return _bound_aggregate_values(
            expr.func,
            values,
            domain,
            is_open,
            self._bound_count(len(observed), is_open),
        )

    def _bound_count(self, observed: int, is_open: bool) -> Interval:
        if not is_open:
            return Interval.exact(float(max(observed, 0)))
        lo = float(max(observed, 1))  # Kleene-plus bindings are non-empty
        cap = self.view.max_kleene_count
        hi = float(cap) if cap is not None else _INF
        return Interval(min(lo, hi) if hi < lo else lo, max(hi, lo))

    # -- built-ins -----------------------------------------------------------

    def _bound_func(self, expr: FuncCall) -> Interval | None:
        name = expr.name
        if name == "duration":
            hi = self.view.max_duration if self.view.max_duration is not None else _INF
            return Interval(self.view.duration_so_far, max(hi, self.view.duration_so_far))
        if name in ("timestamp", "ts"):
            arg = expr.args[0]
            if not isinstance(arg, VarRef):
                return None
            events = self.view.events_of(arg.var)
            if events and arg.var not in self.view.kleene_vars:
                return Interval.exact(events[0].timestamp)
            if self.view.latest_timestamp is not None:
                return Interval(self.view.latest_timestamp, _INF)
            return None
        if name == "abs":
            inner = self.bound(expr.args[0])
            return inner.abs() if inner is not None else None
        if name in ("round", "floor", "ceil", "sqrt", "log", "exp"):
            inner = self.bound(expr.args[0])
            if inner is None:
                return None
            fn = {
                "round": lambda x: float(round(x)) if math.isfinite(x) else x,
                "floor": lambda x: float(math.floor(x)) if math.isfinite(x) else x,
                "ceil": lambda x: float(math.ceil(x)) if math.isfinite(x) else x,
                "sqrt": math.sqrt,
                "log": math.log,
                "exp": _safe_exp,
            }[name]
            return inner.monotone_map(fn)
        if name == "sign":
            inner = self.bound(expr.args[0])
            if inner is None:
                return None
            return Interval(
                float((inner.lo > 0) - (inner.lo < 0)),
                float((inner.hi > 0) - (inner.hi < 0)),
            )
        if name in ("min2", "max2"):
            left = self.bound(expr.args[0])
            right = self.bound(expr.args[1])
            if left is None or right is None:
                return None
            if name == "min2":
                return Interval(min(left.lo, right.lo), min(left.hi, right.hi))
            return Interval(max(left.lo, right.lo), max(left.hi, right.hi))
        return None

    # -- operators -----------------------------------------------------------

    def _bound_binary(self, expr: Binary) -> Interval | None:
        if expr.op in (
            BinaryOp.AND,
            BinaryOp.OR,
            BinaryOp.EQ,
            BinaryOp.NEQ,
            BinaryOp.LT,
            BinaryOp.LTE,
            BinaryOp.GT,
            BinaryOp.GTE,
        ):
            return None  # boolean-valued; scores are numeric
        left = self.bound(expr.left)
        right = self.bound(expr.right)
        if left is None or right is None:
            return None
        if expr.op is BinaryOp.ADD:
            return left + right
        if expr.op is BinaryOp.SUB:
            return left - right
        if expr.op is BinaryOp.MUL:
            return left * right
        if expr.op is BinaryOp.DIV:
            return left / right
        return None  # MOD: no useful interval semantics

    def _bound_unary(self, expr: Unary) -> Interval | None:
        if expr.op is UnaryOp.NOT:
            return None
        inner = self.bound(expr.operand)
        return -inner if inner is not None else None


def _safe_exp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        return _INF


def _bound_aggregate_values(
    func: str,
    observed: list[float],
    domain: Interval | None,
    is_open: bool,
    count: Interval,
) -> Interval | None:
    """Bound an aggregate given observed values and a domain for future ones."""
    if not is_open:
        if not observed:
            return None
        return _exact_aggregate(func, observed)

    if func == "first":
        if observed:
            return Interval.exact(observed[0])
        return domain
    if func == "last":
        return domain  # future elements may replace the last
    if func == "min":
        if domain is None:
            return None
        hi = min(observed) if observed else domain.hi
        return Interval(min(domain.lo, hi), hi)
    if func == "max":
        if domain is None:
            return None
        lo = max(observed) if observed else domain.lo
        return Interval(lo, max(domain.hi, lo))
    if func == "avg":
        if domain is None:
            return None
        hull = domain
        for value in observed:
            hull = hull.hull(Interval.exact(value))
        return hull
    if func == "sum":
        if domain is None:
            return None
        partial = sum(observed)
        remaining = count - Interval.exact(float(len(observed)))
        remaining = Interval(max(remaining.lo, 0.0), max(remaining.hi, 0.0))
        future = remaining * domain
        return Interval.exact(partial) + future
    return None


def _exact_aggregate(func: str, values: list[float]) -> Interval | None:
    if func == "sum":
        return Interval.exact(sum(values))
    if func == "avg":
        return Interval.exact(sum(values) / len(values))
    if func == "min":
        return Interval.exact(min(values))
    if func == "max":
        return Interval.exact(max(values))
    if func == "first":
        return Interval.exact(values[0])
    if func == "last":
        return Interval.exact(values[-1])
    return None
