"""Expression compilation and evaluation.

``WHERE`` predicates and ``RANK BY`` keys share one expression AST; this
module compiles AST nodes into nested closures evaluated against an
:class:`EvalContext` describing a (partial or complete) match.

Evaluation modes
----------------

*Complete-match* evaluation (rank keys, final predicates): every referenced
variable is bound in ``ctx.bindings``; Kleene variables are bound to
non-empty lists and may only be referenced through aggregates.

*Incremental* evaluation (per-element Kleene predicates, predicates checked
the moment a variable binds): the variable currently being bound is named by
``ctx.current_var`` and its candidate event is ``ctx.current_event`` —
``v.attr`` then reads from the candidate.  ``prev(v.attr)`` reads the last
already-accepted element; for the *first* element there is no predecessor
and the node raises :class:`VacuousPredicate`, which the matcher treats as
"predicate passes" (standard SASE+ first-iteration semantics).  Aggregates
over the current Kleene variable cover the already-accepted elements,
excluding the candidate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.events.event import Event
from repro.language.ast_nodes import (
    Aggregate,
    AttrRef,
    Binary,
    BinaryOp,
    Expr,
    FuncCall,
    Literal,
    PrevRef,
    Unary,
    UnaryOp,
    VarRef,
)
from repro.language.errors import EvaluationError

Binding = Event | Sequence[Event]
#: Optional fast path for aggregates: ``(var, func, attr) -> value | None``.
AggLookup = Callable[[str, str, str | None], Any]


class VacuousPredicate(Exception):
    """Signals that a predicate has no defined value yet and must pass.

    Raised when ``prev(v.attr)`` or an aggregate over the current Kleene
    variable is evaluated for the variable's first element.
    """


@dataclass
class EvalContext:
    """Everything a compiled expression needs to evaluate.

    Parameters
    ----------
    bindings:
        Accepted bindings so far: variable name → event (singleton) or
        sequence of events (Kleene).
    current_var / current_event:
        The variable being bound right now and its candidate event, for
        incremental evaluation; ``None`` for complete-match evaluation.
    agg_lookup:
        Optional incremental-aggregate fast path; when it returns a
        non-``None`` value that value is used instead of recomputing from
        the binding list.
    """

    bindings: Mapping[str, Binding] = field(default_factory=dict)
    current_var: str | None = None
    current_event: Event | None = None
    agg_lookup: AggLookup | None = None

    def event_of(self, var: str) -> Event:
        """The singleton event bound to ``var`` (or the current candidate)."""
        if var == self.current_var and self.current_event is not None:
            return self.current_event
        binding = self.bindings.get(var)
        if binding is None:
            raise EvaluationError(f"variable {var!r} is not bound")
        if isinstance(binding, Event):
            return binding
        raise EvaluationError(
            f"variable {var!r} is a Kleene binding; reference it through an "
            f"aggregate (avg/sum/min/max/count/first/last)"
        )

    def events_of(self, var: str) -> Sequence[Event]:
        """The accepted elements of Kleene variable ``var`` (may be empty)."""
        binding = self.bindings.get(var)
        if binding is None:
            return ()
        if isinstance(binding, Event):
            return (binding,)
        return binding

    def all_events(self) -> list[Event]:
        """Every bound event, plus the current candidate, in binding order."""
        out: list[Event] = []
        for binding in self.bindings.values():
            if isinstance(binding, Event):
                out.append(binding)
            else:
                out.extend(binding)
        if self.current_event is not None:
            out.append(self.current_event)
        return out

    def duration(self) -> float:
        """Stream-time span between the earliest and latest bound event."""
        events = self.all_events()
        if not events:
            raise EvaluationError("duration() is undefined: no events bound")
        timestamps = [e.timestamp for e in events]
        return max(timestamps) - min(timestamps)


Evaluator = Callable[[EvalContext], Any]


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------


def compile_expr(expr: Expr) -> Evaluator:
    """Compile ``expr`` into an evaluator closure.

    The closure raises :class:`EvaluationError` on runtime type errors and
    :class:`VacuousPredicate` when an incremental predicate has no defined
    value yet (see module docstring).
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda ctx: value
    if isinstance(expr, AttrRef):
        return _compile_attr_ref(expr)
    if isinstance(expr, PrevRef):
        return _compile_prev_ref(expr)
    if isinstance(expr, Aggregate):
        return _compile_aggregate(expr)
    if isinstance(expr, FuncCall):
        return _compile_func(expr)
    if isinstance(expr, VarRef):
        raise EvaluationError(
            f"bare variable reference {expr.var!r} is not a value; "
            f"use v.attr, timestamp(v), or count(v)"
        )
    if isinstance(expr, Binary):
        return _compile_binary(expr)
    if isinstance(expr, Unary):
        return _compile_unary(expr)
    raise EvaluationError(f"cannot compile expression node {type(expr).__name__}")


def _compile_attr_ref(expr: AttrRef) -> Evaluator:
    var, attr = expr.var, expr.attr

    def evaluate(ctx: EvalContext) -> Any:
        event = ctx.event_of(var)
        try:
            return event[attr]
        except KeyError as exc:
            raise EvaluationError(str(exc)) from None

    return evaluate


def _compile_prev_ref(expr: PrevRef) -> Evaluator:
    var, attr = expr.var, expr.attr

    def evaluate(ctx: EvalContext) -> Any:
        if var != ctx.current_var:
            raise EvaluationError(
                f"prev({var}.{attr}) is only valid while binding {var!r}"
            )
        accepted = ctx.events_of(var)
        if not accepted:
            raise VacuousPredicate()
        try:
            return accepted[-1][attr]
        except KeyError as exc:
            raise EvaluationError(str(exc)) from None

    return evaluate


def _aggregate_values(events: Sequence[Event], attr: str) -> list[Any]:
    try:
        return [e[attr] for e in events]
    except KeyError as exc:
        raise EvaluationError(str(exc)) from None


def _compile_aggregate(expr: Aggregate) -> Evaluator:
    func, var, attr = expr.func, expr.var, expr.attr

    def evaluate(ctx: EvalContext) -> Any:
        if ctx.agg_lookup is not None:
            cached = ctx.agg_lookup(var, func, attr)
            if cached is not None:
                return cached
        events = ctx.events_of(var)
        incremental_on_self = var == ctx.current_var
        if not events:
            if incremental_on_self:
                raise VacuousPredicate()
            raise EvaluationError(
                f"aggregate {func}({var}) over an empty binding"
            )
        if func in ("count", "len"):
            return len(events)
        assert attr is not None
        values = _aggregate_values(events, attr)
        if func == "sum":
            return sum(values)
        if func == "avg":
            return sum(values) / len(values)
        if func == "min":
            return min(values)
        if func == "max":
            return max(values)
        if func == "first":
            return values[0]
        if func == "last":
            return values[-1]
        raise EvaluationError(f"unknown aggregate {func!r}")

    return evaluate


_MATH_FUNCS: dict[str, Callable[[float], float]] = {
    "abs": abs,
    "round": round,
    "floor": math.floor,
    "ceil": math.ceil,
    "sqrt": math.sqrt,
    "log": math.log,
    "exp": math.exp,
    "sign": lambda x: (x > 0) - (x < 0),
}


def _compile_func(expr: FuncCall) -> Evaluator:
    name = expr.name
    if name == "duration":
        return lambda ctx: ctx.duration()
    if name in ("timestamp", "ts"):
        arg = expr.args[0]
        if not isinstance(arg, VarRef):
            raise EvaluationError(f"{name}() expects a bare pattern variable")
        var = arg.var
        return lambda ctx: ctx.event_of(var).timestamp
    if name in _MATH_FUNCS:
        inner = compile_expr(expr.args[0])
        fn = _MATH_FUNCS[name]

        def evaluate_math(ctx: EvalContext) -> Any:
            value = inner(ctx)
            _require_number(value, name)
            try:
                return fn(value)
            except ValueError as exc:
                raise EvaluationError(f"{name}({value!r}): {exc}") from exc

        return evaluate_math
    if name in ("min2", "max2"):
        left = compile_expr(expr.args[0])
        right = compile_expr(expr.args[1])
        picker = min if name == "min2" else max

        def evaluate_pick(ctx: EvalContext) -> Any:
            a, b = left(ctx), right(ctx)
            _require_number(a, name)
            _require_number(b, name)
            return picker(a, b)

        return evaluate_pick
    raise EvaluationError(f"unknown function {name!r}")


def _require_number(value: Any, where: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvaluationError(f"{where}: expected a number, got {value!r}")


def _require_bool(value: Any, where: str) -> bool:
    if not isinstance(value, bool):
        raise EvaluationError(f"{where}: expected a boolean, got {value!r}")
    return value


_ARITH = {BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.DIV, BinaryOp.MOD}
_ORDERING = {BinaryOp.LT, BinaryOp.LTE, BinaryOp.GT, BinaryOp.GTE}


def _compile_binary(expr: Binary) -> Evaluator:
    op = expr.op

    if op is BinaryOp.AND:
        left, right = compile_expr(expr.left), compile_expr(expr.right)

        def eval_and(ctx: EvalContext) -> bool:
            if not _require_bool(left(ctx), "AND"):
                return False
            return _require_bool(right(ctx), "AND")

        return eval_and

    if op is BinaryOp.OR:
        left, right = compile_expr(expr.left), compile_expr(expr.right)

        def eval_or(ctx: EvalContext) -> bool:
            if _require_bool(left(ctx), "OR"):
                return True
            return _require_bool(right(ctx), "OR")

        return eval_or

    left, right = compile_expr(expr.left), compile_expr(expr.right)

    if op in _ARITH:
        return _compile_arith(op, left, right)
    if op is BinaryOp.EQ:
        return lambda ctx: left(ctx) == right(ctx)
    if op is BinaryOp.NEQ:
        return lambda ctx: left(ctx) != right(ctx)
    if op in _ORDERING:
        return _compile_ordering(op, left, right)
    raise EvaluationError(f"unknown binary operator {op}")


def _compile_arith(op: BinaryOp, left: Evaluator, right: Evaluator) -> Evaluator:
    def evaluate(ctx: EvalContext) -> float:
        a, b = left(ctx), right(ctx)
        _require_number(a, op.value)
        _require_number(b, op.value)
        if op is BinaryOp.ADD:
            return a + b
        if op is BinaryOp.SUB:
            return a - b
        if op is BinaryOp.MUL:
            return a * b
        if op is BinaryOp.DIV:
            if b == 0:
                raise EvaluationError("division by zero")
            return a / b
        if b == 0:
            raise EvaluationError("modulo by zero")
        return a % b

    return evaluate


def _compile_ordering(op: BinaryOp, left: Evaluator, right: Evaluator) -> Evaluator:
    def evaluate(ctx: EvalContext) -> bool:
        a, b = left(ctx), right(ctx)
        both_numbers = (
            not isinstance(a, bool)
            and not isinstance(b, bool)
            and isinstance(a, (int, float))
            and isinstance(b, (int, float))
        )
        both_strings = isinstance(a, str) and isinstance(b, str)
        if not (both_numbers or both_strings):
            raise EvaluationError(
                f"{op.value}: operands must both be numbers or both strings, "
                f"got {a!r} and {b!r}"
            )
        if op is BinaryOp.LT:
            return a < b
        if op is BinaryOp.LTE:
            return a <= b
        if op is BinaryOp.GT:
            return a > b
        return a >= b

    return evaluate


def _compile_unary(expr: Unary) -> Evaluator:
    inner = compile_expr(expr.operand)
    if expr.op is UnaryOp.NEG:

        def eval_neg(ctx: EvalContext) -> float:
            value = inner(ctx)
            _require_number(value, "unary -")
            return -value

        return eval_neg

    def eval_not(ctx: EvalContext) -> bool:
        return not _require_bool(inner(ctx), "NOT")

    return eval_not


def evaluate_predicate(evaluator: Evaluator, ctx: EvalContext) -> bool:
    """Evaluate a compiled predicate, treating vacuity as a pass.

    Returns ``True``/``False``; raises :class:`EvaluationError` if the
    expression does not produce a boolean.
    """
    try:
        result = evaluator(ctx)
    except VacuousPredicate:
        return True
    return _require_bool(result, "WHERE predicate")
