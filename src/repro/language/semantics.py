"""Semantic analysis of parsed CEPR-QL queries.

Turns a raw :class:`~repro.language.ast_nodes.Query` into an
:class:`AnalyzedQuery` that the engine compiler consumes:

* resolves pattern variables and rejects malformed references;
* **decomposes the WHERE clause** into conjuncts and assigns each to the
  earliest evaluation point at which it is decidable (SASE-style predicate
  pushdown): the moment a singleton variable binds, per element of a Kleene
  variable (*incremental* predicates), on candidate events of a negated
  variable, or at match completion;
* validates and compiles ``RANK BY`` keys;
* fills in defaults (selection strategy, emission policy) and enforces the
  clause interactions documented in DESIGN.md (e.g. ``RANK BY`` requires a
  ``WITHIN`` window that defines its ranking scope).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.events.schema import SchemaRegistry
from repro.language.ast_nodes import (
    Aggregate,
    AttrRef,
    Direction,
    EmitKind,
    EmitSpec,
    Expr,
    FuncCall,
    Literal,
    PatternElement,
    PrevRef,
    Query,
    SelectionStrategy,
    VarRef,
    WindowKind,
    WindowSpec,
    iter_subexpressions,
    referenced_variables,
    split_conjuncts,
)
from repro.language.errors import CEPRSemanticError
from repro.language.expressions import Evaluator, compile_expr
from repro.language.fingerprint import predicate_fingerprint
from repro.language.optimizer import optimize


@dataclass(frozen=True)
class VariableInfo:
    """Resolved facts about one pattern variable."""

    name: str
    event_type: str
    #: Index among the *positive* elements; for a negated variable, the
    #: index of the positive element that closes its guard interval
    #: (``len(positives)`` for a trailing negation).
    position: int
    is_kleene: bool = False
    is_negated: bool = False


@dataclass(frozen=True)
class PredicateSpec:
    """One WHERE conjunct, compiled and assigned to an evaluation point."""

    expr: Expr
    evaluator: Evaluator
    variables: frozenset[str]
    #: Variable at whose binding attempt this predicate runs; ``None`` for
    #: completion predicates (evaluated when the match is finalised).
    anchor_var: str | None
    #: True when the predicate re-runs for every element of a Kleene
    #: variable rather than once.
    incremental: bool = False
    #: Alpha-invariant canonical fingerprint (see
    #: :mod:`repro.language.fingerprint`), set only when the predicate is
    #: *self-contained* — its value depends on nothing but the candidate
    #: event bound to ``anchor_var``.  The shared predicate index keys on
    #: this to evaluate each distinct predicate once per event across all
    #: registered queries; ``None`` predicates are never shared.
    fingerprint: str | None = None


@dataclass(frozen=True)
class NegationSpec:
    """A negated pattern element with its guard interval and predicates.

    The negation is *armed* once positive element ``after`` has bound and
    *disarmed* when positive element ``before`` binds (for a trailing
    negation, ``before == len(positives)`` and the match stays pending until
    its window expires).  While armed, an event of ``element.event_type``
    satisfying all ``predicates`` kills the run.
    """

    element: PatternElement
    after: int
    before: int
    predicates: tuple[PredicateSpec, ...] = ()

    @property
    def trailing(self) -> bool:
        return self.element.negated and self.before_is_end

    @property
    def before_is_end(self) -> bool:
        return self.before < 0  # sentinel set by the analyser


@dataclass(frozen=True)
class CompiledRankKey:
    """One compiled ``RANK BY`` term."""

    expr: Expr
    direction: Direction
    evaluator: Evaluator


@dataclass(frozen=True)
class CompiledYield:
    """A compiled ``YIELD`` clause: derived event type + payload builders."""

    event_type: str
    assignments: tuple[tuple[str, Expr, Evaluator], ...]


@dataclass
class AnalyzedQuery:
    """The output of semantic analysis, ready for NFA compilation."""

    ast: Query
    variables: dict[str, VariableInfo]
    positives: list[VariableInfo]
    negations: list[NegationSpec]
    #: anchor variable name -> predicates evaluated when it binds.
    predicates_at: dict[str, list[PredicateSpec]]
    #: evaluated once, when a match completes.
    completion_predicates: list[PredicateSpec]
    rank_keys: list[CompiledRankKey]
    yield_spec: "CompiledYield | None"
    window: WindowSpec | None
    strategy: SelectionStrategy
    partition_by: tuple[str, ...]
    limit: int | None
    emit: EmitSpec
    name: str | None = None
    #: event types this query must be fed (positives and negations).
    relevant_types: frozenset[str] = field(default_factory=frozenset)

    @property
    def is_ranked(self) -> bool:
        return bool(self.rank_keys)

    def kleene_variable_names(self) -> frozenset[str]:
        return frozenset(v.name for v in self.positives if v.is_kleene)


_TRAILING = -1  # sentinel: negation guarded until window expiry


def analyze(query: Query, registry: SchemaRegistry | None = None) -> AnalyzedQuery:
    """Analyse ``query``; raises :class:`CEPRSemanticError` on violations."""
    variables, positives, raw_negations = _resolve_variables(query)
    if registry is not None:
        _check_schemas(query, registry)

    predicates_at: dict[str, list[PredicateSpec]] = {v.name: [] for v in variables.values()}
    completion: list[PredicateSpec] = []
    negation_predicates: dict[str, list[PredicateSpec]] = {
        spec.element.variable: [] for spec in raw_negations
    }

    for conjunct in split_conjuncts(query.where):
        conjunct = optimize(conjunct)
        if conjunct == Literal(True):
            continue  # vacuous conjunct folded away
        spec = _assign_conjunct(conjunct, variables, positives)
        if spec.anchor_var is None:
            completion.append(spec)
        elif spec.anchor_var in negation_predicates:
            negation_predicates[spec.anchor_var].append(spec)
        else:
            predicates_at[spec.anchor_var].append(spec)

    negations = [
        NegationSpec(
            element=spec.element,
            after=spec.after,
            before=spec.before,
            predicates=tuple(negation_predicates[spec.element.variable]),
        )
        for spec in raw_negations
    ]

    rank_keys = _compile_rank_keys(query, variables)
    yield_spec = _compile_yield(query, variables)
    window = query.window
    emit = _default_emit(query)

    if query.limit == 0:
        # The parser accepts LIMIT 0 so the static analyzer can report it
        # as CEPR303; the runtime must never see k=0 (an empty top-k has
        # no kth bound and every emission would be empty).
        raise CEPRSemanticError(
            "LIMIT 0 keeps zero results; use a positive k or drop the "
            "LIMIT clause"
        )
    if rank_keys and window is None:
        raise CEPRSemanticError(
            "RANK BY requires a WITHIN window: the window defines the scope "
            "within which matches compete"
        )
    if emit.kind is EmitKind.ON_WINDOW_CLOSE and window is None:
        raise CEPRSemanticError("EMIT ON WINDOW CLOSE requires a WITHIN window")
    if query.limit is not None and not rank_keys:
        # LIMIT without RANK BY keeps the first k matches in detection
        # order — legal, but only meaningful with an emission scope.
        if window is None:
            raise CEPRSemanticError("LIMIT requires a WITHIN window")

    analyzed = AnalyzedQuery(
        ast=query,
        variables=variables,
        positives=positives,
        negations=negations,
        predicates_at=predicates_at,
        completion_predicates=completion,
        rank_keys=rank_keys,
        yield_spec=yield_spec,
        window=window,
        strategy=query.strategy or SelectionStrategy.SKIP_TILL_NEXT,
        partition_by=query.partition_by,
        limit=query.limit,
        emit=emit,
        name=query.name,
        relevant_types=frozenset(e.event_type for e in query.pattern),
    )
    return analyzed


# ---------------------------------------------------------------------------
# variable resolution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _RawNegation:
    element: PatternElement
    after: int
    before: int


def _resolve_variables(
    query: Query,
) -> tuple[dict[str, VariableInfo], list[VariableInfo], list[_RawNegation]]:
    if not query.pattern:
        raise CEPRSemanticError("pattern must contain at least one element")

    variables: dict[str, VariableInfo] = {}
    positives: list[VariableInfo] = []
    raw_negations: list[_RawNegation] = []
    positive_index = 0

    if query.pattern[0].negated:
        raise CEPRSemanticError(
            "negation must follow at least one positive element (a leading "
            "negation has no guard interval: the run only exists once its "
            "first positive event arrives)"
        )

    for element in query.pattern:
        if element.variable in variables:
            raise CEPRSemanticError(f"duplicate pattern variable {element.variable!r}")
        if element.negated:
            info = VariableInfo(
                element.variable,
                element.event_type,
                position=positive_index,
                is_negated=True,
            )
            variables[element.variable] = info
            raw_negations.append(
                _RawNegation(element, after=positive_index - 1, before=positive_index)
            )
        else:
            info = VariableInfo(
                element.variable,
                element.event_type,
                position=positive_index,
                is_kleene=element.kleene,
            )
            variables[element.variable] = info
            positives.append(info)
            positive_index += 1

    if not positives:
        raise CEPRSemanticError("pattern must contain at least one positive element")

    # Mark trailing negations (guarded until window expiry).
    total = len(positives)
    resolved: list[_RawNegation] = []
    for raw in raw_negations:
        before = _TRAILING if raw.before >= total else raw.before
        resolved.append(_RawNegation(raw.element, raw.after, before))
        if before is _TRAILING and query.window is None:
            raise CEPRSemanticError(
                f"trailing negation NOT {raw.element.event_type} "
                f"{raw.element.variable} requires a WITHIN window (matches stay "
                f"pending until the window expires)"
            )
    return variables, positives, resolved


def _check_schemas(query: Query, registry: SchemaRegistry) -> None:
    for element in query.pattern:
        schema = registry.get(element.event_type)
        if schema is None:
            continue  # unknown types are allowed; strict mode is an engine option
        for attr in query.partition_by:
            if schema.attribute(attr) is None:
                raise CEPRSemanticError(
                    f"PARTITION BY attribute {attr!r} is not declared on event "
                    f"type {element.event_type!r}"
                )


# ---------------------------------------------------------------------------
# predicate decomposition
# ---------------------------------------------------------------------------


def _uses_duration(expr: Expr) -> bool:
    return any(
        isinstance(node, FuncCall) and node.name == "duration"
        for node in iter_subexpressions(expr)
    )


def _per_element_kleene_refs(
    expr: Expr, variables: dict[str, VariableInfo]
) -> set[str]:
    """Kleene variables referenced per element (AttrRef/PrevRef, not aggregates)."""
    refs: set[str] = set()
    for node in iter_subexpressions(expr):
        if isinstance(node, (AttrRef, PrevRef)):
            info = variables.get(node.var)
            if info is not None and info.is_kleene:
                refs.add(node.var)
    return refs


def _assign_conjunct(
    conjunct: Expr,
    variables: dict[str, VariableInfo],
    positives: list[VariableInfo],
) -> PredicateSpec:
    refs = referenced_variables(conjunct)
    for name in refs:
        if name not in variables:
            raise CEPRSemanticError(f"unknown pattern variable {name!r} in WHERE")

    negated_refs = {n for n in refs if variables[n].is_negated}
    per_element = _per_element_kleene_refs(conjunct, variables)
    has_duration = _uses_duration(conjunct)

    for node in iter_subexpressions(conjunct):
        if isinstance(node, PrevRef) and not variables[node.var].is_kleene:
            raise CEPRSemanticError(
                f"prev({node.var}.{node.attr}): {node.var!r} is not a Kleene variable"
            )
        if isinstance(node, Aggregate) and variables[node.var].is_negated:
            raise CEPRSemanticError(
                f"aggregate over negated variable {node.var!r} is not allowed"
            )
        if isinstance(node, (AttrRef, VarRef)) and node.var in variables:
            info = variables[node.var]
            if isinstance(node, VarRef) and info.is_kleene:
                raise CEPRSemanticError(
                    f"timestamp()/ts() over Kleene variable {node.var!r} is "
                    f"ambiguous; aggregate its elements instead"
                )

    evaluator = compile_expr(conjunct)

    # Case 1: incremental predicate on exactly one Kleene variable.
    if per_element:
        if len(per_element) > 1:
            raise CEPRSemanticError(
                f"a WHERE conjunct may reference per-element attributes of at "
                f"most one Kleene variable, found {sorted(per_element)}"
            )
        if negated_refs:
            raise CEPRSemanticError(
                "a conjunct cannot mix per-element Kleene references with "
                "negated variables"
            )
        anchor = next(iter(per_element))
        anchor_pos = variables[anchor].position
        for name in refs - {anchor}:
            if variables[name].position >= anchor_pos:
                raise CEPRSemanticError(
                    f"incremental predicate on {anchor!r} references later "
                    f"variable {name!r}; only earlier variables are bound when "
                    f"each element of {anchor!r} is evaluated"
                )
        return PredicateSpec(
            conjunct,
            evaluator,
            refs,
            anchor,
            incremental=True,
            fingerprint=predicate_fingerprint(conjunct, anchor),
        )

    # Case 2: negation predicate.
    if negated_refs:
        if len(negated_refs) > 1:
            raise CEPRSemanticError(
                f"a conjunct may reference at most one negated variable, "
                f"found {sorted(negated_refs)}"
            )
        if has_duration:
            raise CEPRSemanticError(
                "duration() cannot appear in a predicate on a negated variable"
            )
        anchor = next(iter(negated_refs))
        guard_start = variables[anchor].position  # positives bound before guard
        for name in refs - {anchor}:
            if variables[name].is_negated:
                raise CEPRSemanticError("predicates cannot relate two negated variables")
            if variables[name].position >= guard_start:
                raise CEPRSemanticError(
                    f"predicate on negated variable {anchor!r} references "
                    f"{name!r}, which binds only after the negation's guard "
                    f"interval opens"
                )
        return PredicateSpec(
            conjunct,
            evaluator,
            refs,
            anchor,
            incremental=False,
            fingerprint=predicate_fingerprint(conjunct, anchor),
        )

    # Case 3: positive-variable predicate; anchored at the latest variable
    # it references (aggregates over a Kleene variable are complete only
    # when the *next* positive binds, or at match completion).
    anchor_info: VariableInfo | None = None
    force_completion = False
    for name in refs:
        info = variables[name]
        candidate = info
        if info.is_kleene:
            # Referenced via aggregate only (per-element handled above);
            # defer to the element after the Kleene closes.
            next_pos = info.position + 1
            candidate = positives[next_pos] if next_pos < len(positives) else None
        if candidate is None:
            force_completion = True  # aggregate over a trailing Kleene
            break
        if anchor_info is None or candidate.position > anchor_info.position:
            anchor_info = candidate

    if has_duration and not force_completion:
        # duration() keeps growing until completion; evaluate last.
        last = positives[-1]
        if last.is_kleene:
            force_completion = True
        elif anchor_info is None or anchor_info.position < last.position:
            anchor_info = last

    if not refs and not has_duration:
        # Constant predicate: evaluate once at completion.
        force_completion = True

    if force_completion:
        anchor_info = None

    anchor_var = anchor_info.name if anchor_info is not None else None
    return PredicateSpec(
        conjunct,
        evaluator,
        refs,
        anchor_var,
        incremental=False,
        fingerprint=predicate_fingerprint(conjunct, anchor_var),
    )


# ---------------------------------------------------------------------------
# rank keys and defaults
# ---------------------------------------------------------------------------


def _compile_rank_keys(
    query: Query, variables: dict[str, VariableInfo]
) -> list[CompiledRankKey]:
    keys: list[CompiledRankKey] = []
    for key in query.rank_by:
        _validate_complete_match_expr(key.expr, variables, "RANK BY")
        optimized = optimize(key.expr)
        keys.append(CompiledRankKey(optimized, key.direction, compile_expr(optimized)))
    return keys


def _validate_complete_match_expr(
    expr: Expr, variables: dict[str, VariableInfo], where: str
) -> None:
    """Shared checks for expressions evaluated over complete matches."""
    for node in iter_subexpressions(expr):
        if isinstance(node, PrevRef):
            raise CEPRSemanticError(f"prev() is not allowed in {where}")
        if isinstance(node, (AttrRef, VarRef, Aggregate)):
            info = variables.get(node.var)
            if info is None:
                raise CEPRSemanticError(
                    f"unknown pattern variable {node.var!r} in {where}"
                )
            if info.is_negated:
                raise CEPRSemanticError(
                    f"{where} cannot reference negated variable {node.var!r}"
                )
            if info.is_kleene and isinstance(node, AttrRef):
                raise CEPRSemanticError(
                    f"{where} must reference Kleene variable {node.var!r} "
                    f"through an aggregate, not {node.var}.{node.attr}"
                )
            if info.is_kleene and isinstance(node, VarRef):
                raise CEPRSemanticError(
                    f"timestamp()/ts() over Kleene variable {node.var!r} is "
                    f"ambiguous; aggregate its elements instead"
                )


def _compile_yield(
    query: Query, variables: dict[str, VariableInfo]
) -> CompiledYield | None:
    if query.yield_spec is None:
        return None
    if query.yield_spec.event_type in {
        element.event_type for element in query.pattern
    }:
        raise CEPRSemanticError(
            f"YIELD type {query.yield_spec.event_type!r} appears in this "
            f"query's own pattern; direct self-feedback loops are rejected "
            f"(route through a different derived type)"
        )
    compiled = []
    for attr, expr in query.yield_spec.assignments:
        _validate_complete_match_expr(expr, variables, "YIELD")
        optimized = optimize(expr)
        compiled.append((attr, optimized, compile_expr(optimized)))
    return CompiledYield(query.yield_spec.event_type, tuple(compiled))


def _default_emit(query: Query) -> EmitSpec:
    if query.emit is not None:
        return query.emit
    if query.rank_by:
        # Ranked queries default to tumbling-epoch emission: the ordered
        # answer for each window epoch is released when the epoch closes.
        return EmitSpec(EmitKind.ON_WINDOW_CLOSE)
    # Unranked queries behave like a classical CEP engine: every match is
    # emitted the moment it is detected.
    return EmitSpec(EmitKind.EAGER)
