"""Abstract syntax tree for CEPR-QL.

Two families of nodes:

* **Expressions** (:class:`Expr` subclasses) — shared by ``WHERE``
  predicates and ``RANK BY`` scoring keys.
* **Query structure** — the parsed clauses of one query
  (:class:`Query`, :class:`PatternElement`, :class:`WindowSpec`,
  :class:`RankKey`, :class:`EmitSpec`).

All nodes are frozen dataclasses so they hash and compare structurally,
which the printer round-trip tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Union


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, or boolean."""

    value: Union[int, float, str, bool]


@dataclass(frozen=True)
class AttrRef(Expr):
    """Reference to a pattern variable's attribute, e.g. ``b.price``.

    For a Kleene variable this denotes the *current element's* attribute and
    is only legal inside incremental ``WHERE`` predicates.
    """

    var: str
    attr: str


@dataclass(frozen=True)
class PrevRef(Expr):
    """``prev(v.attr)`` — the previous element of Kleene variable ``v``.

    Only legal inside an incremental predicate on ``v``; vacuously true for
    the first element (no predecessor exists).
    """

    var: str
    attr: str


#: Aggregate function names accepted over Kleene bindings.
AGGREGATE_FUNCS: frozenset[str] = frozenset(
    {"count", "len", "sum", "avg", "min", "max", "first", "last"}
)


@dataclass(frozen=True)
class Aggregate(Expr):
    """Aggregate over a Kleene binding: ``avg(v.attr)``, ``count(v)``.

    ``attr`` is ``None`` only for ``count``/``len``.
    """

    func: str
    var: str
    attr: str | None = None


@dataclass(frozen=True)
class FuncCall(Expr):
    """Scalar built-in call: ``abs(x)``, ``duration()``, ``timestamp(v)``."""

    name: str
    args: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class VarRef(Expr):
    """Bare reference to a pattern variable, as an argument to built-ins."""

    var: str


class BinaryOp(Enum):
    """Binary operators, in one enum so evaluators can dispatch uniformly."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    EQ = "=="
    NEQ = "!="
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    AND = "AND"
    OR = "OR"


@dataclass(frozen=True)
class Binary(Expr):
    op: BinaryOp
    left: Expr
    right: Expr


class UnaryOp(Enum):
    """Unary operators: arithmetic negation and boolean NOT."""

    NEG = "-"
    NOT = "NOT"


@dataclass(frozen=True)
class Unary(Expr):
    op: UnaryOp
    operand: Expr


# ---------------------------------------------------------------------------
# query structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PatternElement:
    """One element of a ``SEQ(...)`` pattern.

    ``SEQ(Buy b, Sell+ ss, NOT Cancel c)`` yields three elements:
    ``(Buy, b)``, ``(Sell, ss, kleene)``, ``(Cancel, c, negated)``.
    """

    event_type: str
    variable: str
    kleene: bool = False
    negated: bool = False


class SelectionStrategy(Enum):
    """SASE-style event selection strategies.

    * ``STRICT`` — matched events must be contiguous (within the partition).
    * ``SKIP_TILL_NEXT`` — irrelevant events are skipped; each run extends
      deterministically on the next relevant event.
    * ``SKIP_TILL_ANY`` — every relevant event both extends a copy of the
      run and is skipped by the original, enumerating all combinations.
    """

    STRICT = "STRICT"
    SKIP_TILL_NEXT = "SKIP_TILL_NEXT"
    SKIP_TILL_ANY = "SKIP_TILL_ANY"


#: Aliases accepted in query text for each strategy.
STRATEGY_ALIASES: dict[str, SelectionStrategy] = {
    "STRICT": SelectionStrategy.STRICT,
    "STRICT_CONTIGUITY": SelectionStrategy.STRICT,
    "SKIP_TILL_NEXT": SelectionStrategy.SKIP_TILL_NEXT,
    "SKIP_TILL_NEXT_MATCH": SelectionStrategy.SKIP_TILL_NEXT,
    "SKIP_TILL_ANY": SelectionStrategy.SKIP_TILL_ANY,
    "SKIP_TILL_ANY_MATCH": SelectionStrategy.SKIP_TILL_ANY,
}


class WindowKind(Enum):
    """Whether a window counts arrival positions or spans stream time."""

    COUNT = "EVENTS"
    TIME = "TIME"


@dataclass(frozen=True)
class WindowSpec:
    """``WITHIN n EVENTS`` or ``WITHIN t <unit>`` (stored in seconds)."""

    kind: WindowKind
    span: float  # events for COUNT, seconds for TIME

    def __post_init__(self) -> None:
        if self.span <= 0:
            raise ValueError(f"window span must be positive, got {self.span}")


class Direction(Enum):
    """Sort direction of one RANK BY key (ASC = smaller is better)."""

    ASC = "ASC"
    DESC = "DESC"


@dataclass(frozen=True)
class RankKey:
    """One ``RANK BY`` term: a scoring expression plus a direction."""

    expr: Expr
    direction: Direction = Direction.ASC


class EmitKind(Enum):
    """When ranked results are released.

    * ``ON_WINDOW_CLOSE`` — tumbling evaluation: the stream is cut into
      consecutive epochs of the window span; the ordered top-k of each epoch
      is emitted when it closes.  This is the mode in which score-bound
      pruning is sound (see DESIGN.md).
    * ``EVERY`` — periodic snapshots of the current top-k over a sliding
      scope of live matches.
    * ``EAGER`` — a snapshot is emitted whenever the top-k set changes;
      earlier snapshots may be revised.
    """

    ON_WINDOW_CLOSE = "ON WINDOW CLOSE"
    EVERY = "EVERY"
    EAGER = "EAGER"


@dataclass(frozen=True)
class EmitSpec:
    kind: EmitKind
    #: For ``EVERY``: the period (events or seconds, per ``window_kind``).
    period: float | None = None
    period_kind: WindowKind | None = None


@dataclass(frozen=True)
class YieldSpec:
    """``YIELD Type(attr = expr, ...)`` — derive a new event per result.

    Each distinct match that appears in an emission is converted into one
    event of ``event_type`` whose payload is the evaluated assignments,
    and fed back into the engine (hierarchical CEP).  Expressions follow
    rank-key rules: complete-match evaluation, Kleene variables through
    aggregates only.
    """

    event_type: str
    assignments: tuple[tuple[str, "Expr"], ...]


@dataclass(frozen=True)
class Query:
    """A parsed CEPR-QL query (before semantic analysis)."""

    pattern: tuple[PatternElement, ...]
    where: Expr | None = None
    window: WindowSpec | None = None
    strategy: SelectionStrategy | None = None
    partition_by: tuple[str, ...] = ()
    rank_by: tuple[RankKey, ...] = ()
    limit: int | None = None
    emit: EmitSpec | None = None
    name: str | None = None
    yield_spec: "YieldSpec | None" = None

    def positive_elements(self) -> tuple[PatternElement, ...]:
        """The non-negated elements, in pattern order."""
        return tuple(e for e in self.pattern if not e.negated)

    def negated_elements(self) -> tuple[PatternElement, ...]:
        return tuple(e for e in self.pattern if e.negated)


def iter_subexpressions(expr: Expr):
    """Yield ``expr`` and every nested sub-expression, pre-order."""
    yield expr
    if isinstance(expr, Binary):
        yield from iter_subexpressions(expr.left)
        yield from iter_subexpressions(expr.right)
    elif isinstance(expr, Unary):
        yield from iter_subexpressions(expr.operand)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from iter_subexpressions(arg)


def referenced_variables(expr: Expr) -> frozenset[str]:
    """All pattern variables referenced anywhere inside ``expr``."""
    names: set[str] = set()
    for node in iter_subexpressions(expr):
        if isinstance(node, (AttrRef, PrevRef, Aggregate, VarRef)):
            names.add(node.var)
    return frozenset(names)


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Split a boolean expression at top-level ``AND`` into conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, Binary) and expr.op is BinaryOp.AND:
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]
