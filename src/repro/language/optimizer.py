"""Expression optimisation: constant folding and boolean simplification.

Applied between semantic analysis and predicate compilation, this pass
rewrites expressions into cheaper equivalents evaluated once at compile
time instead of per event:

* arithmetic over literals folds (``2 * 3 + 1`` → ``7``), including inside
  comparisons (``a.x > 2 * 5`` → ``a.x > 10``);
* boolean identities simplify (``p AND TRUE`` → ``p``, ``TRUE OR p`` →
  ``TRUE``);
* pure-literal built-ins fold (``abs(-3)`` → ``3``).

Double-negation elimination (``NOT NOT p`` → ``p``, ``--x`` → ``x``) is
deliberately **not** performed: without static types it would change
behaviour for ill-typed operands (the original raises, the rewrite would
silently pass the value through).

Folding preserves the expression's observable behaviour **including
errors**: a subexpression that would raise at runtime (``1/0``) is left
unfolded, so the error still surfaces on the first evaluation rather than
at registration (matching the lenient-errors policy's per-run accounting).

``optimize(expr)`` returns a semantically equivalent expression; the
equivalence is property-tested against the evaluator in
``tests/property/test_property_optimizer.py``.
"""

from __future__ import annotations

from typing import Union

from repro.language.ast_nodes import (
    Aggregate,
    Binary,
    BinaryOp,
    Expr,
    FuncCall,
    Literal,
    Unary,
    UnaryOp,
)
from repro.language.errors import EvaluationError
from repro.language.expressions import EvalContext, compile_expr

_EMPTY_CONTEXT = EvalContext(bindings={})

_FOLDABLE_FUNCS = frozenset(
    {"abs", "round", "floor", "ceil", "sqrt", "log", "exp", "sign", "min2", "max2"}
)

Number = Union[int, float]


def optimize(expr: Expr) -> Expr:
    """Return a cheaper, semantically equivalent expression."""
    if isinstance(expr, Binary):
        return _optimize_binary(expr)
    if isinstance(expr, Unary):
        return _optimize_unary(expr)
    if isinstance(expr, FuncCall):
        return _optimize_func(expr)
    return expr


def _is_literal(expr: Expr) -> bool:
    return isinstance(expr, Literal)


def _is_bool_literal(expr: Expr, value: bool) -> bool:
    return isinstance(expr, Literal) and expr.value is value


def _try_fold(expr: Expr) -> Expr:
    """Evaluate a literal-only expression now; keep it if evaluation fails."""
    try:
        value = compile_expr(expr)(_EMPTY_CONTEXT)
    except (EvaluationError, OverflowError):
        # e.g. 1/0 or exp(1e9): defer the error to runtime so it surfaces
        # on the first evaluation, not at registration.
        return expr
    if isinstance(value, (bool, int, float, str)):
        return Literal(value)
    return expr


def _is_boolean_shaped(expr: Expr) -> bool:
    """Whether ``expr`` provably evaluates to a boolean (or raises).

    Identity elision (``p AND TRUE`` → ``p``) may only keep operands that
    cannot silently turn into non-boolean values — the original expression
    would have raised on them.
    """
    if isinstance(expr, Literal):
        return isinstance(expr.value, bool)
    if isinstance(expr, Unary):
        return expr.op is UnaryOp.NOT
    if isinstance(expr, Binary):
        return expr.op in (
            BinaryOp.AND,
            BinaryOp.OR,
            BinaryOp.EQ,
            BinaryOp.NEQ,
            BinaryOp.LT,
            BinaryOp.LTE,
            BinaryOp.GT,
            BinaryOp.GTE,
        )
    return False


#: Built-ins whose evaluator coerces/validates to a number (or raises).
_NUMERIC_FUNCS = frozenset(
    {
        "abs", "round", "floor", "ceil", "sqrt", "log", "exp", "sign",
        "min2", "max2", "duration", "timestamp", "ts",
    }
)
#: Aggregates that can only return a number (or raise): ``min``/``max``/
#: ``first``/``last`` pass element values through and may yield strings.
_NUMERIC_AGGS = frozenset({"count", "len", "sum", "avg"})


def _is_numeric_shaped(expr: Expr) -> bool:
    """Whether ``expr`` provably evaluates to a number (or raises).

    Identity elision (``x + 0`` → ``x``) may only keep operands that
    cannot silently produce a non-numeric value: the original expression
    would have raised :class:`EvaluationError` on them, and eliding the
    arithmetic must not swallow that error.
    """
    if isinstance(expr, Literal):
        return not isinstance(expr.value, bool) and isinstance(
            expr.value, (int, float)
        )
    if isinstance(expr, Unary):
        return expr.op is UnaryOp.NEG
    if isinstance(expr, Binary):
        return expr.op in (
            BinaryOp.ADD,
            BinaryOp.SUB,
            BinaryOp.MUL,
            BinaryOp.DIV,
            BinaryOp.MOD,
        )
    if isinstance(expr, FuncCall):
        return expr.name in _NUMERIC_FUNCS
    if isinstance(expr, Aggregate):
        return expr.func in _NUMERIC_AGGS
    return False


def _optimize_binary(expr: Binary) -> Expr:
    left = optimize(expr.left)
    right = optimize(expr.right)
    rebuilt = Binary(expr.op, left, right)

    if expr.op is BinaryOp.AND:
        if _is_bool_literal(left, True) and _is_boolean_shaped(right):
            return right
        if _is_bool_literal(right, True) and _is_boolean_shaped(left):
            return left
        # FALSE AND p → FALSE: short-circuit means p never ran originally.
        if _is_bool_literal(left, False):
            return Literal(False)
        return rebuilt

    if expr.op is BinaryOp.OR:
        if _is_bool_literal(left, False) and _is_boolean_shaped(right):
            return right
        if _is_bool_literal(right, False) and _is_boolean_shaped(left):
            return left
        if _is_bool_literal(left, True):
            return Literal(True)
        return rebuilt

    if _is_literal(left) and _is_literal(right):
        return _try_fold(rebuilt)

    # x + 0, x - 0, x * 1, x / 1 — but only when x is numeric-shaped:
    # the arithmetic raises on strings/booleans, and eliding it must not
    # silently pass such a value through.  (x * 0 has sign/type caveats
    # either way and is never elided.)
    if expr.op is BinaryOp.ADD and _is_zero(right) and _is_numeric_shaped(left):
        return left
    if expr.op is BinaryOp.ADD and _is_zero(left) and _is_numeric_shaped(right):
        return right
    if expr.op is BinaryOp.SUB and _is_zero(right) and _is_numeric_shaped(left):
        return left
    if expr.op is BinaryOp.MUL and _is_one(right) and _is_numeric_shaped(left):
        return left
    if expr.op is BinaryOp.MUL and _is_one(left) and _is_numeric_shaped(right):
        return right
    if expr.op is BinaryOp.DIV and _is_one(right) and _is_numeric_shaped(left):
        return left
    return rebuilt


def _is_zero(expr: Expr) -> bool:
    return (
        isinstance(expr, Literal)
        and not isinstance(expr.value, bool)
        and isinstance(expr.value, (int, float))
        and expr.value == 0
    )


def _is_one(expr: Expr) -> bool:
    return (
        isinstance(expr, Literal)
        and not isinstance(expr.value, bool)
        and isinstance(expr.value, (int, float))
        and expr.value == 1
    )


def _optimize_unary(expr: Unary) -> Expr:
    inner = optimize(expr.operand)
    if expr.op is UnaryOp.NOT:
        if isinstance(inner, Literal) and isinstance(inner.value, bool):
            return Literal(not inner.value)
        return Unary(UnaryOp.NOT, inner)
    # NEG: fold over numeric literals only (bool stays an error at runtime)
    if (
        isinstance(inner, Literal)
        and not isinstance(inner.value, bool)
        and isinstance(inner.value, (int, float))
    ):
        return Literal(-inner.value)
    return Unary(UnaryOp.NEG, inner)


def _optimize_func(expr: FuncCall) -> Expr:
    args = tuple(optimize(arg) for arg in expr.args)
    rebuilt = FuncCall(expr.name, args)
    if expr.name in _FOLDABLE_FUNCS and args and all(_is_literal(a) for a in args):
        return _try_fold(rebuilt)
    return rebuilt
