"""Recursive-descent parser for CEPR-QL.

Grammar (clauses may appear in any order after ``PATTERN``, each at most
once)::

    query       := [NAME ident] PATTERN SEQ '(' element (',' element)* ')'
                   clause*
    clause      := WHERE expr
                 | WITHIN number (EVENTS | unit)
                 | USING strategy
                 | PARTITION BY ident (',' ident)*
                 | RANK BY rank_key (',' rank_key)*
                 | LIMIT int
                 | EMIT (ON WINDOW CLOSE | EVERY number (EVENTS|unit) | EAGER)
    element     := [NOT] TypeName varName ['+']
    rank_key    := expr [ASC | DESC]

    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := unary_bool (AND unary_bool)*
    unary_bool  := NOT unary_bool | comparison
    comparison  := additive [(= | == | != | <> | < | <= | > | >=) additive]
    additive    := multiplicative ((+|-) multiplicative)*
    multiplicative := unary ((*|/|%) unary)*
    unary       := - unary | primary
    primary     := NUMBER | STRING | TRUE | FALSE | '(' expr ')'
                 | ident '(' args ')' | ident '.' ident | ident

Function-call forms are post-processed into the dedicated AST nodes:
``avg(v.x)`` → :class:`~repro.language.ast_nodes.Aggregate`,
``prev(v.x)`` → :class:`~repro.language.ast_nodes.PrevRef`, other names →
:class:`~repro.language.ast_nodes.FuncCall`.
"""

from __future__ import annotations

from repro.events.time import parse_duration
from repro.language.ast_nodes import (
    AGGREGATE_FUNCS,
    AttrRef,
    Binary,
    BinaryOp,
    Direction,
    EmitKind,
    EmitSpec,
    Expr,
    FuncCall,
    Literal,
    PatternElement,
    PrevRef,
    Query,
    RankKey,
    STRATEGY_ALIASES,
    Unary,
    UnaryOp,
    VarRef,
    WindowKind,
    WindowSpec,
    Aggregate,
    YieldSpec,
)
from repro.language.errors import CEPRSyntaxError
from repro.language.lexer import tokenize
from repro.language.tokens import Token, TokenType

#: Scalar built-in functions, with their arity (None = variadic >= 1).
BUILTIN_FUNCS: dict[str, int | None] = {
    "abs": 1,
    "duration": 0,
    "timestamp": 1,
    "ts": 1,
    "round": 1,
    "floor": 1,
    "ceil": 1,
    "sqrt": 1,
    "log": 1,
    "exp": 1,
    "sign": 1,
    "min2": 2,
    "max2": 2,
}

_COMPARISON_OPS: dict[TokenType, BinaryOp] = {
    TokenType.EQ: BinaryOp.EQ,
    TokenType.NEQ: BinaryOp.NEQ,
    TokenType.LT: BinaryOp.LT,
    TokenType.LTE: BinaryOp.LTE,
    TokenType.GT: BinaryOp.GT,
    TokenType.GTE: BinaryOp.GTE,
}

_TIME_UNITS = frozenset(
    {
        "MILLISECOND", "MILLISECONDS", "MS",
        "SECOND", "SECONDS", "S",
        "MINUTE", "MINUTES", "MIN",
        "HOUR", "HOURS", "H",
        "DAY", "DAYS",
    }
)


class Parser:
    """Parses one CEPR-QL query string into a :class:`Query` AST."""

    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type != TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> CEPRSyntaxError:
        token = token or self._peek()
        return CEPRSyntaxError(message, token.line, token.column)

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type != token_type:
            raise self._error(f"expected {what}, found {token.value!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise self._error(f"expected {word!r}, found {token.value!r}")
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_ident(self, what: str) -> str:
        token = self._peek()
        # Allow event-type / variable names that collide with soft keywords
        # used only at clause heads (e.g. a variable named "close") — but the
        # grammar keeps things simple: identifiers must not be reserved.
        if token.type != TokenType.IDENT:
            raise self._error(f"expected {what}, found {token.value!r}")
        return self._advance().value

    def _expect_attr_name(self) -> str:
        """Attribute names (after ``.``) may collide with reserved words."""
        token = self._peek()
        if token.type == TokenType.IDENT:
            return self._advance().value
        if token.type == TokenType.KEYWORD and token.raw is not None:
            return self._advance().raw
        raise self._error(f"expected attribute name, found {token.value!r}")

    # -- entry point ---------------------------------------------------------

    def parse(self) -> Query:
        name = None
        if self._accept_keyword("NAME"):
            name = self._expect_ident("query name")
        self._expect_keyword("PATTERN")
        pattern = self._parse_pattern()

        where: Expr | None = None
        window: WindowSpec | None = None
        strategy = None
        partition_by: tuple[str, ...] = ()
        rank_by: tuple[RankKey, ...] = ()
        limit: int | None = None
        emit: EmitSpec | None = None
        yield_spec: YieldSpec | None = None
        seen: set[str] = set()

        while self._peek().type != TokenType.EOF:
            token = self._peek()
            if token.type != TokenType.KEYWORD:
                raise self._error(f"expected a clause keyword, found {token.value!r}")
            clause = token.value
            if clause in seen:
                raise self._error(f"duplicate {clause} clause")
            if clause == "WHERE":
                self._advance()
                where = self._parse_expr()
            elif clause == "WITHIN":
                self._advance()
                window = self._parse_window()
            elif clause == "USING":
                self._advance()
                strategy = self._parse_strategy()
            elif clause == "PARTITION":
                self._advance()
                self._expect_keyword("BY")
                partition_by = self._parse_ident_list("partition attribute")
            elif clause == "RANK":
                self._advance()
                self._expect_keyword("BY")
                rank_by = self._parse_rank_keys()
            elif clause == "LIMIT":
                self._advance()
                limit = self._parse_limit()
            elif clause == "EMIT":
                self._advance()
                emit = self._parse_emit()
            elif clause == "YIELD":
                self._advance()
                yield_spec = self._parse_yield()
            else:
                raise self._error(f"unexpected keyword {clause!r}")
            seen.add(clause)

        return Query(
            pattern=pattern,
            where=where,
            window=window,
            strategy=strategy,
            partition_by=partition_by,
            rank_by=rank_by,
            limit=limit,
            emit=emit,
            name=name,
            yield_spec=yield_spec,
        )

    # -- clauses -------------------------------------------------------------

    def _parse_pattern(self) -> tuple[PatternElement, ...]:
        self._expect_keyword("SEQ")
        self._expect(TokenType.LPAREN, "'('")
        elements = [self._parse_element()]
        while self._peek().type == TokenType.COMMA:
            self._advance()
            elements.append(self._parse_element())
        self._expect(TokenType.RPAREN, "')'")
        return tuple(elements)

    def _parse_element(self) -> PatternElement:
        negated = self._accept_keyword("NOT")
        event_type = self._expect_ident("event type")
        variable = self._expect_ident("pattern variable")
        kleene = False
        if self._peek().type == TokenType.PLUS:
            self._advance()
            kleene = True
        if negated and kleene:
            raise self._error("a negated pattern element cannot be Kleene (+)")
        return PatternElement(event_type, variable, kleene=kleene, negated=negated)

    def _parse_window(self) -> WindowSpec:
        number = self._expect(TokenType.NUMBER, "window size").value
        token = self._peek()
        if token.is_keyword("EVENTS"):
            self._advance()
            if number != int(number):
                raise self._error("count window size must be an integer", token)
            return WindowSpec(WindowKind.COUNT, float(int(number)))
        if token.type == TokenType.IDENT and token.value.upper() in _TIME_UNITS:
            self._advance()
            return WindowSpec(WindowKind.TIME, parse_duration(number, token.value))
        raise self._error(
            f"expected EVENTS or a time unit after window size, found {token.value!r}"
        )

    def _parse_strategy(self):
        token = self._peek()
        if token.type != TokenType.IDENT and token.type != TokenType.KEYWORD:
            raise self._error(f"expected a selection strategy, found {token.value!r}")
        name = str(token.value).upper()
        strategy = STRATEGY_ALIASES.get(name)
        if strategy is None:
            raise self._error(
                f"unknown selection strategy {token.value!r}; expected one of "
                f"{sorted(set(STRATEGY_ALIASES))}"
            )
        self._advance()
        return strategy

    def _parse_ident_list(self, what: str) -> tuple[str, ...]:
        names = [self._expect_ident(what)]
        while self._peek().type == TokenType.COMMA:
            self._advance()
            names.append(self._expect_ident(what))
        return tuple(names)

    def _parse_rank_keys(self) -> tuple[RankKey, ...]:
        keys = [self._parse_rank_key()]
        while self._peek().type == TokenType.COMMA:
            self._advance()
            keys.append(self._parse_rank_key())
        return tuple(keys)

    def _parse_rank_key(self) -> RankKey:
        expr = self._parse_expr()
        direction = Direction.ASC
        if self._accept_keyword("ASC"):
            direction = Direction.ASC
        elif self._accept_keyword("DESC"):
            direction = Direction.DESC
        return RankKey(expr, direction)

    def _parse_limit(self) -> int:
        # LIMIT 0 parses (so the static analyzer can report it as CEPR303
        # with a span and fix hint); semantic analysis rejects it before
        # anything reaches the runtime.
        token = self._expect(TokenType.NUMBER, "limit")
        value = token.value
        if value != int(value) or value < 0:
            raise self._error("LIMIT must be a non-negative integer", token)
        return int(value)

    def _parse_emit(self) -> EmitSpec:
        if self._accept_keyword("ON"):
            self._expect_keyword("WINDOW")
            self._expect_keyword("CLOSE")
            return EmitSpec(EmitKind.ON_WINDOW_CLOSE)
        if self._accept_keyword("EAGER"):
            return EmitSpec(EmitKind.EAGER)
        if self._accept_keyword("EVERY"):
            number = self._expect(TokenType.NUMBER, "emission period").value
            token = self._peek()
            if token.is_keyword("EVENTS"):
                self._advance()
                if number != int(number):
                    raise self._error("event period must be an integer", token)
                return EmitSpec(EmitKind.EVERY, float(int(number)), WindowKind.COUNT)
            if token.type == TokenType.IDENT and token.value.upper() in _TIME_UNITS:
                self._advance()
                return EmitSpec(
                    EmitKind.EVERY, parse_duration(number, token.value), WindowKind.TIME
                )
            raise self._error(
                f"expected EVENTS or a time unit after EMIT EVERY, found {token.value!r}"
            )
        raise self._error(
            f"expected ON WINDOW CLOSE, EVERY, or EAGER, found {self._peek().value!r}"
        )

    def _parse_yield(self) -> YieldSpec:
        event_type = self._expect_ident("derived event type")
        self._expect(TokenType.LPAREN, "'('")
        assignments: list[tuple[str, Expr]] = []
        seen_attrs: set[str] = set()
        while True:
            attr = self._expect_attr_name()
            if attr in seen_attrs:
                raise self._error(f"duplicate YIELD attribute {attr!r}")
            seen_attrs.add(attr)
            self._expect(TokenType.EQ, "'='")
            assignments.append((attr, self._parse_expr()))
            if self._peek().type == TokenType.COMMA:
                self._advance()
                continue
            break
        self._expect(TokenType.RPAREN, "')'")
        return YieldSpec(event_type, tuple(assignments))

    # -- expressions ----------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._peek().is_keyword("OR"):
            self._advance()
            left = Binary(BinaryOp.OR, left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._peek().is_keyword("AND"):
            self._advance()
            left = Binary(BinaryOp.AND, left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._peek().is_keyword("NOT"):
            self._advance()
            return Unary(UnaryOp.NOT, self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        op = _COMPARISON_OPS.get(self._peek().type)
        if op is None:
            return left
        self._advance()
        right = self._parse_additive()
        return Binary(op, left, right)

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._peek().type in (TokenType.PLUS, TokenType.MINUS):
            op = BinaryOp.ADD if self._advance().type == TokenType.PLUS else BinaryOp.SUB
            left = Binary(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        ops = {
            TokenType.STAR: BinaryOp.MUL,
            TokenType.SLASH: BinaryOp.DIV,
            TokenType.PERCENT: BinaryOp.MOD,
        }
        while self._peek().type in ops:
            op = ops[self._advance().type]
            left = Binary(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self._peek().type == TokenType.MINUS:
            self._advance()
            return Unary(UnaryOp.NEG, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type == TokenType.NUMBER:
            self._advance()
            return Literal(token.value)
        if token.type == TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.type == TokenType.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN, "')'")
            return expr
        if token.type == TokenType.IDENT:
            return self._parse_name_or_call()
        raise self._error(f"expected an expression, found {token.value!r}")

    def _parse_name_or_call(self) -> Expr:
        name_token = self._advance()
        name = name_token.value
        if self._peek().type == TokenType.LPAREN:
            return self._parse_call(name, name_token)
        if self._peek().type == TokenType.DOT:
            self._advance()
            attr = self._expect_attr_name()
            return AttrRef(name, attr)
        return VarRef(name)

    def _parse_call(self, name: str, name_token: Token) -> Expr:
        self._expect(TokenType.LPAREN, "'('")
        args: list[Expr] = []
        if self._peek().type != TokenType.RPAREN:
            args.append(self._parse_expr())
            while self._peek().type == TokenType.COMMA:
                self._advance()
                args.append(self._parse_expr())
        self._expect(TokenType.RPAREN, "')'")
        lowered = name.lower()

        if lowered == "prev":
            if len(args) != 1 or not isinstance(args[0], AttrRef):
                raise self._error("prev() takes exactly one v.attr argument", name_token)
            ref = args[0]
            return PrevRef(ref.var, ref.attr)

        if lowered in AGGREGATE_FUNCS:
            if len(args) != 1:
                raise self._error(f"{lowered}() takes exactly one argument", name_token)
            arg = args[0]
            if isinstance(arg, AttrRef):
                return Aggregate(lowered, arg.var, arg.attr)
            if isinstance(arg, VarRef) and lowered in ("count", "len"):
                return Aggregate(lowered, arg.var, None)
            raise self._error(
                f"{lowered}() expects v.attr"
                + (" or a bare variable" if lowered in ("count", "len") else ""),
                name_token,
            )

        if lowered in BUILTIN_FUNCS:
            arity = BUILTIN_FUNCS[lowered]
            if arity is not None and len(args) != arity:
                raise self._error(
                    f"{lowered}() takes {arity} argument(s), got {len(args)}", name_token
                )
            return FuncCall(lowered, tuple(args))

        raise self._error(f"unknown function {name!r}", name_token)


def parse_query(text: str) -> Query:
    """Parse a CEPR-QL query string into its AST."""
    return Parser(text).parse()
