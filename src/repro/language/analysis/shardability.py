"""Shardability certification.

Partition-hash sharding (:mod:`repro.runtime.sharded`) reproduces a
query's single-engine output exactly only for a specific shape of query.
This rule encodes that decision table once, as an analyzer rule, and
reports *which* property pins a query to the solo engine:

* ``CEPR401`` — no ``PARTITION BY``: there is no key to hash events by;
* ``CEPR402`` — a trailing negation: pending matches confirm at
  heartbeats in an engine-internal order, and confirmation can re-open an
  epoch the merge stage already released;
* ``CEPR403`` — a sliding emission scope (``EMIT EVERY`` or ranked
  ``EAGER``): snapshots expire and re-rank on *every* routed event, state
  a shard that sees only its own keys cannot maintain;
* ``CEPR404`` — pass-through emission with a global ``LIMIT`` inside a
  window: the per-epoch emission quota counts matches across all
  partitions, which requires the single-engine view;
* ``CEPR405`` — a ``YIELD`` clause: derived events must cascade through
  one engine and consume global sequence numbers (this pins the *whole
  deployment* solo, not just the yielding query).

:meth:`ShardedEngineRunner.start` consumes the certificate to place each
query, ``engine/explain.py`` renders it, and ``cepr lint`` reports the
blockers as informational diagnostics.  The differential test suite
(``tests/runtime/test_sharded_differential.py``) pins the placement
decisions this module makes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.language.analysis.diagnostics import Diagnostic, Severity
from repro.language.ast_nodes import EmitKind
from repro.language.semantics import AnalyzedQuery


@dataclass(frozen=True)
class ShardabilityReport:
    """Why (or why not) a query can run partition-sharded exactly.

    ``mode`` is the placement the sharded runner would choose given
    ``shards > 1`` and no deployment-level YIELD pin:
    ``"sharded-tumbling"``, ``"sharded-passthrough"``, or ``"solo"``.
    """

    shardable: bool
    mode: str
    blockers: tuple[Diagnostic, ...] = ()

    def describe(self) -> list[str]:
        """Human-readable certificate lines (used by ``explain``)."""
        if self.shardable:
            return [f"exactly shardable ({self.mode})"]
        lines = ["solo (not exactly shardable):"]
        for blocker in self.blockers:
            lines.append(f"  {blocker.code}: {blocker.message}")
        return lines


def certify_shardability(analyzed: AnalyzedQuery) -> ShardabilityReport:
    """Certify whether partition-hash sharding reproduces this query."""
    blockers: list[Diagnostic] = []

    if not analyzed.partition_by:
        blockers.append(
            _info(
                "CEPR401",
                "no PARTITION BY clause: there is no key to hash events "
                "across shards",
                hint="partition by an attribute shared by every pattern "
                "element to enable sharding",
            )
        )
    if any(spec.trailing for spec in analyzed.negations):
        blockers.append(
            _info(
                "CEPR402",
                "trailing negation: pending matches confirm at heartbeats "
                "in an engine-internal order no per-shard view reproduces",
            )
        )

    kind = analyzed.emit.kind
    mode = "solo"
    if kind is EmitKind.ON_WINDOW_CLOSE:
        mode = "sharded-tumbling"
    elif kind is EmitKind.EAGER and not analyzed.is_ranked:
        if analyzed.limit is not None and analyzed.window is not None:
            blockers.append(
                _info(
                    "CEPR404",
                    "pass-through emission with a per-epoch LIMIT counts "
                    "emissions globally, which requires the single-engine "
                    "view",
                    hint="drop the LIMIT or emit ON WINDOW CLOSE",
                )
            )
        else:
            mode = "sharded-passthrough"
    else:
        scope = (
            "ranked EAGER emission re-ranks"
            if kind is EmitKind.EAGER
            else "EMIT EVERY snapshots"
        )
        blockers.append(
            _info(
                "CEPR403",
                f"sliding emission scope: {scope} on every routed event, "
                f"state a shard that only sees its own keys cannot maintain",
                hint="EMIT ON WINDOW CLOSE (tumbling) shards exactly",
            )
        )

    if analyzed.yield_spec is not None:
        blockers.append(
            _info(
                "CEPR405",
                "YIELD derives events that must cascade through one global "
                "engine; this pins the whole deployment solo",
            )
        )

    if blockers:
        return ShardabilityReport(False, "solo", tuple(blockers))
    return ShardabilityReport(True, mode)


def _info(code: str, message: str, hint: str | None = None) -> Diagnostic:
    return Diagnostic(code, Severity.INFO, "query", message, hint)
