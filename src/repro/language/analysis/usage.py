"""Unused-binding and unreachable-pattern checks.

Pure AST/shape checks that need no schema registry:

* ``CEPR301`` — a positive pattern variable never referenced by any
  WHERE / RANK BY / YIELD expression (only reported when the query has at
  least one such expression — bare structural patterns are idiomatic —
  and never for the leading element, which anchors where the window
  opens);
* ``CEPR302`` — a negation that can never decide anything: under
  ``STRICT`` contiguity any unconsumed event already kills the run before
  an internal negation's predicates are consulted (satisfiability adds a
  second trigger: negation predicates that are unsatisfiable);
* ``CEPR303`` — ``LIMIT 0`` ranks nothing (also rejected by semantic
  analysis; the analyzer reports it with a span and hint first);
* ``CEPR304`` — a count window shorter than the minimum number of events
  the pattern needs, so no match can ever fit inside it;
* ``CEPR305`` — the same WHERE conjunct appearing twice;
* ``CEPR306`` — a RANK BY key that folds to a constant (every match ties);
* ``CEPR307`` — the same RANK BY expression appearing in two keys (the
  later key can never break a tie the earlier one left).
"""

from __future__ import annotations

from repro.language.analysis.diagnostics import Diagnostic, Severity
from repro.language.ast_nodes import (
    Expr,
    Literal,
    Query,
    SelectionStrategy,
    WindowKind,
    referenced_variables,
    split_conjuncts,
)
from repro.language.optimizer import optimize
from repro.language.printer import format_expr
from repro.language.semantics import AnalyzedQuery


def check_ast(query: Query) -> list[Diagnostic]:
    """Checks on the raw AST that must run before semantic analysis.

    Semantic analysis rejects ``LIMIT 0`` outright, so the analyzer
    reports it from the AST to give a coded diagnostic instead of a bare
    :class:`~repro.language.errors.CEPRSemanticError`.
    """
    diagnostics: list[Diagnostic] = []
    if query.limit == 0:
        diagnostics.append(
            Diagnostic(
                "CEPR303",
                Severity.ERROR,
                "LIMIT 0",
                "LIMIT 0 keeps zero results: every emission would be empty",
                hint="drop the LIMIT clause to keep all results, or use a "
                "positive k",
            )
        )
    return diagnostics


def check_usage(analyzed: AnalyzedQuery) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    query = analyzed.ast

    diagnostics.extend(_check_unused_variables(analyzed))
    diagnostics.extend(_check_dead_negations(analyzed))
    diagnostics.extend(_check_window_too_short(analyzed))
    diagnostics.extend(_check_duplicate_predicates(query))
    diagnostics.extend(_check_rank_keys(query))
    return diagnostics


def _query_expressions(query: Query) -> list[Expr]:
    exprs: list[Expr] = list(split_conjuncts(query.where))
    exprs.extend(key.expr for key in query.rank_by)
    if query.yield_spec is not None:
        exprs.extend(expr for _attr, expr in query.yield_spec.assignments)
    return exprs


def _check_unused_variables(analyzed: AnalyzedQuery) -> list[Diagnostic]:
    exprs = _query_expressions(analyzed.ast)
    if not exprs:
        return []  # a bare structural pattern references nothing by design
    used: set[str] = set()
    for expr in exprs:
        used |= referenced_variables(expr)
    out: list[Diagnostic] = []
    for position, info in enumerate(analyzed.positives):
        if info.name in used:
            continue
        if position == 0:
            # The leading element anchors where a match (and its window)
            # opens; leaving it unreferenced is an idiomatic way to say
            # "start at any A" and is not suspicious.
            continue
        kleene = "+" if info.is_kleene else ""
        out.append(
            Diagnostic(
                "CEPR301",
                Severity.WARNING,
                f"PATTERN {info.event_type} {info.name}{kleene}",
                f"variable {info.name!r} is never referenced by any WHERE, "
                f"RANK BY, or YIELD expression",
                hint="it still constrains the match structurally; drop it if "
                "that is not intended",
            )
        )
    return out


def _check_dead_negations(analyzed: AnalyzedQuery) -> list[Diagnostic]:
    if analyzed.strategy is not SelectionStrategy.STRICT:
        return []
    out: list[Diagnostic] = []
    for spec in analyzed.negations:
        if spec.trailing or not spec.predicates:
            continue
        element = spec.element
        out.append(
            Diagnostic(
                "CEPR302",
                Severity.WARNING,
                f"NOT {element.event_type} {element.variable}",
                "negation predicates are dead under STRICT: any event the "
                "run does not consume kills it before the negation is "
                "consulted, whether or not the predicate holds",
                hint="use SKIP_TILL_NEXT/SKIP_TILL_ANY if the predicate "
                "should select which events kill the run",
            )
        )
    return out


def _check_window_too_short(analyzed: AnalyzedQuery) -> list[Diagnostic]:
    window = analyzed.window
    if window is None or window.kind is not WindowKind.COUNT:
        return []
    minimum = len(analyzed.positives)  # a Kleene-plus binds at least one
    if window.span >= minimum:
        return []
    return [
        Diagnostic(
            "CEPR304",
            Severity.ERROR,
            f"WITHIN {int(window.span)} EVENTS",
            f"the pattern needs at least {minimum} events but the window "
            f"holds only {int(window.span)}: no match can ever fit",
            hint=f"widen the window to at least {minimum} events",
        )
    ]


def _check_duplicate_predicates(query: Query) -> list[Diagnostic]:
    seen: set[Expr] = set()
    reported: set[Expr] = set()
    out: list[Diagnostic] = []
    for conjunct in split_conjuncts(query.where):
        if conjunct in seen and conjunct not in reported:
            reported.add(conjunct)
            out.append(
                Diagnostic(
                    "CEPR305",
                    Severity.WARNING,
                    f"WHERE {format_expr(conjunct)}",
                    "duplicate conjunct: the same predicate already appears "
                    "in this WHERE clause",
                    hint="remove the repeated conjunct",
                )
            )
        seen.add(conjunct)
    return out


def _check_rank_keys(query: Query) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    seen: set[Expr] = set()
    for key in query.rank_by:
        folded = optimize(key.expr)
        span = f"RANK BY {format_expr(key.expr)}"
        if isinstance(folded, Literal):
            out.append(
                Diagnostic(
                    "CEPR306",
                    Severity.WARNING,
                    span,
                    f"rank key folds to the constant "
                    f"{format_expr(folded)}: every match gets the same score",
                    hint="rank by something derived from the matched events",
                )
            )
        if folded in seen:
            out.append(
                Diagnostic(
                    "CEPR307",
                    Severity.WARNING,
                    span,
                    "duplicate rank key: an earlier key already orders by "
                    "this expression, so this one never breaks a tie",
                    hint="remove the repeated key",
                )
            )
        seen.add(folded)
    return out
