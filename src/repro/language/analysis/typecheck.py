"""Type inference of query expressions against the schema registry.

CEPR-QL is dynamically evaluated — :mod:`repro.language.expressions`
raises :class:`~repro.language.errors.EvaluationError` on the first
ill-typed event — but with a :class:`~repro.events.schema.SchemaRegistry`
most of those failures are decidable at registration time.  This pass
infers a coarse type lattice (:class:`CeprType`) bottom-up over every
WHERE conjunct, RANK BY key, and YIELD assignment and reports:

* ``CEPR101`` — attribute not declared on the variable's event type;
* ``CEPR102`` — ordering comparison between a number and a string;
* ``CEPR103`` — arithmetic over a non-numeric operand;
* ``CEPR104`` — RANK BY key that is not numeric;
* ``CEPR105`` — a predicate position holding a non-boolean value;
* ``CEPR106`` — ``==``/``!=`` across types (legal, always false/true);
* ``CEPR107`` — non-numeric argument to a numeric built-in/aggregate;
* ``CEPR108`` — ordering comparison over booleans.

Inference is *optimistic*: anything it cannot prove is ``UNKNOWN`` and
never reported, so queries over unregistered event types lint clean.
"""

from __future__ import annotations

from enum import Enum

from repro.events.schema import SchemaRegistry
from repro.language.analysis.diagnostics import Diagnostic, Severity
from repro.language.ast_nodes import (
    Aggregate,
    AttrRef,
    Binary,
    BinaryOp,
    Expr,
    FuncCall,
    Literal,
    PrevRef,
    Unary,
    UnaryOp,
    VarRef,
    split_conjuncts,
)
from repro.language.printer import format_expr
from repro.language.semantics import AnalyzedQuery


class CeprType(Enum):
    """The coarse static type of an expression."""

    NUMBER = "number"
    STRING = "string"
    BOOLEAN = "boolean"
    UNKNOWN = "unknown"


_DTYPE_TO_TYPE = {
    "int": CeprType.NUMBER,
    "float": CeprType.NUMBER,
    "str": CeprType.STRING,
    "bool": CeprType.BOOLEAN,
}

_ARITH_OPS = {BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.DIV, BinaryOp.MOD}
_ORDERING_OPS = {BinaryOp.LT, BinaryOp.LTE, BinaryOp.GT, BinaryOp.GTE}
_EQUALITY_OPS = {BinaryOp.EQ, BinaryOp.NEQ}
_LOGICAL_OPS = {BinaryOp.AND, BinaryOp.OR}

#: Built-ins returning a number regardless of (checked) arguments.
_NUMERIC_FUNCS = frozenset(
    {"abs", "round", "floor", "ceil", "sqrt", "log", "exp", "sign", "min2", "max2"}
)
#: Aggregates whose runtime combiner requires numeric inputs.
_NUMERIC_AGGS = frozenset({"sum", "avg"})


class TypeChecker:
    """Infers expression types for one query and collects diagnostics."""

    def __init__(self, analyzed: AnalyzedQuery, registry: SchemaRegistry) -> None:
        self.analyzed = analyzed
        self.registry = registry
        self.diagnostics: list[Diagnostic] = []
        self._seen: set[tuple[str, str, str]] = set()

    # -- entry point ---------------------------------------------------------

    def check(self) -> list[Diagnostic]:
        for conjunct in split_conjuncts(self.analyzed.ast.where):
            span = f"WHERE {format_expr(conjunct)}"
            inferred = self.infer(conjunct, span)
            if inferred not in (CeprType.BOOLEAN, CeprType.UNKNOWN):
                self._report(
                    "CEPR105",
                    Severity.ERROR,
                    span,
                    f"WHERE conjunct evaluates to a {inferred.value}, not a boolean",
                    hint="compare the value against something, e.g. `... > 0`",
                )
        for key in self.analyzed.ast.rank_by:
            span = f"RANK BY {format_expr(key.expr)}"
            inferred = self.infer(key.expr, span)
            if inferred in (CeprType.STRING, CeprType.BOOLEAN):
                self._report(
                    "CEPR104",
                    Severity.ERROR,
                    span,
                    f"RANK BY key evaluates to a {inferred.value}; ranking "
                    f"requires a numeric score",
                    hint="rank by a numeric attribute or aggregate",
                )
        if self.analyzed.ast.yield_spec is not None:
            for attr, expr in self.analyzed.ast.yield_spec.assignments:
                span = (
                    f"YIELD {self.analyzed.ast.yield_spec.event_type}"
                    f"({attr} = {format_expr(expr)})"
                )
                self.infer(expr, span)
        return self.diagnostics

    # -- inference -----------------------------------------------------------

    def infer(self, expr: Expr, span: str) -> CeprType:
        if isinstance(expr, Literal):
            if isinstance(expr.value, bool):
                return CeprType.BOOLEAN
            if isinstance(expr.value, str):
                return CeprType.STRING
            return CeprType.NUMBER
        if isinstance(expr, (AttrRef, PrevRef)):
            return self._infer_attr(expr.var, expr.attr, span)
        if isinstance(expr, Aggregate):
            return self._infer_aggregate(expr, span)
        if isinstance(expr, FuncCall):
            return self._infer_func(expr, span)
        if isinstance(expr, VarRef):
            return CeprType.UNKNOWN  # only legal as a built-in argument
        if isinstance(expr, Binary):
            return self._infer_binary(expr, span)
        if isinstance(expr, Unary):
            return self._infer_unary(expr, span)
        return CeprType.UNKNOWN

    def _infer_attr(self, var: str, attr: str, span: str) -> CeprType:
        info = self.analyzed.variables.get(var)
        if info is None:
            return CeprType.UNKNOWN  # semantics already rejected unknown vars
        schema = self.registry.get(info.event_type)
        if schema is None:
            return CeprType.UNKNOWN
        spec = schema.attribute(attr)
        if spec is None:
            self._report(
                "CEPR101",
                Severity.ERROR,
                span,
                f"{var}.{attr}: event type {info.event_type!r} declares no "
                f"attribute {attr!r}",
                hint=f"declared attributes: "
                f"{', '.join(sorted(schema.attribute_names())) or '(none)'}",
                dedupe=(var, attr),
            )
            return CeprType.UNKNOWN
        return _DTYPE_TO_TYPE.get(spec.dtype, CeprType.UNKNOWN)

    def _infer_aggregate(self, expr: Aggregate, span: str) -> CeprType:
        if expr.func in ("count", "len"):
            return CeprType.NUMBER
        assert expr.attr is not None
        element = self._infer_attr(expr.var, expr.attr, span)
        if expr.func in _NUMERIC_AGGS:
            if element in (CeprType.STRING, CeprType.BOOLEAN):
                self._report(
                    "CEPR107",
                    Severity.ERROR,
                    span,
                    f"{expr.func}({expr.var}.{expr.attr}): aggregate requires "
                    f"numeric elements, {expr.attr!r} is a {element.value}",
                )
            return CeprType.NUMBER
        # min/max/first/last preserve the element type.
        return element

    def _infer_func(self, expr: FuncCall, span: str) -> CeprType:
        if expr.name in ("duration", "timestamp", "ts"):
            for arg in expr.args:
                self.infer(arg, span)
            return CeprType.NUMBER
        if expr.name in _NUMERIC_FUNCS:
            for arg in expr.args:
                inferred = self.infer(arg, span)
                if inferred in (CeprType.STRING, CeprType.BOOLEAN):
                    self._report(
                        "CEPR107",
                        Severity.ERROR,
                        span,
                        f"{expr.name}({format_expr(arg)}): expected a number, "
                        f"got a {inferred.value}",
                    )
            return CeprType.NUMBER
        for arg in expr.args:
            self.infer(arg, span)
        return CeprType.UNKNOWN

    def _infer_binary(self, expr: Binary, span: str) -> CeprType:
        left = self.infer(expr.left, span)
        right = self.infer(expr.right, span)
        op = expr.op

        if op in _ARITH_OPS:
            for side, inferred in ((expr.left, left), (expr.right, right)):
                if inferred in (CeprType.STRING, CeprType.BOOLEAN):
                    self._report(
                        "CEPR103",
                        Severity.ERROR,
                        span,
                        f"arithmetic {op.value!r} over non-numeric operand "
                        f"{format_expr(side)} (a {inferred.value})",
                    )
            return CeprType.NUMBER

        if op in _ORDERING_OPS:
            if CeprType.BOOLEAN in (left, right):
                self._report(
                    "CEPR108",
                    Severity.ERROR,
                    span,
                    f"ordering {op.value!r} over a boolean operand; booleans "
                    f"have no order in CEPR-QL",
                    hint="test the boolean directly or with NOT",
                )
            elif _definitely_mismatched(left, right):
                self._report(
                    "CEPR102",
                    Severity.ERROR,
                    span,
                    f"comparison {op.value!r} between a {left.value} and a "
                    f"{right.value} raises at evaluation time",
                    hint="compare numbers with numbers and strings with strings",
                )
            return CeprType.BOOLEAN

        if op in _EQUALITY_OPS:
            if _definitely_mismatched(left, right):
                always = "false" if op is BinaryOp.EQ else "true"
                self._report(
                    "CEPR106",
                    Severity.WARNING,
                    span,
                    f"{op.value!r} between a {left.value} and a {right.value} "
                    f"is always {always}",
                    hint="did you quote a number, or compare the wrong attribute?",
                )
            return CeprType.BOOLEAN

        if op in _LOGICAL_OPS:
            for side, inferred in ((expr.left, left), (expr.right, right)):
                if inferred in (CeprType.NUMBER, CeprType.STRING):
                    self._report(
                        "CEPR105",
                        Severity.ERROR,
                        span,
                        f"{op.value} operand {format_expr(side)} is a "
                        f"{inferred.value}, not a boolean",
                    )
            return CeprType.BOOLEAN

        return CeprType.UNKNOWN

    def _infer_unary(self, expr: Unary, span: str) -> CeprType:
        inner = self.infer(expr.operand, span)
        if expr.op is UnaryOp.NEG:
            if inner in (CeprType.STRING, CeprType.BOOLEAN):
                self._report(
                    "CEPR103",
                    Severity.ERROR,
                    span,
                    f"unary '-' over non-numeric operand "
                    f"{format_expr(expr.operand)} (a {inner.value})",
                )
            return CeprType.NUMBER
        if inner in (CeprType.NUMBER, CeprType.STRING):
            self._report(
                "CEPR105",
                Severity.ERROR,
                span,
                f"NOT operand {format_expr(expr.operand)} is a "
                f"{inner.value}, not a boolean",
            )
        return CeprType.BOOLEAN

    # -- reporting -----------------------------------------------------------

    def _report(
        self,
        code: str,
        severity: Severity,
        span: str,
        message: str,
        hint: str | None = None,
        dedupe: tuple[str, str] | None = None,
    ) -> None:
        key = (code, span, message) if dedupe is None else (code,) + dedupe
        if key in self._seen:
            return
        self._seen.add(key)
        self.diagnostics.append(Diagnostic(code, severity, span, message, hint))


def _definitely_mismatched(left: CeprType, right: CeprType) -> bool:
    """Both types known, and provably incompatible for comparison."""
    if CeprType.UNKNOWN in (left, right):
        return False
    return left is not right


def check_types(
    analyzed: AnalyzedQuery, registry: SchemaRegistry | None
) -> list[Diagnostic]:
    """Run type inference; no registry means nothing is provable."""
    if registry is None:
        return []
    return TypeChecker(analyzed, registry).check()
