"""Static analysis of CEPR-QL queries.

This package runs between :func:`repro.language.semantics.analyze` and
NFA compilation (:mod:`repro.engine.compiler`) and produces a list of
structured :class:`~repro.language.analysis.diagnostics.Diagnostic`
records instead of raising: the engine still registers a query with
warnings, the ``cepr lint`` command renders them, and
:class:`~repro.runtime.sharded.ShardedEngineRunner` consumes the
shardability certificate to place queries.

Entry points
------------

* :func:`lint_text` — full front-to-back lint of query source text:
  syntax (``CEPR001``) and semantic (``CEPR002``) failures are reported
  as diagnostics rather than exceptions.
* :func:`lint_query` — the same, starting from a parsed AST.
* :func:`run_analysis` — the post-semantic pass alone, for callers that
  already hold an :class:`~repro.language.semantics.AnalyzedQuery`
  (:class:`~repro.runtime.query.RegisteredQuery` attaches its result as
  ``.diagnostics``).
* :func:`certify_shardability` — the sharding decision table, also
  included in :func:`run_analysis` output as informational diagnostics.

The full diagnostic catalogue lives in ``docs/ANALYZER.md``.
"""

from __future__ import annotations

from repro.events.schema import SchemaRegistry
from repro.language.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    Severity,
    has_errors,
    max_severity,
)
from repro.language.analysis.satisfiability import (
    check_satisfiability,
    check_zero_divisors,
)
from repro.language.analysis.shardability import (
    ShardabilityReport,
    certify_shardability,
)
from repro.language.analysis.typecheck import CeprType, TypeChecker, check_types
from repro.language.analysis.usage import check_ast, check_usage
from repro.language.ast_nodes import Query
from repro.language.errors import CEPRSemanticError, CEPRSyntaxError
from repro.language.parser import parse_query
from repro.language.semantics import AnalyzedQuery, analyze

__all__ = [
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "Severity",
    "CeprType",
    "TypeChecker",
    "ShardabilityReport",
    "certify_shardability",
    "check_ast",
    "check_satisfiability",
    "check_types",
    "check_usage",
    "check_zero_divisors",
    "has_errors",
    "lint_query",
    "lint_text",
    "max_severity",
    "run_analysis",
]


def run_analysis(
    analyzed: AnalyzedQuery, registry: SchemaRegistry | None = None
) -> list[Diagnostic]:
    """Run every post-semantic check over one analysed query."""
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(check_types(analyzed, registry))
    diagnostics.extend(check_satisfiability(analyzed, registry))
    diagnostics.extend(check_zero_divisors(analyzed))
    diagnostics.extend(check_usage(analyzed))
    diagnostics.extend(certify_shardability(analyzed).blockers)
    return diagnostics


def lint_query(
    query: Query, registry: SchemaRegistry | None = None
) -> list[Diagnostic]:
    """Lint a parsed query: AST checks, semantic analysis, full analysis."""
    diagnostics = check_ast(query)
    if has_errors(diagnostics):
        # e.g. LIMIT 0: semantic analysis would reject it with the same
        # complaint, so stop at the coded diagnostic.
        return diagnostics
    try:
        analyzed = analyze(query, registry)
    except CEPRSemanticError as exc:
        diagnostics.append(
            Diagnostic("CEPR002", Severity.ERROR, "query", str(exc))
        )
        return diagnostics
    diagnostics.extend(run_analysis(analyzed, registry))
    return diagnostics


def lint_text(
    text: str, registry: SchemaRegistry | None = None
) -> list[Diagnostic]:
    """Lint query source text; never raises on bad queries."""
    try:
        query = parse_query(text)
    except CEPRSyntaxError as exc:
        return [Diagnostic("CEPR001", Severity.ERROR, "query", str(exc))]
    return lint_query(query, registry)
