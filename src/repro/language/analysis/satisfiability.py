"""Satisfiability and dead-predicate detection over WHERE conjuncts.

Two complementary mechanisms:

1. **Range narrowing** — atomic comparisons of the shape
   ``var.attr <op> literal`` are intersected per ``(var, attr)`` into a
   feasible range (with open/closed endpoints).  An empty intersection of
   the predicates alone is a contradiction (``CEPR201``); predicates that
   are individually fine but exclude the attribute's declared
   :class:`~repro.events.schema.Domain` entirely can never be satisfied by
   a schema-valid event (``CEPR205``); a predicate that does not narrow
   the declared domain at all is tautological (``CEPR202``).

2. **Interval evaluation** — non-atomic comparisons (``a.x - b.y > c``)
   are bounded with :class:`~repro.language.intervals.IntervalEvaluator`
   over a fully-unbound partial match, i.e. every variable ranges over
   its schema domain.  A comparison whose side intervals are disjoint in
   the right direction is decided before any event arrives.

Constant conjuncts are classified via the optimizer: a conjunct that
folds to ``TRUE`` is reported ``CEPR203`` (and dropped by semantic
analysis anyway); one folding to ``FALSE`` is ``CEPR204`` — the query can
never match.  ``CEPR206`` flags literal zero divisors anywhere in the
query, which raise on first evaluation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.events.schema import SchemaRegistry
from repro.language.analysis.diagnostics import Diagnostic, Severity
from repro.language.ast_nodes import (
    AttrRef,
    Binary,
    BinaryOp,
    Expr,
    Literal,
    WindowKind,
    iter_subexpressions,
    referenced_variables,
    split_conjuncts,
)
from repro.language.intervals import IntervalEvaluator, PartialMatchView
from repro.language.optimizer import optimize
from repro.language.printer import format_expr
from repro.language.semantics import AnalyzedQuery

_INF = math.inf

_ORDERINGS = {BinaryOp.LT, BinaryOp.LTE, BinaryOp.GT, BinaryOp.GTE}
_FLIPPED = {
    BinaryOp.LT: BinaryOp.GT,
    BinaryOp.LTE: BinaryOp.GTE,
    BinaryOp.GT: BinaryOp.LT,
    BinaryOp.GTE: BinaryOp.LTE,
    BinaryOp.EQ: BinaryOp.EQ,
}


@dataclass(frozen=True)
class _Range:
    """A numeric range with independently open/closed endpoints."""

    lo: float = -_INF
    hi: float = _INF
    lo_open: bool = False
    hi_open: bool = False

    @property
    def empty(self) -> bool:
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (self.lo_open or self.hi_open)

    def narrow(self, op: BinaryOp, value: float) -> "_Range":
        """Intersect with ``x <op> value``."""
        if op is BinaryOp.EQ:
            return self.narrow(BinaryOp.GTE, value).narrow(BinaryOp.LTE, value)
        if op in (BinaryOp.GT, BinaryOp.GTE):
            strict = op is BinaryOp.GT
            if value > self.lo or (value == self.lo and strict and not self.lo_open):
                return replace(self, lo=value, lo_open=strict)
            return self
        strict = op is BinaryOp.LT
        if value < self.hi or (value == self.hi and strict and not self.hi_open):
            return replace(self, hi=value, hi_open=strict)
        return self


@dataclass(frozen=True)
class _Constraint:
    """One atomic conjunct: ``var.attr <op> value``."""

    var: str
    attr: str
    op: BinaryOp
    value: float
    text: str


def _atomic_constraint(conjunct: Expr) -> _Constraint | None:
    """Recognise ``var.attr <op> number`` (either operand order)."""
    if not isinstance(conjunct, Binary):
        return None
    op = conjunct.op
    if op not in _ORDERINGS and op is not BinaryOp.EQ:
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, AttrRef) and _is_number(right):
        ref, value = left, right
    elif isinstance(right, AttrRef) and _is_number(left):
        ref, value, op = right, left, _FLIPPED[op]
    else:
        return None
    assert isinstance(value, Literal)
    return _Constraint(
        ref.var, ref.attr, op, float(value.value), format_expr(conjunct)
    )


def _is_number(expr: Expr) -> bool:
    return (
        isinstance(expr, Literal)
        and not isinstance(expr.value, bool)
        and isinstance(expr.value, (int, float))
    )


def _unbound_view(
    analyzed: AnalyzedQuery, registry: SchemaRegistry
) -> PartialMatchView:
    """A partial match with nothing bound: every completion is possible."""
    var_types = {
        name: info.event_type for name, info in analyzed.variables.items()
    }
    window = analyzed.window
    max_kleene = None
    max_duration = None
    if window is not None:
        if window.kind is WindowKind.COUNT:
            max_kleene = int(window.span)
        else:
            max_duration = window.span
    return PartialMatchView(
        bindings={},
        var_types=var_types,
        kleene_vars=analyzed.kleene_variable_names(),
        open_vars=frozenset(var_types),
        domain_of=registry.domain_of,
        max_kleene_count=max_kleene,
        max_duration=max_duration,
    )


def _decide_comparison(
    op: BinaryOp, left: "object", right: "object"
) -> bool | None:
    """Decide a comparison between two intervals, if possible."""
    from repro.language.intervals import Interval

    assert isinstance(left, Interval) and isinstance(right, Interval)
    if op is BinaryOp.LT:
        if left.hi < right.lo:
            return True
        if left.lo >= right.hi:
            return False
    elif op is BinaryOp.LTE:
        if left.hi <= right.lo:
            return True
        if left.lo > right.hi:
            return False
    elif op is BinaryOp.GT:
        if left.lo > right.hi:
            return True
        if left.hi <= right.lo:
            return False
    elif op is BinaryOp.GTE:
        if left.lo >= right.hi:
            return True
        if left.hi < right.lo:
            return False
    elif op is BinaryOp.EQ:
        if left.hi < right.lo or right.hi < left.lo:
            return False
        if left.is_exact and right.is_exact and left.lo == right.lo:
            return True
    elif op is BinaryOp.NEQ:
        if left.hi < right.lo or right.hi < left.lo:
            return True
        if left.is_exact and right.is_exact and left.lo == right.lo:
            return False
    return None


def check_satisfiability(
    analyzed: AnalyzedQuery, registry: SchemaRegistry | None
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    evaluator = (
        IntervalEvaluator(_unbound_view(analyzed, registry))
        if registry is not None
        else None
    )

    # predicate-only and domain-seeded feasible ranges per (var, attr)
    pred_ranges: dict[tuple[str, str], _Range] = {}
    pred_texts: dict[tuple[str, str], list[str]] = {}

    for conjunct in split_conjuncts(analyzed.ast.where):
        span = f"WHERE {format_expr(conjunct)}"
        folded = optimize(conjunct)
        if isinstance(folded, Literal) and folded.value is True:
            diagnostics.append(
                Diagnostic(
                    "CEPR203",
                    Severity.WARNING,
                    span,
                    "conjunct folds to TRUE and filters nothing",
                    hint="drop it, or fix the constant it compares",
                )
            )
            continue
        if isinstance(folded, Literal) and folded.value is False:
            diagnostics.append(
                Diagnostic(
                    "CEPR204",
                    Severity.ERROR,
                    span,
                    "conjunct folds to FALSE: the query can never match",
                )
            )
            continue

        constraint = _atomic_constraint(folded)
        if constraint is not None:
            diagnostics.extend(
                _apply_constraint(
                    constraint, span, pred_ranges, pred_texts, analyzed, registry
                )
            )
            continue

        if evaluator is not None:
            diagnostics.extend(_interval_decide(folded, span, evaluator, analyzed))

    return diagnostics


def _apply_constraint(
    constraint: _Constraint,
    span: str,
    pred_ranges: dict[tuple[str, str], _Range],
    pred_texts: dict[tuple[str, str], list[str]],
    analyzed: AnalyzedQuery,
    registry: SchemaRegistry | None,
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    key = (constraint.var, constraint.attr)
    domain_range = _domain_range(constraint, analyzed, registry)

    # Tautology against the declared domain, judged in isolation so the
    # verdict does not depend on conjunct order.
    if domain_range is not None:
        alone = domain_range.narrow(constraint.op, constraint.value)
        if alone == domain_range:
            out.append(
                Diagnostic(
                    "CEPR202",
                    Severity.WARNING,
                    span,
                    f"already implied by the declared domain "
                    f"[{domain_range.lo:g}, {domain_range.hi:g}] of "
                    f"{constraint.var}.{constraint.attr}",
                    hint="the predicate never rejects a schema-valid event",
                )
            )

    # An unsatisfiable constraint on a *negated* variable does not make the
    # query unmatchable — it makes the negation a no-op (it never kills a
    # run), which is a dead-negation warning rather than an error.
    info = analyzed.variables.get(constraint.var)
    on_negated = info is not None and info.is_negated

    current = pred_ranges.get(key, _Range())
    narrowed = current.narrow(constraint.op, constraint.value)
    if narrowed.empty and not current.empty:
        conflicting = pred_texts.get(key, [])
        if on_negated:
            out.append(
                Diagnostic(
                    "CEPR302",
                    Severity.WARNING,
                    span,
                    f"contradicts {' AND '.join(conflicting)}: the negation "
                    f"predicates on {constraint.var!r} are unsatisfiable, so "
                    f"the negation never kills a run",
                    hint="fix the predicate bounds or drop the negation",
                )
            )
        else:
            out.append(
                Diagnostic(
                    "CEPR201",
                    Severity.ERROR,
                    span,
                    f"contradicts {' AND '.join(conflicting)}: no value of "
                    f"{constraint.var}.{constraint.attr} satisfies both",
                )
            )
    elif (
        domain_range is not None
        and not narrowed.empty
        and _intersect(narrowed, domain_range).empty
    ):
        if on_negated:
            out.append(
                Diagnostic(
                    "CEPR302",
                    Severity.WARNING,
                    span,
                    f"excludes the declared domain "
                    f"[{domain_range.lo:g}, {domain_range.hi:g}] of "
                    f"{constraint.var}.{constraint.attr}: the negation never "
                    f"kills a run",
                    hint="fix the predicate bounds or drop the negation",
                )
            )
        else:
            out.append(
                Diagnostic(
                    "CEPR205",
                    Severity.ERROR,
                    span,
                    f"excludes the entire declared domain "
                    f"[{domain_range.lo:g}, {domain_range.hi:g}] of "
                    f"{constraint.var}.{constraint.attr}: no schema-valid "
                    f"event can satisfy it",
                )
            )
    pred_ranges[key] = narrowed
    pred_texts.setdefault(key, []).append(constraint.text)
    return out


def _domain_range(
    constraint: _Constraint,
    analyzed: AnalyzedQuery,
    registry: SchemaRegistry | None,
) -> _Range | None:
    if registry is None:
        return None
    info = analyzed.variables.get(constraint.var)
    if info is None:
        return None
    domain = registry.domain_of(info.event_type, constraint.attr)
    if domain is None:
        return None
    return _Range(domain.lo, domain.hi)


def _intersect(a: _Range, b: _Range) -> _Range:
    lo, lo_open = max((a.lo, a.lo_open), (b.lo, b.lo_open))
    hi, hi_open = min((a.hi, not a.hi_open), (b.hi, not b.hi_open))
    result = _Range(lo, hi, lo_open, not hi_open)
    return result


def _interval_decide(
    conjunct: Expr,
    span: str,
    evaluator: IntervalEvaluator,
    analyzed: AnalyzedQuery,
) -> list[Diagnostic]:
    """Decide a non-atomic comparison by bounding both sides over domains."""
    if not isinstance(conjunct, Binary):
        return []
    if conjunct.op not in _ORDERINGS and conjunct.op not in (
        BinaryOp.EQ,
        BinaryOp.NEQ,
    ):
        return []
    left = evaluator.bound(conjunct.left)
    right = evaluator.bound(conjunct.right)
    if left is None or right is None:
        return []
    decided = _decide_comparison(conjunct.op, left, right)
    if decided is True:
        return [
            Diagnostic(
                "CEPR202",
                Severity.WARNING,
                span,
                f"always true over the declared domains "
                f"(left in {left}, right in {right})",
                hint="the predicate never rejects a schema-valid event",
            )
        ]
    if decided is False:
        on_negated = any(
            analyzed.variables[name].is_negated
            for name in referenced_variables(conjunct)
            if name in analyzed.variables
        )
        if on_negated:
            return [
                Diagnostic(
                    "CEPR302",
                    Severity.WARNING,
                    span,
                    f"always false over the declared domains "
                    f"(left in {left}, right in {right}): the negation "
                    f"never kills a run",
                    hint="fix the predicate bounds or drop the negation",
                )
            ]
        return [
            Diagnostic(
                "CEPR205",
                Severity.ERROR,
                span,
                f"always false over the declared domains "
                f"(left in {left}, right in {right}): no schema-valid stream "
                f"can satisfy it",
            )
        ]
    return []


def check_zero_divisors(analyzed: AnalyzedQuery) -> list[Diagnostic]:
    """``CEPR206``: literal zero divisors raise on first evaluation."""
    diagnostics: list[Diagnostic] = []
    clauses: list[tuple[str, Expr]] = []
    for conjunct in split_conjuncts(analyzed.ast.where):
        clauses.append((f"WHERE {format_expr(conjunct)}", conjunct))
    for key in analyzed.ast.rank_by:
        clauses.append((f"RANK BY {format_expr(key.expr)}", key.expr))
    if analyzed.ast.yield_spec is not None:
        for attr, expr in analyzed.ast.yield_spec.assignments:
            clauses.append(
                (
                    f"YIELD {analyzed.ast.yield_spec.event_type}"
                    f"({attr} = {format_expr(expr)})",
                    expr,
                )
            )
    for span, expr in clauses:
        for node in iter_subexpressions(expr):
            if (
                isinstance(node, Binary)
                and node.op in (BinaryOp.DIV, BinaryOp.MOD)
                and _is_number(node.right)
                and isinstance(node.right, Literal)
                and float(node.right.value) == 0.0
            ):
                word = "division" if node.op is BinaryOp.DIV else "modulo"
                diagnostics.append(
                    Diagnostic(
                        "CEPR206",
                        Severity.WARNING,
                        span,
                        f"{word} by constant zero in {format_expr(node)} "
                        f"raises on first evaluation",
                        hint="the optimizer deliberately leaves the error in "
                        "place; fix the divisor",
                    )
                )
    return diagnostics
