"""Diagnostic records produced by the static query analyzer.

Every check in :mod:`repro.language.analysis` reports its findings as
:class:`Diagnostic` values — a stable machine-readable code, a severity,
the clause span the finding anchors to, a human message, and (usually) a
fix hint.  The full code catalogue lives in :data:`DIAGNOSTIC_CODES` and
is documented with triggering examples in ``docs/ANALYZER.md``; the golden
corpus under ``tests/language/analysis/`` pins one bad query per code.

Severity contract:

* ``ERROR`` — the query is wrong: it can never match, will raise at
  runtime, or references fields that do not exist.  ``cepr lint`` exits
  non-zero when any error is present.
* ``WARNING`` — the query is legal but almost certainly not what the
  author meant (dead predicates, tautologies, unused bindings).
* ``INFO`` — neutral facts worth surfacing, e.g. the shardability
  certificate explaining why a query runs solo under ``--shards N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any


class Severity(Enum):
    """How bad a diagnostic is; ordered so comparisons are meaningful."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


#: code -> short kebab-case title.  Stable API: codes are never reused.
DIAGNOSTIC_CODES: dict[str, str] = {
    # 0xx — front-end failures surfaced through the lint pipeline
    "CEPR001": "syntax-error",
    "CEPR002": "semantic-error",
    # 1xx — type inference against the schema registry
    "CEPR101": "unknown-attribute",
    "CEPR102": "comparison-type-mismatch",
    "CEPR103": "non-numeric-arithmetic",
    "CEPR104": "non-numeric-rank-key",
    "CEPR105": "non-boolean-predicate",
    "CEPR106": "mixed-type-equality",
    "CEPR107": "non-numeric-function-argument",
    "CEPR108": "boolean-ordering",
    # 2xx — satisfiability in the interval domain
    "CEPR201": "contradictory-predicates",
    "CEPR202": "tautological-predicate",
    "CEPR203": "constant-true-predicate",
    "CEPR204": "constant-false-predicate",
    "CEPR205": "domain-contradiction",
    "CEPR206": "constant-division-by-zero",
    # 3xx — usage and reachability
    "CEPR301": "unused-variable",
    "CEPR302": "dead-negation",
    "CEPR303": "zero-limit",
    "CEPR304": "window-too-short",
    "CEPR305": "duplicate-predicate",
    "CEPR306": "constant-rank-key",
    "CEPR307": "duplicate-rank-key",
    # 4xx — shardability certification (informational)
    "CEPR401": "solo-no-partition-by",
    "CEPR402": "solo-trailing-negation",
    "CEPR403": "solo-sliding-emission",
    "CEPR404": "solo-global-limit",
    "CEPR405": "solo-yield-cascade",
    # 6xx — codebase self-lint (cepr lint --self; repro.sanitize.selflint)
    "CEPR601": "wall-clock-in-deterministic-path",
    "CEPR602": "blocking-call-in-async-handler",
    "CEPR603": "untracked-lock",
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``span`` names the clause locus the finding anchors to, rendered in
    canonical query text (e.g. ``WHERE a.price < 5`` or ``LIMIT 0``), so
    tools and tests can point at it without source positions.
    """

    code: str
    severity: Severity
    span: str
    message: str
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def title(self) -> str:
        return DIAGNOSTIC_CODES[self.code]

    def format(self) -> str:
        """Render as one (possibly two-line) human-readable entry."""
        text = f"{self.severity.value:<7} {self.code}  [{self.span}] {self.message}"
        if self.hint:
            text += f"\n        hint: {self.hint}"
        return text

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "code": self.code,
            "title": self.title,
            "severity": self.severity.value,
            "span": self.span,
            "message": self.message,
        }
        if self.hint:
            record["hint"] = self.hint
        return record


def max_severity(diagnostics: list[Diagnostic]) -> Severity | None:
    """The worst severity present, or ``None`` for a clean report."""
    if not diagnostics:
        return None
    return max((d.severity for d in diagnostics), key=lambda s: s.rank)


def has_errors(diagnostics: list[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)
