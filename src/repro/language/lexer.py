"""Hand-written lexer for CEPR-QL.

Produces a list of :class:`~repro.language.tokens.Token`.  Identifiers
matching a reserved word (case-insensitively) are promoted to ``KEYWORD``
tokens carrying the upper-cased word.  ``--`` starts a comment running to
end of line, SQL style.
"""

from __future__ import annotations

from repro.language.errors import CEPRSyntaxError
from repro.language.tokens import KEYWORDS, Token, TokenType

# frozenset: membership of "" (end-of-input peek) must be False.
_ASCII_DIGITS = frozenset("0123456789")

_SINGLE_CHAR: dict[str, TokenType] = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
    "+": TokenType.PLUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
}


class Lexer:
    """Tokenises a CEPR-QL query string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> list[Token]:
        """Return all tokens, terminated by a single EOF token."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type == TokenType.EOF:
                return tokens

    # -- internals ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self.text[self.pos] != "\n":
                    self._advance()
            else:
                return

    def _error(self, message: str) -> CEPRSyntaxError:
        return CEPRSyntaxError(message, self.line, self.column)

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self.line, self.column
        if self.pos >= len(self.text):
            return Token(TokenType.EOF, None, line, column)

        char = self.text[self.pos]

        if char in _ASCII_DIGITS or (char == "." and self._peek(1) in _ASCII_DIGITS):
            return self._lex_number(line, column)
        if char.isascii() and (char.isalpha() or char == "_"):
            return self._lex_word(line, column)
        if char in ("'", '"'):
            return self._lex_string(line, column, quote=char)

        # two-character operators first
        two = self.text[self.pos : self.pos + 2]
        if two == "==":
            self._advance(2)
            return Token(TokenType.EQ, "==", line, column)
        if two in ("!=", "<>"):
            self._advance(2)
            return Token(TokenType.NEQ, "!=", line, column)
        if two == "<=":
            self._advance(2)
            return Token(TokenType.LTE, "<=", line, column)
        if two == ">=":
            self._advance(2)
            return Token(TokenType.GTE, ">=", line, column)

        if char == "=":
            self._advance()
            return Token(TokenType.EQ, "=", line, column)
        if char == "<":
            self._advance()
            return Token(TokenType.LT, "<", line, column)
        if char == ">":
            self._advance()
            return Token(TokenType.GT, ">", line, column)
        if char == "-":
            self._advance()
            return Token(TokenType.MINUS, "-", line, column)
        if char in _SINGLE_CHAR:
            self._advance()
            return Token(_SINGLE_CHAR[char], char, line, column)

        raise self._error(f"unexpected character {char!r}")

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        seen_dot = False
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in _ASCII_DIGITS:
                self._advance()
            elif char == "." and not seen_dot and self._peek(1) in _ASCII_DIGITS:
                seen_dot = True
                self._advance()
            elif char in "eE" and self._peek(1) in _ASCII_DIGITS:
                seen_dot = True  # exponent implies float
                self._advance(2)
                while self.pos < len(self.text) and self.text[self.pos] in _ASCII_DIGITS:
                    self._advance()
                break
            else:
                break
        text = self.text[start : self.pos]
        value: int | float = float(text) if seen_dot else int(text)
        return Token(TokenType.NUMBER, value, line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isascii()
            and (self.text[self.pos].isalnum() or self.text[self.pos] == "_")
        ):
            self._advance()
        word = self.text[start : self.pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, line, column, raw=word)
        return Token(TokenType.IDENT, word, line, column)

    def _lex_string(self, line: int, column: int, quote: str) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise CEPRSyntaxError("unterminated string literal", line, column)
            char = self.text[self.pos]
            if char == quote:
                if self._peek(1) == quote:  # doubled quote escapes itself
                    chars.append(quote)
                    self._advance(2)
                    continue
                self._advance()
                return Token(TokenType.STRING, "".join(chars), line, column)
            if char == "\n":
                raise CEPRSyntaxError("newline in string literal", line, column)
            chars.append(char)
            self._advance()


def tokenize(text: str) -> list[Token]:
    """Tokenise ``text``; convenience wrapper over :class:`Lexer`."""
    return Lexer(text).tokenize()
