"""Pretty-printer: AST → canonical CEPR-QL text.

``parse_query(format_query(q)) == q`` holds for every valid AST (the
printer round-trip property is tested with hypothesis).  The printer is
also used by the monitor to display registered queries.
"""

from __future__ import annotations

from repro.language.ast_nodes import (
    Aggregate,
    AttrRef,
    Binary,
    BinaryOp,
    Direction,
    EmitKind,
    Expr,
    FuncCall,
    Literal,
    PatternElement,
    PrevRef,
    Query,
    Unary,
    UnaryOp,
    VarRef,
    WindowKind,
)

# Precedence levels mirror the parser so we emit minimal parentheses.
_PRECEDENCE: dict[BinaryOp, int] = {
    BinaryOp.OR: 1,
    BinaryOp.AND: 2,
    BinaryOp.EQ: 3,
    BinaryOp.NEQ: 3,
    BinaryOp.LT: 3,
    BinaryOp.LTE: 3,
    BinaryOp.GT: 3,
    BinaryOp.GTE: 3,
    BinaryOp.ADD: 4,
    BinaryOp.SUB: 4,
    BinaryOp.MUL: 5,
    BinaryOp.DIV: 5,
    BinaryOp.MOD: 5,
}
_UNARY_PRECEDENCE = 6
_ATOM_PRECEDENCE = 7


def format_expr(expr: Expr) -> str:
    """Render an expression as query text."""
    text, _ = _format(expr)
    return text


def _format(expr: Expr) -> tuple[str, int]:
    if isinstance(expr, Literal):
        return _format_literal(expr), _ATOM_PRECEDENCE
    if isinstance(expr, AttrRef):
        return f"{expr.var}.{expr.attr}", _ATOM_PRECEDENCE
    if isinstance(expr, PrevRef):
        return f"prev({expr.var}.{expr.attr})", _ATOM_PRECEDENCE
    if isinstance(expr, VarRef):
        return expr.var, _ATOM_PRECEDENCE
    if isinstance(expr, Aggregate):
        arg = expr.var if expr.attr is None else f"{expr.var}.{expr.attr}"
        return f"{expr.func}({arg})", _ATOM_PRECEDENCE
    if isinstance(expr, FuncCall):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}({args})", _ATOM_PRECEDENCE
    if isinstance(expr, Unary):
        return _format_unary(expr)
    if isinstance(expr, Binary):
        return _format_binary(expr)
    raise TypeError(f"cannot format {type(expr).__name__}")


def _format_literal(expr: Literal) -> str:
    value = expr.value
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        # Keep floats recognisable as floats on round-trip.
        return f"{value:.1f}"
    return repr(value)


#: NOT lives between AND (2) and comparisons (3) in the grammar
#: (``not_expr := NOT not_expr | comparison``), so it prints at level 2 and
#: parenthesises any operand below comparison level except a nested NOT.
_NOT_PRECEDENCE = 2


def _format_unary(expr: Unary) -> tuple[str, int]:
    inner, inner_prec = _format(expr.operand)
    if expr.op is UnaryOp.NEG:
        # Parenthesise a leading "-" too: "--x" would lex as a comment.
        if inner_prec < _UNARY_PRECEDENCE or inner.startswith("-"):
            inner = f"({inner})"
        return f"-{inner}", _UNARY_PRECEDENCE
    operand_is_not = isinstance(expr.operand, Unary) and expr.operand.op is UnaryOp.NOT
    if inner_prec < 3 and not operand_is_not:
        inner = f"({inner})"
    return f"NOT {inner}", _NOT_PRECEDENCE


_COMPARISONS = {
    BinaryOp.EQ, BinaryOp.NEQ, BinaryOp.LT, BinaryOp.LTE, BinaryOp.GT, BinaryOp.GTE,
}


def _format_binary(expr: Binary) -> tuple[str, int]:
    prec = _PRECEDENCE[expr.op]
    left, left_prec = _format(expr.left)
    right, right_prec = _format(expr.right)
    # Left-associative grammar: parenthesise the right child at equal
    # precedence, and any child at lower precedence.  Comparisons are
    # non-associative (at most one per level), so their left child needs
    # parentheses at equal precedence too.
    left_needs = left_prec <= prec if expr.op in _COMPARISONS else left_prec < prec
    if left_needs:
        left = f"({left})"
    if right_prec <= prec:
        right = f"({right})"
    op = expr.op.value
    return f"{left} {op} {right}", prec


def _format_element(element: PatternElement) -> str:
    parts = []
    if element.negated:
        parts.append("NOT ")
    parts.append(f"{element.event_type} {element.variable}")
    if element.kleene:
        parts.append("+")
    return "".join(parts)


def _format_window_amount(kind: WindowKind, span: float) -> str:
    if kind is WindowKind.COUNT:
        return f"{int(span)} EVENTS"
    if span == int(span):
        return f"{int(span)} SECONDS"
    return f"{span:g} SECONDS"


def format_query(query: Query) -> str:
    """Render a query AST as canonical multi-line CEPR-QL text."""
    lines: list[str] = []
    if query.name is not None:
        lines.append(f"NAME {query.name}")
    elements = ", ".join(_format_element(e) for e in query.pattern)
    lines.append(f"PATTERN SEQ({elements})")
    if query.where is not None:
        lines.append(f"WHERE {format_expr(query.where)}")
    if query.window is not None:
        lines.append(
            f"WITHIN {_format_window_amount(query.window.kind, query.window.span)}"
        )
    if query.strategy is not None:
        lines.append(f"USING {query.strategy.value}")
    if query.partition_by:
        lines.append("PARTITION BY " + ", ".join(query.partition_by))
    if query.rank_by:
        keys = ", ".join(
            f"{format_expr(k.expr)} {k.direction.value}" for k in query.rank_by
        )
        lines.append(f"RANK BY {keys}")
    if query.limit is not None:
        lines.append(f"LIMIT {query.limit}")
    if query.emit is not None:
        lines.append(f"EMIT {_format_emit(query)}")
    if query.yield_spec is not None:
        assignments = ", ".join(
            f"{attr} = {format_expr(expr)}"
            for attr, expr in query.yield_spec.assignments
        )
        lines.append(f"YIELD {query.yield_spec.event_type}({assignments})")
    return "\n".join(lines)


def _format_emit(query: Query) -> str:
    emit = query.emit
    assert emit is not None
    if emit.kind is EmitKind.ON_WINDOW_CLOSE:
        return "ON WINDOW CLOSE"
    if emit.kind is EmitKind.EAGER:
        return "EAGER"
    assert emit.period is not None and emit.period_kind is not None
    return "EVERY " + _format_window_amount(emit.period_kind, emit.period)
