"""Token definitions for the CEPR-QL lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Any


class TokenType(Enum):
    """Lexical categories of CEPR-QL."""

    # literals / identifiers
    IDENT = auto()
    NUMBER = auto()
    STRING = auto()
    # punctuation
    LPAREN = auto()
    RPAREN = auto()
    COMMA = auto()
    DOT = auto()
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    # comparison
    EQ = auto()  # = or ==
    NEQ = auto()  # != or <>
    LT = auto()
    LTE = auto()
    GT = auto()
    GTE = auto()
    # keywords (subset of IDENT, promoted by the lexer)
    KEYWORD = auto()
    # end of input
    EOF = auto()


#: Reserved words, upper-cased.  ``AND``/``OR``/``NOT``/``TRUE``/``FALSE``
#: participate in expressions; the rest head clauses.
KEYWORDS: frozenset[str] = frozenset(
    {
        "PATTERN",
        "SEQ",
        "WHERE",
        "WITHIN",
        "EVENTS",
        "USING",
        "PARTITION",
        "BY",
        "RANK",
        "LIMIT",
        "EMIT",
        "ON",
        "WINDOW",
        "CLOSE",
        "EVERY",
        "EAGER",
        "ASC",
        "DESC",
        "AND",
        "OR",
        "NOT",
        "TRUE",
        "FALSE",
        "NAME",
        "YIELD",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/column).

    For ``KEYWORD`` tokens ``value`` is the upper-cased reserved word and
    ``raw`` preserves the original spelling, so contexts where a keyword is
    really an identifier (attribute names after ``.``) can recover it.
    """

    type: TokenType
    value: Any
    line: int
    column: int
    raw: str | None = None

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the keyword ``word`` (case-insensitive)."""
        return self.type == TokenType.KEYWORD and self.value == word.upper()

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
