"""Error types raised by the CEPR-QL front end."""

from __future__ import annotations


class CEPRError(Exception):
    """Base class for all CEPR-QL front-end errors."""


class CEPRSyntaxError(CEPRError):
    """A lexical or grammatical error in the query text.

    Carries the 1-based ``line`` and ``column`` of the offending position so
    tools can point at it.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.bare_message = message
        self.line = line
        self.column = column


class CEPRSemanticError(CEPRError):
    """A well-formed query that violates CEPR's static semantics.

    Examples: referencing an undeclared pattern variable, ranking on a
    per-element attribute of a Kleene variable, or a predicate on a negated
    variable that also references a later positive variable.
    """


class EvaluationError(CEPRError):
    """A runtime failure while evaluating a compiled expression."""
