"""Structural canonicalization and fingerprinting of expressions.

Shared multi-query execution (docs/SHARED_EXECUTION.md) needs to decide
when two predicates from *different* queries are the same computation, so
one evaluation per event can serve all of them.  Textual equality is too
weak — per-user variants of a template rename bindings (``b.price > 10``
vs ``x.price > 10``) and permute conjuncts — so equality is defined over a
**canonical form**:

* the expression is run through the constant-folding optimizer first
  (idempotent for already-optimized predicate specs);
* pattern-variable names are substituted through a caller-supplied
  renaming (the predicate index renames the anchor variable to a fixed
  placeholder, making fingerprints alpha-invariant);
* commutative boolean/equality structure is normalized: ``AND``/``OR``
  chains are flattened and their operands sorted, ``==``/``!=`` operands
  are sorted, and ``>``/``>=`` are rewritten as ``<``/``<=`` with the
  operands swapped;
* everything else (arithmetic order, literal types) is preserved
  verbatim — ``int`` and ``float`` literals are deliberately *not*
  conflated (``a.x > 10**17`` and ``a.x > 1e17`` differ on values where
  float precision runs out), and ``+``/``*`` operand order is kept
  (string concatenation is not commutative).

The normalizations are sound for the **value** a predicate produces on
every input where it evaluates cleanly; under the lenient-errors policy a
permuted ``AND`` may attribute an evaluation error to a different conjunct
than the original ordering would, but the predicate outcome (failed bind)
is the same.  Soundness is property-tested in
``tests/property/test_property_shared_execution.py``.

Only **self-contained** predicates are fingerprinted for sharing: those
whose value depends on nothing but the single candidate event bound to
their anchor variable.  Aggregates and ``prev()`` references read earlier
Kleene elements, and ``duration()`` reads the whole match span — all three
vary per *run*, not per event, and are excluded.
"""

from __future__ import annotations

from typing import Mapping

from repro.language.ast_nodes import (
    Aggregate,
    AttrRef,
    Binary,
    BinaryOp,
    Expr,
    FuncCall,
    Literal,
    PrevRef,
    Unary,
    VarRef,
    iter_subexpressions,
    referenced_variables,
)
from repro.language.optimizer import optimize

#: Placeholder the anchor variable is renamed to in predicate fingerprints,
#: making them invariant under per-query binding renames.
ANCHOR = "·"  # "·"

_COMPARISON_FLIP = {
    BinaryOp.GT: BinaryOp.LT,
    BinaryOp.GTE: BinaryOp.LTE,
}
_SYMMETRIC = frozenset({BinaryOp.EQ, BinaryOp.NEQ})


def canonical_expr(expr: Expr, rename: Mapping[str, str] | None = None) -> str:
    """Deterministic canonical serialization of ``expr``.

    Two expressions with equal canonical strings evaluate to the same
    value in every context (modulo which conjunct an evaluation error is
    attributed to — see module docs).  ``rename`` substitutes pattern
    variable names; unmapped names pass through unchanged.
    """
    return _serialize(optimize(expr), rename or {})


def _serialize(expr: Expr, rename: Mapping[str, str]) -> str:
    if isinstance(expr, Literal):
        value = expr.value
        return f"lit:{type(value).__name__}:{value!r}"
    if isinstance(expr, AttrRef):
        return f"attr:{rename.get(expr.var, expr.var)}.{expr.attr}"
    if isinstance(expr, PrevRef):
        return f"prev:{rename.get(expr.var, expr.var)}.{expr.attr}"
    if isinstance(expr, VarRef):
        return f"var:{rename.get(expr.var, expr.var)}"
    if isinstance(expr, Aggregate):
        return f"agg:{expr.func}:{rename.get(expr.var, expr.var)}.{expr.attr}"
    if isinstance(expr, FuncCall):
        args = ",".join(_serialize(a, rename) for a in expr.args)
        return f"call:{expr.name}({args})"
    if isinstance(expr, Unary):
        return f"{expr.op.name.lower()}({_serialize(expr.operand, rename)})"
    if isinstance(expr, Binary):
        return _serialize_binary(expr, rename)
    raise TypeError(f"cannot fingerprint expression node {type(expr).__name__}")


def _serialize_binary(expr: Binary, rename: Mapping[str, str]) -> str:
    op = expr.op
    if op in (BinaryOp.AND, BinaryOp.OR):
        operands = sorted(
            _serialize(part, rename) for part in _flatten(expr, op)
        )
        return f"{op.name.lower()}({','.join(operands)})"
    left = _serialize(expr.left, rename)
    right = _serialize(expr.right, rename)
    if op in _SYMMETRIC:
        if right < left:
            left, right = right, left
        return f"{op.name.lower()}({left},{right})"
    flipped = _COMPARISON_FLIP.get(op)
    if flipped is not None:  # a > b  ≡  b < a
        op, left, right = flipped, right, left
    return f"{op.name.lower()}({left},{right})"


def _flatten(expr: Expr, op: BinaryOp) -> list[Expr]:
    """Operands of a (possibly nested) chain of one commutative operator."""
    if isinstance(expr, Binary) and expr.op is op:
        return _flatten(expr.left, op) + _flatten(expr.right, op)
    return [expr]


def self_contained(expr: Expr, anchor: str | None) -> bool:
    """Whether ``expr``'s value depends only on the event bound to ``anchor``.

    Requires: every referenced variable is ``anchor``, and no construct
    reads run state (aggregates, ``prev()``, ``duration()``).  Predicates
    passing this test evaluate identically against any run context and may
    be computed once per event and shared across queries.
    """
    if anchor is None:
        return False
    if any(name != anchor for name in referenced_variables(expr)):
        return False
    for node in iter_subexpressions(expr):
        if isinstance(node, (Aggregate, PrevRef)):
            return False
        if isinstance(node, FuncCall) and node.name == "duration":
            return False
    return True


def predicate_fingerprint(expr: Expr, anchor: str | None) -> str | None:
    """Alpha-invariant fingerprint of a predicate, or ``None`` if unshareable.

    The anchor variable is renamed to the fixed :data:`ANCHOR` placeholder,
    so semantically identical predicates from queries that only renamed
    their bindings collapse to one fingerprint.
    """
    if not self_contained(expr, anchor):
        return None
    assert anchor is not None
    return canonical_expr(expr, {anchor: ANCHOR})
