"""The *match-then-rank* baseline.

This is what you get by bolting ranking onto an existing CEP engine: run
classical pattern matching, materialise **every** match of the scope, sort
the full list when results are due, cut to k.  It shares CEPR's matcher
(same automaton, same semantics, no pruning, no bounded top-k), so any
performance difference against the integrated ranker isolates the ranking
algorithms themselves.

Answer-equivalence with the integrated path (same matches, same order) is
a correctness property the test suite checks; the benchmarks (E2) measure
the cost gap as windows grow.
"""

from __future__ import annotations

from repro.engine.compiler import compile_automaton
from repro.engine.match import Match
from repro.engine.matcher import PatternMatcher
from repro.engine.windows import EpochTracker
from repro.events.event import Event
from repro.events.schema import SchemaRegistry
from repro.language.ast_nodes import EmitKind, Query
from repro.language.errors import CEPRSemanticError
from repro.language.parser import parse_query
from repro.language.semantics import analyze
from repro.ranking.emission import Emission, EmissionKind
from repro.ranking.score import Scorer


class MatchThenRankQuery:
    """Tumbling-epoch ranked query answered by materialise-sort-cut."""

    def __init__(
        self,
        query: str | Query,
        registry: SchemaRegistry | None = None,
        name: str = "match-then-rank",
    ) -> None:
        ast = parse_query(query) if isinstance(query, str) else query
        self.analyzed = analyze(ast, registry)
        if self.analyzed.emit.kind is not EmitKind.ON_WINDOW_CLOSE:
            raise CEPRSemanticError(
                "the match-then-rank baseline implements tumbling emission "
                "(EMIT ON WINDOW CLOSE) only"
            )
        self.name = name
        self.automaton = compile_automaton(self.analyzed)
        self.scorer = Scorer(self.analyzed.rank_keys)
        self.matcher = PatternMatcher(
            self.automaton, prune_hook=None, tumbling=True, query_name=name
        )
        assert self.analyzed.window is not None
        self._epochs = EpochTracker(self.analyzed.window)
        self._buffers: dict[int, list[Match]] = {}
        self._revision = 0
        self._last_seq = -1
        self._last_ts = 0.0
        self.emissions: list[Emission] = []
        #: total matches materialised (the cost the integrated path avoids).
        self.matches_buffered = 0

    def process(self, event: Event) -> list[Emission]:
        self._last_seq = event.seq
        self._last_ts = event.timestamp
        matches = self.matcher.process(event)
        for match in matches:
            self.scorer.score(match)
            epoch = self._epochs.epoch_of_point(match.last_seq, match.last_ts)
            self._buffers.setdefault(epoch, []).append(match)
            self.matches_buffered += 1

        event_epoch = self._epochs.epoch_of(event)
        out: list[Emission] = []
        for epoch in sorted(e for e in self._buffers if e < event_epoch):
            out.append(self._close_epoch(epoch, event.seq, event.timestamp))
        self.emissions.extend(out)
        return out

    def flush(self) -> list[Emission]:
        final_matches = self.matcher.flush()
        for match in final_matches:
            self.scorer.score(match)
            epoch = self._epochs.epoch_of_point(match.last_seq, match.last_ts)
            self._buffers.setdefault(epoch, []).append(match)
            self.matches_buffered += 1
        out = [
            self._close_epoch(epoch, self._last_seq, self._last_ts)
            for epoch in sorted(self._buffers)
        ]
        self.emissions.extend(out)
        return out

    def run(self, events) -> list[Emission]:
        """Convenience: sequence, process, and flush a whole stream."""
        from repro.events.time import SequenceAssigner

        assigner = SequenceAssigner()
        for event in events:
            if event.seq < 0:
                assigner.assign(event)
            self.process(event)
        self.flush()
        return self.emissions

    def _close_epoch(self, epoch: int, at_seq: int, at_ts: float) -> Emission:
        buffered = self._buffers.pop(epoch)
        buffered.sort(key=Match.sort_key)  # the full sort CEPR avoids
        if self.analyzed.limit is not None:
            buffered = buffered[: self.analyzed.limit]
        self._revision += 1
        return Emission(
            kind=EmissionKind.WINDOW_CLOSE,
            ranking=buffered,
            at_seq=at_seq,
            at_ts=at_ts,
            epoch=epoch,
            revision=self._revision,
        )
