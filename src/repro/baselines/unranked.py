"""The unranked-CEP baseline: plain pattern matching, detection order.

This is the classical engine CEPR extends — no scoring, no top-k, matches
emitted as detected.  Experiment E1 measures the overhead ranking adds on
top of it.
"""

from __future__ import annotations

from repro.engine.compiler import compile_automaton
from repro.engine.match import Match
from repro.engine.matcher import PatternMatcher
from repro.events.event import Event
from repro.events.schema import SchemaRegistry
from repro.events.time import SequenceAssigner
from repro.language.ast_nodes import Query, RankKey
from repro.language.errors import CEPRSemanticError
from repro.language.parser import parse_query
from repro.language.semantics import analyze


def strip_ranking(ast: Query) -> Query:
    """Return ``ast`` without RANK BY / LIMIT / EMIT (pure matching)."""
    from dataclasses import replace

    return replace(ast, rank_by=(), limit=None, emit=None)


class UnrankedQuery:
    """Classical CEP evaluation of a (possibly de-ranked) query."""

    def __init__(
        self,
        query: str | Query,
        registry: SchemaRegistry | None = None,
        name: str = "unranked",
    ) -> None:
        ast = parse_query(query) if isinstance(query, str) else query
        ast = strip_ranking(ast)
        if ast.rank_by:
            raise CEPRSemanticError("unranked baseline cannot carry RANK BY")
        self.analyzed = analyze(ast, registry)
        self.name = name
        self.automaton = compile_automaton(self.analyzed)
        self.matcher = PatternMatcher(
            self.automaton, prune_hook=None, tumbling=False, query_name=name
        )
        self.matches: list[Match] = []

    def process(self, event: Event) -> list[Match]:
        matches = self.matcher.process(event)
        self.matches.extend(matches)
        return matches

    def flush(self) -> list[Match]:
        confirmed = self.matcher.flush()
        self.matches.extend(confirmed)
        return confirmed

    def run(self, events) -> list[Match]:
        """Convenience: sequence, process, and flush a whole stream."""
        assigner = SequenceAssigner()
        for event in events:
            if event.seq < 0:
                assigner.assign(event)
            self.process(event)
        self.flush()
        return self.matches
