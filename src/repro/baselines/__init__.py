"""Baselines the paper's approach is compared against."""

from repro.baselines.match_then_rank import MatchThenRankQuery
from repro.baselines.unranked import UnrankedQuery, strip_ranking

__all__ = ["MatchThenRankQuery", "UnrankedQuery", "strip_ranking"]
