"""Strict-JSON encoding of payloads that may carry non-finite floats.

Python's ``json.dumps`` default emits ``NaN``/``Infinity``/``-Infinity``
tokens, which are *not* JSON: ``JSON.parse``, jq, and most non-Python
consumers reject the whole line.  Every serialisation boundary in CEPR
(the event log, emission JSONL output, checkpoint files) therefore
encodes with ``allow_nan=False`` and an explicit policy for non-finite
floats:

* **Flat payloads** (event attributes): a non-finite value is written as
  ``null`` and its kind recorded in a ``"~nf"`` flag field mapping the
  attribute name to ``"nan"``/``"inf"``/``"-inf"``; :func:`unscrub`
  reverses it on decode.  ``~`` cannot start a CEPR-QL identifier, so the
  flag field can never collide with a real attribute.
* **Nested structures** (checkpoint state, rank values): a non-finite
  float is replaced by the sentinel object ``{"~nf": kind}``;
  :func:`desanitize` restores it.

Either way the emitted bytes are valid JSON everywhere and the original
values round-trip exactly.
"""

from __future__ import annotations

import json
import math
from typing import Any

#: Flag field carrying non-finite attribute kinds alongside a payload.
NONFINITE_KEY = "~nf"

_KIND_VALUES = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def classify(value: Any) -> str | None:
    """``"nan"``/``"inf"``/``"-inf"`` for a non-finite float, else ``None``."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "nan"
        return "inf" if value > 0 else "-inf"
    return None


def scrub(payload: dict[str, Any]) -> tuple[dict[str, Any], dict[str, str]]:
    """Split a flat payload into a JSON-safe dict plus non-finite flags.

    Returns ``(clean, flags)`` where every non-finite float value in
    ``payload`` appears as ``None`` in ``clean`` and as ``attr -> kind``
    in ``flags``.  When ``flags`` is empty the payload was already safe.
    """
    flags: dict[str, str] = {}
    clean: dict[str, Any] = {}
    for attr, value in payload.items():
        kind = classify(value)
        if kind is None:
            clean[attr] = value
        else:
            clean[attr] = None
            flags[attr] = kind
    return clean, flags


def unscrub(payload: dict[str, Any], flags: dict[str, str]) -> dict[str, Any]:
    """Restore non-finite values recorded by :func:`scrub` (in place)."""
    for attr, kind in flags.items():
        payload[attr] = _KIND_VALUES[kind]
    return payload


def sanitize(obj: Any) -> Any:
    """Deep-copy ``obj`` replacing non-finite floats with sentinel objects.

    The result serialises under ``allow_nan=False``.  Dicts and lists are
    recursed; tuples become lists (JSON has no tuple type — decoders that
    need tuples restore them structurally).
    """
    kind = classify(obj)
    if kind is not None:
        return {NONFINITE_KEY: kind}
    if isinstance(obj, dict):
        return {key: sanitize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [sanitize(value) for value in obj]
    return obj


def desanitize(obj: Any) -> Any:
    """Inverse of :func:`sanitize` (sentinel objects back to floats)."""
    if isinstance(obj, dict):
        if set(obj) == {NONFINITE_KEY}:
            return _KIND_VALUES[obj[NONFINITE_KEY]]
        return {key: desanitize(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [desanitize(value) for value in obj]
    return obj


def dumps(obj: Any) -> str:
    """``json.dumps`` that refuses to emit invalid NaN/Infinity tokens.

    Raises :class:`ValueError` on a non-finite float that escaped the
    scrub/sanitize policy — corrupting the output stream silently would
    be strictly worse.
    """
    return json.dumps(obj, allow_nan=False)
