"""Stream-time utilities: sequence assignment and duration parsing.

CEPR measures count-based windows in *sequence numbers* — the global arrival
index assigned to each event at ingest — and time-based windows in event
*timestamps*.  :class:`SequenceAssigner` stamps sequence numbers and
enforces (or just observes) timestamp monotonicity.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.events.event import Event


class OutOfOrderError(ValueError):
    """Raised when a stream violates timestamp monotonicity in strict mode."""


#: Multipliers converting a duration unit to seconds of stream time.
_UNIT_SECONDS: dict[str, float] = {
    "MILLISECOND": 0.001,
    "MILLISECONDS": 0.001,
    "MS": 0.001,
    "SECOND": 1.0,
    "SECONDS": 1.0,
    "S": 1.0,
    "MINUTE": 60.0,
    "MINUTES": 60.0,
    "MIN": 60.0,
    "HOUR": 3600.0,
    "HOURS": 3600.0,
    "H": 3600.0,
    "DAY": 86400.0,
    "DAYS": 86400.0,
}


def parse_duration(value: float, unit: str) -> float:
    """Convert ``value`` in ``unit`` to seconds of stream time.

    ``unit`` is case-insensitive and accepts singular, plural, and short
    forms (``"MINUTES"``, ``"minute"``, ``"min"``).

    >>> parse_duration(10, "MINUTES")
    600.0
    """
    multiplier = _UNIT_SECONDS.get(unit.upper())
    if multiplier is None:
        raise ValueError(
            f"unknown duration unit {unit!r}; expected one of "
            f"{sorted(set(_UNIT_SECONDS))}"
        )
    return float(value) * multiplier


class LatenessBuffer:
    """Reorders an out-of-order stream under a bounded-lateness contract.

    Real feeds deliver events slightly out of timestamp order.  If the
    disorder is bounded — an event is never more than ``max_lateness``
    seconds of stream time late — buffering and releasing behind a
    *watermark* of ``max_seen_timestamp - max_lateness`` restores exact
    timestamp order, at the cost of that much result latency.  The engine
    wires this in front of matching when constructed with
    ``max_lateness=...``; window semantics and pruning soundness (which
    assume non-decreasing timestamps) then hold on dirty feeds.

    Events later than the contract (their timestamp is already below the
    watermark when they arrive) would violate order if released; they are
    dropped and counted in :attr:`late_drops`.
    """

    def __init__(self, max_lateness: float) -> None:
        if max_lateness < 0:
            raise ValueError(f"max_lateness must be >= 0, got {max_lateness}")
        self.max_lateness = max_lateness
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = 0  # stable tie-break for equal timestamps
        self._max_seen = float("-inf")
        self._last_released = float("-inf")
        #: events dropped for violating the lateness contract.
        self.late_drops = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def watermark(self) -> float:
        """Events at or below this timestamp are safe to release."""
        return self._max_seen - self.max_lateness

    def push(self, event: Event) -> list[Event]:
        """Buffer ``event``; return events now releasable, in order."""
        if event.timestamp < self._last_released:
            self.late_drops += 1
            return []
        heapq.heappush(self._heap, (event.timestamp, self._counter, event))
        self._counter += 1
        if event.timestamp > self._max_seen:
            self._max_seen = event.timestamp

        released: list[Event] = []
        while self._heap and self._heap[0][0] <= self.watermark:
            _, _, ready = heapq.heappop(self._heap)
            self._last_released = ready.timestamp
            released.append(ready)
        return released

    def flush(self) -> list[Event]:
        """Release everything still buffered, in timestamp order."""
        released: list[Event] = []
        while self._heap:
            _, _, ready = heapq.heappop(self._heap)
            self._last_released = ready.timestamp
            released.append(ready)
        return released


class SequenceAssigner:
    """Assigns global sequence numbers and tracks stream time.

    Parameters
    ----------
    strict:
        When true, an event whose timestamp regresses below the previous
        event's timestamp raises :class:`OutOfOrderError`.  When false
        (default) regressions are counted in :attr:`out_of_order_count` but
        allowed through — matching semantics then follow arrival order.
    start:
        First sequence number to assign (default 0).
    """

    def __init__(self, strict: bool = False, start: int = 0) -> None:
        self.strict = strict
        self._next_seq = start
        self._last_timestamp: float | None = None
        #: Number of events observed with a regressing timestamp.
        self.out_of_order_count = 0

    @property
    def next_seq(self) -> int:
        """Sequence number the next event will receive."""
        return self._next_seq

    @property
    def last_timestamp(self) -> float | None:
        """Timestamp of the most recently assigned event, or ``None``."""
        return self._last_timestamp

    def assign(self, event: Event) -> Event:
        """Stamp ``event`` with the next sequence number (mutates ``event``)."""
        if self._last_timestamp is not None and event.timestamp < self._last_timestamp:
            self.out_of_order_count += 1
            if self.strict:
                raise OutOfOrderError(
                    f"event timestamp {event.timestamp} regresses below "
                    f"{self._last_timestamp} (seq {self._next_seq})"
                )
        event.seq = self._next_seq
        self._next_seq += 1
        self._last_timestamp = event.timestamp
        return event

    def assign_all(self, events: Iterable[Event]) -> Iterator[Event]:
        """Lazily stamp every event of an iterable."""
        for event in events:
            yield self.assign(event)

    def snapshot(self) -> dict:
        """JSON-safe snapshot of the assignment position (for checkpoints)."""
        return {
            "next_seq": self._next_seq,
            "last_timestamp": self._last_timestamp,
            "out_of_order_count": self.out_of_order_count,
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` (strictness stays as constructed)."""
        self._next_seq = int(state["next_seq"])
        self._last_timestamp = state["last_timestamp"]
        self.out_of_order_count = int(state["out_of_order_count"])


class PreassignedSequencer(SequenceAssigner):
    """A sequencer that trusts sequence numbers stamped upstream.

    The sharded runtime assigns **global** sequence numbers once, at the
    dispatch point, and then fans events out to per-shard engines.  Each
    shard sees only a subsequence of the stream, so re-numbering locally
    would corrupt count-window semantics (``WITHIN n EVENTS`` measures
    global arrival positions).  An engine constructed with this sequencer
    keeps the incoming ``event.seq`` untouched and only tracks stream time.
    """

    def assign(self, event: Event) -> Event:
        if event.seq < 0:
            raise ValueError(
                "event reached a PreassignedSequencer without a sequence "
                "number; the dispatching runner must stamp events first"
            )
        if self._last_timestamp is not None and event.timestamp < self._last_timestamp:
            self.out_of_order_count += 1
            if self.strict:
                raise OutOfOrderError(
                    f"event timestamp {event.timestamp} regresses below "
                    f"{self._last_timestamp} (seq {event.seq})"
                )
        self._next_seq = event.seq + 1
        self._last_timestamp = event.timestamp
        return event
