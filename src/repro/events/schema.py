"""Event schemas: attribute typing and value domains.

Schemas are optional for plain pattern matching — the engine happily matches
untyped events — but they serve two purposes:

1. **Validation**: an engine configured with a registry rejects events whose
   payload does not conform, turning silent garbage into loud errors.
2. **Score-bound pruning**: the ranking optimiser
   (:mod:`repro.ranking.pruning`) needs upper/lower bounds for attributes of
   *not-yet-bound* pattern variables.  Declaring ``Domain(lo, hi)`` on a
   numeric attribute supplies those bounds; without a domain the attribute
   is unbounded and scoring expressions over it cannot be pruned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.events.event import Event

#: Types accepted for attribute values, keyed by declaration name.
_DTYPES: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
}


class SchemaError(ValueError):
    """Raised on schema declaration or event validation failures."""


@dataclass(frozen=True)
class Domain:
    """Closed numeric value domain ``[lo, hi]`` for an attribute.

    Used by interval evaluation to bound scores of partial matches.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise SchemaError(f"domain lower bound {self.lo} exceeds upper bound {self.hi}")

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies within the domain."""
        return self.lo <= value <= self.hi


@dataclass(frozen=True)
class AttributeSpec:
    """Declaration of one event attribute.

    Parameters
    ----------
    name:
        Attribute name as it appears in event payloads and queries.
    dtype:
        One of ``"int"``, ``"float"``, ``"str"``, ``"bool"``.
    domain:
        Optional numeric :class:`Domain`; only valid for ``int``/``float``.
    required:
        When ``True`` (default) validation fails if the attribute is absent.
    """

    name: str
    dtype: str = "float"
    domain: Domain | None = None
    required: bool = True

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPES:
            raise SchemaError(
                f"unknown dtype {self.dtype!r} for attribute {self.name!r}; "
                f"expected one of {sorted(_DTYPES)}"
            )
        if self.domain is not None and self.dtype not in ("int", "float"):
            raise SchemaError(
                f"attribute {self.name!r}: domains are only valid for numeric dtypes"
            )

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` if ``value`` violates this spec."""
        expected = _DTYPES[self.dtype]
        # bool is a subclass of int; reject it for numeric dtypes explicitly.
        if isinstance(value, bool) and self.dtype != "bool":
            raise SchemaError(f"attribute {self.name!r}: expected {self.dtype}, got bool")
        if not isinstance(value, expected):
            raise SchemaError(
                f"attribute {self.name!r}: expected {self.dtype}, "
                f"got {type(value).__name__} ({value!r})"
            )
        if self.domain is not None and not self.domain.contains(float(value)):
            raise SchemaError(
                f"attribute {self.name!r}: value {value!r} outside domain "
                f"[{self.domain.lo}, {self.domain.hi}]"
            )


@dataclass(frozen=True)
class EventSchema:
    """Schema for one event type: a set of :class:`AttributeSpec`."""

    event_type: str
    attributes: tuple[AttributeSpec, ...] = ()
    _by_name: Mapping[str, AttributeSpec] = field(init=False, repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        by_name: dict[str, AttributeSpec] = {}
        for spec in self.attributes:
            if spec.name in by_name:
                raise SchemaError(
                    f"schema {self.event_type!r}: duplicate attribute {spec.name!r}"
                )
            by_name[spec.name] = spec
        object.__setattr__(self, "_by_name", by_name)

    @classmethod
    def build(cls, event_type: str, **attrs: str | tuple[str, Domain]) -> "EventSchema":
        """Convenience constructor.

        ``EventSchema.build("Buy", symbol="str", price=("float", Domain(0, 1e4)))``
        """
        specs = []
        for name, decl in attrs.items():
            if isinstance(decl, tuple):
                dtype, domain = decl
                specs.append(AttributeSpec(name, dtype, domain))
            else:
                specs.append(AttributeSpec(name, decl))
        return cls(event_type, tuple(specs))

    def attribute(self, name: str) -> AttributeSpec | None:
        """Return the spec for ``name`` or ``None`` when undeclared."""
        return self._by_name.get(name)

    def attribute_names(self) -> Iterator[str]:
        return iter(self._by_name)

    def validate(self, event: Event) -> None:
        """Raise :class:`SchemaError` if ``event`` violates this schema."""
        if event.event_type != self.event_type:
            raise SchemaError(
                f"event type {event.event_type!r} does not match schema "
                f"{self.event_type!r}"
            )
        for spec in self.attributes:
            if spec.name not in event.payload:
                if spec.required:
                    raise SchemaError(
                        f"event {event.event_type!r} missing required attribute "
                        f"{spec.name!r}"
                    )
                continue
            spec.validate(event.payload[spec.name])


class SchemaRegistry:
    """A collection of :class:`EventSchema`, one per event type.

    The registry is consulted by:

    * the engine facade, to validate ingested events (when strict mode on);
    * the language semantic analyser, to type-check attribute references;
    * the pruning optimiser, to look up attribute :class:`Domain` bounds.
    """

    def __init__(self, schemas: Iterable[EventSchema] = ()) -> None:
        self._schemas: dict[str, EventSchema] = {}
        for schema in schemas:
            self.register(schema)

    def register(self, schema: EventSchema) -> None:
        """Add or replace the schema for ``schema.event_type``."""
        self._schemas[schema.event_type] = schema

    def get(self, event_type: str) -> EventSchema | None:
        return self._schemas.get(event_type)

    def __contains__(self, event_type: str) -> bool:
        return event_type in self._schemas

    def __iter__(self) -> Iterator[EventSchema]:
        return iter(self._schemas.values())

    def __len__(self) -> int:
        return len(self._schemas)

    def validate(self, event: Event, strict: bool = False) -> None:
        """Validate ``event`` against its registered schema.

        When ``strict`` is true an event whose type has no registered schema
        is rejected; otherwise unknown types pass through.
        """
        schema = self._schemas.get(event.event_type)
        if schema is None:
            if strict:
                raise SchemaError(f"no schema registered for event type {event.event_type!r}")
            return
        schema.validate(event)

    def domain_of(self, event_type: str, attribute: str) -> Domain | None:
        """Return the declared domain for ``event_type.attribute``, if any."""
        schema = self._schemas.get(event_type)
        if schema is None:
            return None
        spec = schema.attribute(attribute)
        return spec.domain if spec is not None else None


def registry_from_dict(spec: Mapping[str, Mapping[str, Any]]) -> SchemaRegistry:
    """Build a registry from a plain-dict description (JSON-shaped).

    ::

        {
          "Buy": {
            "symbol": "str",
            "price": {"dtype": "float", "domain": [0, 10000]},
            "note":  {"dtype": "str", "required": false}
          }
        }

    Attribute values are either a dtype string or an object with ``dtype``
    plus optional ``domain`` (``[lo, hi]``) and ``required`` keys.
    """
    schemas: list[EventSchema] = []
    for event_type, attrs in spec.items():
        if not isinstance(attrs, Mapping):
            raise SchemaError(
                f"schema for {event_type!r} must be an object mapping "
                f"attribute names to declarations"
            )
        specs: list[AttributeSpec] = []
        for name, decl in attrs.items():
            if isinstance(decl, str):
                specs.append(AttributeSpec(name, decl))
                continue
            if not isinstance(decl, Mapping):
                raise SchemaError(
                    f"attribute {event_type}.{name}: declaration must be a "
                    f"dtype string or an object, got {type(decl).__name__}"
                )
            unknown = set(decl) - {"dtype", "domain", "required"}
            if unknown:
                raise SchemaError(
                    f"attribute {event_type}.{name}: unknown declaration "
                    f"keys {sorted(unknown)}"
                )
            domain = None
            if decl.get("domain") is not None:
                bounds = decl["domain"]
                if not isinstance(bounds, (list, tuple)) or len(bounds) != 2:
                    raise SchemaError(
                        f"attribute {event_type}.{name}: domain must be a "
                        f"[lo, hi] pair"
                    )
                domain = Domain(float(bounds[0]), float(bounds[1]))
            specs.append(
                AttributeSpec(
                    name,
                    decl.get("dtype", "float"),
                    domain,
                    bool(decl.get("required", True)),
                )
            )
        schemas.append(EventSchema(event_type, tuple(specs)))
    return SchemaRegistry(schemas)


def load_registry(path: Any) -> SchemaRegistry:
    """Load a :func:`registry_from_dict`-shaped JSON file."""
    import json
    from pathlib import Path

    text = Path(path).read_text()
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"schema file {path}: invalid JSON ({exc})") from exc
    if not isinstance(spec, dict):
        raise SchemaError(f"schema file {path}: top level must be an object")
    return registry_from_dict(spec)
