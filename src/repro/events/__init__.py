"""Event model substrate: typed events, schemas, and stream sources.

This package provides the data plane that every other CEPR component is
built on:

* :class:`~repro.events.event.Event` — a single timestamped, typed tuple.
* :class:`~repro.events.schema.EventSchema` /
  :class:`~repro.events.schema.SchemaRegistry` — attribute typing and
  (optional) value domains.  Declared numeric domains feed the score-bound
  pruning machinery in :mod:`repro.ranking.pruning`.
* :mod:`~repro.events.stream` — composable stream pipelines.
* :mod:`~repro.events.sources` — CSV/JSONL/replay sources.
"""

from repro.events.event import Event
from repro.events.schema import (
    AttributeSpec,
    Domain,
    EventSchema,
    SchemaError,
    SchemaRegistry,
)
from repro.events.sources import CSVSource, JSONLSource, ReplaySource
from repro.events.stream import EventStream, merge_streams
from repro.events.time import SequenceAssigner, parse_duration

__all__ = [
    "AttributeSpec",
    "CSVSource",
    "Domain",
    "Event",
    "EventSchema",
    "EventStream",
    "JSONLSource",
    "ReplaySource",
    "SchemaError",
    "SchemaRegistry",
    "SequenceAssigner",
    "merge_streams",
    "parse_duration",
]
