"""Composable event stream pipelines.

:class:`EventStream` is a thin, lazily-evaluated wrapper over any iterable
of :class:`~repro.events.event.Event` that adds the combinators a workload
or example script needs: ``filter``, ``map``, ``take``, type selection, and
timestamp-ordered merging of several streams.  Streams are single-use, like
the iterators they wrap.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, Sequence

from repro.events.event import Event


class EventStream:
    """A lazily evaluated stream of events.

    >>> s = EventStream([Event("A", 1, x=1), Event("B", 2, x=2)])
    >>> [e.event_type for e in s.of_type("A")]
    ['A']
    """

    def __init__(self, events: Iterable[Event]) -> None:
        self._events = iter(events)

    def __iter__(self) -> Iterator[Event]:
        return self._events

    @classmethod
    def empty(cls) -> "EventStream":
        return cls(())

    def filter(self, predicate: Callable[[Event], bool]) -> "EventStream":
        """Keep only events for which ``predicate`` is true."""
        return EventStream(e for e in self._events if predicate(e))

    def map(self, transform: Callable[[Event], Event]) -> "EventStream":
        """Apply ``transform`` to every event."""
        return EventStream(transform(e) for e in self._events)

    def of_type(self, *event_types: str) -> "EventStream":
        """Keep only events whose type is one of ``event_types``."""
        wanted = frozenset(event_types)
        return self.filter(lambda e: e.event_type in wanted)

    def take(self, count: int) -> "EventStream":
        """Truncate the stream to its first ``count`` events."""

        def _take() -> Iterator[Event]:
            it = self._events
            for _ in range(count):
                try:
                    yield next(it)
                except StopIteration:
                    return

        return EventStream(_take())

    def drop(self, count: int) -> "EventStream":
        """Skip the first ``count`` events."""

        def _drop() -> Iterator[Event]:
            it = self._events
            for _ in range(count):
                try:
                    next(it)
                except StopIteration:
                    return
            yield from it

        return EventStream(_drop())

    def collect(self) -> list[Event]:
        """Materialise the remaining events into a list."""
        return list(self._events)

    def peekable(self) -> "PeekableStream":
        """Wrap in a :class:`PeekableStream` supporting one-event lookahead."""
        return PeekableStream(self._events)


class PeekableStream:
    """An event iterator with single-event lookahead, used by mergers."""

    _SENTINEL = object()

    def __init__(self, events: Iterable[Event]) -> None:
        self._events = iter(events)
        self._peeked: object = self._SENTINEL

    def peek(self) -> Event | None:
        """Return the next event without consuming it, or ``None`` at end."""
        if self._peeked is self._SENTINEL:
            try:
                self._peeked = next(self._events)
            except StopIteration:
                return None
        return self._peeked  # type: ignore[return-value]

    def __iter__(self) -> Iterator[Event]:
        return self

    def __next__(self) -> Event:
        if self._peeked is not self._SENTINEL:
            event = self._peeked
            self._peeked = self._SENTINEL
            return event  # type: ignore[return-value]
        return next(self._events)


def merge_streams(streams: Sequence[Iterable[Event]]) -> EventStream:
    """Merge several timestamp-ordered streams into one ordered stream.

    Input streams must each be non-decreasing in timestamp; the output is
    then globally non-decreasing.  Ties are broken by input stream index so
    the merge is deterministic.
    """

    def _merged() -> Iterator[Event]:
        # heapq.merge needs comparable sort keys; decorate with (ts, idx, n).
        def decorated(idx: int, stream: Iterable[Event]) -> Iterator[tuple[float, int, int, Event]]:
            for n, event in enumerate(stream):
                yield (event.timestamp, idx, n, event)

        decorated_streams = [decorated(i, s) for i, s in enumerate(streams)]
        for _, _, _, event in heapq.merge(*decorated_streams):
            yield event

    return EventStream(_merged())
