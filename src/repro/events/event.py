"""The core :class:`Event` record.

An event is a typed, timestamped tuple: it has an event *type* (``"Buy"``,
``"HeartRate"``, ...), a numeric *timestamp* in stream time, a payload of
named attributes, and — once it has been ingested by an engine or a
:class:`~repro.events.time.SequenceAssigner` — a global *sequence number*
that fixes its arrival position.  Count-based windows (``WITHIN n EVENTS``)
are measured in sequence numbers; time-based windows in timestamps.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping


class Event:
    """A single event in a stream.

    Parameters
    ----------
    event_type:
        The type tag of the event (matched against pattern element types).
    timestamp:
        Stream time of the event.  Any real number; must be non-decreasing
        within a stream for window semantics to be meaningful.
    attrs:
        Named payload attributes, e.g. ``symbol="IBM", price=153.2``.

    Attribute values are read with item access (``event["price"]``) or
    :meth:`get`.  Events compare equal structurally (type, timestamp,
    payload); the sequence number is bookkeeping and excluded.
    """

    __slots__ = ("event_type", "timestamp", "payload", "seq", "trace")

    def __init__(self, event_type: str, timestamp: float, **attrs: Any) -> None:
        self.event_type = event_type
        self.timestamp = float(timestamp)
        self.payload: dict[str, Any] = attrs
        #: Global arrival index, assigned at ingest; -1 until assigned.
        self.seq: int = -1
        #: Optional trace context (a mapping) stamped by the transport that
        #: delivered the event — the serving layer stitches remote spans to
        #: engine spans through it.  Bookkeeping like ``seq``: excluded
        #: from equality and hashing.
        self.trace: Mapping[str, Any] | None = None

    @classmethod
    def from_mapping(
        cls, event_type: str, timestamp: float, payload: Mapping[str, Any]
    ) -> "Event":
        """Build an event from an attribute mapping (e.g. a parsed CSV row)."""
        return cls(event_type, timestamp, **dict(payload))

    def __getitem__(self, name: str) -> Any:
        try:
            return self.payload[name]
        except KeyError:
            raise KeyError(
                f"event of type {self.event_type!r} has no attribute {name!r}; "
                f"available: {sorted(self.payload)}"
            ) from None

    def get(self, name: str, default: Any = None) -> Any:
        """Return attribute ``name`` or ``default`` when absent."""
        return self.payload.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.payload

    def __iter__(self) -> Iterator[str]:
        return iter(self.payload)

    def replace(self, **attrs: Any) -> "Event":
        """Return a copy with some attributes replaced (timestamp preserved)."""
        merged = dict(self.payload)
        merged.update(attrs)
        clone = Event(self.event_type, self.timestamp, **merged)
        clone.seq = self.seq
        clone.trace = self.trace
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.event_type == other.event_type
            and self.timestamp == other.timestamp
            and self.payload == other.payload
        )

    def __hash__(self) -> int:
        return hash((self.event_type, self.timestamp, tuple(sorted(self.payload.items()))))

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in self.payload.items())
        seq = f" seq={self.seq}" if self.seq >= 0 else ""
        return f"Event({self.event_type!r}, t={self.timestamp:g}{seq}, {attrs})"
