"""File-backed and replay event sources.

These sources adapt persisted event logs to :class:`~repro.events.stream.EventStream`:

* :class:`CSVSource` — one event per row; a designated column gives the
  event type and another the timestamp, remaining columns become payload.
* :class:`JSONLSource` — one JSON object per line with ``type``/``timestamp``
  keys plus payload.
* :class:`ReplaySource` — wraps another source and replays it against a
  clock (real or simulated), for live-demo scenarios.
"""

from __future__ import annotations

import csv
import json
import time as _time
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.events.event import Event
from repro.events.stream import EventStream


def _coerce(value: str) -> Any:
    """Best-effort typed coercion of a CSV cell: int, then float, then str."""
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    lowered = value.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    return value


class CSVSource:
    """Read events from a CSV file.

    Parameters
    ----------
    path:
        File to read.
    type_column:
        Column holding the event type (default ``"type"``).  Alternatively
        pass ``event_type`` to tag every row with a fixed type.
    timestamp_column:
        Column holding the timestamp (default ``"timestamp"``).
    event_type:
        Fixed event type for all rows; when given, ``type_column`` is not
        consulted.
    """

    def __init__(
        self,
        path: str | Path,
        type_column: str = "type",
        timestamp_column: str = "timestamp",
        event_type: str | None = None,
    ) -> None:
        self.path = Path(path)
        self.type_column = type_column
        self.timestamp_column = timestamp_column
        self.event_type = event_type

    def __iter__(self) -> Iterator[Event]:
        with self.path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                yield self._row_to_event(row)

    def _row_to_event(self, row: dict[str, str]) -> Event:
        if self.event_type is not None:
            event_type = self.event_type
        else:
            try:
                event_type = row.pop(self.type_column)
            except KeyError:
                raise ValueError(
                    f"{self.path}: missing type column {self.type_column!r}"
                ) from None
        try:
            timestamp = float(row.pop(self.timestamp_column))
        except KeyError:
            raise ValueError(
                f"{self.path}: missing timestamp column {self.timestamp_column!r}"
            ) from None
        payload = {key: _coerce(value) for key, value in row.items()}
        return Event(event_type, timestamp, **payload)

    def stream(self) -> EventStream:
        return EventStream(iter(self))


class JSONLSource:
    """Read events from a JSON-lines file.

    Each line must be an object with ``"type"`` and ``"timestamp"`` keys;
    all remaining keys become the payload.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def __iter__(self) -> Iterator[Event]:
        with self.path.open() as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(f"{self.path}:{lineno}: invalid JSON: {exc}") from exc
                try:
                    event_type = record.pop("type")
                    timestamp = float(record.pop("timestamp"))
                except KeyError as exc:
                    raise ValueError(f"{self.path}:{lineno}: missing key {exc}") from None
                yield Event(event_type, timestamp, **record)

    def stream(self) -> EventStream:
        return EventStream(iter(self))


def write_jsonl(path: str | Path, events: Iterable[Event]) -> int:
    """Persist events as JSON lines; returns the number written."""
    count = 0
    with Path(path).open("w") as handle:
        for event in events:
            record = {"type": event.event_type, "timestamp": event.timestamp}
            record.update(event.payload)
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


class ReplaySource:
    """Replay a recorded stream against a clock.

    The source sleeps so that inter-event gaps in stream time are
    reproduced in wall-clock time, scaled by ``speedup``.  Passing a custom
    ``sleep`` function (e.g. a no-op) makes it testable and usable in
    simulations.

    Parameters
    ----------
    events:
        The recorded stream (must be non-decreasing in timestamp).
    speedup:
        Replay speed multiplier; 2.0 plays twice as fast as recorded.
    sleep:
        Sleep function; defaults to :func:`time.sleep`.
    """

    def __init__(
        self,
        events: Iterable[Event],
        speedup: float = 1.0,
        sleep: Callable[[float], None] = _time.sleep,
    ) -> None:
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        self._events = events
        self.speedup = speedup
        self._sleep = sleep

    def __iter__(self) -> Iterator[Event]:
        previous_ts: float | None = None
        for event in self._events:
            if previous_ts is not None:
                gap = (event.timestamp - previous_ts) / self.speedup
                if gap > 0:
                    self._sleep(gap)
            previous_ts = event.timestamp
            yield event

    def stream(self) -> EventStream:
        return EventStream(iter(self))
