"""Typed metrics registry with JSON and Prometheus export.

The runtime keeps its hot-path counters as plain attributes (increments
must stay nanosecond-cheap); this module is the *typed, exported view*
over them.  A :class:`MetricsRegistry` holds three instrument kinds:

* :class:`Counter` — monotone count (events pushed, matches, prunes);
* :class:`Gauge` — point-in-time value (live runs, backlog, throughput);
* :class:`Histogram` — a distribution backed by a
  :class:`~repro.runtime.metrics.LatencyRecorder` reservoir, exported as a
  Prometheus *summary* (quantiles + ``_sum`` + ``_count``).

Instruments may be **owned** (the component calls ``inc``/``set``/
``observe``) or **callback-backed** (``fn=...`` reads a live counter the
hot path already maintains, so registration adds zero steady-state cost).
Histograms can likewise *bridge* an existing ``LatencyRecorder``.

Registries merge with the same ``absorb`` semantics as the fleet metrics:
counters sum, gauges sum (or take ``max``, per instrument), histogram
reservoirs pool — which is how :class:`~repro.runtime.sharded.
ShardedEngineRunner` folds per-shard registries into one fleet view.

Exports are deterministic: instruments sort by name then labels, and
:meth:`MetricsRegistry.to_prometheus` emits valid text exposition format
(``# HELP``/``# TYPE`` headers, escaped label values).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    # runtime.metrics lives above this package in the import graph (the
    # runtime package imports the engine which imports this module), so the
    # recorder class is only imported lazily.
    from repro.runtime.metrics import LatencyRecorder

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: quantiles exported for every histogram (Prometheus summary convention).
QUANTILES = (0.5, 0.9, 0.99)

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelItems:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count (owned or callback-backed)."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        fn: Callable[[], float] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._fn = fn
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise TypeError(f"counter {self.name!r} is callback-backed")
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    def override(self, value: float) -> None:
        """Overwrite an owned counter's total.

        For fleet-merge corrections only: when per-part counters tally
        something the merged deployment counts differently (e.g. shard-local
        epoch releases vs. the merged emission stream), the aggregator
        replaces the summed value with the authoritative one.
        """
        if self._fn is not None:
            raise TypeError(f"counter {self.name!r} is callback-backed")
        self._value = float(value)

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Gauge:
    """Point-in-time value; ``agg`` picks the merge rule (``sum``/``max``)."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        fn: Callable[[], float] | None = None,
        agg: str = "sum",
    ) -> None:
        if agg not in ("sum", "max"):
            raise ValueError(f"unknown gauge aggregation {agg!r}")
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.agg = agg
        self._fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise TypeError(f"gauge {self.name!r} is callback-backed")
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise TypeError(f"gauge {self.name!r} is callback-backed")
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Histogram:
    """Distribution instrument backed by a reservoir recorder.

    Pass ``recorder=`` to *bridge* a live
    :class:`~repro.runtime.metrics.LatencyRecorder` the hot path already
    feeds; otherwise the histogram owns a private recorder fed through
    :meth:`observe`.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        recorder: LatencyRecorder | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        if recorder is None:
            from repro.runtime.metrics import LatencyRecorder

            recorder = LatencyRecorder()
        self.recorder = recorder

    def observe(self, value: float) -> None:
        self.recorder.record(value)

    @property
    def count(self) -> int:
        return self.recorder.count

    @property
    def sum(self) -> float:
        return self.recorder.total

    def quantile(self, q: float) -> float:
        return self.recorder.percentile(q * 100)


Instrument = Counter | Gauge | Histogram


@dataclass
class MetricSample:
    """One collected series: everything an exporter needs."""

    name: str
    kind: str
    help: str
    labels: dict[str, str]
    value: float
    #: histogram extras (``None`` for counters/gauges).
    count: int | None = None
    quantiles: dict[float, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }
        if self.kind == "histogram":
            row["count"] = self.count
            row["quantiles"] = {str(q): v for q, v in self.quantiles.items()}
        return row


class MetricsRegistry:
    """A named set of instruments with deterministic export.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice for
    the same ``(name, labels)`` returns the same instrument, so components
    can idempotently re-register.  A kind clash on an existing series
    raises.
    """

    def __init__(self, namespace: str = "cepr") -> None:
        if not _NAME_RE.match(namespace):
            raise ValueError(f"invalid metric namespace {namespace!r}")
        self.namespace = namespace
        self._instruments: dict[tuple[str, LabelItems], Instrument] = {}

    # -- registration ----------------------------------------------------------

    def _register(
        self, cls: type, name: str, help: str, labels: dict[str, str], **kwargs: Any
    ) -> Any:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        labels = {key: str(value) for key, value in labels.items()}
        slot = (name, _label_key(labels))
        existing = self._instruments.get(slot)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        instrument = cls(name, help=help, labels=labels, **kwargs)
        self._instruments[slot] = instrument
        return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        fn: Callable[[], float] | None = None,
        **labels: str,
    ) -> Counter:
        """Get or create a counter (``fn`` makes it callback-backed)."""
        return self._register(Counter, name, help, labels, fn=fn)

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Callable[[], float] | None = None,
        agg: str = "sum",
        **labels: str,
    ) -> Gauge:
        """Get or create a gauge; ``agg`` ("sum"/"max") rules merging."""
        return self._register(Gauge, name, help, labels, fn=fn, agg=agg)

    def histogram(
        self,
        name: str,
        help: str = "",
        recorder: LatencyRecorder | None = None,
        **labels: str,
    ) -> Histogram:
        """Get or create a histogram (``recorder`` bridges a live one)."""
        return self._register(Histogram, name, help, labels, recorder=recorder)

    def prune(self, name: str | None = None, **labels: str) -> int:
        """Remove instruments matching ``name`` and/or a label subset.

        An instrument matches when its name equals ``name`` (if given) and
        its labels contain every ``labels`` item — so ``prune(query="q1")``
        drops all of one query's series while leaving engine-level ones.
        Returns the number of instruments removed.  At least one criterion
        is required (an unconstrained prune would silently empty the
        registry).
        """
        if name is None and not labels:
            raise ValueError("prune requires a name or at least one label")
        matched = [
            slot
            for slot, instrument in self._instruments.items()
            if (name is None or instrument.name == name)
            and all(
                instrument.labels.get(key) == str(value)
                for key, value in labels.items()
            )
        ]
        for slot in matched:
            del self._instruments[slot]
        return len(matched)

    # -- reading ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> list[Instrument]:
        """All instruments, sorted by name then labels."""
        return [self._instruments[slot] for slot in sorted(self._instruments)]

    def collect(self) -> list[MetricSample]:
        """Snapshot every instrument into exporter-ready samples."""
        samples = []
        for instrument in self.instruments():
            if isinstance(instrument, Histogram):
                samples.append(
                    MetricSample(
                        name=instrument.name,
                        kind=instrument.kind,
                        help=instrument.help,
                        labels=dict(instrument.labels),
                        value=instrument.sum,
                        count=instrument.count,
                        quantiles={
                            q: instrument.quantile(q) for q in QUANTILES
                        },
                    )
                )
            else:
                samples.append(
                    MetricSample(
                        name=instrument.name,
                        kind=instrument.kind,
                        help=instrument.help,
                        labels=dict(instrument.labels),
                        value=instrument.value,
                    )
                )
        return samples

    # -- merging ---------------------------------------------------------------

    def absorb(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (fleet aggregation).

        Counters sum, gauges sum or max per their ``agg`` rule, histogram
        reservoirs pool via ``LatencyRecorder.absorb``.  The folded-into
        instruments are owned (callback instruments are snapshotted), so a
        fleet registry built from per-shard registries is a plain value
        object.
        """
        for instrument in other.instruments():
            if isinstance(instrument, Counter):
                mine = self.counter(
                    instrument.name, instrument.help, **instrument.labels
                )
                mine.inc(instrument.value)
            elif isinstance(instrument, Gauge):
                mine = self.gauge(
                    instrument.name,
                    instrument.help,
                    agg=instrument.agg,
                    **instrument.labels,
                )
                if instrument.agg == "max":
                    mine.set(max(mine.value, instrument.value))
                else:
                    mine.set(mine.value + instrument.value)
            else:
                mine = self.histogram(
                    instrument.name, instrument.help, **instrument.labels
                )
                mine.recorder.absorb(instrument.recorder)

    # -- exporters --------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """JSON-ready snapshot: ``{"namespace": ..., "metrics": [...]}``."""
        return {
            "namespace": self.namespace,
            "metrics": [sample.to_dict() for sample in self.collect()],
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Histograms are exported as summaries (``{quantile="..."}`` series
        plus ``_sum`` and ``_count``), matching how latency reservoirs are
        actually queried.  Conformance details the golden test pins:
        counters are exposed with the conventional ``_total`` suffix
        (appended when the registered name lacks it), ``# HELP`` precedes
        ``# TYPE`` for each metric family, and label values escape
        backslash, double-quote, and newline.
        """
        lines: list[str] = []
        emitted_headers: set[str] = set()
        for sample in self.collect():
            name = f"{self.namespace}_{sample.name}"
            if sample.kind == "counter" and not name.endswith("_total"):
                name += "_total"
            if name not in emitted_headers:
                emitted_headers.add(name)
                if sample.help:
                    lines.append(f"# HELP {name} {_escape_help(sample.help)}")
                prom_type = (
                    "summary" if sample.kind == "histogram" else sample.kind
                )
                lines.append(f"# TYPE {name} {prom_type}")
            if sample.kind == "histogram":
                for q, value in sample.quantiles.items():
                    labels = dict(sample.labels)
                    labels["quantile"] = f"{q:g}"
                    lines.append(f"{name}{_render_labels(labels)} {_render(value)}")
                base = _render_labels(sample.labels)
                lines.append(f"{name}_sum{base} {_render(sample.value)}")
                lines.append(f"{name}_count{base} {_render(sample.count or 0)}")
            else:
                lines.append(
                    f"{name}{_render_labels(sample.labels)} "
                    f"{_render(sample.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def merge_registries(parts: list[MetricsRegistry]) -> MetricsRegistry:
    """A fresh registry absorbing every part (order-independent totals)."""
    merged = MetricsRegistry(namespace=parts[0].namespace if parts else "cepr")
    for part in parts:
        merged.absorb(part)
    return merged


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _render(value: float) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)
