"""Per-query per-stage wall-time profiling.

Every ``push`` travels ``match → rank → emit`` inside
:meth:`~repro.runtime.query.RegisteredQuery.process`; this module holds
the accounting for where that time goes.  A :class:`StageProfile` keeps
one :class:`StageTimer` per stage — a three-float accumulator
(count/total/max), deliberately cheaper than a reservoir because it is
updated on *every* event even when tracing is off.  The monitor,
``explain()``, and the metrics registry render it; the sharded runtime
absorbs per-shard profiles into a fleet view.

Profiling is on by default and costs two extra clock reads per event;
construct the engine with ``enable_profiling=False`` (the observability
benchmark's baseline) to fall back to the single whole-pipeline latency
measurement.
"""

from __future__ import annotations

STAGES = ("match", "rank", "emit")


class StageTimer:
    """Count/total/max accumulator for one pipeline stage."""

    __slots__ = ("count", "total", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.maximum:
            self.maximum = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def absorb(self, other: "StageTimer") -> None:
        self.count += other.count
        self.total += other.total
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_us": self.mean * 1e6,
            "max_us": self.maximum * 1e6,
        }


class StageProfile:
    """Wall-time breakdown of one query's operator chain."""

    __slots__ = ("match", "rank", "emit")

    def __init__(self) -> None:
        self.match = StageTimer()
        self.rank = StageTimer()
        self.emit = StageTimer()

    def timers(self) -> tuple[tuple[str, StageTimer], ...]:
        return (("match", self.match), ("rank", self.rank), ("emit", self.emit))

    @property
    def total_seconds(self) -> float:
        return self.match.total + self.rank.total + self.emit.total

    def absorb(self, other: "StageProfile") -> None:
        """Fold another profile in (fleet aggregation across shards)."""
        self.match.absorb(other.match)
        self.rank.absorb(other.rank)
        self.emit.absorb(other.emit)

    def snapshot(self) -> dict[str, dict[str, float]]:
        return {name: timer.snapshot() for name, timer in self.timers()}

    def describe(self) -> str:
        """One-line rendering: per-stage mean and share of pipeline time."""
        total = self.total_seconds
        parts = []
        for name, timer in self.timers():
            share = (timer.total / total * 100) if total > 0 else 0.0
            parts.append(f"{name}={timer.mean * 1e6:.0f}us({share:.0f}%)")
        return " ".join(parts)
